#!/usr/bin/env bash
# Local CI gate. Run from the repository root:
#
#   ./ci.sh          # full gate
#   ./ci.sh --quick  # skip the release build
#
# Order: cheap static checks first, then the test suites, then the
# analyzer pre-flight over everything the repo ships.
set -euo pipefail
cd "$(dirname "$0")"

QUICK=0
[[ "${1:-}" == "--quick" ]] && QUICK=1

step() { printf '\n== %s ==\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all --check

step "time-unit lint"
# All time quantities are integer microseconds (`SimTime`/`TimeDelta` in
# crates/platform/src/units.rs). The old grep lived here; the logic now
# lives (tested, token-aware, suppression-audited) in crates/lint —
# string literals no longer false-positive, and exemptions are inline
# `// eua-lint: allow(...)` directives instead of path filters. The
# walker skips vendor/, target/, and fixture corpora on its own.
cargo run -q -p eua-lint -- check --only lint-time-unit,lint-wall-clock

step "thread-spawn lint"
# All first-party parallelism goes through the scoped-thread pool in
# crates/sim/src/pool.rs (deterministic ordering, panic containment,
# --jobs / EUA_JOBS resolution); the one sanctioned raw-thread site
# carries an inline allow.
cargo run -q -p eua-lint -- check --only lint-thread-spawn

step "unsafe-code audit"
# Every first-party crate carries the workspace forbid; the lint
# additionally keeps the bare keyword out of code *and* comments so the
# forbid can never be weakened quietly in a later diff.
cargo run -q -p eua-lint -- check --only lint-unsafe-token

step "eua-lint workspace scan (all codes)"
# The full scan: everything above plus hash-collection ordering, float
# sorts via partial_cmp, entropy-seeded RNGs, and allocation inside
# `// eua-lint: hot` functions. The same gate also runs as a test
# (crates/lint/tests/dogfood.rs) in BOTH feature states via the two
# `cargo test` invocations below. The SARIF pass proves the renderer
# byte-round-trips even when the scan is clean.
cargo run -q -p eua-lint -- check
cargo run -q -p eua-lint -- check --format sarif --check >/dev/null

step "cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

step "cargo test"
cargo test --workspace -q

step "schedule differential suite (invariant checks off)"
cargo test -q -p eua-core --test schedule_differential

step "cargo test --features invariant-checks"
cargo test --features invariant-checks -q

step "schedule differential suite (invariant checks on)"
cargo test -q -p eua-core --features eua-sim/invariant-checks \
  --test schedule_differential

step "engine differential suite (both feature states)"
# The production event loop (calendar queue, arena job state,
# incremental score cache — DESIGN.md §14) vs the preserved
# pre-overhaul reference loop: byte-identical certificates and equal
# outcomes across policies, fault plans, and seeds.
EUA_ENGINE_DIFF_CASES=8 cargo test -q -p eua-core --test engine_differential
EUA_ENGINE_DIFF_CASES=8 cargo test -q -p eua-core \
  --features eua-sim/invariant-checks --test engine_differential

step "fault-plan fuzz suite (reduced cases, both feature states)"
EUA_FUZZ_CASES=12 cargo test -q --test fault_fuzz
EUA_FUZZ_CASES=12 cargo test -q --features invariant-checks --test fault_fuzz

step "analyzer soundness gate (reduced cases, both feature states)"
# Semantic verdicts (Feasible / Infeasible / witness windows) checked
# against fault-free simulation through eua-sim's pool.
EUA_SOUNDNESS_CASES=8 cargo test -q --test analyzer_soundness
EUA_SOUNDNESS_CASES=8 cargo test -q --features invariant-checks --test analyzer_soundness

step "certificate audit gate (reduced cases, both feature states)"
# The offline translation validator: golden certificates must audit
# clean, and the proptest gate (faulted runs only ever trip the
# aud-* codes their FaultPlan predicts) must hold with and without the
# engine's runtime invariant checks compiled in.
cargo run -q -p eua-audit -- check crates/audit/tests/fixtures/*.json >/dev/null
EUA_AUDIT_CASES=6 cargo test -q -p eua-audit --test fault_gate
EUA_AUDIT_CASES=6 cargo test -q -p eua-audit \
  --features eua-sim/invariant-checks --test fault_gate

step "diagnostic-code registry lint"
# Every diagnostic code any binary can emit must be registered in the
# shared eua-analyze registry — exactly once — so `codes` listings and
# SARIF rule metadata stay a single source of truth across all three
# binaries (renderer coverage for every code is pinned by unit tests in
# crates/analyze/src/diagnostic.rs).
analyze_codes="$(cargo run -q -p eua-analyze -- codes)"
dupes="$(awk '{print $1}' <<<"${analyze_codes}" | sort | uniq -d)"
if [[ -n "${dupes}" ]]; then
  echo "error: duplicate codes in the eua-analyze registry: ${dupes}" >&2
  exit 1
fi
for tool in eua-audit eua-lint; do
  cargo run -q -p "${tool}" -- codes | while read -r code _; do
    if ! grep -q "^${code} " <<<"${analyze_codes}"; then
      echo "error: ${code} is emitted by ${tool} but absent from the" \
        "eua-analyze code registry" >&2
      exit 1
    fi
  done
done
# And no gaps in the other direction: every registered lint-* code must
# be one eua-lint actually lists (a renamed rule cannot strand its code).
lint_codes="$(cargo run -q -p eua-lint -- codes)"
grep '^lint-' <<<"${analyze_codes}" | while read -r code _; do
  if ! grep -q "^${code} " <<<"${lint_codes}"; then
    echo "error: ${code} is registered but not listed by eua-lint codes" >&2
    exit 1
  fi
done

step "miri smoke (worker pool)"
# Opt-in: EUA_MIRI=1 runs the eua-sim pool tests under miri for UB
# detection in the scoped-thread machinery. Skipped by default (and
# when the toolchain lacks the miri component, as this container's
# does) because miri multiplies test runtime ~30x.
if [[ "${EUA_MIRI:-0}" == 1 ]]; then
  if cargo miri --version >/dev/null 2>&1; then
    cargo miri test -p eua-sim pool
  else
    echo "skipped: EUA_MIRI=1 but the miri component is not installed" \
      "(rustup component add miri)" >&2
  fi
else
  echo "skipped (set EUA_MIRI=1 to enable)"
fi

step "bench smoke under --jobs 2"
cargo run -q -p eua-bench --bin fig2 -- --quick --energy e1 --jobs 2 >/dev/null

step "simulator_throughput bench smoke"
# Reduced samples, no 256-job level: proves the end-to-end and backlog
# throughput benches (the BENCH_engine.json harness) build and run.
EUA_BENCH_SMOKE=1 cargo bench -q -p eua-bench \
  --bench simulator_throughput >/dev/null

step "robustness sweep smoke (--jobs 2, byte round-trip, certified)"
# --check re-parses the emitted JSON and fails unless re-rendering it
# reproduces the on-disk bytes exactly (first-party parser/renderer).
# --certify records one eua-certificate/1 document per sweep cell; the
# unfaulted (intensity-0) cells are then re-validated offline by the
# auditor. Faulted cells are covered by the reduced fault gate above —
# auditing all 48 here would dominate the gate's wall clock.
rm -rf target/ci-robustness-certs
cargo run -q -p eua-bench --bin robustness -- \
  --quick --jobs 2 --out target/ci-robustness.json \
  --certify target/ci-robustness-certs --check 2>&1 | tail -3
cargo run -q -p eua-audit -- check \
  target/ci-robustness-certs/*-i0-*.json >/dev/null

step "chaos campaign smoke (halt + resume == uninterrupted, --jobs 2)"
# A fixed-seed 32-cell campaign run twice: once uninterrupted, once
# killed after 10 cells (--halt-after, the deterministic stand-in for a
# mid-flight kill) and resumed. Journal and report must be
# byte-identical — every cell is a pure function of (seed, index), so
# resume replays nothing and appends exactly the missing cells.
rm -rf target/ci-chaos
cargo run -q -p eua-bench --bin eua-chaos -- \
  --quick --seed 7 --cells 32 --jobs 2 \
  --journal target/ci-chaos/full.jsonl --out target/ci-chaos/full.json \
  2>/dev/null
cargo run -q -p eua-bench --bin eua-chaos -- \
  --quick --seed 7 --cells 32 --jobs 2 --halt-after 10 \
  --journal target/ci-chaos/twophase.jsonl --out target/ci-chaos/twophase.json \
  2>/dev/null
cargo run -q -p eua-bench --bin eua-chaos -- \
  --quick --seed 7 --cells 32 --jobs 2 --resume \
  --journal target/ci-chaos/twophase.jsonl --out target/ci-chaos/twophase.json \
  2>/dev/null
cmp target/ci-chaos/full.jsonl target/ci-chaos/twophase.jsonl
cmp target/ci-chaos/full.json target/ci-chaos/twophase.json

step "regression corpus replay (both feature states)"
# The shrunk chaos repros in tests/regression_corpus/ must still
# reproduce their recorded failure (graded + audited), with and without
# the engine's runtime invariant checks compiled in. The default-state
# run is also part of `cargo test --workspace` above; this pins the
# invariant-checks state explicitly.
cargo test -q --test regression_corpus
cargo test -q --features invariant-checks --test regression_corpus

if [[ "$QUICK" == 0 ]]; then
  step "cargo build --release"
  cargo build --release -q
fi

step "analyzer pre-flight (all shipped examples)"
cargo run -q -p eua-analyze -- check --all-examples

step "analyzer rejects a broken scenario"
if cargo run -q -p eua-analyze -- check crates/analyze/scenarios/invalid.scn \
    >/dev/null 2>&1; then
  echo "error: eua-analyze accepted scenarios/invalid.scn" >&2
  exit 1
fi

step "analyzer SARIF round-trip (--format sarif --check)"
# --check fails (exit 2) unless the SARIF output byte-round-trips through
# the first-party JSON tree and validates against the pinned 2.1.0 subset.
cargo run -q -p eua-analyze -- check --format sarif --check \
  crates/analyze/scenarios/valid.scn >/dev/null

printf '\nCI gate passed.\n'
