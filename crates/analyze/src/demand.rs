//! The **UAM demand-bound analysis**: per-frequency schedulability
//! verdicts with witness windows.
//!
//! The engine simulates in integer microseconds: a job of `c` cycles at
//! frequency `f` occupies exactly `⌈c/f⌉` µs of the processor (the
//! sub-µs remainder of the final microsecond is wasted). Two demand
//! models therefore bracket the simulator:
//!
//! * the **quantized upper model** charges each job its full occupancy,
//!   `C'_i = a_i·⌈c_i/f⌉·f` cycles per window — exact for the engine,
//!   never optimistic;
//! * the **continuous lower model** charges the raw allocation,
//!   `C_i = a_i·c_i` — a lower bound on any processor's work.
//!
//! If the quantized model fits at `f` (BRH scan says [`Fits`]) the
//! scenario is [`Verdict::Feasible`] there: EDF-by-critical-time on the
//! integer-time system meets every allocation-level deadline, so
//! fault-free simulation meets every `{ν, ρ}` assurance. If even the
//! continuous model overloads, the scenario is [`Verdict::Infeasible`]
//! with a concrete witness interval. Between the two — or when a scan
//! exhausts its point budget — the analysis reports
//! [`Verdict::Indeterminate`] rather than guess.
//!
//! [`Fits`]: DemandVerdict::Fits

use eua_uam::dbf::{self, DemandCurve, DemandVerdict};

use crate::ir::{quantized_exec_us, AnalysisIr, TaskIr};

/// Point budget for each BRH scan: generous for realistic scenarios
/// (busy periods of a few hundred windows) while bounding pathological
/// near-critical utilizations. Exhausting it yields `Indeterminate`,
/// never a wrong verdict.
pub const MAX_WITNESS_POINTS: usize = 20_000;

/// The three-way semantic verdict at one frequency.
///
/// Ordered `Infeasible < Indeterminate < Feasible` so dominance logic
/// can compare "no worse on feasibility" with `>=`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verdict {
    /// The continuous lower model overloads: no processor at this speed
    /// can clear the allocation-level demand. Carries a witness.
    Infeasible,
    /// Neither proof applies (quantization gap or scan budget).
    Indeterminate,
    /// The quantized upper model fits: the simulator meets every
    /// allocation-level critical time at this frequency.
    Feasible,
}

impl Verdict {
    /// Lowercase name for renderers.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::Infeasible => "infeasible",
            Verdict::Indeterminate => "indeterminate",
            Verdict::Feasible => "feasible",
        }
    }
}

/// A concrete interval proving infeasibility.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WitnessWindow {
    /// Interval length `L` in µs.
    pub interval_us: u64,
    /// Forced demand `h(L)` in cycles.
    pub demand_cycles: f64,
    /// Capacity `f·L` in cycles (strictly less than the demand).
    pub capacity_cycles: f64,
}

/// The verdict at one frequency, with its utilization breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct FrequencyVerdict {
    /// The frequency in MHz.
    pub f_mhz: u64,
    /// The three-way verdict.
    pub verdict: Verdict,
    /// The overload witness, present iff `verdict` is `Infeasible`.
    pub witness: Option<WitnessWindow>,
    /// Total long-run utilization `Σ a_i·c_i/P_i` in MHz (cycles/µs);
    /// independent of `f_mhz`.
    pub utilization_mhz: f64,
    /// Per-task utilization shares `(name, a·c/P)` in MHz.
    pub shares: Vec<(String, f64)>,
}

/// The continuous lower-model curve of one task: raw allocation cycles.
fn continuous_curve(t: &TaskIr) -> DemandCurve {
    DemandCurve {
        window_demand: t.window_demand_cycles(),
        critical_us: t.critical_us,
        window_us: t.window_us,
    }
}

/// The quantized upper-model curve at `mhz`: each job is charged its
/// whole-µs occupancy, `⌈c/f⌉·f` cycles.
fn quantized_curve(t: &TaskIr, mhz: u64) -> DemandCurve {
    let occupancy_us = quantized_exec_us(t.allocation_cycles, mhz);
    #[allow(clippy::cast_precision_loss)]
    let per_job = (occupancy_us.saturating_mul(mhz)) as f64;
    DemandCurve {
        window_demand: f64::from(t.arrivals) * per_job,
        critical_us: t.critical_us,
        window_us: t.window_us,
    }
}

/// Runs the demand-bound analysis at every table frequency, ascending.
#[must_use]
pub fn frequency_verdicts(ir: &AnalysisIr) -> Vec<FrequencyVerdict> {
    let continuous: Vec<DemandCurve> = ir.tasks.iter().map(continuous_curve).collect();
    let utilization = dbf::total_utilization(&continuous);
    let shares: Vec<(String, f64)> = ir
        .tasks
        .iter()
        .zip(&continuous)
        .map(|(t, c)| (t.name.clone(), c.utilization()))
        .collect();

    ir.freqs
        .iter()
        .map(|f| {
            #[allow(clippy::cast_precision_loss)]
            let speed = f.mhz as f64;
            let quantized: Vec<DemandCurve> =
                ir.tasks.iter().map(|t| quantized_curve(t, f.mhz)).collect();
            let (verdict, witness) =
                match dbf::demand_witness(&quantized, speed, MAX_WITNESS_POINTS) {
                    DemandVerdict::Fits => (Verdict::Feasible, None),
                    _ => match dbf::demand_witness(&continuous, speed, MAX_WITNESS_POINTS) {
                        DemandVerdict::Overload {
                            interval_us,
                            demand_cycles,
                        } => (
                            Verdict::Infeasible,
                            Some(WitnessWindow {
                                interval_us,
                                demand_cycles,
                                #[allow(clippy::cast_precision_loss)]
                                capacity_cycles: speed * interval_us as f64,
                            }),
                        ),
                        _ => (Verdict::Indeterminate, None),
                    },
                };
            FrequencyVerdict {
                f_mhz: f.mhz,
                verdict,
                witness,
                utilization_mhz: utilization,
                shares: shares.clone(),
            }
        })
        .collect()
}

/// The verdict at the table's top frequency `f_m`.
#[must_use]
pub fn verdict_at_fmax(verdicts: &[FrequencyVerdict]) -> Option<&FrequencyVerdict> {
    verdicts.last()
}

/// The lowest frequency whose verdict is [`Verdict::Feasible`] — the
/// scenario's static feasibility floor.
#[must_use]
pub fn feasibility_floor(verdicts: &[FrequencyVerdict]) -> Option<u64> {
    verdicts
        .iter()
        .find(|v| v.verdict == Verdict::Feasible)
        .map(|v| v.f_mhz)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::ir::lower;
    use crate::scenario::{DemandSpec, EnergySpec, ScenarioSpec, TaskSpec, TufSpec};

    fn scenario(cycles: f64, window_us: u64, arrivals: f64, freqs: Vec<u64>) -> ScenarioSpec {
        ScenarioSpec {
            name: "demand-test".into(),
            frequencies_mhz: freqs,
            energy: EnergySpec::e1(),
            tasks: vec![TaskSpec {
                name: "t".into(),
                tuf: TufSpec::Step {
                    umax: 10.0,
                    step_at_us: window_us,
                    termination_us: window_us,
                },
                max_arrivals: arrivals,
                window_us,
                demand: DemandSpec::Deterministic { cycles },
                nu: 1.0,
                rho: 0.5,
                declared_allocation: None,
                arrival: None,
            }],
            faults: None,
        }
    }

    #[test]
    fn verdicts_are_monotone_in_frequency() {
        // 300k cycles per 10 ms ⇒ needs 30 MHz continuous; with
        // quantization, exactly ⌈300k/f⌉ µs per job.
        let ir = lower(&scenario(300_000.0, 10_000, 1.0, vec![25, 50, 75, 100])).unwrap();
        let v = frequency_verdicts(&ir);
        assert_eq!(v.len(), 4);
        assert_eq!(
            v[0].verdict,
            Verdict::Infeasible,
            "25 MHz under 30 MHz load"
        );
        assert!(v[0].witness.is_some());
        for verdict in &v[1..] {
            assert_eq!(verdict.verdict, Verdict::Feasible, "{} MHz", verdict.f_mhz);
            assert!(verdict.witness.is_none());
        }
        // Monotone: once feasible, faster frequencies never get worse.
        for pair in v.windows(2) {
            assert!(pair[1].verdict >= pair[0].verdict);
        }
    }

    #[test]
    fn witness_demand_exceeds_capacity() {
        let ir = lower(&scenario(300_000.0, 10_000, 2.0, vec![36, 55])).unwrap();
        let v = frequency_verdicts(&ir);
        // 600k cycles per 10 ms ⇒ 60 MHz: both table entries overload.
        for fv in &v {
            assert_eq!(fv.verdict, Verdict::Infeasible);
            let w = fv.witness.expect("witness");
            assert!(w.demand_cycles > w.capacity_cycles + 1e-9);
            #[allow(clippy::cast_precision_loss)]
            let cap = fv.f_mhz as f64 * w.interval_us as f64;
            assert!((w.capacity_cycles - cap).abs() < 1e-6);
        }
        assert!((v[0].utilization_mhz - 60.0).abs() < 1e-9);
        assert_eq!(v[0].shares.len(), 1);
    }

    #[test]
    fn quantization_gap_yields_indeterminate() {
        // 999 cycles per 100 µs at 10 MHz: continuous needs 9.99 MHz
        // (fits), but each job occupies ⌈999/10⌉ = 100 µs — the whole
        // window — so the quantized model saturates exactly. At 10 MHz
        // capacity is 10·100 = 1000 = 100·10 quantized demand: still
        // fits. Shrink the window to 99 µs instead: quantized demand
        // 100 µs > 99 µs window ⇒ quantized overload, continuous
        // 999 ≤ 10·99 = 990? No - 999 > 990, continuous also overloads.
        // Use 980 cycles / 99 µs: continuous 980 ≤ 990 fits, quantized
        // ⌈980/10⌉ = 98 µs·10 = 980... also fits. Use 985 cycles with
        // f = 10: quantized ⌈985/10⌉·10 = 990 ≤ 990 fits. 986: ⌈98.6⌉ =
        // 99 µs·10 = 990 ≤ 990 fits. 991: quantized 1000 > 990
        // overloads, continuous 991 > 990 overloads ⇒ infeasible.
        // A genuine gap needs multiple jobs: two tasks at 5 cycles/99 µs
        // and one at 981: quantized ⌈981/10⌉=99·10=990 + ⌈5/10⌉=1·10=10
        // = 1000 > 990, continuous 986 ≤ 990 ⇒ Indeterminate.
        let mut s = scenario(981.0, 99, 1.0, vec![10]);
        s.tasks.push(TaskSpec {
            name: "tiny".into(),
            tuf: TufSpec::Step {
                umax: 1.0,
                step_at_us: 99,
                termination_us: 99,
            },
            max_arrivals: 1.0,
            window_us: 99,
            demand: DemandSpec::Deterministic { cycles: 5.0 },
            nu: 1.0,
            rho: 0.5,
            declared_allocation: None,
            arrival: None,
        });
        let ir = lower(&s).unwrap();
        let v = frequency_verdicts(&ir);
        assert_eq!(v[0].verdict, Verdict::Indeterminate, "{v:?}");
        assert!(v[0].witness.is_none());
    }

    #[test]
    fn floor_and_fmax_helpers() {
        let ir = lower(&scenario(300_000.0, 10_000, 1.0, vec![25, 50, 75, 100])).unwrap();
        let v = frequency_verdicts(&ir);
        assert_eq!(feasibility_floor(&v), Some(50));
        assert_eq!(verdict_at_fmax(&v).unwrap().f_mhz, 100);
        assert_eq!(verdict_at_fmax(&v).unwrap().verdict, Verdict::Feasible);
    }

    #[test]
    fn verdict_ordering_supports_dominance() {
        assert!(Verdict::Feasible > Verdict::Indeterminate);
        assert!(Verdict::Indeterminate > Verdict::Infeasible);
        assert_eq!(Verdict::Feasible.as_str(), "feasible");
    }
}
