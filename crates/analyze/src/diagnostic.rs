//! The diagnostic model: codes, severities, and the per-scenario report
//! with text and machine-readable JSON renderers.
//!
//! Every check in [`crate::passes`] reports problems as [`Diagnostic`]
//! values carrying a stable kebab-case [`DiagCode`], a [`Severity`], the
//! entity it concerns (usually a task name), a human message, and an
//! optional suggestion. A [`Report`] collects the diagnostics for one
//! scenario and renders them for humans (`render_text`) or tools
//! (`render_json`).

use std::collections::BTreeSet;
use std::fmt;

/// How bad a diagnostic is.
///
/// Only [`Severity::Error`] makes `eua-analyze check` exit nonzero:
/// errors mean the scenario cannot be simulated faithfully (invalid
/// parameters), while warnings flag analyzable-but-suspect inputs
/// (overload, dominated frequencies) and infos are advisory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory only; never affects the exit status.
    Info,
    /// Suspicious but analyzable; the simulator will run.
    Warning,
    /// Invalid input; construction or simulation would fail.
    Error,
}

impl Severity {
    /// Lowercase name used in text and JSON output.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Stable machine-readable identifier for one class of finding.
///
/// Codes are rendered kebab-case (see [`DiagCode::as_str`]) and are part
/// of the tool's output contract: tests and CI match on them, so renaming
/// one is a breaking change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum DiagCode {
    /// The scenario defines no tasks at all.
    NoTasks,
    /// Two tasks share a name, making per-task diagnostics ambiguous.
    DuplicateTaskName,
    /// A TUF's maximum utility is zero, negative, or non-finite.
    TufNonPositiveUmax,
    /// A piecewise TUF's utility increases over time (TUFs must be
    /// non-increasing under the paper's model).
    TufIncreasing,
    /// A TUF assigns negative or non-finite utility somewhere.
    TufNegativeUtility,
    /// Piecewise breakpoints are not strictly increasing in time.
    TufUnorderedBreakpoints,
    /// A TUF's termination (or decay constant) is zero.
    TufZeroTermination,
    /// `U(D) ≥ ν·U_max` is only satisfied at `D = 0`: no usable critical
    /// time exists for the requested assurance.
    CriticalTimeUnsolvable,
    /// The utility-assurance fraction ν lies outside `[0, 1]`.
    AssuranceNuRange,
    /// The timeliness-assurance probability ρ lies outside `[0, 1)`.
    AssuranceRhoRange,
    /// The Chebyshev allocation `E(Y) + sqrt(ρ/(1−ρ)·Var(Y))` is
    /// undefined or infinite (e.g. a Pareto tail with `α ≤ 2`).
    ChebyshevUnbounded,
    /// A demand-model parameter is invalid (negative mean, `lo > hi`, …).
    DemandInvalid,
    /// The UAM arrival bound `a` is not a positive integer.
    UamArrivalBound,
    /// The UAM window `P` is zero.
    UamZeroWindow,
    /// The per-window demand `a·c` saturates the cycle counter.
    UamWindowOverflow,
    /// The frequency table has no entries.
    FreqTableEmpty,
    /// The frequency table has a zero entry or is not strictly
    /// increasing.
    FreqTableInvalid,
    /// A frequency is dominated: some faster frequency costs no more
    /// energy per cycle, so its UER is never worse for any
    /// non-increasing TUF.
    DominatedFrequency,
    /// An energy-model coefficient is negative or non-finite.
    EnergyInvalidCoefficient,
    /// The energy-optimal speed (knee of `E(f)`) lies outside the
    /// frequency table's range.
    EnergyKneeOutsideRange,
    /// Theorem 1's sufficient speed `Σ C_i/D_i` exceeds `f_m`, so static
    /// schedulability is not guaranteed (set to Info when the condition
    /// holds, confirming a feasible static speed).
    Theorem1Speed,
    /// The Baruah–Rosier–Howell demand bound `h(L) ≤ f_m·L` fails (or,
    /// at Info severity, rescues a set that fails Theorem 1).
    BrhDemandBound,
    /// Sustained overload: total utilization `Σ C_i/P_i` exceeds `f_m`.
    Overload,
    /// A single task cannot finish its window demand by its critical
    /// time even running alone at `f_m`.
    AllocationExceedsCritical,
    /// A fault stanza's demand-deviation factor or spread is negative
    /// or non-finite.
    FaultNegativeDeviation,
    /// The injected DVS switch latency is at least one declared UAM
    /// window long even at `f_m` — every window's budget burns on
    /// relocking before any job runs.
    FaultSwitchLatencyExceedsWindow,
    /// The fault stanza's degraded frequency set is empty (or disjoint
    /// from the platform table), leaving no frequency to run at.
    FaultEmptyDegradedSet,
    /// The semantic demand-bound analysis proves the scenario infeasible
    /// even at the top frequency `f_m`: a witness window's worst-case
    /// demand exceeds capacity.
    SemInfeasibleAtFmax,
    /// The lowest frequency at which the allocation-level demand
    /// provably fits (the scenario's static feasibility floor).
    SemFeasibilityFloor,
    /// The demand-bound analysis could not decide a frequency either
    /// way (quantization gap or scan budget exhausted).
    SemIndeterminate,
    /// A frequency is semantically dominated: another table entry is no
    /// worse on feasibility *and* energy per cycle, so no schedule
    /// improves by selecting it.
    SemDominatedFrequency,
    /// A DVS state no EUA\* offline clamp can ever select: it lies below
    /// every task's UER-optimal frequency.
    SemUnreachableDvsState,
    /// A `.scn` file declares an `allocation` inconsistent with the
    /// Chebyshev allocation implied by its mean/variance/ρ.
    SemChebyshevAllocationMismatch,
    /// A decision certificate fails to parse, declares an unknown format,
    /// or references jobs/tasks that do not exist in its own tables.
    AudMalformedCertificate,
    /// A certified UER disagrees with the value recomputed from the
    /// declared TUF and the Martin energy model at `f_m`.
    AudUerMismatch,
    /// A certified schedule is not the one greedy non-increasing-UER
    /// insertion reconstructs, or is not critical-time ordered.
    AudScheduleOrder,
    /// A certified schedule misses a termination time when its entries
    /// are replayed back-to-back at `f_m` (its predicted finish times are
    /// wrong or infeasible).
    AudScheduleInfeasible,
    /// An abort lacks a valid infeasibility witness: the job could still
    /// have finished by its termination time at `f_m`.
    AudAbortIllegal,
    /// The chosen frequency violates the Algorithm 2 bound: it is not
    /// the table's lowest frequency at or above the certified required
    /// speed (raised by the UER clamp when active).
    AudDvsOutOfBound,
    /// A charge's energy disagrees with Martin's `E(f)` per-cycle model
    /// (or the idle-power bill), or the charges do not sum to the
    /// certified total.
    AudEnergyMismatch,
    /// The certified arrival stream violates a task's declared UAM
    /// `<a, P>` bound: more than `a` arrivals inside one sliding window.
    AudUamViolation,
    /// Raw time arithmetic (`std::time` paths, `Duration::from_secs*`)
    /// outside the sanctioned `SimTime`/`TimeDelta` newtypes.
    LintTimeUnit,
    /// A wall-clock read (`Instant::now`, `SystemTime`) in first-party
    /// source: nondeterministic input the byte-identity pins cannot see.
    LintWallClock,
    /// Raw `std::thread` spawn/scope/Builder use outside the
    /// deterministic worker pool.
    LintThreadSpawn,
    /// The bare keyword banned by the workspace-wide unsafe-code forbid,
    /// in code or comments (directive comments are exempt).
    LintUnsafeToken,
    /// `HashMap`/`HashSet` in first-party source: iteration order is
    /// nondeterministic and leaks into any ordered output it feeds.
    LintHashCollection,
    /// `partial_cmp` inside a `sort_by`-family comparator: NaN ordering
    /// is unspecified where `total_cmp` would be deterministic.
    LintFloatSortPartialCmp,
    /// Entropy-seeded RNG construction (`thread_rng`, `from_entropy`,
    /// `OsRng`, `rand::random`) outside the salted per-seed scheme.
    LintEntropyRng,
    /// An allocating call inside a function marked `// eua-lint: hot`.
    LintHotPathAlloc,
    /// An `// eua-lint: allow(...)` directive that suppressed nothing.
    LintUnusedSuppression,
    /// An `// eua-lint:` directive that is malformed or names a code
    /// the linter does not recognize (or cannot suppress).
    LintUnknownSuppression,
}

impl DiagCode {
    /// Every code, in a stable order (used by `eua-analyze codes`).
    pub const ALL: [DiagCode; 51] = [
        DiagCode::NoTasks,
        DiagCode::DuplicateTaskName,
        DiagCode::TufNonPositiveUmax,
        DiagCode::TufIncreasing,
        DiagCode::TufNegativeUtility,
        DiagCode::TufUnorderedBreakpoints,
        DiagCode::TufZeroTermination,
        DiagCode::CriticalTimeUnsolvable,
        DiagCode::AssuranceNuRange,
        DiagCode::AssuranceRhoRange,
        DiagCode::ChebyshevUnbounded,
        DiagCode::DemandInvalid,
        DiagCode::UamArrivalBound,
        DiagCode::UamZeroWindow,
        DiagCode::UamWindowOverflow,
        DiagCode::FreqTableEmpty,
        DiagCode::FreqTableInvalid,
        DiagCode::DominatedFrequency,
        DiagCode::EnergyInvalidCoefficient,
        DiagCode::EnergyKneeOutsideRange,
        DiagCode::Theorem1Speed,
        DiagCode::BrhDemandBound,
        DiagCode::Overload,
        DiagCode::AllocationExceedsCritical,
        DiagCode::FaultNegativeDeviation,
        DiagCode::FaultSwitchLatencyExceedsWindow,
        DiagCode::FaultEmptyDegradedSet,
        DiagCode::SemInfeasibleAtFmax,
        DiagCode::SemFeasibilityFloor,
        DiagCode::SemIndeterminate,
        DiagCode::SemDominatedFrequency,
        DiagCode::SemUnreachableDvsState,
        DiagCode::SemChebyshevAllocationMismatch,
        DiagCode::AudMalformedCertificate,
        DiagCode::AudUerMismatch,
        DiagCode::AudScheduleOrder,
        DiagCode::AudScheduleInfeasible,
        DiagCode::AudAbortIllegal,
        DiagCode::AudDvsOutOfBound,
        DiagCode::AudEnergyMismatch,
        DiagCode::AudUamViolation,
        DiagCode::LintTimeUnit,
        DiagCode::LintWallClock,
        DiagCode::LintThreadSpawn,
        DiagCode::LintUnsafeToken,
        DiagCode::LintHashCollection,
        DiagCode::LintFloatSortPartialCmp,
        DiagCode::LintEntropyRng,
        DiagCode::LintHotPathAlloc,
        DiagCode::LintUnusedSuppression,
        DiagCode::LintUnknownSuppression,
    ];

    /// The stable kebab-case identifier.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            DiagCode::NoTasks => "no-tasks",
            DiagCode::DuplicateTaskName => "duplicate-task-name",
            DiagCode::TufNonPositiveUmax => "tuf-non-positive-umax",
            DiagCode::TufIncreasing => "tuf-increasing",
            DiagCode::TufNegativeUtility => "tuf-negative-utility",
            DiagCode::TufUnorderedBreakpoints => "tuf-unordered-breakpoints",
            DiagCode::TufZeroTermination => "tuf-zero-termination",
            DiagCode::CriticalTimeUnsolvable => "critical-time-unsolvable",
            DiagCode::AssuranceNuRange => "assurance-nu-range",
            DiagCode::AssuranceRhoRange => "assurance-rho-range",
            DiagCode::ChebyshevUnbounded => "chebyshev-unbounded",
            DiagCode::DemandInvalid => "demand-invalid",
            DiagCode::UamArrivalBound => "uam-arrival-bound",
            DiagCode::UamZeroWindow => "uam-zero-window",
            DiagCode::UamWindowOverflow => "uam-window-overflow",
            DiagCode::FreqTableEmpty => "freq-table-empty",
            DiagCode::FreqTableInvalid => "freq-table-invalid",
            DiagCode::DominatedFrequency => "dominated-frequency",
            DiagCode::EnergyInvalidCoefficient => "energy-invalid-coefficient",
            DiagCode::EnergyKneeOutsideRange => "energy-knee-outside-range",
            DiagCode::Theorem1Speed => "theorem1-speed",
            DiagCode::BrhDemandBound => "brh-demand-bound",
            DiagCode::Overload => "overload",
            DiagCode::AllocationExceedsCritical => "allocation-exceeds-critical",
            DiagCode::FaultNegativeDeviation => "fault-negative-deviation",
            DiagCode::FaultSwitchLatencyExceedsWindow => "fault-switch-latency-exceeds-window",
            DiagCode::FaultEmptyDegradedSet => "fault-empty-degraded-set",
            DiagCode::SemInfeasibleAtFmax => "sem-infeasible-at-fmax",
            DiagCode::SemFeasibilityFloor => "sem-feasibility-floor",
            DiagCode::SemIndeterminate => "sem-indeterminate",
            DiagCode::SemDominatedFrequency => "sem-dominated-frequency",
            DiagCode::SemUnreachableDvsState => "sem-unreachable-dvs-state",
            DiagCode::SemChebyshevAllocationMismatch => "sem-chebyshev-allocation-mismatch",
            DiagCode::AudMalformedCertificate => "aud-malformed-certificate",
            DiagCode::AudUerMismatch => "aud-uer-mismatch",
            DiagCode::AudScheduleOrder => "aud-schedule-order",
            DiagCode::AudScheduleInfeasible => "aud-schedule-infeasible",
            DiagCode::AudAbortIllegal => "aud-abort-illegal",
            DiagCode::AudDvsOutOfBound => "aud-dvs-out-of-bound",
            DiagCode::AudEnergyMismatch => "aud-energy-mismatch",
            DiagCode::AudUamViolation => "aud-uam-violation",
            DiagCode::LintTimeUnit => "lint-time-unit",
            DiagCode::LintWallClock => "lint-wall-clock",
            DiagCode::LintThreadSpawn => "lint-thread-spawn",
            DiagCode::LintUnsafeToken => "lint-unsafe-token",
            DiagCode::LintHashCollection => "lint-hash-collection",
            DiagCode::LintFloatSortPartialCmp => "lint-float-sort-partial-cmp",
            DiagCode::LintEntropyRng => "lint-entropy-rng",
            DiagCode::LintHotPathAlloc => "lint-hot-path-alloc",
            DiagCode::LintUnusedSuppression => "lint-unused-suppression",
            DiagCode::LintUnknownSuppression => "lint-unknown-suppression",
        }
    }

    /// The severity a diagnostic with this code carries unless a pass
    /// overrides it (e.g. `theorem1-speed` downgraded to Info when the
    /// sufficient condition *holds*).
    #[must_use]
    pub fn default_severity(self) -> Severity {
        match self {
            DiagCode::NoTasks
            | DiagCode::TufNonPositiveUmax
            | DiagCode::TufIncreasing
            | DiagCode::TufNegativeUtility
            | DiagCode::TufUnorderedBreakpoints
            | DiagCode::TufZeroTermination
            | DiagCode::CriticalTimeUnsolvable
            | DiagCode::AssuranceNuRange
            | DiagCode::AssuranceRhoRange
            | DiagCode::ChebyshevUnbounded
            | DiagCode::DemandInvalid
            | DiagCode::UamArrivalBound
            | DiagCode::UamZeroWindow
            | DiagCode::FreqTableEmpty
            | DiagCode::FreqTableInvalid
            | DiagCode::EnergyInvalidCoefficient
            | DiagCode::FaultNegativeDeviation
            | DiagCode::FaultSwitchLatencyExceedsWindow
            | DiagCode::FaultEmptyDegradedSet
            | DiagCode::AudMalformedCertificate
            | DiagCode::AudUerMismatch
            | DiagCode::AudScheduleOrder
            | DiagCode::AudScheduleInfeasible
            | DiagCode::AudAbortIllegal
            | DiagCode::AudDvsOutOfBound
            | DiagCode::AudEnergyMismatch
            | DiagCode::AudUamViolation
            | DiagCode::LintTimeUnit
            | DiagCode::LintWallClock
            | DiagCode::LintThreadSpawn
            | DiagCode::LintUnsafeToken
            | DiagCode::LintHashCollection
            | DiagCode::LintFloatSortPartialCmp
            | DiagCode::LintEntropyRng
            | DiagCode::LintHotPathAlloc
            | DiagCode::LintUnusedSuppression
            | DiagCode::LintUnknownSuppression => Severity::Error,
            DiagCode::DuplicateTaskName
            | DiagCode::UamWindowOverflow
            | DiagCode::DominatedFrequency
            | DiagCode::Theorem1Speed
            | DiagCode::BrhDemandBound
            | DiagCode::Overload
            | DiagCode::AllocationExceedsCritical
            | DiagCode::SemInfeasibleAtFmax
            | DiagCode::SemDominatedFrequency
            | DiagCode::SemChebyshevAllocationMismatch => Severity::Warning,
            DiagCode::EnergyKneeOutsideRange
            | DiagCode::SemFeasibilityFloor
            | DiagCode::SemIndeterminate
            | DiagCode::SemUnreachableDvsState => Severity::Info,
        }
    }

    /// One-line description for `eua-analyze codes` and the docs.
    #[must_use]
    pub fn summary(self) -> &'static str {
        match self {
            DiagCode::NoTasks => "scenario defines no tasks",
            DiagCode::DuplicateTaskName => "two tasks share a name",
            DiagCode::TufNonPositiveUmax => "TUF maximum utility is not positive and finite",
            DiagCode::TufIncreasing => "TUF utility increases over time",
            DiagCode::TufNegativeUtility => "TUF assigns negative or non-finite utility",
            DiagCode::TufUnorderedBreakpoints => "piecewise breakpoints not strictly increasing",
            DiagCode::TufZeroTermination => "TUF termination or decay constant is zero",
            DiagCode::CriticalTimeUnsolvable => {
                "no positive critical time satisfies U(D) >= nu*Umax"
            }
            DiagCode::AssuranceNuRange => "utility assurance nu outside [0, 1]",
            DiagCode::AssuranceRhoRange => "timeliness assurance rho outside [0, 1)",
            DiagCode::ChebyshevUnbounded => "Chebyshev allocation undefined or infinite",
            DiagCode::DemandInvalid => "demand-model parameter invalid",
            DiagCode::UamArrivalBound => "UAM arrival bound a is not a positive integer",
            DiagCode::UamZeroWindow => "UAM window P is zero",
            DiagCode::UamWindowOverflow => "per-window demand a*c saturates the cycle counter",
            DiagCode::FreqTableEmpty => "frequency table is empty",
            DiagCode::FreqTableInvalid => "frequency table has zero or unordered entries",
            DiagCode::DominatedFrequency => "a faster frequency is never more expensive per cycle",
            DiagCode::EnergyInvalidCoefficient => "energy coefficient negative or non-finite",
            DiagCode::EnergyKneeOutsideRange => "energy-optimal speed outside the table range",
            DiagCode::Theorem1Speed => "Theorem 1 sufficient-speed condition status",
            DiagCode::BrhDemandBound => "BRH demand-bound feasibility status",
            DiagCode::Overload => "sustained overload: utilization exceeds f_m",
            DiagCode::AllocationExceedsCritical => {
                "a task overruns its critical time even alone at f_m"
            }
            DiagCode::FaultNegativeDeviation => {
                "fault demand-deviation factor or spread negative or non-finite"
            }
            DiagCode::FaultSwitchLatencyExceedsWindow => {
                "injected switch latency spans a whole UAM window at f_m"
            }
            DiagCode::FaultEmptyDegradedSet => {
                "degraded frequency set empty or disjoint from the table"
            }
            DiagCode::SemInfeasibleAtFmax => {
                "demand-bound witness proves infeasibility even at f_m"
            }
            DiagCode::SemFeasibilityFloor => {
                "lowest frequency whose demand-bound verdict is Feasible"
            }
            DiagCode::SemIndeterminate => {
                "demand-bound analysis undecided at f_m (quantization gap)"
            }
            DiagCode::SemDominatedFrequency => {
                "another frequency is no worse on feasibility and energy"
            }
            DiagCode::SemUnreachableDvsState => {
                "below every task's UER-optimal frequency: EUA* never selects it"
            }
            DiagCode::SemChebyshevAllocationMismatch => {
                "declared allocation disagrees with the Chebyshev bound"
            }
            DiagCode::AudMalformedCertificate => {
                "certificate unparsable or internally inconsistent"
            }
            DiagCode::AudUerMismatch => "certified UER disagrees with recomputation at f_m",
            DiagCode::AudScheduleOrder => {
                "schedule differs from greedy non-increasing-UER insertion"
            }
            DiagCode::AudScheduleInfeasible => {
                "certified schedule misses a termination time at f_m"
            }
            DiagCode::AudAbortIllegal => "abort without a valid infeasibility witness",
            DiagCode::AudDvsOutOfBound => "chosen frequency violates the look-ahead DVS bound",
            DiagCode::AudEnergyMismatch => {
                "charged energy disagrees with Martin's model or the total"
            }
            DiagCode::AudUamViolation => "certified arrivals exceed a UAM <a, P> bound",
            DiagCode::LintTimeUnit => "raw time arithmetic outside the SimTime/TimeDelta newtypes",
            DiagCode::LintWallClock => "wall-clock read in deterministic first-party code",
            DiagCode::LintThreadSpawn => "raw std::thread use outside the worker pool",
            DiagCode::LintUnsafeToken => "bare keyword banned by the unsafe-code forbid",
            DiagCode::LintHashCollection => "HashMap/HashSet iteration order is nondeterministic",
            DiagCode::LintFloatSortPartialCmp => "partial_cmp in a sort comparator; use total_cmp",
            DiagCode::LintEntropyRng => "entropy-seeded RNG outside the per-seed scheme",
            DiagCode::LintHotPathAlloc => "allocation inside a marked hot path",
            DiagCode::LintUnusedSuppression => "allow directive that suppressed nothing",
            DiagCode::LintUnknownSuppression => "malformed or unknown eua-lint directive",
        }
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding: a code, its severity, the entity concerned, a message,
/// and an optional remedy.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable identifier for the class of finding.
    pub code: DiagCode,
    /// Effective severity (usually [`DiagCode::default_severity`]).
    pub severity: Severity,
    /// What the finding concerns: a task name, `frequency 36 MHz`, …
    /// `None` for scenario-wide findings.
    pub entity: Option<String>,
    /// Human-readable explanation with the offending values inline.
    pub message: String,
    /// Optional remedy, rendered as a `help:` line.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    /// A scenario-wide diagnostic at the code's default severity.
    #[must_use]
    pub fn new(code: DiagCode, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.default_severity(),
            entity: None,
            message: message.into(),
            suggestion: None,
        }
    }

    /// A diagnostic attached to a named entity (usually a task).
    #[must_use]
    pub fn for_entity(
        code: DiagCode,
        entity: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            entity: Some(entity.into()),
            ..Diagnostic::new(code, message)
        }
    }

    /// Overrides the default severity.
    #[must_use]
    pub fn with_severity(mut self, severity: Severity) -> Self {
        self.severity = severity;
        self
    }

    /// Attaches a remedy rendered as a `help:` line.
    #[must_use]
    pub fn with_suggestion(mut self, suggestion: impl Into<String>) -> Self {
        self.suggestion = Some(suggestion.into());
        self
    }
}

/// All diagnostics produced for one scenario.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    /// The analyzed scenario's name.
    pub scenario: String,
    /// Findings, sorted most severe first (stable within a severity).
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report for the named scenario.
    #[must_use]
    pub fn new(scenario: impl Into<String>) -> Self {
        Report {
            scenario: scenario.into(),
            diagnostics: Vec::new(),
        }
    }

    /// Adds one finding.
    pub fn push(&mut self, diagnostic: Diagnostic) {
        self.diagnostics.push(diagnostic);
    }

    /// Sorts findings most severe first, preserving pass order within a
    /// severity.
    pub fn sort(&mut self) {
        self.diagnostics
            .sort_by_key(|d| std::cmp::Reverse(d.severity));
    }

    /// Number of findings at the given severity.
    #[must_use]
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Whether any finding is an [`Severity::Error`].
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// The distinct codes present, for matching in tests and CI.
    #[must_use]
    pub fn codes(&self) -> BTreeSet<&'static str> {
        self.diagnostics.iter().map(|d| d.code.as_str()).collect()
    }

    /// Human-readable rendering, one finding per stanza.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "scenario `{}`: {} error(s), {} warning(s), {} info(s)\n",
            self.scenario,
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info),
        );
        for d in &self.diagnostics {
            match &d.entity {
                Some(e) => {
                    out.push_str(&format!(
                        "  {}[{}] `{}`: {}\n",
                        d.severity, d.code, e, d.message
                    ));
                }
                None => out.push_str(&format!("  {}[{}] {}\n", d.severity, d.code, d.message)),
            }
            if let Some(s) = &d.suggestion {
                out.push_str(&format!("    help: {s}\n"));
            }
        }
        out
    }

    /// Machine-readable JSON rendering (a single object).
    ///
    /// All numeric detail lives inside the message strings, so the
    /// output contains only strings and integer counts and is always
    /// valid JSON regardless of non-finite values in the input.
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"scenario\":\"{}\",",
            json_escape(&self.scenario)
        ));
        out.push_str(&format!(
            "\"summary\":{{\"errors\":{},\"warnings\":{},\"infos\":{}}},",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info),
        ));
        out.push_str("\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            out.push_str(&format!("\"code\":\"{}\",", d.code.as_str()));
            out.push_str(&format!("\"severity\":\"{}\",", d.severity.as_str()));
            match &d.entity {
                Some(e) => out.push_str(&format!("\"entity\":\"{}\",", json_escape(e))),
                None => out.push_str("\"entity\":null,"),
            }
            out.push_str(&format!("\"message\":\"{}\",", json_escape(&d.message)));
            match &d.suggestion {
                Some(s) => out.push_str(&format!("\"suggestion\":\"{}\"", json_escape(s))),
                None => out.push_str("\"suggestion\":null"),
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Renders several reports as one JSON array (the `--all-examples`
/// output shape).
#[must_use]
pub fn render_json_reports(reports: &[Report]) -> String {
    let mut out = String::from("[");
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&r.render_json());
    }
    out.push(']');
    out
}

/// Escapes a string for embedding inside a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_kebab() {
        let mut seen = BTreeSet::new();
        for code in DiagCode::ALL {
            assert!(seen.insert(code.as_str()), "duplicate code {code}");
            assert!(
                code.as_str()
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'),
                "non-kebab code {code}"
            );
        }
        assert_eq!(seen.len(), DiagCode::ALL.len());
    }

    #[test]
    fn severity_orders_info_warning_error() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn report_counts_and_sorting() {
        let mut r = Report::new("t");
        r.push(Diagnostic::new(DiagCode::EnergyKneeOutsideRange, "i"));
        r.push(Diagnostic::new(DiagCode::NoTasks, "e"));
        r.push(Diagnostic::new(DiagCode::Overload, "w"));
        r.sort();
        assert_eq!(r.diagnostics[0].severity, Severity::Error);
        assert_eq!(r.diagnostics[2].severity, Severity::Info);
        assert!(r.has_errors());
        assert_eq!(r.count(Severity::Warning), 1);
    }

    #[test]
    fn fault_codes_render_in_text_and_json() {
        let mut r = Report::new("faulty");
        r.push(Diagnostic::new(
            DiagCode::FaultNegativeDeviation,
            "demand-deviation factor -1 must be finite and non-negative",
        ));
        r.push(Diagnostic::for_entity(
            DiagCode::FaultSwitchLatencyExceedsWindow,
            "plan",
            "latency spans the shortest window",
        ));
        r.push(
            Diagnostic::new(DiagCode::FaultEmptyDegradedSet, "no surviving frequency")
                .with_suggestion("list at least one frequency"),
        );
        r.sort();
        let text = r.render_text();
        let json = r.render_json();
        for code in [
            "fault-negative-deviation",
            "fault-switch-latency-exceeds-window",
            "fault-empty-degraded-set",
        ] {
            assert!(text.contains(code), "text renderer must show {code}");
            assert!(json.contains(code), "json renderer must show {code}");
        }
        assert!(r.has_errors(), "fault codes default to error severity");
    }

    #[test]
    fn lint_codes_render_in_text_and_json() {
        let mut r = Report::new("lints");
        r.push(Diagnostic::for_entity(
            DiagCode::LintWallClock,
            "Instant::now",
            "12:9: wall-clock read",
        ));
        r.push(Diagnostic::for_entity(
            DiagCode::LintFloatSortPartialCmp,
            "partial_cmp",
            "40:21: NaN ordering unspecified",
        ));
        r.push(
            Diagnostic::new(DiagCode::LintUnusedSuppression, "1:1: suppressed nothing")
                .with_suggestion("delete the directive"),
        );
        r.sort();
        let text = r.render_text();
        let json = r.render_json();
        for code in [
            "lint-wall-clock",
            "lint-float-sort-partial-cmp",
            "lint-unused-suppression",
        ] {
            assert!(text.contains(code), "text renderer must show {code}");
            assert!(json.contains(code), "json renderer must show {code}");
        }
        assert!(r.has_errors(), "lint codes default to error severity");
    }

    #[test]
    fn json_escapes_special_characters() {
        let mut r = Report::new("a\"b\\c\nd");
        r.push(Diagnostic::for_entity(
            DiagCode::NoTasks,
            "task\t1",
            "msg \"quoted\"",
        ));
        let json = r.render_json();
        assert!(json.contains("a\\\"b\\\\c\\nd"));
        assert!(json.contains("task\\t1"));
        assert!(json.contains("msg \\\"quoted\\\""));
    }
}
