//! The **energy interval analysis**: per-frequency UER brackets,
//! dominated-frequency detection, and statically-unreachable DVS
//! states.
//!
//! For a task with allocation `c`, TUF `U(·)`, and critical time `D`,
//! the **utility and energy ratio** of one job at frequency `f` is
//! `UER = U(sojourn)/(c·E(f))`. Without enumerating schedules, two
//! bounds bracket what any schedule can achieve at `f`:
//!
//! * **upper** — the job runs alone and immediately, so its sojourn is
//!   its own execution time `⌈c/f⌉` µs; the best per-task value is the
//!   scenario's `uer_max` at `f`;
//! * **lower** — when the frequency's demand-bound verdict is
//!   `Feasible`, every job completes by its critical time `D`, so each
//!   task's UER is at least `U(D)/(c·E(f))`; the worst per-task value is
//!   `uer_min`. At non-feasible frequencies nothing is guaranteed and
//!   `uer_min` is zero.
//!
//! A frequency is **dominated** when another table entry is no worse on
//! feasibility *and* energy per cycle (so no schedule improves by
//! selecting it), and **unreachable** when it lies below every task's
//! UER-optimal frequency — EUA\*'s offline clamp
//! `f = max(f, uer_optimal)` can never pick it.

use crate::demand::{FrequencyVerdict, Verdict};
use crate::ir::{quantized_exec_us, AnalysisIr};
use eua_platform::TimeDelta;

/// Absolute slop for energy comparisons.
const EPS: f64 = 1e-9;

/// The energy-side profile of one DVS state.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyProfile {
    /// The frequency in MHz.
    pub f_mhz: u64,
    /// Martin-model energy per cycle `E(f)`.
    pub energy_per_cycle: f64,
    /// Guaranteed-achievable UER floor (zero unless `Feasible`).
    pub uer_min: f64,
    /// Best-case single-job UER ceiling.
    pub uer_max: f64,
    /// The dominating frequency in MHz, if any.
    pub dominated_by: Option<u64>,
    /// Whether EUA\*'s offline UER clamp can ever select this state.
    pub reachable: bool,
}

/// Computes the energy profile of every table frequency, ascending.
///
/// `verdicts` must come from [`crate::demand::frequency_verdicts`] on
/// the same IR (same frequencies, same order); mismatched inputs yield
/// meaningless dominance ranks.
#[must_use]
pub fn energy_profiles(ir: &AnalysisIr, verdicts: &[FrequencyVerdict]) -> Vec<EnergyProfile> {
    let verdict_of = |mhz: u64| {
        verdicts
            .iter()
            .find(|v| v.f_mhz == mhz)
            .map_or(Verdict::Indeterminate, |v| v.verdict)
    };
    let all_step = ir.tasks.iter().all(|t| t.tuf.is_step());
    let min_uer_optimal = ir.tasks.iter().map(|t| t.uer_optimal_mhz).min();

    ir.freqs
        .iter()
        .map(|f| {
            let verdict = verdict_of(f.mhz);
            let (uer_min, uer_max) = uer_bracket(ir, f.mhz, f.energy_per_cycle, verdict);

            // A faster entry that is no worse on feasibility and no
            // dearer per cycle dominates; with step-only TUFs a slower
            // *feasible* entry that is strictly cheaper also dominates
            // (finishing earlier earns a step TUF nothing).
            let dominated_by = ir
                .freqs
                .iter()
                .filter(|g| g.mhz != f.mhz)
                .filter(|g| {
                    let faster_no_worse = g.mhz > f.mhz
                        && g.energy_per_cycle <= f.energy_per_cycle + EPS
                        && verdict_of(g.mhz) >= verdict;
                    let slower_step_win = all_step
                        && g.mhz < f.mhz
                        && verdict_of(g.mhz) == Verdict::Feasible
                        && g.energy_per_cycle < f.energy_per_cycle - EPS;
                    faster_no_worse || slower_step_win
                })
                .map(|g| g.mhz)
                .min();

            let reachable = min_uer_optimal.is_none_or(|min| f.mhz >= min);

            EnergyProfile {
                f_mhz: f.mhz,
                energy_per_cycle: f.energy_per_cycle,
                uer_min,
                uer_max,
                dominated_by,
                reachable,
            }
        })
        .collect()
}

/// The `[uer_min, uer_max]` bracket at one frequency.
fn uer_bracket(ir: &AnalysisIr, mhz: u64, energy_per_cycle: f64, verdict: Verdict) -> (f64, f64) {
    let mut uer_max = 0.0f64;
    let mut uer_min = f64::INFINITY;
    for t in &ir.tasks {
        #[allow(clippy::cast_precision_loss)]
        let denom = (t.allocation_cycles.max(1)) as f64 * energy_per_cycle;
        let sojourn = TimeDelta::from_micros(quantized_exec_us(t.allocation_cycles, mhz));
        uer_max = uer_max.max(t.tuf.utility(sojourn) / denom);
        let at_critical = t.tuf.utility(TimeDelta::from_micros(t.critical_us)) / denom;
        uer_min = uer_min.min(at_critical);
    }
    if verdict != Verdict::Feasible || !uer_min.is_finite() {
        uer_min = 0.0;
    }
    (uer_min, uer_max.max(0.0))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::demand::frequency_verdicts;
    use crate::ir::lower;
    use crate::scenario::{DemandSpec, EnergySpec, ScenarioSpec, TaskSpec, TufSpec};

    fn scenario(energy: EnergySpec, freqs: Vec<u64>) -> ScenarioSpec {
        ScenarioSpec {
            name: "energy-test".into(),
            frequencies_mhz: freqs,
            energy,
            tasks: vec![TaskSpec {
                name: "t".into(),
                tuf: TufSpec::Step {
                    umax: 10.0,
                    step_at_us: 10_000,
                    termination_us: 10_000,
                },
                max_arrivals: 1.0,
                window_us: 10_000,
                demand: DemandSpec::Deterministic { cycles: 300_000.0 },
                nu: 1.0,
                rho: 0.5,
                declared_allocation: None,
                arrival: None,
            }],
            faults: None,
        }
    }

    fn profiles(energy: EnergySpec, freqs: Vec<u64>) -> Vec<EnergyProfile> {
        let ir = lower(&scenario(energy, freqs)).unwrap();
        let v = frequency_verdicts(&ir);
        energy_profiles(&ir, &v)
    }

    #[test]
    fn feasible_frequencies_have_positive_uer_floor() {
        // Needs 30 MHz: 25 infeasible (floor 0), 50/100 feasible.
        let p = profiles(EnergySpec::e1(), vec![25, 50, 100]);
        assert_eq!(p[0].uer_min, 0.0);
        assert!(p[1].uer_min > 0.0);
        assert!(p[2].uer_min > 0.0);
        for profile in &p {
            assert!(profile.uer_max >= profile.uer_min);
        }
    }

    #[test]
    fn under_e1_with_step_tuf_slower_feasible_dominates_faster() {
        // E1: energy rises with f; a step TUF earns nothing by finishing
        // early. 50 MHz (feasible, cheap) dominates 100 MHz.
        let p = profiles(EnergySpec::e1(), vec![25, 50, 100]);
        let at_100 = p.iter().find(|x| x.f_mhz == 100).unwrap();
        assert_eq!(at_100.dominated_by, Some(50));
        // 50 MHz itself is undominated: 25 MHz is infeasible, 100 MHz
        // costs more energy per cycle.
        let at_50 = p.iter().find(|x| x.f_mhz == 50).unwrap();
        assert_eq!(at_50.dominated_by, None);
    }

    #[test]
    fn under_e3_the_cheap_interior_frequency_dominates_slow_states() {
        // E3's knee is ≈ 63 MHz at f_m = 100: 36 MHz is both slower and
        // dearer per cycle than 64 MHz, hence dominated.
        let p = profiles(EnergySpec::e3(), vec![36, 64, 100]);
        let at_36 = p.iter().find(|x| x.f_mhz == 36).unwrap();
        assert_eq!(at_36.dominated_by, Some(64));
    }

    #[test]
    fn unreachable_states_sit_below_every_uer_optimum() {
        // Under E3 the UER optimum never drops below the knee (~64 MHz
        // here), so 36 MHz is statically unreachable for EUA*'s clamp.
        let p = profiles(EnergySpec::e3(), vec![36, 64, 100]);
        let at_36 = p.iter().find(|x| x.f_mhz == 36).unwrap();
        assert!(!at_36.reachable);
        let at_64 = p.iter().find(|x| x.f_mhz == 64).unwrap();
        assert!(at_64.reachable);
    }

    #[test]
    fn profiles_align_with_the_frequency_table() {
        let p = profiles(EnergySpec::e2(), vec![36, 55, 64, 73, 82, 91, 100]);
        let mhz: Vec<u64> = p.iter().map(|x| x.f_mhz).collect();
        assert_eq!(mhz, vec![36, 55, 64, 73, 82, 91, 100]);
        for profile in &p {
            assert!(profile.energy_per_cycle > 0.0);
        }
    }
}
