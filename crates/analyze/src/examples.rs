//! A registry mirroring every workload the repository ships — the five
//! `examples/*.rs` programs plus the §5 generators over the Table 1
//! application mix — lowered into raw [`ScenarioSpec`]s so
//! `eua-analyze check --all-examples` can pre-flight all of them.
//!
//! The constructions here deliberately reuse the same presets and
//! constructors the examples call, then lower the validated types via
//! [`ScenarioSpec::from_task_set`]; the registry therefore stays honest
//! if an example's parameters change (the mirror breaks loudly in CI's
//! `--all-examples` gate rather than drifting).

use crate::scenario::{EnergySpec, ScenarioSpec};
use eua_platform::{FrequencyTable, TimeDelta};
use eua_sim::{Task, TaskSet};
use eua_tuf::{presets, Tuf};
use eua_uam::demand::DemandModel;
use eua_uam::{Assurance, UamSpec};
use eua_workload::{fig2_workload, fig3_workload, theorem_workload};

/// Builds every shipped scenario.
///
/// # Errors
///
/// Returns a message naming the scenario that failed to build; this only
/// happens if the registry drifts out of sync with the library (a bug
/// the `--all-examples` CI gate exists to catch).
pub fn shipped_scenarios() -> Result<Vec<ScenarioSpec>, String> {
    let table = FrequencyTable::powernow_k6();
    let f_max = table.max();
    let ms = TimeDelta::from_millis;
    let mut scenarios = Vec::new();

    let lower = |name: &str, tasks: TaskSet, energy: EnergySpec| {
        ScenarioSpec::from_task_set(name, &tasks, &table, energy)
    };
    let fail = |name: &str, e: &dyn std::fmt::Display| format!("building `{name}`: {e}");

    // examples/quickstart.rs: one hard-deadline control loop under E2.
    {
        let name = "quickstart";
        let window = ms(10);
        let task = (|| -> Result<Task, Box<dyn std::error::Error>> {
            Ok(Task::new(
                "control-loop",
                Tuf::step(10.0, window)?,
                UamSpec::new(2, window)?,
                DemandModel::normal(150_000.0, 150_000.0)?,
                Assurance::new(1.0, 0.96)?,
            )?)
        })()
        .map_err(|e| fail(name, &e))?;
        let tasks = TaskSet::new(vec![task]).map_err(|e| fail(name, &e))?;
        scenarios.push(lower(name, tasks, EnergySpec::e2()));
    }

    // examples/awacs_tracking.rs: the paper's AWACS mix under E1
    // (deliberately overloaded).
    {
        let name = "awacs-tracking";
        let tasks = (|| -> Result<TaskSet, Box<dyn std::error::Error>> {
            let track = Task::new(
                "track-association",
                presets::track_association(100.0, ms(40))?,
                UamSpec::new(4, ms(50))?,
                DemandModel::normal(1_200_000.0, 1_200_000.0)?,
                Assurance::new(1.0, 0.9)?,
            )?;
            let correlation = Task::new(
                "plot-correlation",
                presets::plot_correlation(40.0, ms(50))?,
                UamSpec::new(2, ms(100))?,
                DemandModel::normal(2_000_000.0, 2_000_000.0)?,
                Assurance::new(0.5, 0.9)?,
            )?;
            let display = Task::new(
                "display-update",
                presets::step_deadline(5.0, ms(100))?,
                UamSpec::periodic(ms(100))?,
                DemandModel::normal(1_500_000.0, 1_500_000.0)?,
                Assurance::new(1.0, 0.9)?,
            )?;
            Ok(TaskSet::new(vec![track, correlation, display])?)
        })()
        .map_err(|e| fail(name, &e))?;
        scenarios.push(lower(name, tasks, EnergySpec::e1()));
    }

    // examples/mobile_multimedia.rs: analyzed under all three Table 2
    // settings, as the example sweeps them.
    {
        let tasks = (|| -> Result<TaskSet, Box<dyn std::error::Error>> {
            let video_p = ms(33);
            let video = Task::new(
                "video-decode",
                Tuf::linear(30.0, video_p)?,
                UamSpec::periodic(video_p)?,
                DemandModel::normal(900_000.0, 900_000.0)?,
                Assurance::new(0.5, 0.95)?,
            )?;
            let audio_p = ms(10);
            let audio = Task::new(
                "audio-decode",
                Tuf::step(50.0, audio_p)?,
                UamSpec::periodic(audio_p)?,
                DemandModel::normal(80_000.0, 80_000.0)?,
                Assurance::new(1.0, 0.99)?,
            )?;
            let sync = Task::new(
                "background-sync",
                Tuf::linear(2.0, ms(500))?,
                UamSpec::new(3, ms(500))?,
                DemandModel::normal(2_000_000.0, 2_000_000.0)?,
                Assurance::new(0.1, 0.9)?,
            )?;
            Ok(TaskSet::new(vec![video, audio, sync])?)
        })()
        .map_err(|e| fail("mobile-multimedia", &e))?;
        for energy in [EnergySpec::e1(), EnergySpec::e2(), EnergySpec::e3()] {
            let name = format!("mobile-multimedia-{}", energy.name);
            scenarios.push(lower(&name, tasks.clone(), energy));
        }
    }

    // examples/overload_survival.rs: the Fig. 2 workload swept across
    // loads; analyze an under-load, a near-saturation, and an overload
    // point from the sweep.
    for load in [0.3, 0.9, 1.8] {
        let name = format!("overload-survival-{load}");
        let workload = fig2_workload(load, 42, f_max).map_err(|e| fail(&name, &e))?;
        scenarios.push(lower(&name, workload.tasks, EnergySpec::e1()));
    }

    // examples/energy_budget.rs: the Fig. 2 workload at load 0.7.
    {
        let name = "energy-budget";
        let workload = fig2_workload(0.7, 42, f_max).map_err(|e| fail(name, &e))?;
        scenarios.push(lower(name, workload.tasks, EnergySpec::e1()));
    }

    // crates/workload/src/apps.rs coverage: the Fig. 3 linear-TUF sweep
    // point and the §4 theorem workload over the Table 1 mix.
    {
        let name = "fig3-linear-a2";
        let workload = fig3_workload(0.5, 2, 42, f_max).map_err(|e| fail(name, &e))?;
        scenarios.push(lower(name, workload.tasks, EnergySpec::e2()));
    }
    {
        let name = "theorem-underload";
        let workload = theorem_workload(0.85, 42, f_max).map_err(|e| fail(name, &e))?;
        scenarios.push(lower(name, workload.tasks, EnergySpec::e1()));
    }

    Ok(scenarios)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::analyze;

    #[test]
    fn registry_builds() {
        let scenarios = shipped_scenarios().expect("registry builds");
        assert!(scenarios.len() >= 9, "got {}", scenarios.len());
        let names: Vec<&str> = scenarios.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"quickstart"));
        assert!(names.contains(&"awacs-tracking"));
        assert!(names.contains(&"theorem-underload"));
    }

    #[test]
    fn every_shipped_scenario_is_error_free() {
        for scenario in shipped_scenarios().expect("registry builds") {
            let report = analyze(&scenario);
            assert!(
                !report.has_errors(),
                "shipped scenario `{}` has errors:\n{}",
                scenario.name,
                report.render_text()
            );
        }
    }

    #[test]
    fn overloaded_example_is_flagged_but_not_an_error() {
        let scenarios = shipped_scenarios().expect("registry builds");
        let awacs = scenarios
            .iter()
            .find(|s| s.name == "awacs-tracking")
            .expect("awacs");
        let report = analyze(awacs);
        assert!(
            report.codes().contains("overload") || report.codes().contains("theorem1-speed"),
            "{}",
            report.render_text()
        );
        assert!(!report.has_errors());
    }

    #[test]
    fn e3_mobile_scenario_reports_dominated_36mhz() {
        let scenarios = shipped_scenarios().expect("registry builds");
        let e3 = scenarios
            .iter()
            .find(|s| s.name == "mobile-multimedia-E3")
            .expect("E3");
        assert!(analyze(e3).codes().contains("dominated-frequency"));
    }
}
