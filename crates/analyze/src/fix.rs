//! Machine-applicable fixes for a subset of diagnostic codes.
//!
//! [`apply_fixes`] detects each fixable condition directly on the raw
//! [`ScenarioSpec`] (the same predicates the lint passes use) and
//! rewrites it in place, returning what it changed. The rewrite is
//! **idempotent**: re-running on the fixed spec applies nothing, and
//! re-analyzing it no longer raises the fixed codes.
//!
//! The fixable codes (tagged `machineApplicableFix` in SARIF output):
//!
//! | code | rewrite |
//! |------|---------|
//! | `freq-table-invalid` | drop zero entries, sort ascending, dedup |
//! | `assurance-nu-range` | clamp ν into `(0, 1]` (non-finite → 1.0) |
//! | `assurance-rho-range` | clamp ρ into `[0, 1)` (≥ 1 or non-finite → 0.96) |
//! | `tuf-unordered-breakpoints` | sort piecewise breakpoints by time, dedup |
//! | `tuf-increasing` | clamp each utility to the running minimum |
//! | `uam-arrival-bound` | round `a` to the nearest positive integer |
//! | `sem-chebyshev-allocation-mismatch` | rewrite `allocation` to `⌈c⌉` (or drop it) |
//!
//! Structural problems (no tasks, empty tables, undefined Chebyshev
//! bounds) have no mechanical rewrite and stay diagnostics-only.

use crate::diagnostic::DiagCode;
use crate::scenario::{ScenarioSpec, TufSpec};

/// Relative tolerance for the declared-allocation cross-check (shared
/// with the Chebyshev pass).
pub const ALLOCATION_TOL: f64 = 1e-6;

/// One applied rewrite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppliedFix {
    /// The diagnostic code the rewrite discharges.
    pub code: DiagCode,
    /// The entity it touched (`task \`x\``, `frequency table`, …).
    pub entity: String,
    /// A human-readable description of the rewrite.
    pub action: String,
}

/// Whether [`apply_fixes`] has a rewrite for this code.
#[must_use]
pub fn is_fixable(code: DiagCode) -> bool {
    matches!(
        code,
        DiagCode::FreqTableInvalid
            | DiagCode::AssuranceNuRange
            | DiagCode::AssuranceRhoRange
            | DiagCode::TufUnorderedBreakpoints
            | DiagCode::TufIncreasing
            | DiagCode::UamArrivalBound
            | DiagCode::SemChebyshevAllocationMismatch
    )
}

/// Applies every available rewrite to `spec`, returning what changed
/// (empty when the spec was already clean of fixable conditions).
pub fn apply_fixes(spec: &mut ScenarioSpec) -> Vec<AppliedFix> {
    let mut applied = Vec::new();

    fix_frequency_table(spec, &mut applied);
    for i in 0..spec.tasks.len() {
        fix_assurances(spec, i, &mut applied);
        fix_piecewise_tuf(spec, i, &mut applied);
        fix_arrival_bound(spec, i, &mut applied);
        fix_declared_allocation(spec, i, &mut applied);
    }
    applied
}

fn fix_frequency_table(spec: &mut ScenarioSpec, applied: &mut Vec<AppliedFix>) {
    let f = &spec.frequencies_mhz;
    let sorted_strictly = f.windows(2).all(|w| w[0] < w[1]);
    let has_zero = f.contains(&0);
    if f.is_empty() || (sorted_strictly && !has_zero) {
        return;
    }
    let before = f.len();
    spec.frequencies_mhz.retain(|&m| m > 0);
    spec.frequencies_mhz.sort_unstable();
    spec.frequencies_mhz.dedup();
    applied.push(AppliedFix {
        code: DiagCode::FreqTableInvalid,
        entity: "frequency table".into(),
        action: format!(
            "dropped zero entries, sorted ascending, deduplicated ({before} → {} entries)",
            spec.frequencies_mhz.len()
        ),
    });
}

fn fix_assurances(spec: &mut ScenarioSpec, i: usize, applied: &mut Vec<AppliedFix>) {
    let task = &mut spec.tasks[i];
    let entity = format!("task `{}`", task.name);

    if !task.nu.is_finite() || task.nu <= 0.0 || task.nu > 1.0 {
        let old = task.nu;
        // Out-of-range ν has no meaningful nearest value below 1 to
        // clamp to (ν ≤ 0 demands nothing), so normalize to full
        // assurance.
        task.nu = 1.0;
        applied.push(AppliedFix {
            code: DiagCode::AssuranceNuRange,
            entity: entity.clone(),
            action: format!("clamped nu {old} → {}", task.nu),
        });
    }
    if !task.rho.is_finite() || !(0.0..1.0).contains(&task.rho) {
        let old = task.rho;
        task.rho = if task.rho.is_finite() && task.rho < 0.0 {
            0.0
        } else {
            0.96
        };
        applied.push(AppliedFix {
            code: DiagCode::AssuranceRhoRange,
            entity,
            action: format!("clamped rho {old} → {}", task.rho),
        });
    }
}

fn fix_piecewise_tuf(spec: &mut ScenarioSpec, i: usize, applied: &mut Vec<AppliedFix>) {
    let entity = format!("task `{}`", spec.tasks[i].name);
    let TufSpec::Piecewise { points } = &mut spec.tasks[i].tuf else {
        return;
    };
    if points.len() < 2 {
        return;
    }

    let ordered = points.windows(2).all(|w| w[0].0 < w[1].0);
    if !ordered {
        points.sort_by_key(|&(t, _)| t);
        points.dedup_by_key(|&mut (t, _)| t);
        applied.push(AppliedFix {
            code: DiagCode::TufUnorderedBreakpoints,
            entity: entity.clone(),
            action: "sorted piecewise breakpoints by time and removed duplicates".into(),
        });
    }

    let non_increasing = points
        .windows(2)
        .all(|w| !(w[0].1.is_finite() && w[1].1.is_finite()) || w[1].1 <= w[0].1);
    if !non_increasing {
        let mut floor = f64::INFINITY;
        for (_, u) in points.iter_mut() {
            if u.is_finite() {
                *u = u.min(floor);
                floor = *u;
            }
        }
        applied.push(AppliedFix {
            code: DiagCode::TufIncreasing,
            entity,
            action: "clamped increasing utilities to the running minimum".into(),
        });
    }
}

fn fix_arrival_bound(spec: &mut ScenarioSpec, i: usize, applied: &mut Vec<AppliedFix>) {
    let task = &mut spec.tasks[i];
    let a = task.max_arrivals;
    if a.is_finite() && a >= 1.0 && a.fract() == 0.0 && a <= f64::from(u32::MAX) {
        return;
    }
    let fixed = if a.is_finite() {
        a.round().clamp(1.0, f64::from(u32::MAX))
    } else {
        1.0
    };
    task.max_arrivals = fixed;
    applied.push(AppliedFix {
        code: DiagCode::UamArrivalBound,
        entity: format!("task `{}`", task.name),
        action: format!("rounded arrival bound {a} → {fixed}"),
    });
}

fn fix_declared_allocation(spec: &mut ScenarioSpec, i: usize, applied: &mut Vec<AppliedFix>) {
    let task = &mut spec.tasks[i];
    let Some(declared) = task.declared_allocation else {
        return;
    };
    let entity = format!("task `{}`", task.name);
    match task.chebyshev_allocation() {
        Some(c) => {
            let expected = c.ceil();
            if !declared.is_finite() || (declared - expected).abs() > 1.0 + ALLOCATION_TOL * c {
                task.declared_allocation = Some(expected);
                applied.push(AppliedFix {
                    code: DiagCode::SemChebyshevAllocationMismatch,
                    entity,
                    action: format!("rewrote allocation {declared} → {expected}"),
                });
            }
        }
        None => {
            // The Chebyshev bound is undefined: a declared allocation
            // can never be cross-checked, so remove it.
            task.declared_allocation = None;
            applied.push(AppliedFix {
                code: DiagCode::SemChebyshevAllocationMismatch,
                entity,
                action: format!("removed uncheckable allocation {declared}"),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::passes::analyze;
    use crate::scenario::{DemandSpec, EnergySpec, TaskSpec};

    fn broken_spec() -> ScenarioSpec {
        ScenarioSpec {
            name: "fixture".into(),
            frequencies_mhz: vec![100, 0, 50, 50, 25],
            energy: EnergySpec::e1(),
            tasks: vec![TaskSpec {
                name: "t".into(),
                tuf: TufSpec::Piecewise {
                    points: vec![(20_000, 4.0), (0, 10.0), (10_000, 10.0)],
                },
                max_arrivals: 2.5,
                window_us: 20_000,
                demand: DemandSpec::Deterministic { cycles: 100_000.0 },
                nu: 1.5,
                rho: 1.2,
                declared_allocation: Some(1.0),
                arrival: None,
            }],
            faults: None,
        }
    }

    #[test]
    fn fixes_apply_for_all_advertised_codes() {
        let mut spec = broken_spec();
        let applied = apply_fixes(&mut spec);
        let codes: Vec<DiagCode> = applied.iter().map(|f| f.code).collect();
        for code in [
            DiagCode::FreqTableInvalid,
            DiagCode::AssuranceNuRange,
            DiagCode::AssuranceRhoRange,
            DiagCode::TufUnorderedBreakpoints,
            DiagCode::UamArrivalBound,
            DiagCode::SemChebyshevAllocationMismatch,
        ] {
            assert!(codes.contains(&code), "missing {code:?} in {codes:?}");
            assert!(is_fixable(code));
        }
        assert_eq!(spec.frequencies_mhz, vec![25, 50, 100]);
        assert_eq!(spec.tasks[0].nu, 1.0);
        assert_eq!(spec.tasks[0].rho, 0.96);
        assert_eq!(spec.tasks[0].max_arrivals, 3.0);
        // Deterministic 100k demand with rho 0.96: c = 100000 exactly.
        assert_eq!(spec.tasks[0].declared_allocation, Some(100_000.0));
    }

    #[test]
    fn fixed_specs_reanalyze_clean_of_fixed_codes() {
        let mut spec = broken_spec();
        apply_fixes(&mut spec);
        let report = analyze(&spec);
        for code in [
            "freq-table-invalid",
            "assurance-nu-range",
            "assurance-rho-range",
            "tuf-unordered-breakpoints",
            "tuf-increasing",
            "uam-arrival-bound",
            "sem-chebyshev-allocation-mismatch",
        ] {
            assert!(
                !report.codes().contains(code),
                "{code} still present after --fix: {}",
                report.render_text()
            );
        }
        assert!(!report.has_errors(), "{}", report.render_text());
    }

    #[test]
    fn apply_fixes_is_idempotent() {
        let mut spec = broken_spec();
        apply_fixes(&mut spec);
        let again = apply_fixes(&mut spec);
        assert!(again.is_empty(), "second pass must be a no-op: {again:?}");
    }

    #[test]
    fn increasing_piecewise_utilities_are_clamped() {
        let mut spec = broken_spec();
        spec.tasks[0].tuf = TufSpec::Piecewise {
            points: vec![(0, 5.0), (10_000, 8.0), (20_000, 3.0)],
        };
        let applied = apply_fixes(&mut spec);
        assert!(applied.iter().any(|f| f.code == DiagCode::TufIncreasing));
        let TufSpec::Piecewise { points } = &spec.tasks[0].tuf else {
            panic!("still piecewise");
        };
        assert_eq!(points[1].1, 5.0, "clamped to the running minimum");
    }

    #[test]
    fn clean_specs_are_untouched() {
        let mut spec = broken_spec();
        apply_fixes(&mut spec);
        let snapshot = spec.clone();
        assert!(apply_fixes(&mut spec).is_empty());
        assert_eq!(spec, snapshot);
    }

    #[test]
    fn uncheckable_declared_allocations_are_removed() {
        let mut spec = broken_spec();
        apply_fixes(&mut spec);
        // A Pareto tail with alpha ≤ 2 has no finite Chebyshev bound.
        spec.tasks[0].demand = DemandSpec::Pareto {
            scale: 1000.0,
            alpha: 1.5,
        };
        spec.tasks[0].declared_allocation = Some(123.0);
        let applied = apply_fixes(&mut spec);
        assert!(applied
            .iter()
            .any(|f| f.code == DiagCode::SemChebyshevAllocationMismatch));
        assert_eq!(spec.tasks[0].declared_allocation, None);
    }
}
