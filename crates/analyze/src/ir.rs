//! The typed **analysis IR**: a fully-resolved scenario the semantic
//! passes can compute on without re-validating anything.
//!
//! The raw [`ScenarioSpec`] deliberately holds whatever the user wrote;
//! the lint passes diagnose it field by field. The semantic analyses
//! (demand-bound verdicts, energy intervals) instead need everything
//! *resolved at once*: Chebyshev allocations ceiled to whole cycles,
//! critical times solved from `U(D) ≥ ν·U_max`, the frequency table
//! sorted with per-cycle energy attached, and each task's UER-optimal
//! frequency from EUA\*'s `offlineComputing`. [`lower`] performs that
//! resolution in one fallible step; any failure message simply names the
//! first unresolvable piece (the lint passes have already reported the
//! underlying problem as diagnostics).

use eua_platform::{
    optimal_uer_frequency, Cycles, EnergyModel, EnergySetting, Frequency, FrequencyTable,
};
use eua_tuf::Tuf;

use crate::scenario::ScenarioSpec;

/// One task, fully resolved for semantic analysis.
#[derive(Debug, Clone)]
pub struct TaskIr {
    /// The task's name (diagnostics anchor on it).
    pub name: String,
    /// The validated TUF, for utility evaluation.
    pub tuf: Tuf,
    /// Maximum utility `U_max = U(0)`.
    pub umax: f64,
    /// Required utility fraction ν.
    pub nu: f64,
    /// Required timeliness probability ρ.
    pub rho: f64,
    /// Demand mean `E(Y)` in cycles.
    pub mean_cycles: f64,
    /// Demand variance `Var(Y)` in cycles².
    pub variance_cycles: f64,
    /// The Chebyshev allocation `⌈E(Y) + sqrt(ρ/(1−ρ)·Var(Y))⌉` in
    /// whole cycles — the per-job budget the scheduler provisions.
    pub allocation_cycles: u64,
    /// The allocation the `.scn` file declared, if any (cross-checked
    /// by the Chebyshev pass, not used in the math).
    pub declared_allocation: Option<f64>,
    /// Critical time `D` in µs, solved from `U(D) ≥ ν·U_max`.
    pub critical_us: u64,
    /// UAM window `P` in µs.
    pub window_us: u64,
    /// UAM arrival bound `a`.
    pub arrivals: u32,
    /// The task's UER-optimal frequency in MHz (EUA\*'s offline clamp
    /// never selects below it).
    pub uer_optimal_mhz: u64,
}

impl TaskIr {
    /// Worst-case per-window demand `a·c` in cycles.
    #[must_use]
    pub fn window_demand_cycles(&self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        let demand = u64::from(self.arrivals).saturating_mul(self.allocation_cycles) as f64;
        demand
    }
}

/// One DVS state with its per-cycle energy under the scenario's model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FreqIr {
    /// The frequency in MHz (= cycles/µs).
    pub mhz: u64,
    /// Martin-model energy per cycle `E(f)` at this frequency.
    pub energy_per_cycle: f64,
}

/// A scenario resolved for semantic analysis.
#[derive(Debug, Clone)]
pub struct AnalysisIr {
    /// The scenario's name.
    pub name: String,
    /// Resolved tasks, in declaration order.
    pub tasks: Vec<TaskIr>,
    /// The frequency table ascending, positive, deduplicated, with
    /// per-cycle energy attached.
    pub freqs: Vec<FreqIr>,
    /// The table's top frequency in MHz.
    pub f_max_mhz: u64,
}

impl AnalysisIr {
    /// The bound energy model (re-derivable, kept for the energy pass).
    #[must_use]
    pub fn frequency(&self, mhz: u64) -> Frequency {
        Frequency::from_mhz(mhz)
    }
}

/// Resolves a raw spec into an [`AnalysisIr`].
///
/// # Errors
///
/// Returns a message naming the first unresolvable piece: an unusable
/// frequency table, invalid energy coefficients, or a task the simulator
/// types reject. Callers run the lint passes first, so these messages
/// never reach users as the *only* explanation.
pub fn lower(spec: &ScenarioSpec) -> Result<AnalysisIr, String> {
    let mut mhz: Vec<u64> = spec
        .frequencies_mhz
        .iter()
        .copied()
        .filter(|&f| f > 0)
        .collect();
    mhz.sort_unstable();
    mhz.dedup();
    if mhz.is_empty() {
        return Err("no positive frequency in the table".into());
    }
    let table = FrequencyTable::new(mhz.iter().copied()).map_err(|e| e.to_string())?;
    let f_max = table.max();

    let model = bound_energy_model(spec, f_max)?;
    let freqs = mhz
        .iter()
        .map(|&m| FreqIr {
            mhz: m,
            energy_per_cycle: model.energy_per_cycle(Frequency::from_mhz(m)),
        })
        .collect();

    let mut tasks = Vec::with_capacity(spec.tasks.len());
    for raw in &spec.tasks {
        let task = raw
            .to_task()
            .map_err(|e| format!("task `{}`: {e}", raw.name))?;
        let tuf = task.tuf().clone();
        let allocation = task.allocation();
        let uer_optimal = {
            let u = |t| tuf.utility(t);
            optimal_uer_frequency(&table, &model, allocation, u)
        };
        tasks.push(TaskIr {
            name: raw.name.clone(),
            umax: tuf.max_utility(),
            nu: raw.nu,
            rho: raw.rho,
            mean_cycles: raw.demand.mean(),
            variance_cycles: raw.demand.variance(),
            allocation_cycles: allocation.get(),
            declared_allocation: raw.declared_allocation,
            critical_us: task.critical_offset().as_micros(),
            window_us: raw.window_us,
            arrivals: task.uam().max_arrivals(),
            uer_optimal_mhz: uer_optimal.as_mhz(),
            tuf,
        });
    }

    Ok(AnalysisIr {
        name: spec.name.clone(),
        tasks,
        freqs,
        f_max_mhz: f_max.as_mhz(),
    })
}

/// Maps the raw energy spec onto a validated, bound [`EnergyModel`].
fn bound_energy_model(spec: &ScenarioSpec, f_max: Frequency) -> Result<EnergyModel, String> {
    use crate::scenario::EnergySpec;
    let e = &spec.energy;
    let setting = if *e == EnergySpec::e1() {
        EnergySetting::e1()
    } else if *e == EnergySpec::e2() {
        EnergySetting::e2()
    } else if *e == EnergySpec::e3() {
        EnergySetting::e3()
    } else {
        EnergySetting::custom("custom", e.s3, e.s2, e.s1_rel, e.s0_rel)
            .map_err(|err| format!("energy model `{}`: {err}", e.name))?
    };
    Ok(setting.model(f_max))
}

/// The per-job execution time of `cycles` at `mhz`, in whole µs
/// (matching the simulator's integer-µs quantization exactly).
#[must_use]
pub fn quantized_exec_us(cycles: u64, mhz: u64) -> u64 {
    Frequency::from_mhz(mhz)
        .execution_time(Cycles::new(cycles))
        .as_micros()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{DemandSpec, EnergySpec, TaskSpec, TufSpec};

    fn spec() -> ScenarioSpec {
        ScenarioSpec {
            name: "ir-demo".into(),
            frequencies_mhz: vec![100, 36, 64, 64],
            energy: EnergySpec::e3(),
            tasks: vec![TaskSpec {
                name: "t".into(),
                tuf: TufSpec::Step {
                    umax: 10.0,
                    step_at_us: 10_000,
                    termination_us: 10_000,
                },
                max_arrivals: 2.0,
                window_us: 10_000,
                demand: DemandSpec::Normal {
                    mean: 150_000.0,
                    variance: 150_000.0,
                },
                nu: 1.0,
                rho: 0.96,
                declared_allocation: None,
                arrival: None,
            }],
            faults: None,
        }
    }

    #[test]
    fn lowering_sorts_and_dedups_frequencies() {
        let ir = lower(&spec()).expect("lowers");
        let mhz: Vec<u64> = ir.freqs.iter().map(|f| f.mhz).collect();
        assert_eq!(mhz, vec![36, 64, 100]);
        assert_eq!(ir.f_max_mhz, 100);
    }

    #[test]
    fn lowering_resolves_chebyshev_allocation() {
        let ir = lower(&spec()).expect("lowers");
        let t = &ir.tasks[0];
        let c = 150_000.0 + (0.96f64 / 0.04 * 150_000.0).sqrt();
        #[allow(clippy::cast_precision_loss)]
        let got = t.allocation_cycles as f64;
        assert!((got - c.ceil()).abs() < 1.0, "{got} vs {c}");
        assert_eq!(t.critical_us, 10_000);
        assert_eq!(t.arrivals, 2);
        assert!((t.window_demand_cycles() - 2.0 * got).abs() < 1e-9);
    }

    #[test]
    fn lowering_attaches_energy_and_uer_optimum() {
        let ir = lower(&spec()).expect("lowers");
        // Under E3 at f_m = 100 MHz, E(f) is non-monotone; every entry
        // must carry a positive energy, and the UER optimum must be a
        // table entry.
        for f in &ir.freqs {
            assert!(f.energy_per_cycle > 0.0);
        }
        let t = &ir.tasks[0];
        assert!(ir.freqs.iter().any(|f| f.mhz == t.uer_optimal_mhz));
    }

    #[test]
    fn lowering_fails_without_positive_frequencies() {
        let mut s = spec();
        s.frequencies_mhz = vec![0];
        assert!(lower(&s).is_err());
        s.frequencies_mhz.clear();
        assert!(lower(&s).is_err());
    }

    #[test]
    fn lowering_names_the_failing_task() {
        let mut s = spec();
        s.tasks[0].nu = 2.0;
        let err = lower(&s).unwrap_err();
        assert!(err.contains("task `t`"), "{err}");
    }

    #[test]
    fn quantized_exec_matches_simulator_rounding() {
        // 101 cycles at 50 MHz: 2.02 µs → 3 µs (ceil), as the engine does.
        assert_eq!(quantized_exec_us(101, 50), 3);
        assert_eq!(quantized_exec_us(100, 50), 2);
    }
}
