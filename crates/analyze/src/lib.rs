//! `eua-analyze` — static workload/schedulability analyzer for the EUA\*
//! stack.
//!
//! The simulator crates validate their inputs at construction time and
//! refuse bad values one at a time. This crate does the opposite job: it
//! takes a *raw* scenario description — a platform frequency table, a
//! Martin energy model, and a set of UAM tasks with TUFs, demand
//! distributions, and assurances — and reports **everything** wrong (or
//! noteworthy) about it in one pass, as structured [`Diagnostic`]s with
//! stable kebab-case codes.
//!
//! | Module | What it holds |
//! |--------|---------------|
//! | [`diagnostic`] | [`DiagCode`], [`Severity`], [`Report`], text/JSON renderers |
//! | [`scenario`] | raw specs ([`ScenarioSpec`] …), the `.scn` parser/renderer, bridges to simulator types |
//! | [`passes`] | the checks: TUF shape, assurances, Chebyshev, UAM, frequencies, energy, feasibility, semantics |
//! | [`ir`] | the typed analysis IR ([`AnalysisIr`]) lowered from a raw spec |
//! | [`demand`] | UAM demand-bound verdicts per frequency ([`Verdict`], [`FrequencyVerdict`]) |
//! | [`energy`] | UER brackets, dominated frequencies, unreachable DVS states ([`EnergyProfile`]) |
//! | [`json`] | first-party byte-round-tripping JSON values for SARIF |
//! | [`sarif`] | SARIF 2.1.0 rendering and subset validation |
//! | [`fix`] | machine-applicable fixes for a subset of diagnostic codes |
//! | [`examples`] | registry mirroring every shipped workload for `--all-examples` |
//!
//! # Example
//!
//! ```
//! use eua_analyze::{analyze, ScenarioSpec};
//!
//! let text = "
//! scenario demo
//! frequencies 36 55 64 73 82 91 100
//! energy E2
//! task control
//!   tuf step 10 10000
//!   uam 2 10000
//!   demand normal 150000 150000
//!   assurance 1.0 0.96
//! end
//! ";
//! let spec = ScenarioSpec::parse(text).unwrap();
//! let report = analyze(&spec);
//! assert!(!report.has_errors());
//! // Theorem 1 holds for this set, which the report records as an info:
//! assert!(report.codes().contains("theorem1-speed"));
//! ```
//!
//! The `eua-analyze` binary wraps this as `eua-analyze check <file.scn>`
//! (or `--all-examples`), exiting nonzero when any Error-severity
//! diagnostic is present; see the repository README.

#![forbid(unsafe_code)]

pub mod demand;
pub mod diagnostic;
pub mod energy;
pub mod examples;
pub mod fix;
pub mod ir;
pub mod json;
pub mod passes;
pub mod sarif;
pub mod scenario;
pub mod spans;

pub use demand::{
    feasibility_floor, frequency_verdicts, verdict_at_fmax, FrequencyVerdict, Verdict,
    WitnessWindow,
};
pub use diagnostic::{render_json_reports, DiagCode, Diagnostic, Report, Severity};
pub use energy::{energy_profiles, EnergyProfile};
pub use examples::shipped_scenarios;
pub use fix::{apply_fixes, AppliedFix};
pub use ir::{lower, AnalysisIr, FreqIr, TaskIr};
pub use passes::{analyze, Pass, PassRegistry};
pub use sarif::{render_sarif, render_sarif_with_regions, render_sarif_with_spans, validate_sarif};
pub use scenario::{
    DemandSpec, EnergySpec, FaultSpec, ParseError, ScenarioSpec, TaskSpec, TufSpec,
};
pub use spans::{SourceMap, Span};
