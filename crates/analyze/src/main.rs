//! The `eua-analyze` command-line front end.
//!
//! ```text
//! eua-analyze check <scenario.scn>... [--format text|json]
//! eua-analyze check --all-examples   [--format text|json]
//! eua-analyze codes
//! ```
//!
//! Exit status: `0` when no Error-severity diagnostic was produced, `1`
//! when at least one was, `2` on usage, I/O, or parse errors.

use std::io::Write;
use std::process::ExitCode;

use eua_analyze::{
    analyze, render_json_reports, shipped_scenarios, DiagCode, Report, ScenarioSpec,
};

/// Writes to stdout, exiting quietly if the reader went away (e.g. the
/// output is piped into `head`); `println!` would panic instead.
fn emit(text: &str) {
    if std::io::stdout().write_all(text.as_bytes()).is_err() {
        std::process::exit(0);
    }
}

/// Output format for `check`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    /// Human-readable stanzas.
    Text,
    /// One JSON array of per-scenario report objects.
    Json,
}

fn usage() -> &'static str {
    "usage: eua-analyze check [--format text|json] (--all-examples | <scenario.scn>...)\n\
     \x20      eua-analyze codes\n\
     \n\
     check  analyze scenario files (or every shipped example workload)\n\
     codes  list every diagnostic code with its severity and meaning\n\
     \n\
     exit status: 0 = clean, 1 = errors found, 2 = usage/IO/parse failure"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => run_check(&args[1..]),
        Some("codes") => {
            run_codes();
            ExitCode::SUCCESS
        }
        Some("--help" | "-h" | "help") => {
            emit(usage());
            emit("\n");
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("{}", usage());
            ExitCode::from(2)
        }
    }
}

/// Parses `check` flags and runs the analysis.
fn run_check(args: &[String]) -> ExitCode {
    let mut format = Format::Text;
    let mut all_examples = false;
    let mut files: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                other => {
                    eprintln!("--format needs `text` or `json`, got {other:?}");
                    return ExitCode::from(2);
                }
            },
            "--all-examples" => all_examples = true,
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag `{flag}`\n{}", usage());
                return ExitCode::from(2);
            }
            file => files.push(file),
        }
    }
    if !all_examples && files.is_empty() {
        eprintln!("nothing to check\n{}", usage());
        return ExitCode::from(2);
    }

    let mut reports: Vec<Report> = Vec::new();
    if all_examples {
        let scenarios = match shipped_scenarios() {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        };
        reports.extend(scenarios.iter().map(analyze));
    }
    for file in files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: reading `{file}`: {e}");
                return ExitCode::from(2);
            }
        };
        let spec = match ScenarioSpec::parse(&text) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: `{file}`: {e}");
                return ExitCode::from(2);
            }
        };
        reports.push(analyze(&spec));
    }

    match format {
        Format::Text => {
            for r in &reports {
                emit(&r.render_text());
            }
        }
        Format::Json => {
            emit(&render_json_reports(&reports));
            emit("\n");
        }
    }
    if reports.iter().any(Report::has_errors) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Prints every diagnostic code with its default severity and summary.
fn run_codes() {
    for code in DiagCode::ALL {
        emit(&format!(
            "{:<28} {:<8} {}\n",
            code.as_str(),
            code.default_severity().as_str(),
            code.summary()
        ));
    }
}
