//! The `eua-analyze` command-line front end.
//!
//! ```text
//! eua-analyze check <scenario.scn>... [--format text|json|sarif] [--check]
//! eua-analyze check --all-examples    [--format text|json|sarif]
//! eua-analyze check --fix [--apply] <scenario.scn>...
//! eua-analyze codes
//! ```
//!
//! Exit status: `0` when no Error-severity diagnostic was produced, `1`
//! when at least one was, `2` on usage, I/O, or parse errors. The three
//! are strictly ordered: a parse failure in any input yields `2` even if
//! other inputs analyzed cleanly, and error diagnostics yield `1` only
//! when every input at least parsed.

use std::io::Write;
use std::process::ExitCode;

use eua_analyze::{
    analyze, apply_fixes, render_json_reports, render_sarif_with_spans, shipped_scenarios,
    validate_sarif, DiagCode, Report, ScenarioSpec, SourceMap,
};

/// Writes to stdout, exiting quietly if the reader went away (e.g. the
/// output is piped into `head`); `println!` would panic instead.
fn emit(text: &str) {
    if std::io::stdout().write_all(text.as_bytes()).is_err() {
        std::process::exit(0);
    }
}

/// Output format for `check`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    /// Human-readable stanzas.
    Text,
    /// One JSON array of per-scenario report objects.
    Json,
    /// One SARIF 2.1.0 document (single run).
    Sarif,
}

fn usage() -> &'static str {
    "usage: eua-analyze check [--format text|json|sarif] [--check] \
     (--all-examples | <scenario.scn>...)\n\
     \x20      eua-analyze check --fix [--apply] <scenario.scn>...\n\
     \x20      eua-analyze codes\n\
     \n\
     check          analyze scenario files (or every shipped example workload)\n\
     \x20 --format sarif   emit a SARIF 2.1.0 document instead of text/json\n\
     \x20 --check          (sarif) verify the output byte-round-trips and\n\
     \x20                  validates against the pinned SARIF subset\n\
     \x20 --fix            apply machine-applicable fixes; prints the fixed\n\
     \x20                  scenario to stdout (dry run) and a summary to stderr\n\
     \x20 --apply          with --fix: rewrite the .scn files in place\n\
     codes          list every diagnostic code with its severity and meaning\n\
     \n\
     exit status (strictly ordered, worst wins):\n\
     \x20 2  usage error, unreadable file, or scenario parse failure\n\
     \x20 1  at least one Error-severity diagnostic\n\
     \x20 0  every input parsed and analyzed clean of errors"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => run_check(&args[1..]),
        Some("codes") => {
            run_codes();
            ExitCode::SUCCESS
        }
        Some("--help" | "-h" | "help") => {
            emit(usage());
            emit("\n");
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("{}", usage());
            ExitCode::from(2)
        }
    }
}

/// Parses `check` flags and runs the analysis.
fn run_check(args: &[String]) -> ExitCode {
    let mut format = Format::Text;
    let mut all_examples = false;
    let mut self_check = false;
    let mut fix = false;
    let mut apply = false;
    let mut files: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some("sarif") => format = Format::Sarif,
                other => {
                    eprintln!("--format needs `text`, `json`, or `sarif`, got {other:?}");
                    return ExitCode::from(2);
                }
            },
            "--all-examples" => all_examples = true,
            "--check" => self_check = true,
            "--fix" => fix = true,
            "--apply" => apply = true,
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag `{flag}`\n{}", usage());
                return ExitCode::from(2);
            }
            file => files.push(file),
        }
    }
    if !all_examples && files.is_empty() {
        eprintln!("nothing to check\n{}", usage());
        return ExitCode::from(2);
    }
    if self_check && format != Format::Sarif {
        eprintln!("--check only applies to --format sarif");
        return ExitCode::from(2);
    }
    if apply && !fix {
        eprintln!("--apply only applies with --fix");
        return ExitCode::from(2);
    }
    if fix && all_examples {
        eprintln!("--fix needs explicit files (shipped examples are read-only)");
        return ExitCode::from(2);
    }
    if fix {
        return run_fix(&files, apply);
    }

    // Parse everything first, continuing past per-file failures so a bad
    // file never hides findings in the good ones; exit precedence is
    // 2 (any failure here) > 1 (error diagnostics) > 0.
    let mut had_parse_failure = false;
    let mut reports: Vec<Report> = Vec::new();
    let mut uris: Vec<Option<String>> = Vec::new();
    let mut maps: Vec<Option<SourceMap>> = Vec::new();
    if all_examples {
        match shipped_scenarios() {
            Ok(scenarios) => {
                reports.extend(scenarios.iter().map(analyze));
                uris.extend(scenarios.iter().map(|_| None));
                maps.extend(scenarios.iter().map(|_| None));
            }
            Err(e) => {
                eprintln!("error: {e}");
                had_parse_failure = true;
            }
        }
    }
    for file in files {
        match load_spec_with_spans(file) {
            Ok((spec, map)) => {
                reports.push(analyze(&spec));
                uris.push(Some(file.to_string()));
                maps.push(Some(map));
            }
            Err(e) => {
                eprintln!("error: {e}");
                had_parse_failure = true;
            }
        }
    }

    match format {
        Format::Text => {
            for r in &reports {
                emit(&r.render_text());
            }
        }
        Format::Json => {
            emit(&render_json_reports(&reports));
            emit("\n");
        }
        Format::Sarif => {
            let text = render_sarif_with_spans(&reports, &uris, &maps);
            if self_check {
                if let Err(e) = sarif_self_check(&text) {
                    eprintln!("error: sarif self-check failed: {e}");
                    return ExitCode::from(2);
                }
            }
            emit(&text);
        }
    }
    if had_parse_failure {
        ExitCode::from(2)
    } else if reports.iter().any(Report::has_errors) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Reads and parses one scenario file.
fn load_spec(file: &str) -> Result<ScenarioSpec, String> {
    load_spec_with_spans(file).map(|(spec, _)| spec)
}

/// Reads and parses one scenario file, keeping the token-extent map for
/// SARIF regions.
fn load_spec_with_spans(file: &str) -> Result<(ScenarioSpec, SourceMap), String> {
    let text = std::fs::read_to_string(file).map_err(|e| format!("reading `{file}`: {e}"))?;
    ScenarioSpec::parse_with_spans(&text).map_err(|e| format!("`{file}`: {e}"))
}

/// Asserts the SARIF output byte-round-trips through the first-party
/// JSON tree and satisfies the pinned SARIF 2.1.0 subset.
fn sarif_self_check(text: &str) -> Result<(), String> {
    let reparsed = eua_analyze::json::parse(text)?;
    if reparsed.render() != text {
        return Err("render(parse(output)) differs from output".into());
    }
    validate_sarif(text)
}

/// `check --fix`: applies machine-applicable rewrites. Dry-run prints
/// each fixed scenario to stdout; `--apply` rewrites the files in place.
/// The summary of applied fixes goes to stderr either way, and the exit
/// status reflects re-analysis of the fixed specs.
fn run_fix(files: &[&str], apply: bool) -> ExitCode {
    let mut had_parse_failure = false;
    let mut any_errors = false;
    for file in files {
        let mut spec = match load_spec(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {e}");
                had_parse_failure = true;
                continue;
            }
        };
        let applied = apply_fixes(&mut spec);
        if applied.is_empty() {
            eprintln!("{file}: nothing to fix");
        }
        for f in &applied {
            eprintln!(
                "{file}: fixed [{}] {}: {}",
                f.code.as_str(),
                f.entity,
                f.action
            );
        }
        let rendered = spec.render();
        if apply {
            if let Err(e) = std::fs::write(file, &rendered) {
                eprintln!("error: writing `{file}`: {e}");
                had_parse_failure = true;
                continue;
            }
        } else {
            emit(&rendered);
        }
        if analyze(&spec).has_errors() {
            any_errors = true;
        }
    }
    if had_parse_failure {
        ExitCode::from(2)
    } else if any_errors {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Prints every diagnostic code with its default severity and summary.
fn run_codes() {
    for code in DiagCode::ALL {
        emit(&format!(
            "{:<36} {:<8} {}\n",
            code.as_str(),
            code.default_severity().as_str(),
            code.summary()
        ));
    }
}
