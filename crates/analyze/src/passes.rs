//! The analysis passes and their registry.
//!
//! Each pass inspects one aspect of a raw [`ScenarioSpec`] and appends
//! [`Diagnostic`]s. Passes are independent: a pass must tolerate input
//! that other passes will reject (e.g. the UAM pass runs even when the
//! TUF shape is broken) and must not double-report conditions another
//! pass owns. [`analyze`] runs the default registry in order and returns
//! a sorted [`Report`].

use crate::demand::Verdict;
use crate::diagnostic::{DiagCode, Diagnostic, Report, Severity};
use crate::scenario::{DemandSpec, ScenarioSpec, TaskSpec, TufSpec};
use eua_core::{brh_schedulable, sufficient_speed, theorem1_speed};
use eua_platform::Frequency;
use eua_sim::TaskSet;

/// Relative slop for float comparisons against `f_m`.
const EPS: f64 = 1e-9;

/// One analysis pass over a raw scenario.
pub trait Pass {
    /// Short name, for listing and debugging.
    fn name(&self) -> &'static str;
    /// Appends this pass's findings for `scenario` to `out`.
    fn run(&self, scenario: &ScenarioSpec, out: &mut Vec<Diagnostic>);
}

/// An ordered collection of passes.
pub struct PassRegistry {
    passes: Vec<Box<dyn Pass>>,
}

impl PassRegistry {
    /// The default pipeline: structure, TUF shapes, assurances,
    /// Chebyshev budgets, UAM specs, frequency table, energy model,
    /// feasibility classification, fault stanzas, and the semantic
    /// verdict pass.
    #[must_use]
    pub fn with_default_passes() -> Self {
        PassRegistry {
            passes: vec![
                Box::new(StructurePass),
                Box::new(TufShapePass),
                Box::new(AssurancePass),
                Box::new(ChebyshevPass),
                Box::new(UamPass),
                Box::new(FrequencyTablePass),
                Box::new(EnergyModelPass),
                Box::new(FeasibilityPass),
                Box::new(FaultPass),
                Box::new(SemanticPass),
            ],
        }
    }

    /// An empty registry, for assembling a custom pipeline.
    #[must_use]
    pub fn empty() -> Self {
        PassRegistry { passes: Vec::new() }
    }

    /// Appends a pass to the pipeline.
    pub fn register(&mut self, pass: Box<dyn Pass>) {
        self.passes.push(pass);
    }

    /// The registered pass names, in run order.
    #[must_use]
    pub fn names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Runs every pass and returns the sorted report.
    #[must_use]
    pub fn analyze(&self, scenario: &ScenarioSpec) -> Report {
        let mut report = Report::new(scenario.name.clone());
        for pass in &self.passes {
            pass.run(scenario, &mut report.diagnostics);
        }
        report.sort();
        report
    }
}

/// Analyzes `scenario` with the default pass pipeline.
#[must_use]
pub fn analyze(scenario: &ScenarioSpec) -> Report {
    PassRegistry::with_default_passes().analyze(scenario)
}

/// Scenario-level structure: at least one task, unique names.
struct StructurePass;

impl Pass for StructurePass {
    fn name(&self) -> &'static str {
        "structure"
    }

    fn run(&self, scenario: &ScenarioSpec, out: &mut Vec<Diagnostic>) {
        if scenario.tasks.is_empty() {
            out.push(
                Diagnostic::new(DiagCode::NoTasks, "the scenario defines no tasks")
                    .with_suggestion("add at least one `task … end` stanza"),
            );
        }
        let mut seen = std::collections::BTreeMap::new();
        for t in &scenario.tasks {
            *seen.entry(t.name.as_str()).or_insert(0u32) += 1;
        }
        for (name, count) in seen {
            if count > 1 {
                out.push(Diagnostic::for_entity(
                    DiagCode::DuplicateTaskName,
                    name,
                    format!("{count} tasks share this name; per-task diagnostics are ambiguous"),
                ));
            }
        }
    }
}

/// TUF validity: positive finite `U_max`, non-increasing shape, positive
/// termination, and a solvable positive critical time for ν.
struct TufShapePass;

impl TufShapePass {
    /// Shape checks for one task; returns whether the shape is sound
    /// enough to evaluate a critical time on.
    fn check_shape(task: &TaskSpec, out: &mut Vec<Diagnostic>) -> bool {
        let name = &task.name;
        let mut sound = true;
        match &task.tuf {
            TufSpec::Step {
                umax, step_at_us, ..
            } => {
                sound &= check_umax(name, *umax, out);
                if *step_at_us == 0 {
                    sound = false;
                    out.push(Diagnostic::for_entity(
                        DiagCode::TufZeroTermination,
                        name,
                        "step TUF has a zero deadline",
                    ));
                }
            }
            TufSpec::Linear {
                umax,
                termination_us,
            } => {
                sound &= check_umax(name, *umax, out);
                if *termination_us == 0 {
                    sound = false;
                    out.push(Diagnostic::for_entity(
                        DiagCode::TufZeroTermination,
                        name,
                        "linear TUF has a zero x-intercept",
                    ));
                }
            }
            TufSpec::Exponential {
                umax,
                tau_us,
                termination_us,
            } => {
                sound &= check_umax(name, *umax, out);
                if *tau_us == 0 {
                    sound = false;
                    out.push(Diagnostic::for_entity(
                        DiagCode::TufZeroTermination,
                        name,
                        "exponential TUF has a zero decay constant τ",
                    ));
                }
                if *termination_us == 0 {
                    sound = false;
                    out.push(Diagnostic::for_entity(
                        DiagCode::TufZeroTermination,
                        name,
                        "exponential TUF has a zero termination time",
                    ));
                }
            }
            TufSpec::Piecewise { points } => {
                sound &= Self::check_piecewise(name, points, out);
            }
        }
        sound
    }

    fn check_piecewise(name: &str, points: &[(u64, f64)], out: &mut Vec<Diagnostic>) -> bool {
        if points.is_empty() {
            out.push(Diagnostic::for_entity(
                DiagCode::TufZeroTermination,
                name,
                "piecewise TUF has no breakpoints",
            ));
            return false;
        }
        let mut sound = true;
        for window in points.windows(2) {
            let ((t0, u0), (t1, u1)) = (window[0], window[1]);
            if t1 <= t0 {
                sound = false;
                out.push(Diagnostic::for_entity(
                    DiagCode::TufUnorderedBreakpoints,
                    name,
                    format!("breakpoint times are not strictly increasing ({t0} µs then {t1} µs)"),
                ));
            }
            if u1 > u0 + EPS {
                sound = false;
                out.push(
                    Diagnostic::for_entity(
                        DiagCode::TufIncreasing,
                        name,
                        format!("utility rises from {u0} to {u1} at {t1} µs; TUFs must be non-increasing"),
                    )
                    .with_suggestion("reorder the breakpoints or lower the later utility"),
                );
            }
        }
        for &(t, u) in points {
            if !u.is_finite() || u < 0.0 {
                sound = false;
                out.push(Diagnostic::for_entity(
                    DiagCode::TufNegativeUtility,
                    name,
                    format!("utility {u} at {t} µs is negative or non-finite"),
                ));
            }
        }
        let umax = points[0].1;
        if umax.is_finite() && umax <= 0.0 {
            sound = false;
            out.push(Diagnostic::for_entity(
                DiagCode::TufNonPositiveUmax,
                name,
                format!("maximum utility {umax} is not positive"),
            ));
        }
        sound
    }
}

/// Reports a bad `U_max`; returns whether it was acceptable.
fn check_umax(name: &str, umax: f64, out: &mut Vec<Diagnostic>) -> bool {
    if umax.is_finite() && umax > 0.0 {
        true
    } else {
        out.push(Diagnostic::for_entity(
            DiagCode::TufNonPositiveUmax,
            name,
            format!("maximum utility {umax} is not positive and finite"),
        ));
        false
    }
}

impl Pass for TufShapePass {
    fn name(&self) -> &'static str {
        "tuf-shape"
    }

    fn run(&self, scenario: &ScenarioSpec, out: &mut Vec<Diagnostic>) {
        for task in &scenario.tasks {
            let sound = Self::check_shape(task, out);
            // Critical-time solvability: only meaningful on a sound shape
            // with an in-range ν (the assurance pass owns range errors).
            if sound && (0.0..=1.0).contains(&task.nu) {
                if let Ok(tuf) = task.tuf.to_tuf() {
                    match tuf.critical_time(task.nu) {
                        Some(d) if d.is_zero() => {
                            out.push(
                                Diagnostic::for_entity(
                                    DiagCode::CriticalTimeUnsolvable,
                                    &task.name,
                                    format!(
                                        "ν = {} is only met at t = 0 for this {} TUF; \
                                         no positive critical time exists",
                                        task.nu,
                                        task.tuf.shape_name()
                                    ),
                                )
                                .with_suggestion("lower ν or flatten the TUF near t = 0"),
                            );
                        }
                        _ => {}
                    }
                }
            }
        }
    }
}

/// Assurance ranges: ν ∈ [0, 1], ρ ∈ [0, 1).
struct AssurancePass;

impl Pass for AssurancePass {
    fn name(&self) -> &'static str {
        "assurance"
    }

    fn run(&self, scenario: &ScenarioSpec, out: &mut Vec<Diagnostic>) {
        for task in &scenario.tasks {
            if !task.nu.is_finite() || !(0.0..=1.0).contains(&task.nu) {
                out.push(
                    Diagnostic::for_entity(
                        DiagCode::AssuranceNuRange,
                        &task.name,
                        format!("utility assurance ν = {} lies outside [0, 1]", task.nu),
                    )
                    .with_suggestion("ν is a fraction of U_max; use 1.0 for step TUFs"),
                );
            }
            if !task.rho.is_finite() || !(0.0..1.0).contains(&task.rho) {
                out.push(
                    Diagnostic::for_entity(
                        DiagCode::AssuranceRhoRange,
                        &task.name,
                        format!("timeliness assurance ρ = {} lies outside [0, 1)", task.rho),
                    )
                    .with_suggestion(
                        "ρ = 1 needs an infinite Chebyshev budget; the paper uses 0.96",
                    ),
                );
            }
        }
    }
}

/// Chebyshev budget validity: both moments must exist and the resulting
/// allocation must be finite.
struct ChebyshevPass;

impl Pass for ChebyshevPass {
    fn name(&self) -> &'static str {
        "chebyshev"
    }

    fn run(&self, scenario: &ScenarioSpec, out: &mut Vec<Diagnostic>) {
        for task in &scenario.tasks {
            if !Self::check_demand(task, out) {
                continue;
            }
            // Moments are fine; an unbounded budget can now only come
            // from the tail (infinite variance) or ρ (owned by the
            // assurance pass).
            let variance = task.demand.variance();
            if variance.is_infinite() {
                out.push(
                    Diagnostic::for_entity(
                        DiagCode::ChebyshevUnbounded,
                        &task.name,
                        format!(
                            "{} demand has infinite variance; the Chebyshev budget \
                             E(Y) + sqrt(ρ/(1−ρ)·Var(Y)) is undefined",
                            task.demand.name()
                        ),
                    )
                    .with_suggestion("use a tail index α > 2 so both moments exist"),
                );
                continue;
            }
            if (0.0..1.0).contains(&task.rho) && task.chebyshev_allocation().is_none() {
                out.push(Diagnostic::for_entity(
                    DiagCode::ChebyshevUnbounded,
                    &task.name,
                    "the Chebyshev allocation is not finite for these moments and ρ",
                ));
            }
            Self::check_declared_allocation(task, out);
        }
    }
}

impl ChebyshevPass {
    /// Parameter validity for the demand model itself; returns whether
    /// the moments are worth computing.
    fn check_demand(task: &TaskSpec, out: &mut Vec<Diagnostic>) -> bool {
        let name = &task.name;
        let mut ok = true;
        let bad = |what: &str, value: f64, out: &mut Vec<Diagnostic>| {
            out.push(Diagnostic::for_entity(
                DiagCode::DemandInvalid,
                name,
                format!("{} demand has invalid {what} = {value}", task.demand.name()),
            ));
        };
        match task.demand {
            DemandSpec::Deterministic { cycles } => {
                if !cycles.is_finite() || cycles <= 0.0 {
                    ok = false;
                    bad("cycles", cycles, out);
                }
            }
            DemandSpec::Normal { mean, variance } => {
                if !mean.is_finite() || mean <= 0.0 {
                    ok = false;
                    bad("mean", mean, out);
                }
                if !variance.is_finite() || variance < 0.0 {
                    ok = false;
                    bad("variance", variance, out);
                }
            }
            DemandSpec::Uniform { lo, hi } => {
                if !lo.is_finite() || lo < 0.0 {
                    ok = false;
                    bad("lo", lo, out);
                }
                if !hi.is_finite() || hi <= 0.0 {
                    ok = false;
                    bad("hi", hi, out);
                }
                if ok && lo > hi {
                    ok = false;
                    out.push(Diagnostic::for_entity(
                        DiagCode::DemandInvalid,
                        name,
                        format!("uniform demand range [{lo}, {hi}] is empty"),
                    ));
                }
            }
            DemandSpec::Pareto { scale, alpha } => {
                if !scale.is_finite() || scale <= 0.0 {
                    ok = false;
                    bad("scale", scale, out);
                }
                if !alpha.is_finite() || alpha <= 0.0 {
                    ok = false;
                    bad("alpha", alpha, out);
                }
            }
        }
        ok
    }

    /// Cross-checks a declared `allocation` line against the Chebyshev
    /// budget implied by the demand moments and ρ. Works per task, so it
    /// fires even when the rest of the scenario cannot be lowered.
    fn check_declared_allocation(task: &TaskSpec, out: &mut Vec<Diagnostic>) {
        let Some(declared) = task.declared_allocation else {
            return;
        };
        let Some(c) = task.chebyshev_allocation() else {
            return;
        };
        let expected = c.ceil();
        if declared.is_finite()
            && (declared - expected).abs() <= 1.0 + crate::fix::ALLOCATION_TOL * c
        {
            return;
        }
        out.push(
            Diagnostic::for_entity(
                DiagCode::SemChebyshevAllocationMismatch,
                &task.name,
                format!(
                    "declared allocation {declared} cycles disagrees with the Chebyshev \
                     budget ⌈E(Y) + sqrt(ρ/(1−ρ)·Var(Y))⌉ = {expected} cycles"
                ),
            )
            .with_suggestion(format!("set `allocation {expected}` (or drop the line)")),
        );
    }
}

/// UAM spec sanity: `a` a positive integer, `P > 0`, and the per-window
/// demand `a·c` within the cycle counter.
struct UamPass;

impl Pass for UamPass {
    fn name(&self) -> &'static str {
        "uam"
    }

    fn run(&self, scenario: &ScenarioSpec, out: &mut Vec<Diagnostic>) {
        for task in &scenario.tasks {
            let a = task.max_arrivals;
            let a_ok = a.is_finite() && a >= 1.0 && a.fract() == 0.0 && a <= f64::from(u32::MAX);
            if !a_ok {
                out.push(
                    Diagnostic::for_entity(
                        DiagCode::UamArrivalBound,
                        &task.name,
                        format!("UAM arrival bound a = {a} is not a positive integer"),
                    )
                    .with_suggestion(
                        "the UAM ⟨a, P⟩ bounds *whole* arrivals per window; use a ≥ 1",
                    ),
                );
            }
            if task.window_us == 0 {
                out.push(Diagnostic::for_entity(
                    DiagCode::UamZeroWindow,
                    &task.name,
                    "UAM window P is zero",
                ));
            }
            if a_ok {
                if let Some(c) = task.chebyshev_allocation() {
                    let window_demand = c.ceil() * a;
                    #[allow(clippy::cast_precision_loss)]
                    if window_demand >= u64::MAX as f64 {
                        out.push(
                            Diagnostic::for_entity(
                                DiagCode::UamWindowOverflow,
                                &task.name,
                                format!(
                                    "per-window demand a·c = {a}·{c:.0} cycles saturates the \
                                     64-bit cycle counter"
                                ),
                            )
                            .with_suggestion(
                                "cycle budgets this large are almost certainly a unit error",
                            ),
                        );
                    }
                }
            }
        }
    }
}

/// Frequency-table validity: non-empty, positive, strictly increasing.
struct FrequencyTablePass;

impl Pass for FrequencyTablePass {
    fn name(&self) -> &'static str {
        "frequency-table"
    }

    fn run(&self, scenario: &ScenarioSpec, out: &mut Vec<Diagnostic>) {
        let freqs = &scenario.frequencies_mhz;
        if freqs.is_empty() {
            out.push(
                Diagnostic::new(DiagCode::FreqTableEmpty, "the frequency table is empty")
                    .with_suggestion(
                        "add a `frequencies …` line; the paper uses 36 55 64 73 82 91 100",
                    ),
            );
            return;
        }
        for (i, &f) in freqs.iter().enumerate() {
            if f == 0 {
                out.push(Diagnostic::new(
                    DiagCode::FreqTableInvalid,
                    format!("frequency #{i} is zero"),
                ));
            }
        }
        for (i, pair) in freqs.windows(2).enumerate() {
            if pair[1] <= pair[0] {
                out.push(
                    Diagnostic::new(
                        DiagCode::FreqTableInvalid,
                        format!(
                            "table is not strictly increasing at index {}: {} MHz then {} MHz",
                            i + 1,
                            pair[0],
                            pair[1]
                        ),
                    )
                    .with_suggestion("sort the table ascending and drop duplicates"),
                );
            }
        }
    }
}

/// Energy-model checks: coefficient validity, the knee of `E(f)`, and
/// dominated-frequency detection.
struct EnergyModelPass;

impl Pass for EnergyModelPass {
    fn name(&self) -> &'static str {
        "energy-model"
    }

    fn run(&self, scenario: &ScenarioSpec, out: &mut Vec<Diagnostic>) {
        let e = &scenario.energy;
        let mut valid = true;
        for (coeff, value) in [
            ("S3", e.s3),
            ("S2", e.s2),
            ("S1/f_m²", e.s1_rel),
            ("S0/f_m³", e.s0_rel),
        ] {
            if !value.is_finite() || value < 0.0 {
                valid = false;
                out.push(Diagnostic::for_entity(
                    DiagCode::EnergyInvalidCoefficient,
                    format!("energy model {}", e.name),
                    format!("coefficient {coeff} = {value} is negative or non-finite"),
                ));
            }
        }
        let Some(f_max) = scenario.f_max_mhz() else {
            return;
        };
        if !valid {
            return;
        }
        #[allow(clippy::cast_precision_loss)]
        let f_max_f = f_max as f64;

        // Knee position: only interesting when a constant term exists
        // (otherwise "slower is cheaper" is the expected E1 behavior).
        if e.s0_rel > 0.0 {
            let knee = e.optimal_speed_mhz(f_max_f);
            let lo = scenario
                .frequencies_mhz
                .iter()
                .copied()
                .filter(|&f| f > 0)
                .min();
            #[allow(clippy::cast_precision_loss)]
            if let Some(lo) = lo {
                if knee < lo as f64 || knee > f_max_f {
                    out.push(Diagnostic::new(
                        DiagCode::EnergyKneeOutsideRange,
                        format!(
                            "the energy-optimal speed {knee:.1} MHz lies outside the table \
                             [{lo}, {f_max}] MHz; one end of the table is always most efficient"
                        ),
                    ));
                }
            }
        }

        // Dominated frequencies: a slower setting that a faster one beats
        // (or ties) on energy per cycle can never win on UER for a
        // non-increasing TUF.
        let positive: Vec<u64> = scenario
            .frequencies_mhz
            .iter()
            .copied()
            .filter(|&f| f > 0)
            .collect();
        #[allow(clippy::cast_precision_loss)]
        for &fi in &positive {
            let ei = e.energy_per_cycle(fi as f64, f_max_f);
            let dominator = positive
                .iter()
                .copied()
                .filter(|&fj| fj > fi && e.energy_per_cycle(fj as f64, f_max_f) <= ei + EPS)
                .min();
            if let Some(fj) = dominator {
                out.push(
                    Diagnostic::for_entity(
                        DiagCode::DominatedFrequency,
                        format!("frequency {fi} MHz"),
                        format!(
                            "dominated under {}: {fj} MHz is faster and uses no more energy per \
                             cycle ({:.0} vs {:.0}), so its UER is never worse",
                            e.name,
                            e.energy_per_cycle(fj as f64, f_max_f),
                            ei
                        ),
                    )
                    .with_suggestion(format!(
                        "the scheduler will never benefit from {fi} MHz; consider removing it"
                    )),
                );
            }
        }
    }
}

/// Feasibility classification via the real `eua-core` analysis:
/// Theorem 1 sufficient speed, the BRH demand bound, and sustained
/// overload. Runs only once every task and the table validate, so it can
/// reuse the simulator types directly.
struct FeasibilityPass;

impl Pass for FeasibilityPass {
    fn name(&self) -> &'static str {
        "feasibility"
    }

    fn run(&self, scenario: &ScenarioSpec, out: &mut Vec<Diagnostic>) {
        // Raise every task; bail silently if any fails (the validation
        // passes already reported why).
        let mut tasks = Vec::with_capacity(scenario.tasks.len());
        for spec in &scenario.tasks {
            match spec.to_task() {
                Ok(t) => tasks.push(t),
                Err(_) => return,
            }
        }
        let Ok(task_set) = TaskSet::new(tasks) else {
            return;
        };
        let sorted = {
            let mut f = scenario.frequencies_mhz.clone();
            f.sort_unstable();
            f.dedup();
            f
        };
        if sorted.first() == Some(&0) || sorted.is_empty() {
            return;
        }
        let f_max = Frequency::from_mhz(*sorted.last().unwrap_or(&1));
        let f_max_f = f_max.as_f64();

        // Per-task: can the window demand a·c finish by D alone at f_m?
        for (_, task) in task_set.iter() {
            let need = theorem1_speed(task);
            if need > f_max_f * (1.0 + EPS) {
                out.push(
                    Diagnostic::for_entity(
                        DiagCode::AllocationExceedsCritical,
                        task.name(),
                        format!(
                            "finishing a·c = {} cycles by D = {} µs needs {need:.1} MHz, above \
                             f_m = {f_max_f:.0} MHz even with the CPU to itself",
                            task.window_demand().get(),
                            task.critical_offset().as_micros()
                        ),
                    )
                    .with_suggestion("lower ρ or a, shrink the demand, or relax the TUF"),
                );
            }
        }

        // System-wide Theorem 1 sufficient condition.
        let sufficient = sufficient_speed(&task_set);
        if sufficient <= f_max_f * (1.0 + EPS) {
            let static_speed = scenario
                .frequencies_mhz
                .iter()
                .copied()
                .filter(|&f| {
                    #[allow(clippy::cast_precision_loss)]
                    let ok = f as f64 * (1.0 + EPS) >= sufficient;
                    ok
                })
                .min();
            let mut d = Diagnostic::new(
                DiagCode::Theorem1Speed,
                format!(
                    "Theorem 1 holds: Σ C_i/D_i = {sufficient:.1} MHz ≤ f_m = {f_max_f:.0} MHz; \
                     all assurances are statically satisfiable"
                ),
            )
            .with_severity(Severity::Info);
            if let Some(f) = static_speed {
                d = d.with_suggestion(format!(
                    "the lowest statically sufficient table speed is {f} MHz"
                ));
            }
            out.push(d);
        } else {
            out.push(
                Diagnostic::new(
                    DiagCode::Theorem1Speed,
                    format!(
                        "Theorem 1's sufficient speed Σ C_i/D_i = {sufficient:.1} MHz exceeds \
                         f_m = {f_max_f:.0} MHz; static schedulability is not guaranteed"
                    ),
                )
                .with_suggestion(
                    "this is a sufficient condition only; see the BRH and overload findings",
                ),
            );
        }

        // Sustained vs transient overload: utilization uses the window P,
        // the paper's load uses the critical time D.
        let utilization: f64 = task_set
            .iter()
            .map(|(_, t)| {
                #[allow(clippy::cast_precision_loss)]
                let window = t.uam().window().as_micros() as f64;
                #[allow(clippy::cast_precision_loss)]
                let demand = t.window_demand().get() as f64;
                if window > 0.0 {
                    demand / window
                } else {
                    f64::INFINITY
                }
            })
            .sum::<f64>()
            / f_max_f;
        if utilization > 1.0 + EPS {
            out.push(
                Diagnostic::new(
                    DiagCode::Overload,
                    format!(
                        "sustained overload: utilization Σ C_i/P_i = {:.2}·f_m; no schedule can \
                         meet every assurance and the UA scheduler will shed low-UER jobs",
                        utilization
                    ),
                )
                .with_suggestion("expected for overload studies; otherwise scale demands down"),
            );
        } else if sufficient > f_max_f * (1.0 + EPS) {
            // Under-utilized but Theorem 1 failed: the exact BRH test
            // settles whether the overload is only transient.
            if brh_schedulable(&task_set, f_max) {
                out.push(
                    Diagnostic::new(
                        DiagCode::BrhDemandBound,
                        format!(
                            "the BRH demand bound holds at f_m = {f_max_f:.0} MHz: the set is \
                             schedulable despite failing Theorem 1's sufficient condition"
                        ),
                    )
                    .with_severity(Severity::Info),
                );
            } else {
                out.push(
                    Diagnostic::new(
                        DiagCode::BrhDemandBound,
                        format!(
                            "transient overload: the BRH demand bound h(L) > f_m·L for some \
                             interval at f_m = {f_max_f:.0} MHz"
                        ),
                    )
                    .with_suggestion(
                        "deadline misses are possible in bursts even though utilization ≤ 1",
                    ),
                );
            }
        }
    }
}

/// Fault-stanza plausibility: deviation factors must be finite and
/// non-negative, the injected DVS relock latency must leave room inside
/// the shortest declared UAM window, and a degraded frequency set must
/// keep at least one frequency the platform actually has.
struct FaultPass;

impl Pass for FaultPass {
    fn name(&self) -> &'static str {
        "faults"
    }

    fn run(&self, scenario: &ScenarioSpec, out: &mut Vec<Diagnostic>) {
        let Some(faults) = &scenario.faults else {
            return;
        };
        for (what, value) in [
            ("demand-deviation factor", faults.demand_mean_factor),
            ("demand-deviation spread", faults.demand_spread),
        ] {
            if !value.is_finite() || value < 0.0 {
                out.push(
                    Diagnostic::new(
                        DiagCode::FaultNegativeDeviation,
                        format!("{what} {value} must be finite and non-negative"),
                    )
                    .with_suggestion("use a factor ≥ 0 (1.0 leaves demands faithful)"),
                );
            }
        }
        if faults.switch_latency_cycles > 0 {
            if let (Some(f_max), Some(min_window)) = (
                scenario.f_max_mhz(),
                scenario
                    .tasks
                    .iter()
                    .map(|t| t.window_us)
                    .filter(|&w| w > 0)
                    .min(),
            ) {
                // MHz is cycles per µs, so latency/f_max is the relock
                // time in µs even at the fastest frequency.
                let latency_us = faults.switch_latency_cycles as f64 / f_max as f64;
                if latency_us >= min_window as f64 {
                    out.push(
                        Diagnostic::new(
                            DiagCode::FaultSwitchLatencyExceedsWindow,
                            format!(
                                "switch latency of {} cycles takes {latency_us:.0} µs at f_m = \
                                 {f_max} MHz, at least the shortest UAM window ({min_window} µs)",
                                faults.switch_latency_cycles
                            ),
                        )
                        .with_suggestion(
                            "every window would burn entirely on relocking; lower the latency \
                             below the shortest window",
                        ),
                    );
                }
            }
        }
        if let Some(set) = &faults.degraded_mhz {
            let survives = set.iter().any(|f| scenario.frequencies_mhz.contains(f));
            if set.is_empty() {
                out.push(
                    Diagnostic::new(
                        DiagCode::FaultEmptyDegradedSet,
                        "the degraded frequency set is empty",
                    )
                    .with_suggestion("list at least one surviving frequency in MHz"),
                );
            } else if !scenario.frequencies_mhz.is_empty() && !survives {
                out.push(
                    Diagnostic::new(
                        DiagCode::FaultEmptyDegradedSet,
                        format!(
                            "none of the degraded frequencies {set:?} appear in the platform \
                             table {:?}",
                            scenario.frequencies_mhz
                        ),
                    )
                    .with_suggestion("the degraded set must be a subset of `frequencies`"),
                );
            }
        }
    }
}

/// The semantic verdict pass: lowers the spec to the analysis IR, runs
/// the per-frequency demand-bound analysis, and reports the verdict at
/// `f_m`, the static feasibility floor, dominated frequencies, and
/// statically-unreachable DVS states.
struct SemanticPass;

impl Pass for SemanticPass {
    fn name(&self) -> &'static str {
        "semantic"
    }

    fn run(&self, scenario: &ScenarioSpec, out: &mut Vec<Diagnostic>) {
        // Lowering fails only for conditions the lint passes have
        // already reported; stay silent rather than double-report.
        let Ok(ir) = crate::ir::lower(scenario) else {
            return;
        };
        let verdicts = crate::demand::frequency_verdicts(&ir);
        let Some(top) = crate::demand::verdict_at_fmax(&verdicts) else {
            return;
        };

        match top.verdict {
            Verdict::Infeasible => {
                let detail = top.witness.as_ref().map_or_else(String::new, |w| {
                    format!(
                        ": within any {} µs window the tasks can force {:.0} cycles of \
                         demand against {:.0} cycles of capacity",
                        w.interval_us, w.demand_cycles, w.capacity_cycles
                    )
                });
                out.push(
                    Diagnostic::new(
                        DiagCode::SemInfeasibleAtFmax,
                        format!(
                            "the demand-bound analysis proves the set infeasible even at \
                             f_m = {} MHz{detail}",
                            ir.f_max_mhz
                        ),
                    )
                    .with_suggestion(
                        "some jobs must miss their critical times; reduce demand, lengthen \
                         windows, or accept best-effort operation",
                    ),
                );
            }
            Verdict::Indeterminate => {
                out.push(Diagnostic::new(
                    DiagCode::SemIndeterminate,
                    format!(
                        "the demand-bound analysis could not decide feasibility at f_m = {} \
                         MHz (quantization gap or scan budget exhausted)",
                        ir.f_max_mhz
                    ),
                ));
            }
            Verdict::Feasible => {
                if let Some(floor) = crate::demand::feasibility_floor(&verdicts) {
                    out.push(Diagnostic::new(
                        DiagCode::SemFeasibilityFloor,
                        format!(
                            "the allocation-level demand provably fits at every frequency \
                             from {floor} MHz up (static feasibility floor)"
                        ),
                    ));
                }
            }
        }

        for profile in crate::energy::energy_profiles(&ir, &verdicts) {
            if let Some(by) = profile.dominated_by {
                out.push(
                    Diagnostic::for_entity(
                        DiagCode::SemDominatedFrequency,
                        format!("{} MHz", profile.f_mhz),
                        format!(
                            "{} MHz is semantically dominated by {by} MHz: no worse on \
                             feasibility and no dearer per cycle",
                            profile.f_mhz
                        ),
                    )
                    .with_suggestion(format!("drop {} MHz from the table", profile.f_mhz)),
                );
            }
            if !profile.reachable {
                out.push(Diagnostic::for_entity(
                    DiagCode::SemUnreachableDvsState,
                    format!("{} MHz", profile.f_mhz),
                    format!(
                        "{} MHz lies below every task's UER-optimal frequency; EUA*'s \
                         offline clamp can never select it",
                        profile.f_mhz
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::EnergySpec;

    fn valid_task(name: &str) -> TaskSpec {
        TaskSpec {
            name: name.into(),
            tuf: TufSpec::Step {
                umax: 10.0,
                step_at_us: 10_000,
                termination_us: 10_000,
            },
            max_arrivals: 2.0,
            window_us: 10_000,
            demand: DemandSpec::Normal {
                mean: 150_000.0,
                variance: 150_000.0,
            },
            nu: 1.0,
            rho: 0.96,
            declared_allocation: None,
            arrival: None,
        }
    }

    fn valid_scenario() -> ScenarioSpec {
        ScenarioSpec {
            name: "valid".into(),
            frequencies_mhz: vec![36, 55, 64, 73, 82, 91, 100],
            energy: EnergySpec::e1(),
            tasks: vec![valid_task("t")],
            faults: None,
        }
    }

    #[test]
    fn valid_scenario_has_no_errors() {
        let report = analyze(&valid_scenario());
        assert!(!report.has_errors(), "{}", report.render_text());
    }

    #[test]
    fn registry_lists_default_passes() {
        let names = PassRegistry::with_default_passes().names();
        assert!(names.contains(&"tuf-shape"));
        assert!(names.contains(&"feasibility"));
        assert!(names.contains(&"faults"));
        assert!(names.contains(&"semantic"));
        assert_eq!(names.len(), 10);
    }

    #[test]
    fn benign_fault_stanza_passes_clean() {
        let mut s = valid_scenario();
        s.faults = Some(crate::scenario::FaultSpec {
            demand_mean_factor: 1.5,
            demand_spread: 0.2,
            switch_latency_cycles: 20_000,
            degraded_mhz: Some(vec![36, 55]),
            burst_extra: 2,
            burst_every: 1,
            abort_cost_us: 300,
            arrival_jitter_us: 2_000,
        });
        let report = analyze(&s);
        assert!(!report.has_errors(), "{}", report.render_text());
    }

    #[test]
    fn negative_deviation_factor_flagged() {
        let mut s = valid_scenario();
        s.faults = Some(crate::scenario::FaultSpec {
            demand_mean_factor: -0.5,
            ..Default::default()
        });
        let report = analyze(&s);
        assert!(report.codes().contains("fault-negative-deviation"));
        assert!(report.has_errors());
    }

    #[test]
    fn window_length_switch_latency_flagged() {
        let mut s = valid_scenario();
        // 10 ms window at 100 MHz = 1_000_000 cycles; meet it exactly.
        s.faults = Some(crate::scenario::FaultSpec {
            switch_latency_cycles: 1_000_000,
            ..Default::default()
        });
        assert!(analyze(&s)
            .codes()
            .contains("fault-switch-latency-exceeds-window"));
    }

    #[test]
    fn empty_and_disjoint_degraded_sets_flagged() {
        let mut s = valid_scenario();
        let f = crate::scenario::FaultSpec {
            degraded_mhz: Some(vec![]),
            ..Default::default()
        };
        s.faults = Some(f.clone());
        assert!(analyze(&s).codes().contains("fault-empty-degraded-set"));

        s.faults = Some(crate::scenario::FaultSpec {
            degraded_mhz: Some(vec![999]),
            ..f
        });
        assert!(analyze(&s).codes().contains("fault-empty-degraded-set"));
    }

    #[test]
    fn empty_scenario_flags_no_tasks() {
        let mut s = valid_scenario();
        s.tasks.clear();
        assert!(analyze(&s).codes().contains("no-tasks"));
    }

    #[test]
    fn duplicate_names_flagged() {
        let mut s = valid_scenario();
        s.tasks.push(valid_task("t"));
        assert!(analyze(&s).codes().contains("duplicate-task-name"));
    }

    #[test]
    fn increasing_piecewise_flagged() {
        let mut s = valid_scenario();
        s.tasks[0].tuf = TufSpec::Piecewise {
            points: vec![(0, 1.0), (100, 5.0), (200, 0.0)],
        };
        assert!(analyze(&s).codes().contains("tuf-increasing"));
    }

    #[test]
    fn nu_of_one_on_decaying_tuf_is_unsolvable() {
        let mut s = valid_scenario();
        s.tasks[0].tuf = TufSpec::Exponential {
            umax: 10.0,
            tau_us: 1_000,
            termination_us: 10_000,
        };
        // ν = 1 can only be met at t = 0 on a strictly decaying TUF.
        assert!(analyze(&s).codes().contains("critical-time-unsolvable"));
    }

    #[test]
    fn dominated_frequency_detected_under_e3() {
        let mut s = valid_scenario();
        s.energy = EnergySpec::e3();
        let report = analyze(&s);
        assert!(
            report.codes().contains("dominated-frequency"),
            "{}",
            report.render_text()
        );
        // Warnings only: the scenario is still analyzable.
        assert!(!report.has_errors());
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.entity.as_deref() == Some("frequency 36 MHz")));
    }

    #[test]
    fn no_dominated_frequency_under_e1() {
        let report = analyze(&valid_scenario());
        assert!(!report.codes().contains("dominated-frequency"));
    }

    #[test]
    fn feasible_set_gets_theorem1_info() {
        let report = analyze(&valid_scenario());
        let t1 = report
            .diagnostics
            .iter()
            .find(|d| d.code == DiagCode::Theorem1Speed)
            .expect("theorem1 finding");
        assert_eq!(t1.severity, Severity::Info);
    }

    #[test]
    fn overload_classified_as_warning_not_error() {
        let mut s = valid_scenario();
        // ~390k cycles per 10 ms window per task at 100 MHz ⇒ load ≫ 1
        // with eight copies.
        for i in 0..8 {
            let mut t = valid_task(&format!("t{i}"));
            t.demand = DemandSpec::Normal {
                mean: 150_000.0,
                variance: 150_000.0,
            };
            s.tasks.push(t);
        }
        let report = analyze(&s);
        assert!(
            report.codes().contains("overload"),
            "{}",
            report.render_text()
        );
        assert!(!report.has_errors());
    }
}
