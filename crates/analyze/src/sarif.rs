//! SARIF 2.1.0 output for analyzer reports, plus a validator for the
//! exact subset this crate emits.
//!
//! The writer produces one `run` per invocation with the union of fired
//! rules (in [`DiagCode::ALL`] order) under `tool.driver.rules`, and one
//! `result` per diagnostic. Severities map onto SARIF levels as
//! `Error → error`, `Warning → warning`, `Info → note`. Each result
//! carries a logical location (scenario, and the task/frequency entity
//! when the diagnostic names one); results for file-backed scenarios
//! also carry a physical `artifactLocation`. Results whose code has a
//! machine-applicable rewrite (see [`crate::fix`]) are tagged with
//! `properties.machineApplicableFix: true`.
//!
//! Rendering goes through the deterministic first-party [`crate::json`]
//! tree, so `--check` can assert `render(parse(out)) == out` — the
//! SARIF output byte-round-trips.

use crate::diagnostic::{DiagCode, Report, Severity};
use crate::fix::is_fixable;
use crate::json::{self, Json};
use crate::spans::{SourceMap, Span};

/// The schema URI pinned into every document this writer emits.
pub const SCHEMA_URI: &str = "https://json.schemastore.org/sarif-2.1.0.json";

/// The SARIF spec version pinned into every document.
pub const SARIF_VERSION: &str = "2.1.0";

/// The SARIF level string for a severity.
#[must_use]
pub fn level(severity: Severity) -> &'static str {
    match severity {
        Severity::Error => "error",
        Severity::Warning => "warning",
        Severity::Info => "note",
    }
}

/// Renders reports as one SARIF 2.1.0 document (a single run), without
/// source regions — equivalent to [`render_sarif_with_spans`] with no
/// source maps. Kept as the plain entry point for report streams that
/// have no backing text (certificates, `--all-examples`).
#[must_use]
pub fn render_sarif(reports: &[Report], uris: &[Option<String>]) -> String {
    render_sarif_with_spans(reports, uris, &[])
}

/// Renders reports as one SARIF 2.1.0 document (a single run).
///
/// `uris` pairs each report with the `.scn` file it came from, when
/// there is one (`--all-examples` scenarios have no backing file);
/// missing entries mean "no artifact". `maps` pairs each report with
/// the [`SourceMap`] scanned from that file's text: where a
/// diagnostic's entity resolves to a token extent, the result's
/// `physicalLocation` carries a `region` with 1-based
/// `startLine`/`startColumn`/`endLine` and exclusive `endColumn`.
#[must_use]
pub fn render_sarif_with_spans(
    reports: &[Report],
    uris: &[Option<String>],
    maps: &[Option<SourceMap>],
) -> String {
    // Resolve each diagnostic's entity against its file's token map,
    // then delegate to the explicit-region core.
    let regions: Vec<Vec<Option<Span>>> = reports
        .iter()
        .enumerate()
        .map(|(i, report)| {
            let map = maps.get(i).and_then(Option::as_ref);
            report
                .diagnostics
                .iter()
                .map(|d| map.and_then(|m| m.resolve(d.entity.as_deref())))
                .collect()
        })
        .collect();
    render_sarif_with_regions("eua-analyze", reports, uris, &regions)
}

/// Renders reports as one SARIF 2.1.0 document (a single run) with
/// explicit per-diagnostic regions.
///
/// This is the core the other entry points delegate to: `driver` names
/// the emitting tool (`eua-analyze`, `eua-lint`), and `regions[i][j]`
/// pairs report `i`'s diagnostic `j` with the token extent it concerns
/// (`None` omits the region). A region is only emitted when the report
/// also has a backing `uris[i]` artifact, matching SARIF's expectation
/// that regions live inside a `physicalLocation`.
#[must_use]
pub fn render_sarif_with_regions(
    driver: &str,
    reports: &[Report],
    uris: &[Option<String>],
    regions: &[Vec<Option<Span>>],
) -> String {
    // Rules: the union of codes that actually fired, in ALL order, so
    // ruleIndex is stable regardless of diagnostic ordering.
    let fired: Vec<DiagCode> = DiagCode::ALL
        .iter()
        .copied()
        .filter(|c| {
            reports
                .iter()
                .any(|r| r.diagnostics.iter().any(|d| d.code == *c))
        })
        .collect();
    let rule_index = |code: DiagCode| fired.iter().position(|c| *c == code).unwrap_or(0);

    let rules = Json::Arr(
        fired
            .iter()
            .map(|c| {
                Json::Obj(vec![
                    ("id".into(), Json::Str(c.as_str().into())),
                    (
                        "shortDescription".into(),
                        Json::Obj(vec![("text".into(), Json::Str(c.summary().into()))]),
                    ),
                ])
            })
            .collect(),
    );

    let mut results = Vec::new();
    for (i, report) in reports.iter().enumerate() {
        let uri = uris.get(i).and_then(Option::as_deref);
        for (j, d) in report.diagnostics.iter().enumerate() {
            let mut logical = vec![(
                "fullyQualifiedName".into(),
                Json::Str(match &d.entity {
                    Some(e) => format!("{}::{e}", report.scenario),
                    None => report.scenario.clone(),
                }),
            )];
            if let Some(e) = &d.entity {
                logical.push(("name".into(), Json::Str(e.clone())));
            }
            let mut location = Vec::new();
            if let Some(uri) = uri {
                let mut physical = vec![(
                    "artifactLocation".into(),
                    Json::Obj(vec![("uri".into(), Json::Str(uri.into()))]),
                )];
                let span = regions.get(i).and_then(|r| r.get(j)).copied().flatten();
                if let Some(s) = span {
                    physical.push((
                        "region".into(),
                        Json::Obj(vec![
                            ("startLine".into(), Json::uint(u64::from(s.start_line))),
                            ("startColumn".into(), Json::uint(u64::from(s.start_col))),
                            ("endLine".into(), Json::uint(u64::from(s.end_line))),
                            ("endColumn".into(), Json::uint(u64::from(s.end_col))),
                        ]),
                    ));
                }
                location.push(("physicalLocation".into(), Json::Obj(physical)));
            }
            location.push((
                "logicalLocations".into(),
                Json::Arr(vec![Json::Obj(logical)]),
            ));

            let mut text = d.message.clone();
            if let Some(s) = &d.suggestion {
                text.push_str(" — ");
                text.push_str(s);
            }

            let mut result = vec![
                ("ruleId".into(), Json::Str(d.code.as_str().into())),
                ("ruleIndex".into(), Json::uint(rule_index(d.code) as u64)),
                ("level".into(), Json::Str(level(d.severity).into())),
                (
                    "message".into(),
                    Json::Obj(vec![("text".into(), Json::Str(text))]),
                ),
                ("locations".into(), Json::Arr(vec![Json::Obj(location)])),
            ];
            if is_fixable(d.code) {
                result.push((
                    "properties".into(),
                    Json::Obj(vec![("machineApplicableFix".into(), Json::Bool(true))]),
                ));
            }
            results.push(Json::Obj(result));
        }
    }

    let doc = Json::Obj(vec![
        ("$schema".into(), Json::Str(SCHEMA_URI.into())),
        ("version".into(), Json::Str(SARIF_VERSION.into())),
        (
            "runs".into(),
            Json::Arr(vec![Json::Obj(vec![
                (
                    "tool".into(),
                    Json::Obj(vec![(
                        "driver".into(),
                        Json::Obj(vec![
                            ("name".into(), Json::Str(driver.into())),
                            ("rules".into(), rules),
                        ]),
                    )]),
                ),
                ("results".into(), Json::Arr(results)),
            ])]),
        ),
    ]);
    doc.render()
}

/// Validates a document against the pinned SARIF 2.1.0 subset this
/// writer emits.
///
/// # Errors
///
/// A message naming the first structural violation: bad JSON, a missing
/// or mistyped required field, an unknown `level`, or a `ruleId` /
/// `ruleIndex` that does not match the run's rule table.
pub fn validate_sarif(text: &str) -> Result<(), String> {
    let doc = json::parse(text)?;
    let str_of = |v: Option<&Json>, what: &str| -> Result<String, String> {
        v.and_then(Json::as_str)
            .map(String::from)
            .ok_or_else(|| format!("missing or non-string {what}"))
    };

    str_of(doc.get("$schema"), "$schema")?;
    let version = str_of(doc.get("version"), "version")?;
    if version != SARIF_VERSION {
        return Err(format!(
            "version must be {SARIF_VERSION:?}, got {version:?}"
        ));
    }
    let runs = doc
        .get("runs")
        .and_then(Json::as_arr)
        .ok_or("missing runs array")?;
    if runs.is_empty() {
        return Err("runs must not be empty".into());
    }
    for run in runs {
        let driver = run
            .get("tool")
            .and_then(|t| t.get("driver"))
            .ok_or("missing tool.driver")?;
        str_of(driver.get("name"), "tool.driver.name")?;
        let rules = driver
            .get("rules")
            .and_then(Json::as_arr)
            .ok_or("missing tool.driver.rules array")?;
        let mut ids = Vec::with_capacity(rules.len());
        for rule in rules {
            let id = str_of(rule.get("id"), "rule id")?;
            str_of(
                rule.get("shortDescription").and_then(|s| s.get("text")),
                "rule shortDescription.text",
            )?;
            ids.push(id);
        }
        let results = run
            .get("results")
            .and_then(Json::as_arr)
            .ok_or("missing results array")?;
        for result in results {
            let rule_id = str_of(result.get("ruleId"), "result ruleId")?;
            let index = match result.get("ruleIndex") {
                Some(Json::Num(n)) => n
                    .parse::<usize>()
                    .map_err(|_| format!("non-integer ruleIndex {n:?}"))?,
                _ => return Err("missing ruleIndex".into()),
            };
            if ids.get(index).map(String::as_str) != Some(rule_id.as_str()) {
                return Err(format!(
                    "ruleIndex {index} does not point at ruleId {rule_id:?}"
                ));
            }
            let lvl = str_of(result.get("level"), "result level")?;
            if !matches!(lvl.as_str(), "none" | "note" | "warning" | "error") {
                return Err(format!("unknown level {lvl:?}"));
            }
            str_of(
                result.get("message").and_then(|m| m.get("text")),
                "result message.text",
            )?;
            let locations = result.get("locations").and_then(Json::as_arr);
            for location in locations.unwrap_or(&[]) {
                let Some(region) = location
                    .get("physicalLocation")
                    .and_then(|p| p.get("region"))
                else {
                    continue;
                };
                let coord = |what: &str| -> Result<u64, String> {
                    match region.get(what) {
                        Some(Json::Num(n)) => {
                            let v = n
                                .parse::<u64>()
                                .map_err(|_| format!("non-integer region {what} {n:?}"))?;
                            if v == 0 {
                                return Err(format!("region {what} must be 1-based"));
                            }
                            Ok(v)
                        }
                        _ => Err(format!("region missing {what}")),
                    }
                };
                let (sl, sc, el, ec) = (
                    coord("startLine")?,
                    coord("startColumn")?,
                    coord("endLine")?,
                    coord("endColumn")?,
                );
                if el < sl || (el == sl && ec < sc) {
                    return Err(format!(
                        "region ends ({el}:{ec}) before it starts ({sl}:{sc})"
                    ));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::diagnostic::Diagnostic;

    fn sample_reports() -> Vec<Report> {
        let mut a = Report::new("alpha");
        a.push(
            Diagnostic::for_entity(
                DiagCode::AssuranceNuRange,
                "task `x`",
                "nu must lie in (0, 1]",
            )
            .with_suggestion("clamp nu to 1.0"),
        );
        a.push(
            Diagnostic::new(DiagCode::Theorem1Speed, "Theorem 1 holds at 73 MHz")
                .with_severity(Severity::Info),
        );
        let mut b = Report::new("beta");
        b.push(Diagnostic::new(
            DiagCode::FreqTableInvalid,
            "table is unsorted",
        ));
        vec![a, b]
    }

    #[test]
    fn sarif_output_byte_round_trips_and_validates() {
        let reports = sample_reports();
        let uris = vec![Some("scenarios/alpha.scn".to_string()), None];
        let text = render_sarif(&reports, &uris);
        let reparsed = json::parse(&text).expect("sarif must be valid json");
        assert_eq!(reparsed.render(), text, "byte-exact round-trip");
        validate_sarif(&text).expect("must satisfy the pinned subset");
    }

    #[test]
    fn severities_map_onto_sarif_levels() {
        assert_eq!(level(Severity::Error), "error");
        assert_eq!(level(Severity::Warning), "warning");
        assert_eq!(level(Severity::Info), "note");
        let text = render_sarif(&sample_reports(), &[]);
        assert!(text.contains("\"level\": \"error\""));
        assert!(text.contains("\"level\": \"note\""));
    }

    #[test]
    fn rule_indices_point_at_their_rule_ids() {
        let text = render_sarif(&sample_reports(), &[]);
        let doc = json::parse(&text).unwrap();
        let run = &doc.get("runs").and_then(Json::as_arr).unwrap()[0];
        let rules = run
            .get("tool")
            .and_then(|t| t.get("driver"))
            .and_then(|d| d.get("rules"))
            .and_then(Json::as_arr)
            .unwrap();
        // Three distinct codes fired.
        assert_eq!(rules.len(), 3);
        validate_sarif(&text).unwrap();
    }

    #[test]
    fn fixable_results_carry_the_machine_fix_property() {
        let text = render_sarif(&sample_reports(), &[]);
        // assurance-nu-range and freq-table-invalid are fixable,
        // theorem1-speed is not.
        assert!(text.contains("machineApplicableFix"));
        let doc = json::parse(&text).unwrap();
        let results = doc.get("runs").and_then(Json::as_arr).unwrap()[0]
            .get("results")
            .and_then(Json::as_arr)
            .unwrap()
            .to_vec();
        let tagged = results
            .iter()
            .filter(|r| r.get("properties").is_some())
            .count();
        assert_eq!(tagged, 2);
    }

    #[test]
    fn validator_rejects_structural_violations() {
        for bad in [
            "{}",
            "{\"$schema\": \"x\", \"version\": \"2.0.0\", \"runs\": []}",
            "{\"$schema\": \"x\", \"version\": \"2.1.0\", \"runs\": []}",
            "not json",
        ] {
            assert!(validate_sarif(bad).is_err(), "{bad:?} must be rejected");
        }
        // A result whose ruleIndex points at the wrong rule.
        let mismatched = r#"{
  "$schema": "x",
  "version": "2.1.0",
  "runs": [
    {
      "tool": {"driver": {"name": "t", "rules": [
        {"id": "a", "shortDescription": {"text": "A"}},
        {"id": "b", "shortDescription": {"text": "B"}}
      ]}},
      "results": [
        {"ruleId": "a", "ruleIndex": 1, "level": "note",
         "message": {"text": "m"}}
      ]
    }
  ]
}"#;
        assert!(validate_sarif(mismatched).is_err());
    }

    #[test]
    fn physical_locations_appear_only_for_file_backed_reports() {
        let reports = sample_reports();
        let uris = vec![Some("alpha.scn".to_string()), None];
        let text = render_sarif(&reports, &uris);
        assert!(text.contains("\"uri\": \"alpha.scn\""));
        // The beta report has no uri, so exactly one artifactLocation
        // uri string appears per alpha diagnostic (2 of them).
        assert_eq!(text.matches("artifactLocation").count(), 2);
    }
}
