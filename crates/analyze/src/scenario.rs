//! The analyzer's raw input model and scenario-file parser.
//!
//! The library crates validate at construction time, so invalid states
//! (a negative ν, an empty frequency table, an increasing TUF) are
//! *unrepresentable* in their types. A static analyzer needs the
//! opposite: it must hold whatever the user wrote and explain what is
//! wrong with it. [`ScenarioSpec`] and friends are therefore plain raw
//! records, with fallible bridges in both directions:
//!
//! * [`ScenarioSpec::from_task_set`] lowers already-validated simulator
//!   types into specs (used by `--all-examples`), and
//! * [`TaskSpec::to_task`] raises a spec back into a real
//!   [`eua_sim::Task`] once the validation passes have cleared it.
//!
//! Scenario files (`.scn`) use a line-based plain-text format; see
//! [`ScenarioSpec::parse`].

use std::error::Error;
use std::fmt;

use eua_platform::{FrequencyTable, TimeDelta};
use eua_sim::{FaultPlan, Task, TaskSet};
use eua_tuf::Tuf;
use eua_uam::demand::DemandModel;
use eua_uam::generator::ArrivalPattern;
use eua_uam::{Assurance, UamSpec};
use eua_workload::Workload;

/// Raw description of a time/utility function shape.
///
/// All times are in microseconds; nothing is validated here.
#[derive(Debug, Clone, PartialEq)]
pub enum TufSpec {
    /// Constant `umax` until `step_at_us`, zero afterwards; the job may
    /// linger (accruing nothing) until `termination_us`.
    Step {
        /// Utility before the step.
        umax: f64,
        /// The step (deadline) offset in µs.
        step_at_us: u64,
        /// Termination offset in µs (≥ `step_at_us` once validated).
        termination_us: u64,
    },
    /// Linear decay from `umax` at `t = 0` to zero at `termination_us`.
    Linear {
        /// Utility at release.
        umax: f64,
        /// The x-intercept (termination) offset in µs.
        termination_us: u64,
    },
    /// Exponential decay `umax·e^(−t/τ)` truncated at `termination_us`.
    Exponential {
        /// Utility at release.
        umax: f64,
        /// Decay constant τ in µs.
        tau_us: u64,
        /// Termination offset in µs.
        termination_us: u64,
    },
    /// Piecewise-linear over `(time_us, utility)` breakpoints.
    Piecewise {
        /// Breakpoints in declaration order (validated by the passes).
        points: Vec<(u64, f64)>,
    },
}

impl TufSpec {
    /// Lowers a validated [`Tuf`] into its raw spec.
    #[must_use]
    pub fn from_tuf(tuf: &Tuf) -> Self {
        match tuf {
            Tuf::Step(s) => TufSpec::Step {
                umax: s.height(),
                step_at_us: s.step_at().as_micros(),
                termination_us: tuf.termination().as_micros(),
            },
            Tuf::Linear(l) => TufSpec::Linear {
                umax: l.umax(),
                termination_us: tuf.termination().as_micros(),
            },
            Tuf::Exponential(e) => TufSpec::Exponential {
                umax: tuf.max_utility(),
                tau_us: e.tau().as_micros(),
                termination_us: tuf.termination().as_micros(),
            },
            Tuf::Piecewise(p) => TufSpec::Piecewise {
                points: p
                    .breakpoints()
                    .iter()
                    .map(|&(t, u)| (t.as_micros(), u))
                    .collect(),
            },
            _ => TufSpec::Linear {
                umax: tuf.max_utility(),
                termination_us: tuf.termination().as_micros(),
            },
        }
    }

    /// Raises the spec into a validated [`Tuf`].
    ///
    /// # Errors
    ///
    /// Returns the library's own constructor error message when the spec
    /// is invalid; the passes report the same conditions as diagnostics
    /// before this is ever called.
    pub fn to_tuf(&self) -> Result<Tuf, String> {
        match self {
            TufSpec::Step {
                umax, step_at_us, ..
            } => Tuf::step(*umax, TimeDelta::from_micros(*step_at_us)),
            TufSpec::Linear {
                umax,
                termination_us,
            } => Tuf::linear(*umax, TimeDelta::from_micros(*termination_us)),
            TufSpec::Exponential {
                umax,
                tau_us,
                termination_us,
            } => Tuf::exponential(
                *umax,
                TimeDelta::from_micros(*tau_us),
                TimeDelta::from_micros(*termination_us),
            ),
            TufSpec::Piecewise { points } => Tuf::piecewise(
                points
                    .iter()
                    .map(|&(t, u)| (TimeDelta::from_micros(t), u))
                    .collect::<Vec<_>>(),
            ),
        }
        .map_err(|e| e.to_string())
    }

    /// The shape's display name.
    #[must_use]
    pub fn shape_name(&self) -> &'static str {
        match self {
            TufSpec::Step { .. } => "step",
            TufSpec::Linear { .. } => "linear",
            TufSpec::Exponential { .. } => "exponential",
            TufSpec::Piecewise { .. } => "piecewise",
        }
    }

    /// The raw maximum utility (utility at release).
    #[must_use]
    pub fn umax(&self) -> f64 {
        match self {
            TufSpec::Step { umax, .. }
            | TufSpec::Linear { umax, .. }
            | TufSpec::Exponential { umax, .. } => *umax,
            TufSpec::Piecewise { points } => points.first().map_or(f64::NAN, |&(_, u)| u),
        }
    }

    /// The raw termination offset in µs (the last breakpoint for a
    /// piecewise shape; zero when there are no breakpoints).
    #[must_use]
    pub fn termination_us(&self) -> u64 {
        match self {
            TufSpec::Step { termination_us, .. }
            | TufSpec::Linear { termination_us, .. }
            | TufSpec::Exponential { termination_us, .. } => *termination_us,
            TufSpec::Piecewise { points } => points.last().map_or(0, |&(t, _)| t),
        }
    }
}

/// Raw description of a per-job demand distribution (cycles).
#[derive(Debug, Clone, PartialEq)]
pub enum DemandSpec {
    /// Every job demands exactly `cycles`.
    Deterministic {
        /// The fixed demand in cycles.
        cycles: f64,
    },
    /// Normally distributed demand.
    Normal {
        /// Mean `E(Y)` in cycles.
        mean: f64,
        /// Variance `Var(Y)` in cycles².
        variance: f64,
    },
    /// Uniform demand on `[lo, hi]`.
    Uniform {
        /// Inclusive lower bound in cycles.
        lo: f64,
        /// Inclusive upper bound in cycles.
        hi: f64,
    },
    /// Pareto demand with scale `x_m` and tail index `alpha`.
    Pareto {
        /// Scale (minimum demand) in cycles.
        scale: f64,
        /// Tail index; both moments exist only for `alpha > 2`.
        alpha: f64,
    },
}

impl DemandSpec {
    /// Lowers a validated [`DemandModel`] into its raw spec.
    #[must_use]
    pub fn from_model(model: &DemandModel) -> Self {
        match *model {
            DemandModel::Deterministic { cycles } => DemandSpec::Deterministic { cycles },
            DemandModel::Normal { mean, variance } => DemandSpec::Normal { mean, variance },
            DemandModel::Uniform { lo, hi } => DemandSpec::Uniform { lo, hi },
            DemandModel::Pareto { scale, alpha } => DemandSpec::Pareto { scale, alpha },
            _ => DemandSpec::Deterministic {
                cycles: model.mean(),
            },
        }
    }

    /// Raises the spec into a validated [`DemandModel`].
    ///
    /// # Errors
    ///
    /// Returns the library's constructor error message for invalid
    /// parameters.
    pub fn to_model(&self) -> Result<DemandModel, String> {
        match *self {
            DemandSpec::Deterministic { cycles } => DemandModel::deterministic(cycles),
            DemandSpec::Normal { mean, variance } => DemandModel::normal(mean, variance),
            DemandSpec::Uniform { lo, hi } => DemandModel::uniform(lo, hi),
            DemandSpec::Pareto { scale, alpha } => {
                // The library constructor is mean-parameterized; recover
                // the mean from the stored scale.
                if !alpha.is_finite() || alpha <= 1.0 {
                    return Err(format!("pareto alpha {alpha} leaves the mean undefined"));
                }
                DemandModel::pareto(alpha * scale / (alpha - 1.0), alpha)
            }
        }
        .map_err(|e| e.to_string())
    }

    /// The distribution's display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            DemandSpec::Deterministic { .. } => "deterministic",
            DemandSpec::Normal { .. } => "normal",
            DemandSpec::Uniform { .. } => "uniform",
            DemandSpec::Pareto { .. } => "pareto",
        }
    }

    /// The raw mean `E(Y)`; infinite for a Pareto tail with `α ≤ 1`.
    #[must_use]
    pub fn mean(&self) -> f64 {
        match *self {
            DemandSpec::Deterministic { cycles } => cycles,
            DemandSpec::Normal { mean, .. } => mean,
            DemandSpec::Uniform { lo, hi } => 0.5 * (lo + hi),
            DemandSpec::Pareto { scale, alpha } => {
                if alpha > 1.0 {
                    alpha * scale / (alpha - 1.0)
                } else {
                    f64::INFINITY
                }
            }
        }
    }

    /// The raw variance `Var(Y)`; infinite for a Pareto tail with
    /// `α ≤ 2`.
    #[must_use]
    pub fn variance(&self) -> f64 {
        match *self {
            DemandSpec::Deterministic { .. } => 0.0,
            DemandSpec::Normal { variance, .. } => variance,
            DemandSpec::Uniform { lo, hi } => {
                let w = hi - lo;
                w * w / 12.0
            }
            DemandSpec::Pareto { scale, alpha } => {
                if alpha > 2.0 {
                    scale * scale * alpha / ((alpha - 1.0) * (alpha - 1.0) * (alpha - 2.0))
                } else {
                    f64::INFINITY
                }
            }
        }
    }
}

/// Raw description of a task's arrival-pattern generator (the optional
/// `arrival` line; simulation bridges default to the maximal
/// window-burst adversary when it is absent).
///
/// Only the deterministic-parameter patterns are representable — the
/// universe generator and the chaos shrinker restrict themselves to
/// these so every generated scenario stays fully `.scn`-expressible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalSpec {
    /// Strictly periodic arrivals at the window boundary (`⟨1, P⟩`).
    Periodic,
    /// `a` simultaneous arrivals at every window boundary — the maximal
    /// UAM adversary (the default when no `arrival` line is present).
    Burst,
    /// Poisson arrivals throttled to the UAM bound.
    Poisson {
        /// Mean arrivals per window before throttling.
        rate_per_window: f64,
    },
    /// Alternating phases of maximal bursts and silence.
    OnOff {
        /// Consecutive bursty windows per active phase.
        on_windows: u32,
        /// Consecutive silent windows per idle phase.
        off_windows: u32,
    },
}

impl ArrivalSpec {
    /// Lowers a validated [`ArrivalPattern`] into its raw spec.
    ///
    /// Returns `None` for patterns the `.scn` format cannot express
    /// (phased periodic, sporadic, random-size bursts).
    #[must_use]
    pub fn from_pattern(pattern: &ArrivalPattern) -> Option<Self> {
        match pattern {
            ArrivalPattern::Periodic { phase, .. } if phase.is_zero() => {
                Some(ArrivalSpec::Periodic)
            }
            ArrivalPattern::WindowBurst { .. } => Some(ArrivalSpec::Burst),
            ArrivalPattern::ConstrainedPoisson {
                rate_per_window, ..
            } => Some(ArrivalSpec::Poisson {
                rate_per_window: *rate_per_window,
            }),
            ArrivalPattern::OnOff {
                on_windows,
                off_windows,
                ..
            } => Some(ArrivalSpec::OnOff {
                on_windows: *on_windows,
                off_windows: *off_windows,
            }),
            _ => None,
        }
    }

    /// Raises the spec into a validated [`ArrivalPattern`] driven by the
    /// task's `⟨a, P⟩` descriptor (`Periodic` uses only the window).
    ///
    /// # Errors
    ///
    /// Returns the library's constructor error message for invalid
    /// parameters (zero phase counts, non-positive Poisson rates).
    pub fn to_pattern(&self, uam: UamSpec) -> Result<ArrivalPattern, String> {
        match *self {
            ArrivalSpec::Periodic => ArrivalPattern::periodic(uam.window()),
            ArrivalSpec::Burst => ArrivalPattern::window_burst(uam),
            ArrivalSpec::Poisson { rate_per_window } => {
                ArrivalPattern::constrained_poisson(uam, rate_per_window)
            }
            ArrivalSpec::OnOff {
                on_windows,
                off_windows,
            } => ArrivalPattern::on_off(uam, on_windows, off_windows),
        }
        .map_err(|e| e.to_string())
    }
}

/// Raw description of one task: TUF, UAM arrival spec, demand model, and
/// assurance requirement.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSpec {
    /// The task's name (diagnostics anchor on it).
    pub name: String,
    /// The raw TUF shape.
    pub tuf: TufSpec,
    /// The UAM arrival bound `a` — raw, so `0` or `2.5` are
    /// representable and diagnosable.
    pub max_arrivals: f64,
    /// The UAM window `P` in µs.
    pub window_us: u64,
    /// The raw demand distribution.
    pub demand: DemandSpec,
    /// Required utility fraction ν (critical time solves
    /// `U(D) ≥ ν·U_max`).
    pub nu: f64,
    /// Required timeliness probability ρ (Chebyshev budget).
    pub rho: f64,
    /// A cycle allocation declared in the `.scn` file (the optional
    /// `allocation <cycles>` line). The analyzer cross-checks it against
    /// the Chebyshev bound implied by the demand moments and ρ
    /// (`sem-chebyshev-allocation-mismatch`); the simulator bridge
    /// always derives its own allocation.
    pub declared_allocation: Option<f64>,
    /// The arrival-pattern generator (the optional `arrival` line);
    /// `None` means the bridges pick the window-burst default.
    pub arrival: Option<ArrivalSpec>,
}

impl TaskSpec {
    /// Lowers a validated simulator [`Task`] into its raw spec.
    #[must_use]
    pub fn from_task(task: &Task) -> Self {
        TaskSpec {
            name: task.name().to_string(),
            tuf: TufSpec::from_tuf(task.tuf()),
            max_arrivals: f64::from(task.uam().max_arrivals()),
            window_us: task.uam().window().as_micros(),
            demand: DemandSpec::from_model(task.demand()),
            nu: task.assurance().nu(),
            rho: task.assurance().rho(),
            declared_allocation: None,
            arrival: None,
        }
    }

    /// The Chebyshev cycle budget `c = E(Y) + sqrt(ρ/(1−ρ)·Var(Y))`, or
    /// `None` when it is undefined or non-finite (reported separately as
    /// a `chebyshev-unbounded` diagnostic).
    #[must_use]
    pub fn chebyshev_allocation(&self) -> Option<f64> {
        if !(0.0..1.0).contains(&self.rho) {
            return None;
        }
        let c =
            self.mean_checked()? + (self.rho / (1.0 - self.rho) * self.variance_checked()?).sqrt();
        c.is_finite().then_some(c)
    }

    fn mean_checked(&self) -> Option<f64> {
        let m = self.demand.mean();
        (m.is_finite() && m >= 0.0).then_some(m)
    }

    fn variance_checked(&self) -> Option<f64> {
        let v = self.demand.variance();
        (v.is_finite() && v >= 0.0).then_some(v)
    }

    /// Raises the spec into a validated simulator [`Task`].
    ///
    /// # Errors
    ///
    /// Returns a constructor error message for any condition the
    /// validation passes flag; callers run those passes first.
    pub fn to_task(&self) -> Result<Task, String> {
        if !self.max_arrivals.is_finite()
            || self.max_arrivals < 1.0
            || self.max_arrivals.fract() != 0.0
            || self.max_arrivals > f64::from(u32::MAX)
        {
            return Err(format!(
                "arrival bound {} is not a positive integer",
                self.max_arrivals
            ));
        }
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let a = self.max_arrivals as u32;
        let tuf = self.tuf.to_tuf()?;
        let uam =
            UamSpec::new(a, TimeDelta::from_micros(self.window_us)).map_err(|e| e.to_string())?;
        let demand = self.demand.to_model()?;
        let assurance = Assurance::new(self.nu, self.rho).map_err(|e| e.to_string())?;
        Task::new(self.name.clone(), tuf, uam, demand, assurance).map_err(|e| e.to_string())
    }
}

/// Raw Martin-model energy coefficients, mirroring the paper's Table 2
/// parameterization: `S1` and `S0` are specified relative to `f_m²` and
/// `f_m³` respectively.
///
/// This deliberately duplicates the constants baked into
/// [`eua_platform::EnergySetting`] (whose fields are private and
/// validated): the analyzer must be able to hold *invalid* coefficients
/// in order to report them.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergySpec {
    /// Display name (`E1`, `E2`, `E3`, or `custom`).
    pub name: String,
    /// Cubic (CPU core) power coefficient `S3`.
    pub s3: f64,
    /// Quadratic coefficient `S2`.
    pub s2: f64,
    /// Linear coefficient as a fraction of `f_m²`.
    pub s1_rel: f64,
    /// Constant coefficient as a fraction of `f_m³`.
    pub s0_rel: f64,
}

impl EnergySpec {
    /// Table 2 setting E1: `(S3, S2, S1, S0) = (1, 0, 0, 0)`.
    #[must_use]
    pub fn e1() -> Self {
        EnergySpec {
            name: "E1".into(),
            s3: 1.0,
            s2: 0.0,
            s1_rel: 0.0,
            s0_rel: 0.0,
        }
    }

    /// Table 2 setting E2: `S1 = 0.1·f_m²`, `S0 = 0.1·f_m³`.
    #[must_use]
    pub fn e2() -> Self {
        EnergySpec {
            name: "E2".into(),
            s3: 1.0,
            s2: 0.0,
            s1_rel: 0.1,
            s0_rel: 0.1,
        }
    }

    /// Table 2 setting E3: `S1 = 0.5·f_m²`, `S0 = 0.5·f_m³`.
    #[must_use]
    pub fn e3() -> Self {
        EnergySpec {
            name: "E3".into(),
            s3: 1.0,
            s2: 0.0,
            s1_rel: 0.5,
            s0_rel: 0.5,
        }
    }

    /// Whether every coefficient is finite and non-negative.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        [self.s3, self.s2, self.s1_rel, self.s0_rel]
            .iter()
            .all(|v| v.is_finite() && *v >= 0.0)
    }

    /// Energy per cycle at `f_mhz` with the static terms bound to
    /// `f_max_mhz`: `E(f) = S3·f² + S2·f + S1 + S0/f`.
    #[must_use]
    pub fn energy_per_cycle(&self, f_mhz: f64, f_max_mhz: f64) -> f64 {
        let s1 = self.s1_rel * f_max_mhz * f_max_mhz;
        let s0 = self.s0_rel * f_max_mhz * f_max_mhz * f_max_mhz;
        self.s3 * f_mhz * f_mhz + self.s2 * f_mhz + s1 + s0 / f_mhz
    }

    /// The continuous energy-optimal speed (the knee of `E(f)`), found
    /// from `E'(f) = 2·S3·f + S2 − S0/f² = 0`.
    ///
    /// Returns `0` when `S0 = 0` (slower is always cheaper) and infinity
    /// when `S3 = S2 = 0 < S0` (faster is always cheaper).
    #[must_use]
    pub fn optimal_speed_mhz(&self, f_max_mhz: f64) -> f64 {
        let s0 = self.s0_rel * f_max_mhz * f_max_mhz * f_max_mhz;
        if s0 == 0.0 {
            return 0.0;
        }
        if self.s3 == 0.0 && self.s2 == 0.0 {
            return f64::INFINITY;
        }
        // E'(f) is strictly increasing for f > 0, so bisect it.
        let (mut lo, mut hi) = (1e-9, f_max_mhz.max(1.0) * 100.0);
        let deriv = |f: f64| 2.0 * self.s3 * f + self.s2 - s0 / (f * f);
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if deriv(mid) < 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

/// Raw description of a fault-injection plan (see
/// [`eua_sim::FaultPlan`]); nothing is validated here — the fault pass
/// diagnoses negative deviation factors, window-length switch
/// latencies, and unusable degraded frequency sets.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Multiplier on every sampled demand's mean (1.0 = faithful).
    pub demand_mean_factor: f64,
    /// Extra multiplicative noise half-width around the scaled demand.
    pub demand_spread: f64,
    /// DVS relock latency in cycles charged on every frequency change.
    pub switch_latency_cycles: u64,
    /// Surviving frequencies in MHz, if the fault restricts the table.
    pub degraded_mhz: Option<Vec<u64>>,
    /// Extra arrivals injected per affected UAM window.
    pub burst_extra: u32,
    /// Every how many windows a burst strikes (0 is diagnosed).
    pub burst_every: u32,
    /// Fixed processing cost of each abort, in µs.
    pub abort_cost_us: u64,
    /// Half-width of the uniform arrival-jitter interval, in µs.
    pub arrival_jitter_us: u64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            demand_mean_factor: 1.0,
            demand_spread: 0.0,
            switch_latency_cycles: 0,
            degraded_mhz: None,
            burst_extra: 0,
            burst_every: 1,
            abort_cost_us: 0,
            arrival_jitter_us: 0,
        }
    }
}

impl FaultSpec {
    /// Raises the spec into the simulator's [`FaultPlan`] (the
    /// `stuck_after` fault has no `.scn` surface and stays disabled).
    #[must_use]
    pub fn to_plan(&self) -> FaultPlan {
        let mut plan = FaultPlan::none();
        plan.uam.extra_per_window = self.burst_extra;
        plan.uam.every_n_windows = self.burst_every;
        plan.demand.mean_factor = self.demand_mean_factor;
        plan.demand.spread = self.demand_spread;
        plan.dvs.switch_latency_cycles = self.switch_latency_cycles;
        plan.dvs.degraded_mhz = self.degraded_mhz.clone();
        plan.timing.abort_cost = TimeDelta::from_micros(self.abort_cost_us);
        plan.timing.arrival_jitter = TimeDelta::from_micros(self.arrival_jitter_us);
        plan
    }

    /// Lowers a simulator [`FaultPlan`] into its raw spec.
    ///
    /// Returns `None` when the plan uses a fault the `.scn` format
    /// cannot express (currently only `dvs.stuck_after`); the chaos
    /// runner samples plans from the expressible subset so its repros
    /// always lower.
    #[must_use]
    pub fn from_plan(plan: &FaultPlan) -> Option<Self> {
        if plan.dvs.stuck_after.is_some() {
            return None;
        }
        Some(FaultSpec {
            demand_mean_factor: plan.demand.mean_factor,
            demand_spread: plan.demand.spread,
            switch_latency_cycles: plan.dvs.switch_latency_cycles,
            degraded_mhz: plan.dvs.degraded_mhz.clone(),
            burst_extra: plan.uam.extra_per_window,
            burst_every: plan.uam.every_n_windows,
            abort_cost_us: plan.timing.abort_cost.as_micros(),
            arrival_jitter_us: plan.timing.arrival_jitter.as_micros(),
        })
    }
}

/// A complete raw scenario: platform frequencies, energy model, and
/// tasks.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// The scenario's name (from the `scenario` line or the caller).
    pub name: String,
    /// Available discrete frequencies in MHz, in declaration order.
    pub frequencies_mhz: Vec<u64>,
    /// The raw energy model.
    pub energy: EnergySpec,
    /// The raw tasks.
    pub tasks: Vec<TaskSpec>,
    /// The fault-injection stanza, if the scenario declares one.
    pub faults: Option<FaultSpec>,
}

impl ScenarioSpec {
    /// Lowers validated simulator types into a spec, for analyzing
    /// workloads that already exist as a [`TaskSet`].
    #[must_use]
    pub fn from_task_set(
        name: impl Into<String>,
        tasks: &TaskSet,
        table: &FrequencyTable,
        energy: EnergySpec,
    ) -> Self {
        ScenarioSpec {
            name: name.into(),
            frequencies_mhz: table.iter().map(|f| f.as_f64() as u64).collect(),
            energy,
            tasks: tasks.iter().map(|(_, t)| TaskSpec::from_task(t)).collect(),
            faults: None,
        }
    }

    /// Lowers a full [`Workload`] (tasks *and* arrival patterns) into a
    /// spec, so generated universes are renderable as `.scn` files.
    ///
    /// # Errors
    ///
    /// Returns the first task whose arrival pattern the `.scn` format
    /// cannot express (see [`ArrivalSpec::from_pattern`]); the universe
    /// generator only emits expressible patterns.
    pub fn from_workload(
        name: impl Into<String>,
        workload: &Workload,
        table: &FrequencyTable,
        energy: EnergySpec,
    ) -> Result<Self, String> {
        let mut spec = Self::from_task_set(name, &workload.tasks, table, energy);
        for (task_spec, pattern) in spec.tasks.iter_mut().zip(&workload.patterns) {
            task_spec.arrival = Some(ArrivalSpec::from_pattern(pattern).ok_or_else(|| {
                format!(
                    "task `{}`: arrival pattern {pattern:?} is not expressible in .scn",
                    task_spec.name
                )
            })?);
        }
        Ok(spec)
    }

    /// Raises the spec into a validated simulator [`Workload`]; tasks
    /// without an `arrival` line get the maximal window-burst adversary.
    ///
    /// # Errors
    ///
    /// Returns the first constructor error message; callers run the
    /// validation passes first when the text is untrusted.
    pub fn to_workload(&self) -> Result<Workload, String> {
        let mut tasks = Vec::with_capacity(self.tasks.len());
        let mut patterns = Vec::with_capacity(self.tasks.len());
        for t in &self.tasks {
            let task = t.to_task()?;
            let arrival = t.arrival.unwrap_or(ArrivalSpec::Burst);
            patterns.push(arrival.to_pattern(*task.uam())?);
            tasks.push(task);
        }
        Ok(Workload {
            tasks: TaskSet::new(tasks).map_err(|e| e.to_string())?,
            patterns,
        })
    }

    /// The table's maximum frequency in MHz, ignoring ordering problems
    /// (so the energy pass can still run on an unsorted table).
    #[must_use]
    pub fn f_max_mhz(&self) -> Option<u64> {
        self.frequencies_mhz
            .iter()
            .copied()
            .max()
            .filter(|&f| f > 0)
    }

    /// Renders the spec back to canonical `.scn` text.
    ///
    /// The output re-parses to an equivalent spec ([`ScenarioSpec::parse`]
    /// of the result reproduces every field, except that a custom energy
    /// model's name normalizes to `custom`). Floats use Rust's
    /// shortest-round-trip `{:?}` formatting, so no precision is lost.
    /// This is what `eua-analyze --fix` emits after rewriting a spec.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("scenario {}\n", self.name));
        if !self.frequencies_mhz.is_empty() {
            out.push_str("frequencies");
            for f in &self.frequencies_mhz {
                out.push_str(&format!(" {f}"));
            }
            out.push('\n');
        }
        let builtin = [EnergySpec::e1(), EnergySpec::e2(), EnergySpec::e3()]
            .into_iter()
            .find(|b| *b == self.energy);
        match builtin {
            Some(b) => out.push_str(&format!("energy {}\n", b.name)),
            None => out.push_str(&format!(
                "energy custom {:?} {:?} {:?} {:?}\n",
                self.energy.s3, self.energy.s2, self.energy.s1_rel, self.energy.s0_rel
            )),
        }
        for t in &self.tasks {
            out.push_str(&format!("task {}\n", t.name));
            match &t.tuf {
                TufSpec::Step {
                    umax, step_at_us, ..
                } => out.push_str(&format!("  tuf step {umax:?} {step_at_us}\n")),
                TufSpec::Linear {
                    umax,
                    termination_us,
                } => out.push_str(&format!("  tuf linear {umax:?} {termination_us}\n")),
                TufSpec::Exponential {
                    umax,
                    tau_us,
                    termination_us,
                } => out.push_str(&format!("  tuf exp {umax:?} {tau_us} {termination_us}\n")),
                TufSpec::Piecewise { points } => {
                    out.push_str("  tuf piecewise");
                    for (time, utility) in points {
                        out.push_str(&format!(" {time}:{utility:?}"));
                    }
                    out.push('\n');
                }
            }
            out.push_str(&format!("  uam {:?} {}\n", t.max_arrivals, t.window_us));
            match &t.arrival {
                None => {}
                Some(ArrivalSpec::Periodic) => out.push_str("  arrival periodic\n"),
                Some(ArrivalSpec::Burst) => out.push_str("  arrival burst\n"),
                Some(ArrivalSpec::Poisson { rate_per_window }) => {
                    out.push_str(&format!("  arrival poisson {rate_per_window:?}\n"));
                }
                Some(ArrivalSpec::OnOff {
                    on_windows,
                    off_windows,
                }) => {
                    out.push_str(&format!("  arrival onoff {on_windows} {off_windows}\n"));
                }
            }
            match &t.demand {
                DemandSpec::Deterministic { cycles } => {
                    out.push_str(&format!("  demand det {cycles:?}\n"));
                }
                DemandSpec::Normal { mean, variance } => {
                    out.push_str(&format!("  demand normal {mean:?} {variance:?}\n"));
                }
                DemandSpec::Uniform { lo, hi } => {
                    out.push_str(&format!("  demand uniform {lo:?} {hi:?}\n"));
                }
                DemandSpec::Pareto { scale, alpha } => {
                    out.push_str(&format!("  demand pareto {scale:?} {alpha:?}\n"));
                }
            }
            out.push_str(&format!("  assurance {:?} {:?}\n", t.nu, t.rho));
            if let Some(alloc) = t.declared_allocation {
                out.push_str(&format!("  allocation {alloc:?}\n"));
            }
            out.push_str("end\n");
        }
        if let Some(f) = &self.faults {
            out.push_str("faults\n");
            out.push_str(&format!(
                "  demand-deviation {:?} {:?}\n",
                f.demand_mean_factor, f.demand_spread
            ));
            out.push_str(&format!("  switch-latency {}\n", f.switch_latency_cycles));
            if let Some(set) = &f.degraded_mhz {
                out.push_str("  degraded-frequencies");
                for mhz in set {
                    out.push_str(&format!(" {mhz}"));
                }
                out.push('\n');
            }
            out.push_str(&format!(
                "  burst-extra {} {}\n",
                f.burst_extra, f.burst_every
            ));
            out.push_str(&format!("  abort-cost {}\n", f.abort_cost_us));
            out.push_str(&format!("  arrival-jitter {}\n", f.arrival_jitter_us));
            out.push_str("end\n");
        }
        out
    }

    /// Parses the line-based `.scn` scenario format.
    ///
    /// ```text
    /// # comment
    /// scenario radar-demo
    /// frequencies 36 55 64 73 82 91 100
    /// energy E3                      # or: energy custom S3 S2 S1rel S0rel
    /// task track
    ///   tuf step 10 10000            # umax, deadline µs
    ///   uam 2 10000                  # a, window µs
    ///   demand normal 150000 150000  # also: det c | uniform lo hi | pareto scale alpha
    ///   assurance 1.0 0.96           # nu, rho
    ///   allocation 250000            # optional declared cycle budget (cross-checked)
    /// end
    /// faults                         # optional fault-injection stanza
    ///   demand-deviation 1.5 0.2     # mean factor, spread
    ///   switch-latency 20000         # DVS relock cycles
    ///   degraded-frequencies 36 55   # surviving MHz entries
    ///   burst-extra 2 1              # extra arrivals, every n windows
    ///   abort-cost 300               # µs per abort
    ///   arrival-jitter 2000          # ± µs on each arrival
    /// end
    /// ```
    ///
    /// TUF forms: `step umax deadline_us`, `linear umax termination_us`,
    /// `exp umax tau_us termination_us`, `piecewise t:u t:u …`.
    ///
    /// Structural problems (unknown keywords, missing stanza fields) are
    /// [`ParseError`]s; *semantic* problems (ν out of range, overload)
    /// are left for the passes to diagnose.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] with the 1-based offending line.
    pub fn parse(text: &str) -> Result<Self, ParseError> {
        Parser::new(text).run()
    }

    /// Like [`ScenarioSpec::parse`], additionally returning the
    /// [`crate::SourceMap`] of token extents scanned from the same text
    /// — the SARIF writer uses it to attach `region`s to findings.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] with the 1-based offending line.
    pub fn parse_with_spans(text: &str) -> Result<(Self, crate::spans::SourceMap), ParseError> {
        let spec = Self::parse(text)?;
        Ok((spec, crate::spans::SourceMap::scan(text)))
    }
}

/// A structural error in a scenario file, with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line the error was detected on.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

/// Internal line-based parser state.
struct Parser<'a> {
    lines: Vec<(usize, &'a str)>,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        let lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| {
                let body = l.split('#').next().unwrap_or("").trim();
                (i + 1, body)
            })
            .filter(|(_, body)| !body.is_empty())
            .collect();
        Parser { lines, pos: 0 }
    }

    fn err(line: usize, message: impl Into<String>) -> ParseError {
        ParseError {
            line,
            message: message.into(),
        }
    }

    fn run(mut self) -> Result<ScenarioSpec, ParseError> {
        let mut name: Option<String> = None;
        let mut frequencies: Vec<u64> = Vec::new();
        let mut energy = EnergySpec::e1();
        let mut tasks = Vec::new();
        let mut faults: Option<FaultSpec> = None;

        while self.pos < self.lines.len() {
            let (line, body) = self.lines[self.pos];
            self.pos += 1;
            let mut words = body.split_whitespace();
            let keyword = words.next().unwrap_or("");
            let rest: Vec<&str> = words.collect();
            match keyword {
                "scenario" => {
                    if name.is_some() {
                        return Err(Self::err(line, "duplicate `scenario` line"));
                    }
                    if rest.is_empty() {
                        return Err(Self::err(line, "`scenario` needs a name"));
                    }
                    // Keep the raw remainder: joining the split words
                    // would collapse interior runs of whitespace, so a
                    // doubly-spaced name would not survive a
                    // parse → render round trip.
                    name = Some(raw_rest(body, keyword));
                }
                "frequencies" => {
                    if rest.is_empty() {
                        return Err(Self::err(line, "`frequencies` needs at least one value"));
                    }
                    for w in &rest {
                        frequencies.push(parse_u64(line, "frequency", w)?);
                    }
                }
                "energy" => {
                    energy = Self::parse_energy(line, &rest)?;
                }
                "task" => {
                    if rest.is_empty() {
                        return Err(Self::err(line, "`task` needs a name"));
                    }
                    let name = raw_rest(body, keyword);
                    tasks.push(self.parse_task(line, name)?);
                }
                "faults" => {
                    if faults.is_some() {
                        return Err(Self::err(line, "duplicate `faults` stanza"));
                    }
                    faults = Some(self.parse_faults(line)?);
                }
                other => {
                    return Err(Self::err(line, format!("unknown keyword `{other}`")));
                }
            }
        }

        Ok(ScenarioSpec {
            name: name.unwrap_or_else(|| "unnamed".into()),
            frequencies_mhz: frequencies,
            energy,
            tasks,
            faults,
        })
    }

    fn parse_faults(&mut self, stanza_line: usize) -> Result<FaultSpec, ParseError> {
        let mut spec = FaultSpec::default();
        loop {
            let Some(&(line, body)) = self.lines.get(self.pos) else {
                return Err(Self::err(
                    stanza_line,
                    "`faults` stanza is missing its `end`",
                ));
            };
            self.pos += 1;
            let mut words = body.split_whitespace();
            let keyword = words.next().unwrap_or("");
            let rest: Vec<&str> = words.collect();
            match keyword {
                "end" => break,
                "demand-deviation" => match rest.as_slice() {
                    [factor, spread] => {
                        spec.demand_mean_factor = parse_f64(line, "factor", factor)?;
                        spec.demand_spread = parse_f64(line, "spread", spread)?;
                    }
                    _ => {
                        return Err(Self::err(
                            line,
                            "expected `demand-deviation <factor> <spread>`",
                        ))
                    }
                },
                "switch-latency" => match rest.as_slice() {
                    [cycles] => {
                        spec.switch_latency_cycles = parse_u64(line, "cycles", cycles)?;
                    }
                    _ => return Err(Self::err(line, "expected `switch-latency <cycles>`")),
                },
                "degraded-frequencies" => {
                    let mut set = Vec::with_capacity(rest.len());
                    for w in &rest {
                        set.push(parse_u64(line, "frequency", w)?);
                    }
                    spec.degraded_mhz = Some(set);
                }
                "burst-extra" => match rest.as_slice() {
                    [extra, every] => {
                        spec.burst_extra = parse_u64(line, "extra", extra)? as u32;
                        spec.burst_every = parse_u64(line, "every", every)? as u32;
                    }
                    _ => return Err(Self::err(line, "expected `burst-extra <extra> <every>`")),
                },
                "abort-cost" => match rest.as_slice() {
                    [us] => spec.abort_cost_us = parse_u64(line, "abort cost", us)?,
                    _ => return Err(Self::err(line, "expected `abort-cost <us>`")),
                },
                "arrival-jitter" => match rest.as_slice() {
                    [us] => spec.arrival_jitter_us = parse_u64(line, "jitter", us)?,
                    _ => return Err(Self::err(line, "expected `arrival-jitter <us>`")),
                },
                other => {
                    return Err(Self::err(line, format!("unknown fault keyword `{other}`")));
                }
            }
        }
        Ok(spec)
    }

    fn parse_energy(line: usize, rest: &[&str]) -> Result<EnergySpec, ParseError> {
        match rest {
            ["E1"] | ["e1"] => Ok(EnergySpec::e1()),
            ["E2"] | ["e2"] => Ok(EnergySpec::e2()),
            ["E3"] | ["e3"] => Ok(EnergySpec::e3()),
            ["custom", s3, s2, s1, s0] => Ok(EnergySpec {
                name: "custom".into(),
                s3: parse_f64(line, "S3", s3)?,
                s2: parse_f64(line, "S2", s2)?,
                s1_rel: parse_f64(line, "S1rel", s1)?,
                s0_rel: parse_f64(line, "S0rel", s0)?,
            }),
            _ => Err(Self::err(
                line,
                "expected `energy E1|E2|E3` or `energy custom S3 S2 S1rel S0rel`",
            )),
        }
    }

    fn parse_task(&mut self, task_line: usize, name: String) -> Result<TaskSpec, ParseError> {
        let mut tuf: Option<TufSpec> = None;
        let mut uam: Option<(f64, u64)> = None;
        let mut demand: Option<DemandSpec> = None;
        let mut assurance: Option<(f64, f64)> = None;
        let mut allocation: Option<f64> = None;
        let mut arrival: Option<ArrivalSpec> = None;

        loop {
            let Some(&(line, body)) = self.lines.get(self.pos) else {
                return Err(Self::err(
                    task_line,
                    format!("task `{name}` is missing its `end`"),
                ));
            };
            self.pos += 1;
            let mut words = body.split_whitespace();
            let keyword = words.next().unwrap_or("");
            let rest: Vec<&str> = words.collect();
            match keyword {
                "end" => break,
                "tuf" => tuf = Some(Self::parse_tuf(line, &rest)?),
                "uam" => match rest.as_slice() {
                    [a, window] => {
                        uam = Some((parse_f64(line, "a", a)?, parse_u64(line, "window", window)?));
                    }
                    _ => return Err(Self::err(line, "expected `uam <a> <window_us>`")),
                },
                "demand" => demand = Some(Self::parse_demand(line, &rest)?),
                "assurance" => match rest.as_slice() {
                    [nu, rho] => {
                        assurance =
                            Some((parse_f64(line, "nu", nu)?, parse_f64(line, "rho", rho)?));
                    }
                    _ => return Err(Self::err(line, "expected `assurance <nu> <rho>`")),
                },
                "allocation" => match rest.as_slice() {
                    [cycles] => allocation = Some(parse_f64(line, "allocation", cycles)?),
                    _ => return Err(Self::err(line, "expected `allocation <cycles>`")),
                },
                "arrival" => arrival = Some(Self::parse_arrival(line, &rest)?),
                other => {
                    return Err(Self::err(line, format!("unknown task keyword `{other}`")));
                }
            }
        }

        let tuf =
            tuf.ok_or_else(|| Self::err(task_line, format!("task `{name}` has no `tuf` line")))?;
        let (max_arrivals, window_us) =
            uam.ok_or_else(|| Self::err(task_line, format!("task `{name}` has no `uam` line")))?;
        let demand = demand
            .ok_or_else(|| Self::err(task_line, format!("task `{name}` has no `demand` line")))?;
        let (nu, rho) = assurance.ok_or_else(|| {
            Self::err(task_line, format!("task `{name}` has no `assurance` line"))
        })?;
        Ok(TaskSpec {
            name,
            tuf,
            max_arrivals,
            window_us,
            demand,
            nu,
            rho,
            declared_allocation: allocation,
            arrival,
        })
    }

    fn parse_arrival(line: usize, rest: &[&str]) -> Result<ArrivalSpec, ParseError> {
        match rest {
            ["periodic"] => Ok(ArrivalSpec::Periodic),
            ["burst"] => Ok(ArrivalSpec::Burst),
            ["poisson", rate] => Ok(ArrivalSpec::Poisson {
                rate_per_window: parse_f64(line, "rate", rate)?,
            }),
            ["onoff", on, off] => Ok(ArrivalSpec::OnOff {
                on_windows: parse_u64(line, "on windows", on)? as u32,
                off_windows: parse_u64(line, "off windows", off)? as u32,
            }),
            _ => Err(Self::err(
                line,
                "expected `arrival periodic` | `arrival burst` | `arrival poisson r` | `arrival onoff on off`",
            )),
        }
    }

    fn parse_tuf(line: usize, rest: &[&str]) -> Result<TufSpec, ParseError> {
        match rest {
            ["step", umax, deadline] => {
                let d = parse_u64(line, "deadline", deadline)?;
                Ok(TufSpec::Step {
                    umax: parse_f64(line, "umax", umax)?,
                    step_at_us: d,
                    termination_us: d,
                })
            }
            ["linear", umax, termination] => Ok(TufSpec::Linear {
                umax: parse_f64(line, "umax", umax)?,
                termination_us: parse_u64(line, "termination", termination)?,
            }),
            ["exp", umax, tau, termination] => Ok(TufSpec::Exponential {
                umax: parse_f64(line, "umax", umax)?,
                tau_us: parse_u64(line, "tau", tau)?,
                termination_us: parse_u64(line, "termination", termination)?,
            }),
            ["piecewise", points @ ..] if !points.is_empty() => {
                let mut parsed = Vec::with_capacity(points.len());
                for p in points {
                    let Some((t, u)) = p.split_once(':') else {
                        return Err(Self::err(line, format!("breakpoint `{p}` is not `time:utility`")));
                    };
                    parsed.push((parse_u64(line, "time", t)?, parse_f64(line, "utility", u)?));
                }
                Ok(TufSpec::Piecewise { points: parsed })
            }
            _ => Err(Self::err(
                line,
                "expected `tuf step u d` | `tuf linear u x` | `tuf exp u tau x` | `tuf piecewise t:u ...`",
            )),
        }
    }

    fn parse_demand(line: usize, rest: &[&str]) -> Result<DemandSpec, ParseError> {
        match rest {
            ["det", c] => Ok(DemandSpec::Deterministic { cycles: parse_f64(line, "cycles", c)? }),
            ["normal", mean, var] => Ok(DemandSpec::Normal {
                mean: parse_f64(line, "mean", mean)?,
                variance: parse_f64(line, "variance", var)?,
            }),
            ["uniform", lo, hi] => Ok(DemandSpec::Uniform {
                lo: parse_f64(line, "lo", lo)?,
                hi: parse_f64(line, "hi", hi)?,
            }),
            ["pareto", scale, alpha] => Ok(DemandSpec::Pareto {
                scale: parse_f64(line, "scale", scale)?,
                alpha: parse_f64(line, "alpha", alpha)?,
            }),
            _ => Err(Self::err(
                line,
                "expected `demand det c` | `demand normal m v` | `demand uniform lo hi` | `demand pareto s a`",
            )),
        }
    }
}

/// The raw text after `keyword` on an already-trimmed line body, with
/// interior whitespace preserved (re-joining split words would collapse
/// it and break the parse → render byte round trip).
fn raw_rest(body: &str, keyword: &str) -> String {
    body[keyword.len()..].trim_start().to_string()
}

fn parse_f64(line: usize, what: &str, word: &str) -> Result<f64, ParseError> {
    word.parse()
        .map_err(|_| Parser::err(line, format!("{what} `{word}` is not a number")))
}

fn parse_u64(line: usize, what: &str, word: &str) -> Result<u64, ParseError> {
    word.parse().map_err(|_| {
        Parser::err(
            line,
            format!("{what} `{word}` is not a non-negative integer"),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const VALID: &str = "\
# demo scenario
scenario demo
frequencies 36 55 64 73 82 91 100
energy E2
task track
  tuf step 10 10000
  uam 2 10000
  demand normal 150000 150000
  assurance 1.0 0.96
end
task decay
  tuf exp 40 3000 20000
  uam 3 30000
  demand uniform 100000 300000
  assurance 0.4 0.9
end
";

    #[test]
    fn arrival_lines_parse_and_round_trip() {
        let text = "\
scenario arrivals
frequencies 100
energy E1
task p
  tuf step 1.0 10000
  uam 1.0 10000
  arrival periodic
  demand det 1000.0
  assurance 1.0 0.5
end
task b
  tuf step 1.0 10000
  uam 2.0 10000
  arrival burst
  demand det 1000.0
  assurance 1.0 0.5
end
task q
  tuf step 1.0 10000
  uam 3.0 10000
  arrival poisson 2.5
  demand det 1000.0
  assurance 1.0 0.5
end
task o
  tuf step 1.0 10000
  uam 2.0 10000
  arrival onoff 3 5
  demand det 1000.0
  assurance 1.0 0.5
end
";
        let s = ScenarioSpec::parse(text).expect("parses");
        assert_eq!(s.tasks[0].arrival, Some(ArrivalSpec::Periodic));
        assert_eq!(s.tasks[1].arrival, Some(ArrivalSpec::Burst));
        assert_eq!(
            s.tasks[2].arrival,
            Some(ArrivalSpec::Poisson {
                rate_per_window: 2.5
            })
        );
        assert_eq!(
            s.tasks[3].arrival,
            Some(ArrivalSpec::OnOff {
                on_windows: 3,
                off_windows: 5
            })
        );
        let rendered = s.render();
        let back = ScenarioSpec::parse(&rendered).expect("canonical text parses");
        assert_eq!(back, s);
        assert_eq!(back.render(), rendered);
    }

    #[test]
    fn names_with_interior_whitespace_round_trip() {
        // `rest.join(" ")` used to collapse the double space, so the
        // rendered text drifted from the parsed spec on the second pass.
        let text = "scenario two  spaces\ntask a  b\n  tuf step 1.0 1000\n  uam 1.0 1000\n  demand det 10.0\n  assurance 1.0 0.5\nend\n";
        let s = ScenarioSpec::parse(text).expect("parses");
        assert_eq!(s.name, "two  spaces");
        assert_eq!(s.tasks[0].name, "a  b");
        let rendered = s.render();
        let back = ScenarioSpec::parse(&rendered).expect("reparses");
        assert_eq!(back, s);
        assert_eq!(back.render(), rendered);
    }

    #[test]
    fn fault_spec_bridges_to_and_from_plan() {
        let spec = FaultSpec {
            demand_mean_factor: 1.5,
            demand_spread: 0.2,
            switch_latency_cycles: 20_000,
            degraded_mhz: Some(vec![36, 55]),
            burst_extra: 2,
            burst_every: 3,
            abort_cost_us: 300,
            arrival_jitter_us: 2_000,
        };
        let plan = spec.to_plan();
        assert_eq!(plan.uam.extra_per_window, 2);
        assert_eq!(plan.uam.every_n_windows, 3);
        assert_eq!(plan.timing.abort_cost.as_micros(), 300);
        plan.validate().expect("valid plan");
        assert_eq!(FaultSpec::from_plan(&plan), Some(spec));
        // The default spec lowers to an inactive plan.
        assert!(FaultSpec::default().to_plan().is_none());
        // stuck_after has no .scn surface.
        let mut stuck = FaultPlan::none();
        stuck.dvs.stuck_after = Some(TimeDelta::from_micros(1));
        assert_eq!(FaultSpec::from_plan(&stuck), None);
    }

    #[test]
    fn workload_round_trips_through_scn_text() {
        let f_max = eua_platform::Frequency::from_mhz(100);
        let workload = eua_workload::UniverseFamily::MixedCriticality
            .generate(0, 9, f_max)
            .expect("generates")
            .workload;
        let table = FrequencyTable::new([100]).expect("table");
        let spec = ScenarioSpec::from_workload("mix", &workload, &table, EnergySpec::e1())
            .expect("expressible");
        let rendered = spec.render();
        let back = ScenarioSpec::parse(&rendered).expect("reparses");
        assert_eq!(back, spec);
        assert_eq!(back.render(), rendered, "canonical text is a fixpoint");
        let raised = back.to_workload().expect("raises");
        assert_eq!(raised.patterns, workload.patterns);
        assert_eq!(raised.tasks.len(), workload.tasks.len());
        for ((_, a), (_, b)) in raised.tasks.iter().zip(workload.tasks.iter()) {
            assert_eq!(a.name(), b.name());
            assert_eq!(a.allocation(), b.allocation());
            assert_eq!(a.critical_offset(), b.critical_offset());
        }
    }

    #[test]
    fn tasks_without_arrival_lines_default_to_window_burst() {
        let s = ScenarioSpec::parse(VALID).expect("parses");
        let w = s.to_workload().expect("raises");
        assert!(matches!(
            w.patterns[0],
            ArrivalPattern::WindowBurst { spec } if spec.max_arrivals() == 2
        ));
    }

    #[test]
    fn parses_a_valid_scenario() {
        let s = ScenarioSpec::parse(VALID).expect("parses");
        assert_eq!(s.name, "demo");
        assert_eq!(s.frequencies_mhz, vec![36, 55, 64, 73, 82, 91, 100]);
        assert_eq!(s.energy.name, "E2");
        assert_eq!(s.tasks.len(), 2);
        assert_eq!(s.tasks[0].name, "track");
        assert_eq!(s.tasks[0].max_arrivals, 2.0);
        assert_eq!(s.tasks[1].tuf.shape_name(), "exponential");
    }

    #[test]
    fn reports_unknown_keyword_with_line() {
        let e = ScenarioSpec::parse("scenario x\nbogus 1 2\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));
    }

    #[test]
    fn parses_a_faults_stanza() {
        let text = format!(
            "{VALID}faults
  demand-deviation 1.5 0.2
  switch-latency 20000
  degraded-frequencies 36 55
  burst-extra 2 1
  abort-cost 300
  arrival-jitter 2000
end
"
        );
        let s = ScenarioSpec::parse(&text).expect("parses");
        let f = s.faults.expect("faults stanza");
        assert_eq!(f.demand_mean_factor, 1.5);
        assert_eq!(f.demand_spread, 0.2);
        assert_eq!(f.switch_latency_cycles, 20_000);
        assert_eq!(f.degraded_mhz, Some(vec![36, 55]));
        assert_eq!((f.burst_extra, f.burst_every), (2, 1));
        assert_eq!(f.abort_cost_us, 300);
        assert_eq!(f.arrival_jitter_us, 2_000);
    }

    #[test]
    fn scenarios_without_faults_have_none() {
        assert_eq!(ScenarioSpec::parse(VALID).expect("parses").faults, None);
    }

    #[test]
    fn fault_stanza_errors_are_structural() {
        let e = ScenarioSpec::parse("scenario x\nfaults\n  switch-latency\nend\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("switch-latency"));

        let e = ScenarioSpec::parse("scenario x\nfaults\n  demand-deviation 1 1\n").unwrap_err();
        assert!(e.message.contains("missing its `end`"));

        let e = ScenarioSpec::parse("scenario x\nfaults\nend\nfaults\nend\n").unwrap_err();
        assert!(e.message.contains("duplicate `faults`"));
    }

    #[test]
    fn reports_missing_stanza_field() {
        let text = "task t\n  tuf step 1 100\n  uam 1 100\n  demand det 10\nend\n";
        let e = ScenarioSpec::parse(text).unwrap_err();
        assert!(e.message.contains("assurance"), "{}", e.message);
    }

    #[test]
    fn reports_missing_end() {
        let e = ScenarioSpec::parse("task t\n  tuf step 1 100\n").unwrap_err();
        assert!(e.message.contains("end"));
    }

    #[test]
    fn task_round_trips_through_spec() {
        let task = Task::new(
            "t",
            Tuf::step(10.0, TimeDelta::from_micros(10_000)).expect("tuf"),
            UamSpec::new(2, TimeDelta::from_micros(10_000)).expect("uam"),
            DemandModel::normal(150_000.0, 150_000.0).expect("demand"),
            Assurance::new(1.0, 0.96).expect("assurance"),
        )
        .expect("task");
        let spec = TaskSpec::from_task(&task);
        let back = spec.to_task().expect("round-trip");
        assert_eq!(back.name(), task.name());
        assert_eq!(back.allocation(), task.allocation());
        assert_eq!(back.critical_offset(), task.critical_offset());
    }

    #[test]
    fn chebyshev_allocation_matches_library() {
        let spec = TaskSpec {
            name: "t".into(),
            tuf: TufSpec::Step {
                umax: 1.0,
                step_at_us: 1_000,
                termination_us: 1_000,
            },
            max_arrivals: 1.0,
            window_us: 1_000,
            demand: DemandSpec::Normal {
                mean: 100.0,
                variance: 400.0,
            },
            nu: 1.0,
            rho: 0.96,
            declared_allocation: None,
            arrival: None,
        };
        let c = spec.chebyshev_allocation().expect("finite");
        let expected = 100.0 + (0.96f64 / 0.04 * 400.0).sqrt();
        assert!((c - expected).abs() < 1e-9);
        let task = spec.to_task().expect("valid");
        assert!((task.allocation().get() as f64 - c).abs() <= 1.0);
    }

    #[test]
    fn pareto_heavy_tail_has_no_allocation() {
        let spec = TaskSpec {
            name: "t".into(),
            tuf: TufSpec::Step {
                umax: 1.0,
                step_at_us: 1_000,
                termination_us: 1_000,
            },
            max_arrivals: 1.0,
            window_us: 1_000,
            demand: DemandSpec::Pareto {
                scale: 100.0,
                alpha: 1.5,
            },
            nu: 1.0,
            rho: 0.9,
            declared_allocation: None,
            arrival: None,
        };
        assert_eq!(spec.chebyshev_allocation(), None);
    }

    #[test]
    fn allocation_line_parses_and_round_trips() {
        let text = "\
scenario alloc-demo
frequencies 100
energy E1
task t
  tuf step 1.0 10000
  uam 1.0 10000
  demand det 100000.0
  assurance 1.0 0.5
  allocation 100000.0
end
";
        let s = ScenarioSpec::parse(text).expect("parses");
        assert_eq!(s.tasks[0].declared_allocation, Some(100_000.0));
        // Canonical render re-parses to the same spec, byte-identically
        // the second time around.
        let rendered = s.render();
        let back = ScenarioSpec::parse(&rendered).expect("canonical text parses");
        assert_eq!(back, s);
        assert_eq!(back.render(), rendered);
    }

    #[test]
    fn render_round_trips_custom_energy_and_faults() {
        let mut s = ScenarioSpec::parse(VALID).expect("parses");
        s.energy = EnergySpec {
            name: "custom".into(),
            s3: 0.8,
            s2: 0.05,
            s1_rel: 0.2,
            s0_rel: 0.3,
        };
        s.faults = Some(FaultSpec {
            demand_mean_factor: 1.5,
            demand_spread: 0.2,
            switch_latency_cycles: 20_000,
            degraded_mhz: Some(vec![36, 55]),
            burst_extra: 2,
            burst_every: 3,
            abort_cost_us: 300,
            arrival_jitter_us: 2_000,
        });
        let rendered = s.render();
        let back = ScenarioSpec::parse(&rendered).expect("canonical text parses");
        assert_eq!(back, s);
    }

    #[test]
    fn zero_variance_demand_has_zero_chebyshev_term() {
        // Deterministic demand: Var(Y) = 0, so c = E(Y) exactly whatever ρ.
        for rho in [0.0, 0.5, 0.96] {
            let spec = TaskSpec {
                name: "t".into(),
                tuf: TufSpec::Step {
                    umax: 1.0,
                    step_at_us: 1_000,
                    termination_us: 1_000,
                },
                max_arrivals: 1.0,
                window_us: 1_000,
                demand: DemandSpec::Deterministic { cycles: 123_456.0 },
                nu: 1.0,
                rho,
                declared_allocation: None,
                arrival: None,
            };
            assert_eq!(spec.chebyshev_allocation(), Some(123_456.0));
        }
    }

    #[test]
    fn single_frequency_table_parses_with_fmax() {
        let s = ScenarioSpec::parse(
            "scenario solo\nfrequencies 64\nenergy E1\ntask t\n  tuf step 1 1000\n  uam 1 1000\n  demand det 10\n  assurance 1 0.5\nend\n",
        )
        .expect("parses");
        assert_eq!(s.frequencies_mhz, vec![64]);
        assert_eq!(s.f_max_mhz(), Some(64));
    }

    #[test]
    fn periodic_uam_degenerates_to_classical_utilization() {
        // ⟨1, P⟩ with a step TUF at ν = 1: D = P, so Theorem 1's speed
        // C/D equals the classical utilization C/P.
        let spec = TaskSpec {
            name: "t".into(),
            tuf: TufSpec::Step {
                umax: 1.0,
                step_at_us: 10_000,
                termination_us: 10_000,
            },
            max_arrivals: 1.0,
            window_us: 10_000,
            demand: DemandSpec::Deterministic { cycles: 200_000.0 },
            nu: 1.0,
            rho: 0.5,
            declared_allocation: None,
            arrival: None,
        };
        let task = spec.to_task().expect("valid");
        assert_eq!(task.critical_offset().as_micros(), spec.window_us);
        let rate = task.demand_rate();
        let classical = 200_000.0 / 10_000.0;
        assert!((rate - classical).abs() < 1e-9, "{rate} vs {classical}");
    }

    #[test]
    fn energy_knee_matches_closed_form() {
        // With S2 = 0 the knee is (S0 / 2S3)^(1/3).
        let e3 = EnergySpec::e3();
        let knee = e3.optimal_speed_mhz(100.0);
        let closed = (0.5f64 * 100.0 * 100.0 * 100.0 / 2.0).cbrt();
        assert!((knee - closed).abs() < 1e-3, "{knee} vs {closed}");
        assert_eq!(EnergySpec::e1().optimal_speed_mhz(100.0), 0.0);
    }
}
