//! Source spans for `.scn` scenario files: a lexical re-scan that maps
//! diagnostic entities back to the token extents they came from, so
//! SARIF output can carry precise `region`s (start/end line and column)
//! instead of whole-file locations.
//!
//! The scan is deliberately independent of the parser: it only looks at
//! line structure and whitespace-separated tokens, so it succeeds on
//! files the parser rejects (and the map is simply sparse wherever the
//! text is too mangled to anchor). Columns are 1-based byte offsets and
//! `end_col` is exclusive, matching SARIF's `endColumn` convention.

use std::fmt;

/// One token extent in a `.scn` file. Lines and columns are 1-based;
/// `end_col` points one past the last byte, as SARIF's `endColumn` does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// 1-based line of the first byte.
    pub start_line: u32,
    /// 1-based column of the first byte.
    pub start_col: u32,
    /// 1-based line of the last byte (always `start_line`: `.scn`
    /// tokens never wrap).
    pub end_line: u32,
    /// 1-based exclusive end column.
    pub end_col: u32,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}-{}:{}",
            self.start_line, self.start_col, self.end_line, self.end_col
        )
    }
}

/// Token extents recovered from one `.scn` text, keyed the way
/// diagnostics name their entities (see [`SourceMap::resolve`]).
#[derive(Debug, Clone, Default)]
pub struct SourceMap {
    /// The name token on the `scenario` header line.
    scenario: Option<Span>,
    /// `(mhz, span)` per numeric token on the `frequencies` line.
    frequencies: Vec<(u64, Span)>,
    /// The value token(s) on the `energy` line, merged into one span.
    energy: Option<Span>,
    /// `(name, span)` per `task` header name token.
    tasks: Vec<(String, Span)>,
}

/// Whitespace-separated tokens of one line with their 1-based byte
/// columns (`start`, exclusive `end`).
fn tokens(line: &str) -> Vec<(u32, u32, &str)> {
    let mut out = Vec::new();
    let bytes = line.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i].is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        while i < bytes.len() && !bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        #[allow(clippy::cast_possible_truncation)]
        out.push((start as u32 + 1, i as u32 + 1, &line[start..i]));
    }
    out
}

impl SourceMap {
    /// Scans scenario text for anchorable tokens. Never fails: unknown
    /// or malformed lines simply contribute nothing.
    #[must_use]
    pub fn scan(text: &str) -> SourceMap {
        let mut map = SourceMap::default();
        for (idx, line) in text.lines().enumerate() {
            #[allow(clippy::cast_possible_truncation)]
            let lineno = idx as u32 + 1;
            let toks = tokens(line);
            let span = |start: u32, end: u32| Span {
                start_line: lineno,
                start_col: start,
                end_line: lineno,
                end_col: end,
            };
            match toks.as_slice() {
                [(_, _, "scenario"), (s, e, _), ..] if map.scenario.is_none() => {
                    map.scenario = Some(span(*s, *e));
                }
                [(_, _, "frequencies"), rest @ ..] if map.frequencies.is_empty() => {
                    for (s, e, tok) in rest {
                        if let Ok(mhz) = tok.parse::<u64>() {
                            map.frequencies.push((mhz, span(*s, *e)));
                        }
                    }
                }
                [(_, _, "energy"), rest @ ..] if map.energy.is_none() && !rest.is_empty() => {
                    let (first, _, _) = rest[0];
                    let (_, last, _) = rest[rest.len() - 1];
                    map.energy = Some(span(first, last));
                }
                [(_, _, "task"), (s, e, name), ..] => {
                    map.tasks.push(((*name).to_string(), span(*s, *e)));
                }
                _ => {}
            }
        }
        map
    }

    /// Maps a diagnostic entity to its token span, following the entity
    /// grammar the passes emit:
    ///
    /// * `None` → the scenario name token (the finding concerns the
    ///   scenario as a whole);
    /// * a bare task name → that task's header name token;
    /// * `frequency <N> MHz` or `<N> MHz` → the matching numeric token
    ///   on the `frequencies` line;
    /// * `energy model <name>` → the `energy` line's value tokens.
    ///
    /// Returns `None` when the entity has no anchorable token (e.g. a
    /// task name the scan never saw) — the SARIF writer then omits the
    /// region rather than guessing.
    #[must_use]
    pub fn resolve(&self, entity: Option<&str>) -> Option<Span> {
        let Some(entity) = entity else {
            return self.scenario;
        };
        if entity.starts_with("energy model") {
            return self.energy;
        }
        let freq_name = entity
            .strip_prefix("frequency ")
            .unwrap_or(entity)
            .strip_suffix(" MHz");
        if let Some(mhz) = freq_name.and_then(|n| n.parse::<u64>().ok()) {
            return self
                .frequencies
                .iter()
                .find(|(f, _)| *f == mhz)
                .map(|(_, s)| *s);
        }
        self.tasks
            .iter()
            .find(|(name, _)| name == entity)
            .map(|(_, s)| *s)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    const SCN: &str = "\
scenario demo
frequencies 36 55 100
energy E2
task control
  tuf step 10 10000
end
task backup
end
";

    #[test]
    fn scan_anchors_every_entity_kind() {
        let map = SourceMap::scan(SCN);
        let scenario = map.resolve(None).unwrap();
        assert_eq!(
            (scenario.start_line, scenario.start_col, scenario.end_col),
            (1, 10, 14)
        );
        let f55 = map.resolve(Some("frequency 55 MHz")).unwrap();
        assert_eq!((f55.start_line, f55.start_col, f55.end_col), (2, 16, 18));
        assert_eq!(map.resolve(Some("55 MHz")), Some(f55));
        let energy = map.resolve(Some("energy model E2")).unwrap();
        assert_eq!(
            (energy.start_line, energy.start_col, energy.end_col),
            (3, 8, 10)
        );
        let control = map.resolve(Some("control")).unwrap();
        assert_eq!(
            (control.start_line, control.start_col, control.end_col),
            (4, 6, 13)
        );
        let backup = map.resolve(Some("backup")).unwrap();
        assert_eq!(backup.start_line, 7);
    }

    #[test]
    fn unknown_entities_resolve_to_nothing() {
        let map = SourceMap::scan(SCN);
        assert_eq!(map.resolve(Some("frequency 99 MHz")), None);
        assert_eq!(map.resolve(Some("ghost-task")), None);
        assert_eq!(SourceMap::scan("").resolve(None), None);
    }

    #[test]
    fn scan_survives_mangled_text() {
        let map = SourceMap::scan("scenario\nfrequencies x y\ntask\nenergy");
        assert_eq!(map.resolve(None), None);
        assert_eq!(map.resolve(Some("frequency 36 MHz")), None);
        assert_eq!(map.resolve(Some("energy model E1")), None);
    }
}
