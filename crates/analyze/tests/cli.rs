#![allow(clippy::expect_used)] // test code: panicking on bad setup is the point

//! Binary-level tests for the CLI contract added with the semantic
//! engine: the strict 2 > 1 > 0 exit ordering across multiple inputs,
//! SARIF output (`--format sarif`, `--check`), and machine-applicable
//! fixes (`--fix`, `--apply`).

use std::process::Command;

use eua_analyze::{json, validate_sarif};

fn scn_path(name: &str) -> String {
    format!("{}/scenarios/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_eua-analyze"))
}

#[test]
fn parse_failure_outranks_error_diagnostics() {
    // invalid.scn alone exits 1; adding a malformed file must exit 2
    // while still analyzing (and printing) the parseable input.
    let out = bin()
        .args([
            "check",
            &scn_path("invalid.scn"),
            &scn_path("malformed.scn"),
        ])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("kitchen-sink"),
        "parseable input must still be analyzed: {stdout}"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("malformed.scn"), "{stderr}");
}

#[test]
fn error_diagnostics_outrank_clean_inputs() {
    let out = bin()
        .args(["check", &scn_path("valid.scn"), &scn_path("invalid.scn")])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn help_documents_the_exit_code_contract() {
    let out = bin().arg("--help").output().expect("runs");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in ["exit status", "sarif", "--fix", "--apply", "--check"] {
        assert!(stdout.contains(needle), "help must mention {needle:?}");
    }
}

#[test]
fn sarif_output_round_trips_and_validates() {
    let out = bin()
        .args([
            "check",
            "--format",
            "sarif",
            "--check",
            &scn_path("valid.scn"),
            &scn_path("invalid.scn"),
        ])
        .output()
        .expect("runs");
    // invalid.scn has error diagnostics, so exit 1 — but the SARIF
    // self-check must have passed (a failure would exit 2).
    assert_eq!(
        out.status.code(),
        Some(1),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("utf-8");
    let doc = json::parse(&stdout).expect("sarif parses as json");
    assert_eq!(doc.render(), stdout, "byte-exact round-trip");
    validate_sarif(&stdout).expect("pinned subset");
    assert!(stdout.contains("\"uri\": "), "physical locations present");
}

#[test]
fn sarif_check_flag_requires_sarif_format() {
    let out = bin()
        .args(["check", "--check", &scn_path("valid.scn")])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn fix_dry_run_prints_a_repaired_scenario_without_touching_the_file() {
    let before = std::fs::read_to_string(scn_path("fixable.scn")).expect("readable");
    let out = bin()
        .args(["check", "--fix", &scn_path("fixable.scn")])
        .output()
        .expect("runs");
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let after = std::fs::read_to_string(scn_path("fixable.scn")).expect("readable");
    assert_eq!(before, after, "dry run must not rewrite the file");

    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("frequencies 25 50 100"), "{stdout}");
    assert!(stdout.contains("assurance 1.0 0.96"), "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    for code in [
        "freq-table-invalid",
        "assurance-nu-range",
        "assurance-rho-range",
        "tuf-unordered-breakpoints",
        "uam-arrival-bound",
        "sem-chebyshev-allocation-mismatch",
    ] {
        assert!(stderr.contains(code), "summary must name {code}: {stderr}");
    }
}

#[test]
fn fix_apply_rewrites_the_file_to_a_clean_fixed_point() {
    // Work on a copy under the test temp dir; never touch the fixture.
    let tmp = format!("{}/fixable-copy.scn", env!("CARGO_TARGET_TMPDIR"));
    std::fs::copy(scn_path("fixable.scn"), &tmp).expect("copy fixture");

    let out = bin()
        .args(["check", "--fix", "--apply", &tmp])
        .output()
        .expect("runs");
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The rewritten file parses and re-analyzes clean of errors…
    let check = bin().args(["check", &tmp]).output().expect("runs");
    assert_eq!(
        check.status.code(),
        Some(0),
        "fixed file must be clean: {}",
        String::from_utf8_lossy(&check.stdout)
    );

    // …and a second --fix pass is a no-op (idempotent fixed point).
    let again = bin().args(["check", "--fix", &tmp]).output().expect("runs");
    let stderr = String::from_utf8_lossy(&again.stderr);
    assert!(stderr.contains("nothing to fix"), "{stderr}");
}

#[test]
fn fix_rejects_all_examples_and_bare_apply() {
    let out = bin()
        .args(["check", "--fix", "--all-examples"])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2));
    let out = bin()
        .args(["check", "--apply", &scn_path("valid.scn")])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2));
}
