#![allow(clippy::expect_used)] // test/demo code: panicking on bad setup is the point

//! Integration tests for the analyzer: the acceptance criteria are that
//! purpose-built invalid scenarios surface at least six distinct
//! diagnostic codes, every shipped workload analyzes error-free, the
//! JSON renderer emits valid JSON, and the `eua-analyze` binary's exit
//! codes follow the 0/1/2 contract.

use std::collections::BTreeSet;
use std::process::Command;

use eua_analyze::{analyze, render_json_reports, shipped_scenarios, Report, ScenarioSpec};

fn scn_path(name: &str) -> String {
    format!("{}/scenarios/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn analyze_file(name: &str) -> Report {
    let text = std::fs::read_to_string(scn_path(name)).expect("scenario file readable");
    let spec = ScenarioSpec::parse(&text).expect("scenario file parses");
    analyze(&spec)
}

#[test]
fn invalid_scenario_surfaces_many_distinct_codes() {
    let report = analyze_file("invalid.scn");
    let codes: BTreeSet<&str> = report.codes();
    let expected = [
        "assurance-nu-range",
        "assurance-rho-range",
        "uam-arrival-bound",
        "uam-zero-window",
        "demand-invalid",
        "chebyshev-unbounded",
        "tuf-increasing",
        "tuf-zero-termination",
        "freq-table-invalid",
        "duplicate-task-name",
    ];
    for code in expected {
        assert!(
            codes.contains(code),
            "missing `{code}` in {codes:?}\n{}",
            report.render_text()
        );
    }
    assert!(expected.len() >= 6);
    assert!(report.has_errors());
}

#[test]
fn valid_scenario_file_is_clean() {
    let report = analyze_file("valid.scn");
    assert!(!report.has_errors(), "{}", report.render_text());
}

#[test]
fn all_shipped_examples_are_error_free() {
    for scenario in shipped_scenarios().expect("registry builds") {
        let report = analyze(&scenario);
        assert!(
            !report.has_errors(),
            "`{}` regressed:\n{}",
            scenario.name,
            report.render_text()
        );
    }
}

#[test]
fn json_output_is_valid_json() {
    let reports: Vec<Report> = vec![analyze_file("invalid.scn"), analyze_file("valid.scn")];
    let json = render_json_reports(&reports);
    let value = json::parse(&json).expect("valid JSON");
    let arr = match value {
        json::Value::Array(a) => a,
        other => panic!("expected array, got {other:?}"),
    };
    assert_eq!(arr.len(), 2);
    for report in arr {
        let json::Value::Object(obj) = report else {
            panic!("expected object")
        };
        assert!(obj.iter().any(|(k, _)| k == "scenario"));
        assert!(obj
            .iter()
            .any(|(k, v)| k == "diagnostics" && matches!(v, json::Value::Array(_))));
        let summary = obj
            .iter()
            .find(|(k, _)| k == "summary")
            .map(|(_, v)| v)
            .expect("summary present");
        assert!(matches!(summary, json::Value::Object(_)));
    }
}

// ---------------------------------------------------------------------
// Binary-level tests: exit codes and output framing.
// ---------------------------------------------------------------------

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_eua-analyze"))
}

#[test]
fn binary_exits_zero_on_valid_scenario() {
    let out = bin()
        .args(["check", &scn_path("valid.scn")])
        .output()
        .expect("runs");
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("radar-demo"), "{stdout}");
}

#[test]
fn binary_exits_one_on_errors() {
    let out = bin()
        .args(["check", &scn_path("invalid.scn")])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("error[assurance-nu-range]"), "{stdout}");
}

#[test]
fn binary_exits_two_on_missing_file_and_usage() {
    let out = bin()
        .args(["check", "no-such-file.scn"])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2));
    let out = bin().output().expect("runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn binary_all_examples_is_clean_and_json_parses() {
    let out = bin()
        .args(["check", "--all-examples", "--format", "json"])
        .output()
        .expect("runs");
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let value = json::parse(stdout.trim()).expect("valid JSON");
    let json::Value::Array(reports) = value else {
        panic!("expected array")
    };
    assert!(
        reports.len() >= 9,
        "expected every shipped workload, got {}",
        reports.len()
    );
}

#[test]
fn binary_codes_lists_the_contract() {
    let out = bin().arg("codes").output().expect("runs");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for code in [
        "tuf-increasing",
        "chebyshev-unbounded",
        "dominated-frequency",
        "overload",
    ] {
        assert!(stdout.contains(code), "missing {code} in codes listing");
    }
}

/// A minimal recursive-descent JSON parser used only to *validate* the
/// analyzer's output (the workspace has no serde). Accepts the full JSON
/// grammar; numbers are kept as raw text.
mod json {
    /// Parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Number(String),
        String(String),
        Array(Vec<Value>),
        Object(Vec<(String, Value)>),
    }

    /// Parses `text` as one JSON document.
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes: Vec<char> = text.chars().collect();
        let mut pos = 0;
        let value = parse_value(&bytes, &mut pos)?;
        skip_ws(&bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(b: &[char], pos: &mut usize) {
        while b.get(*pos).is_some_and(|c| c.is_whitespace()) {
            *pos += 1;
        }
    }

    fn expect(b: &[char], pos: &mut usize, c: char) -> Result<(), String> {
        if b.get(*pos) == Some(&c) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{c}` at {pos}, found {:?}", b.get(*pos)))
        }
    }

    fn parse_value(b: &[char], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some('{') => parse_object(b, pos),
            Some('[') => parse_array(b, pos),
            Some('"') => Ok(Value::String(parse_string(b, pos)?)),
            Some('t') => parse_lit(b, pos, "true", Value::Bool(true)),
            Some('f') => parse_lit(b, pos, "false", Value::Bool(false)),
            Some('n') => parse_lit(b, pos, "null", Value::Null),
            Some(c) if *c == '-' || c.is_ascii_digit() => parse_number(b, pos),
            other => Err(format!("unexpected {other:?} at {pos}")),
        }
    }

    fn parse_lit(b: &[char], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
        for c in lit.chars() {
            expect(b, pos, c)?;
        }
        Ok(value)
    }

    fn parse_number(b: &[char], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        if b.get(*pos) == Some(&'-') {
            *pos += 1;
        }
        while b
            .get(*pos)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-'))
        {
            *pos += 1;
        }
        let text: String = b[start..*pos].iter().collect();
        if text.is_empty() || text == "-" {
            return Err(format!("bad number at {start}"));
        }
        text.parse::<f64>()
            .map_err(|e| format!("bad number `{text}`: {e}"))?;
        Ok(Value::Number(text))
    }

    fn parse_string(b: &[char], pos: &mut usize) -> Result<String, String> {
        expect(b, pos, '"')?;
        let mut out = String::new();
        loop {
            match b.get(*pos) {
                Some('"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some('\\') => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some('"') => out.push('"'),
                        Some('\\') => out.push('\\'),
                        Some('/') => out.push('/'),
                        Some('n') => out.push('\n'),
                        Some('t') => out.push('\t'),
                        Some('r') => out.push('\r'),
                        Some('b') => out.push('\u{8}'),
                        Some('f') => out.push('\u{c}'),
                        Some('u') => {
                            let hex: String = b
                                .get(*pos + 1..*pos + 5)
                                .ok_or("truncated \\u escape")?
                                .iter()
                                .collect();
                            let n = u32::from_str_radix(&hex, 16)
                                .map_err(|e| format!("bad \\u: {e}"))?;
                            out.push(char::from_u32(n).unwrap_or('\u{fffd}'));
                            *pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    *pos += 1;
                }
                Some(c) if (*c as u32) < 0x20 => {
                    return Err(format!("unescaped control char at {pos}"));
                }
                Some(c) => {
                    out.push(*c);
                    *pos += 1;
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn parse_array(b: &[char], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, '[')?;
        let mut items = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&']') {
            *pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(parse_value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(',') => *pos += 1,
                Some(']') => {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                other => return Err(format!("expected `,` or `]`, found {other:?}")),
            }
        }
    }

    fn parse_object(b: &[char], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, '{')?;
        let mut items = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&'}') {
            *pos += 1;
            return Ok(Value::Object(items));
        }
        loop {
            skip_ws(b, pos);
            let key = parse_string(b, pos)?;
            skip_ws(b, pos);
            expect(b, pos, ':')?;
            let value = parse_value(b, pos)?;
            items.push((key, value));
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(',') => *pos += 1,
                Some('}') => {
                    *pos += 1;
                    return Ok(Value::Object(items));
                }
                other => return Err(format!("expected `,` or `}}`, found {other:?}")),
            }
        }
    }
}
