#![allow(clippy::expect_used)] // test code: panicking on bad setup is the point

//! Golden semantic verdicts over every shipped example workload.
//!
//! These pins are part of the analyzer's output contract: a change to
//! the demand-bound engine, the Chebyshev allocation, or a shipped
//! scenario that flips one of these verdicts is a behavior change and
//! must update this table deliberately.

use eua_analyze::{
    analyze, feasibility_floor, frequency_verdicts, lower, shipped_scenarios, verdict_at_fmax,
    Verdict,
};

/// `(scenario, verdict at f_max, static feasibility floor in MHz)`.
const GOLDEN: &[(&str, Verdict, Option<u64>)] = &[
    ("quickstart", Verdict::Feasible, Some(36)),
    ("awacs-tracking", Verdict::Infeasible, None),
    ("mobile-multimedia-E1", Verdict::Feasible, Some(64)),
    ("mobile-multimedia-E2", Verdict::Feasible, Some(64)),
    ("mobile-multimedia-E3", Verdict::Feasible, Some(64)),
    ("overload-survival-0.3", Verdict::Feasible, Some(36)),
    ("overload-survival-0.9", Verdict::Feasible, Some(91)),
    ("overload-survival-1.8", Verdict::Infeasible, None),
    ("energy-budget", Verdict::Feasible, Some(73)),
    ("fig3-linear-a2", Verdict::Feasible, Some(55)),
    ("theorem-underload", Verdict::Feasible, Some(91)),
];

#[test]
fn shipped_examples_match_their_pinned_verdicts() {
    let scenarios = shipped_scenarios().expect("registry builds");
    assert_eq!(
        scenarios.len(),
        GOLDEN.len(),
        "a shipped scenario was added or removed; update the golden table"
    );
    for spec in &scenarios {
        let &(_, want_verdict, want_floor) = GOLDEN
            .iter()
            .find(|(name, _, _)| *name == spec.name)
            .unwrap_or_else(|| panic!("`{}` missing from the golden table", spec.name));
        let ir = lower(spec).expect("shipped scenarios lower");
        let verdicts = frequency_verdicts(&ir);
        let top = verdict_at_fmax(&verdicts).expect("non-empty table");
        assert_eq!(
            top.verdict, want_verdict,
            "`{}` verdict at f_m flipped",
            spec.name
        );
        assert_eq!(
            feasibility_floor(&verdicts),
            want_floor,
            "`{}` feasibility floor moved",
            spec.name
        );
    }
}

#[test]
fn infeasible_examples_carry_witnesses_and_warnings() {
    for spec in shipped_scenarios().expect("registry builds") {
        let ir = lower(&spec).expect("lowers");
        let verdicts = frequency_verdicts(&ir);
        let top = verdict_at_fmax(&verdicts).expect("non-empty");
        let report = analyze(&spec);
        match top.verdict {
            Verdict::Infeasible => {
                let w = top.witness.as_ref().unwrap_or_else(|| {
                    panic!("`{}` infeasible without a witness window", spec.name)
                });
                assert!(
                    w.demand_cycles > w.capacity_cycles,
                    "`{}` witness does not overload: {w:?}",
                    spec.name
                );
                assert!(
                    report.codes().contains("sem-infeasible-at-fmax"),
                    "`{}` must warn sem-infeasible-at-fmax",
                    spec.name
                );
            }
            Verdict::Feasible => {
                assert!(
                    report.codes().contains("sem-feasibility-floor"),
                    "`{}` must report its feasibility floor",
                    spec.name
                );
            }
            Verdict::Indeterminate => {
                assert!(
                    report.codes().contains("sem-indeterminate"),
                    "`{}` must report indeterminacy",
                    spec.name
                );
            }
        }
        // The semantic pass never *adds* errors: shipped examples stay
        // error-free even when deliberately overloaded.
        assert!(
            !report.has_errors(),
            "`{}` gained errors:\n{}",
            spec.name,
            report.render_text()
        );
    }
}
