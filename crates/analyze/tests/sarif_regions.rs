#![allow(clippy::expect_used, clippy::unwrap_used)] // test code

//! Golden pin for SARIF `region` output: findings on file-backed
//! scenarios carry start/end line-and-column extents for the exact
//! token the diagnostic names. A byte drift here means the span
//! scanner, the SARIF writer, or the fixture scenario changed — all
//! deliberate events that must update `fixtures/regions.sarif`.
//!
//! Regenerate with:
//!
//! ```text
//! cargo run -p eua-analyze -- check --format sarif --check \
//!     crates/analyze/tests/fixtures/regions.scn \
//!     > crates/analyze/tests/fixtures/regions.sarif
//! ```

use eua_analyze::json::{self, Json};
use eua_analyze::{analyze, render_sarif_with_spans, validate_sarif, ScenarioSpec};

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()))
}

/// The exact invocation the CLI performs for a file-backed scenario,
/// reproduced in-process.
fn render_fixture_sarif() -> String {
    let text = fixture("regions.scn");
    let (spec, map) = ScenarioSpec::parse_with_spans(&text).expect("fixture parses");
    let reports = vec![analyze(&spec)];
    let uris = vec![Some(
        "crates/analyze/tests/fixtures/regions.scn".to_string(),
    )];
    render_sarif_with_spans(&reports, &uris, &[Some(map)])
}

#[test]
fn sarif_regions_are_golden() {
    let rendered = render_fixture_sarif();
    assert_eq!(
        rendered,
        fixture("regions.sarif"),
        "SARIF region output drifted; regenerate the fixture if deliberate"
    );
}

#[test]
fn golden_sarif_validates_and_round_trips() {
    let text = fixture("regions.sarif");
    validate_sarif(&text).expect("golden must satisfy the pinned subset");
    assert_eq!(json::parse(&text).expect("valid json").render(), text);
}

/// The regions must anchor the *named tokens*: the `assurance-nu-range`
/// finding points at the task-name token, the `dominated-frequency`
/// finding at the `36` token on the frequencies line.
#[test]
fn regions_anchor_the_named_tokens() {
    let doc = json::parse(&render_fixture_sarif()).expect("valid json");
    let results = doc.get("runs").and_then(Json::as_arr).expect("runs")[0]
        .get("results")
        .and_then(Json::as_arr)
        .expect("results")
        .to_vec();
    let region_of = |rule: &str| -> (u64, u64, u64, u64) {
        let result = results
            .iter()
            .find(|r| r.get("ruleId").and_then(Json::as_str) == Some(rule))
            .unwrap_or_else(|| panic!("no `{rule}` result"));
        let region = result
            .get("locations")
            .and_then(Json::as_arr)
            .expect("locations")[0]
            .get("physicalLocation")
            .and_then(|p| p.get("region"))
            .unwrap_or_else(|| panic!("`{rule}` carries no region"));
        let coord = |k: &str| match region.get(k) {
            Some(Json::Num(n)) => n.parse::<u64>().expect("integer coord"),
            _ => panic!("missing {k}"),
        };
        (
            coord("startLine"),
            coord("startColumn"),
            coord("endLine"),
            coord("endColumn"),
        )
    };
    // `task sensor` on line 4: the name token spans columns 6..12.
    assert_eq!(region_of("assurance-nu-range"), (4, 6, 4, 12));
    // `frequencies 36 55 100` on line 2: the `36` token spans 13..15.
    assert_eq!(region_of("dominated-frequency"), (2, 13, 2, 15));
}
