//! Proptest pin: every workload-universe scenario renders to `.scn`
//! text that re-parses **byte-identically** and raises back into an
//! equivalent simulator workload.
//!
//! The chaos campaign (ISSUE 8) leans on this: journal resume and the
//! shrinker both re-derive scenarios from their `(family, cell, seed)`
//! address and compare *rendered text*, so any parse → render drift
//! would break resume byte-identity. This suite swept the generated
//! name space and found the `rest.join(" ")` whitespace collapse the
//! parser used to apply to `scenario`/`task` names; the fix preserves
//! the raw line remainder.

#![allow(missing_docs)]

use eua_analyze::scenario::{EnergySpec, ScenarioSpec};
use eua_platform::{Frequency, FrequencyTable};
use eua_workload::UniverseFamily;
use proptest::prelude::*;

/// `.scn`-safe name characters: no `#` (comment start), no newlines.
const NAME_ALPHABET: [char; 13] = [
    'a', 'b', 'c', 'x', 'y', 'z', '0', '9', ' ', ' ', '.', '_', '-',
];

fn case_budget() -> u32 {
    std::env::var("EUA_UNIVERSE_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32)
}

// proptest's documented config idiom (`..ProptestConfig::default()`)
// trips needless_update because the struct carries hidden fields.
#[allow(clippy::needless_update)]
fn proptest_config() -> ProptestConfig {
    ProptestConfig {
        cases: case_budget(),
        ..ProptestConfig::default()
    }
}

proptest! {
    #![proptest_config(proptest_config())]

    #[test]
    fn every_universe_scenario_round_trips_byte_identically(
        family_idx in 0usize..UniverseFamily::ALL.len(),
        cell in 0u32..64,
        seed in 0u64..1_000,
    ) {
        let family = UniverseFamily::ALL[family_idx];
        let f_max = Frequency::from_mhz(100);
        let scenario = family
            .generate(cell, seed, f_max)
            .expect("universe cells are valid by construction");
        let table = FrequencyTable::new([36, 55, 64, 73, 82, 91, 100]).expect("table");
        let spec = ScenarioSpec::from_workload(
            &scenario.name,
            &scenario.workload,
            &table,
            EnergySpec::e1(),
        )
        .expect("universe arrival patterns are .scn-expressible");

        let rendered = spec.render();
        let reparsed = ScenarioSpec::parse(&rendered).expect("canonical text parses");
        prop_assert_eq!(&reparsed, &spec, "parse(render(spec)) must equal spec");
        prop_assert_eq!(
            reparsed.render(),
            rendered.clone(),
            "render must be a fixpoint of parse"
        );

        // And the raised workload drives the same arrival machinery.
        let raised = reparsed.to_workload().expect("raises");
        prop_assert_eq!(&raised.patterns, &scenario.workload.patterns);
        prop_assert_eq!(raised.tasks.len(), scenario.workload.tasks.len());
        for ((_, a), (_, b)) in raised.tasks.iter().zip(scenario.workload.tasks.iter()) {
            prop_assert_eq!(a.name(), b.name());
            prop_assert_eq!(a.allocation(), b.allocation());
            prop_assert_eq!(a.critical_offset(), b.critical_offset());
        }
    }

    #[test]
    fn names_never_drift_through_parse_render(
        // Names drawn from the .scn-safe alphabet, including interior
        // runs of spaces (the historical drift source). The vendored
        // proptest shim has no regex strategies, so build from indices.
        indices in proptest::collection::vec(0usize..NAME_ALPHABET.len(), 1..32),
    ) {
        let raw: String = indices.iter().map(|&i| NAME_ALPHABET[i]).collect();
        // The parser trims each line, so leading/trailing spaces cannot
        // belong to a name; interior runs are the interesting part.
        let name = raw.trim().to_string();
        prop_assume!(!name.is_empty());
        let text = format!(
            "scenario {name}\ntask {name}\n  tuf step 1.0 1000\n  uam 1.0 1000\n  demand det 10.0\n  assurance 1.0 0.5\nend\n"
        );
        let spec = ScenarioSpec::parse(&text).expect("parses");
        prop_assert_eq!(&spec.name, &name);
        prop_assert_eq!(&spec.tasks[0].name, &name);
        let rendered = spec.render();
        let reparsed = ScenarioSpec::parse(&rendered).expect("reparses");
        prop_assert_eq!(&reparsed, &spec);
        prop_assert_eq!(reparsed.render(), rendered);
    }
}
