//! `eua-audit` — offline translation validation of EUA\* engine runs.
//!
//! The simulator can record a [`RunCertificate`]: a self-contained log of
//! every scheduling decision, its self-explanation, and every energy
//! charge of one run (see [`eua_sim::certificate`]). This crate is the
//! *independent checker* of that record. It never runs the engine and
//! deliberately does not link `eua-core`; instead it re-derives the
//! paper's invariants from the certificate alone:
//!
//! * **UER recomputation** — every certified utility-and-energy ratio is
//!   recomputed from the declared TUF and Martin energy model at `f_m`
//!   (`aud-uer-mismatch`);
//! * **schedule reconstruction** — the certified tentative schedule must
//!   equal the one greedy non-increasing-UER insertion rebuilds, stay
//!   critical-time ordered, and meet every termination when replayed
//!   back-to-back at `f_m` (`aud-schedule-order`,
//!   `aud-schedule-infeasible`);
//! * **abort legality** — every policy abort must carry a valid
//!   infeasibility witness (`aud-abort-illegal`);
//! * **DVS bound** — the chosen frequency must be the table's lowest
//!   speed at or above the certified look-ahead demand, raised by the
//!   UER clamp when active (`aud-dvs-out-of-bound`);
//! * **energy accounting** — each charge must match Martin's
//!   `E(f) = S3·f² + S2·f + S1 + S0/f` per cycle (or the idle-power
//!   bill) and the charges must sum to the certified total
//!   (`aud-energy-mismatch`);
//! * **UAM compliance** — the certified arrival stream must respect
//!   every task's `⟨a, P⟩` bound (`aud-uam-violation`).
//!
//! Findings reuse the `eua-analyze` diagnostic machinery ([`Report`],
//! [`DiagCode`], text/JSON/SARIF renderers), and the `eua-audit` binary
//! keeps the same `2 > 1 > 0` exit contract.
//!
//! Policies that cannot explain themselves (no
//! [`eua_sim::DecisionExplanation`] on an event) are audited at the
//! engine level only: referenced jobs must exist, aborted jobs must be
//! live, and the chosen frequency must come from the policy-visible
//! table.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;

use eua_analyze::{DiagCode, Diagnostic, Report};
use eua_platform::{
    select_freq, Cycles, EnergyModel, EnergySetting, Frequency, FrequencyTable, SimTime,
};
use eua_sim::{EventRecord, JobId, JobSnapshot, RunCertificate};
use eua_tuf::Tuf;

/// Every diagnostic code this crate can emit, in stable order (the
/// `eua-audit codes` listing; CI checks each is registered in the shared
/// `eua-analyze` registry).
pub const AUDIT_CODES: [DiagCode; 8] = [
    DiagCode::AudMalformedCertificate,
    DiagCode::AudUerMismatch,
    DiagCode::AudScheduleOrder,
    DiagCode::AudScheduleInfeasible,
    DiagCode::AudAbortIllegal,
    DiagCode::AudDvsOutOfBound,
    DiagCode::AudEnergyMismatch,
    DiagCode::AudUamViolation,
];

/// Relative tolerance for comparing certified against recomputed floats.
/// The recomputation performs the same `f64` operations the engine did
/// on byte-identical inputs (the JSON round-trip is exact), so the slack
/// only forgives benign re-association — forged values sit far outside.
const REL_TOL: f64 = 1e-9;

/// Findings of one kind are capped per audit so a systemically corrupt
/// certificate cannot flood the report; the cap is noted when hit.
const MAX_PER_CODE: usize = 16;

fn close(a: f64, b: f64) -> bool {
    if a == b || (a.is_nan() && b.is_nan()) {
        return true;
    }
    (a - b).abs() <= REL_TOL * a.abs().max(b.abs()).max(1.0)
}

/// Parses and audits certificate text; a parse failure becomes a single
/// `aud-malformed-certificate` finding instead of a hard error, so one
/// corrupt file cannot hide findings in the others.
#[must_use]
pub fn audit_text(label: &str, text: &str) -> Report {
    match RunCertificate::parse(text) {
        Ok(cert) => {
            let mut report = audit(&cert);
            report.scenario = label.to_string();
            report
        }
        Err(e) => {
            let mut report = Report::new(label);
            report.push(Diagnostic::new(
                DiagCode::AudMalformedCertificate,
                format!("certificate does not parse: {e}"),
            ));
            report
        }
    }
}

/// Audits a parsed certificate, re-deriving every invariant listed in
/// the crate docs. The returned report is sorted most severe first; all
/// `aud-*` codes are Error severity, so [`Report::has_errors`] is the
/// accept/reject verdict.
#[must_use]
pub fn audit(cert: &RunCertificate) -> Report {
    let mut sink = Sink {
        report: Report::new(format!("{} seed {}", cert.policy, cert.seed)),
        counts: BTreeMap::new(),
    };
    if let Some(env) = Env::build(cert, &mut sink) {
        check_uam(cert, &mut sink);
        for (i, event) in cert.events.iter().enumerate() {
            check_event(i, event, &env, &mut sink);
        }
        check_energy(cert, &env, &mut sink);
    }
    let mut report = sink.finish();
    report.sort();
    report
}

/// A capping diagnostic sink (see [`MAX_PER_CODE`]).
struct Sink {
    report: Report,
    counts: BTreeMap<DiagCode, usize>,
}

impl Sink {
    fn push(&mut self, diagnostic: Diagnostic) {
        let n = self.counts.entry(diagnostic.code).or_insert(0);
        *n += 1;
        if *n <= MAX_PER_CODE {
            self.report.push(diagnostic);
        }
    }

    fn finish(mut self) -> Report {
        for (code, n) in &self.counts {
            if *n > MAX_PER_CODE {
                self.report.push(Diagnostic::new(
                    *code,
                    format!(
                        "{} further finding(s) of this code suppressed",
                        n - MAX_PER_CODE
                    ),
                ));
            }
        }
        self.report
    }
}

/// The audit context rebuilt from the certificate's declarative header:
/// both frequency tables, the energy model bound at each table's top
/// speed, and every task's re-raised TUF.
struct Env {
    /// The possibly fault-degraded table the policy planned against.
    policy_table: FrequencyTable,
    /// Martin's model bound at the *true* `f_m` — what the engine billed.
    true_model: EnergyModel,
    /// Martin's model bound at the *policy* `f_m` — what UER used.
    policy_model: EnergyModel,
    /// Re-raised TUFs, indexed like the certificate's task table.
    tufs: Vec<Tuf>,
    /// Idle power draw per µs.
    idle_power: f64,
}

impl Env {
    fn build(cert: &RunCertificate, sink: &mut Sink) -> Option<Env> {
        let malformed = |sink: &mut Sink, msg: String| {
            sink.push(Diagnostic::new(DiagCode::AudMalformedCertificate, msg));
        };
        let true_table = match FrequencyTable::new(cert.frequencies_mhz.iter().copied()) {
            Ok(t) => t,
            Err(e) => {
                malformed(sink, format!("frequency table unusable: {e}"));
                return None;
            }
        };
        let policy_table = match FrequencyTable::new(cert.policy_frequencies_mhz.iter().copied()) {
            Ok(t) => t,
            Err(e) => {
                malformed(sink, format!("policy frequency table unusable: {e}"));
                return None;
            }
        };
        let (s3, s2, s1_rel, s0_rel) = cert.energy_rel;
        // The name only labels output; all arithmetic uses the recorded
        // relative coefficients, re-bound exactly like
        // `EnergySetting::model` does.
        let setting = match EnergySetting::custom("certified", s3, s2, s1_rel, s0_rel) {
            Ok(s) => s,
            Err(e) => {
                malformed(sink, format!("energy coefficients unusable: {e}"));
                return None;
            }
        };
        let mut tufs = Vec::with_capacity(cert.tasks.len());
        for decl in &cert.tasks {
            match decl.tuf.to_tuf() {
                Ok(tuf) => tufs.push(tuf),
                Err(e) => {
                    malformed(sink, format!("task `{}` tuf unusable: {e}", decl.name));
                    return None;
                }
            }
        }
        if !(cert.idle_power.is_finite() && cert.idle_power >= 0.0) {
            malformed(sink, format!("idle power {} unusable", cert.idle_power));
            return None;
        }
        Some(Env {
            true_model: setting.model(true_table.max()),
            policy_model: setting.model(policy_table.max()),
            policy_table,
            tufs,
            idle_power: cert.idle_power,
        })
    }

    fn policy_f_max(&self) -> Frequency {
        self.policy_table.max()
    }
}

/// UAM `⟨a, P⟩` compliance of the certified arrival stream, by sliding
/// a two-pointer window over each task's arrivals: any half-open window
/// `[t, t+P)` may hold at most `a` of them. The first violating window
/// per task is reported.
fn check_uam(cert: &RunCertificate, sink: &mut Sink) {
    let mut per_task: Vec<Vec<SimTime>> = vec![Vec::new(); cert.tasks.len()];
    for &(at, task) in &cert.arrivals {
        match per_task.get_mut(task) {
            Some(v) => v.push(at),
            None => {
                sink.push(Diagnostic::new(
                    DiagCode::AudMalformedCertificate,
                    format!("arrival references unknown task index {task}"),
                ));
                return;
            }
        }
    }
    for (decl, times) in cert.tasks.iter().zip(&per_task) {
        let mut sorted = times.clone();
        sorted.sort();
        let bound = decl.max_arrivals as usize;
        let mut lo = 0usize;
        for hi in 0..sorted.len() {
            while sorted[hi] >= sorted[lo].saturating_add(decl.window) {
                lo += 1;
            }
            let count = hi - lo + 1;
            if count > bound {
                sink.push(
                    Diagnostic::for_entity(
                        DiagCode::AudUamViolation,
                        decl.name.clone(),
                        format!(
                            "{count} arrivals inside the window starting at {} us exceed \
                             the declared bound a = {} per P = {} us",
                            sorted[lo].as_micros(),
                            decl.max_arrivals,
                            decl.window.as_micros()
                        ),
                    )
                    .with_suggestion(
                        "if this run injected UAM faults on purpose, the violation is the \
                         expected degradation input, not a certificate defect",
                    ),
                );
                break;
            }
        }
    }
}

/// One reconstructed schedule candidate: the certified UER re-keyed onto
/// the ready snapshot's geometry.
#[derive(Debug, Clone, Copy)]
struct Cand {
    job: JobId,
    critical: SimTime,
    termination: SimTime,
    remaining: Cycles,
    key: f64,
}

/// NaN keys order as −∞ (strictly after every real key), mirroring the
/// production comparator's documented resolution.
fn sort_key(key: f64) -> f64 {
    if key.is_nan() {
        f64::NEG_INFINITY
    } else {
        key
    }
}

fn replay_feasible(now: SimTime, schedule: &[Cand], f_m: Frequency) -> bool {
    let mut t = now;
    for c in schedule {
        t = t.saturating_add(f_m.execution_time(c.remaining));
        if t > c.termination {
            return false;
        }
    }
    true
}

/// The auditor's own greedy construction (Algorithm 1 lines 12–18):
/// consider candidates in non-increasing key order (NaN last, ties by
/// earlier critical time then id), insert each at its `(critical, id)`
/// position, and keep the insertion only if every entry still meets its
/// termination when replayed back-to-back at `f_m`.
fn greedy_schedule(now: SimTime, mut cands: Vec<Cand>, f_m: Frequency, skip: bool) -> Vec<JobId> {
    cands.sort_by(|a, b| {
        sort_key(b.key)
            .total_cmp(&sort_key(a.key))
            .then_with(|| a.critical.cmp(&b.critical))
            .then_with(|| a.job.cmp(&b.job))
    });
    let mut sched: Vec<Cand> = Vec::with_capacity(cands.len());
    for c in cands {
        if c.key.is_nan() || c.key <= 0.0 {
            // Sorted non-increasing with NaN last: the first non-positive
            // (or NaN) key ends consideration entirely.
            break;
        }
        let pos = sched.partition_point(|e| (e.critical, e.job) < (c.critical, c.job));
        sched.insert(pos, c);
        if !replay_feasible(now, &sched, f_m) {
            sched.remove(pos);
            if skip {
                continue;
            }
            break;
        }
    }
    sched.iter().map(|c| c.job).collect()
}

fn event_entity(index: usize, at: SimTime) -> String {
    format!("event {index} @{}us", at.as_micros())
}

/// All per-event checks. Engine-level invariants apply to every event;
/// the Algorithm 1/2 re-derivations additionally apply when the policy
/// supplied a [`eua_sim::DecisionExplanation`].
fn check_event(index: usize, event: &EventRecord, env: &Env, sink: &mut Sink) {
    let entity = event_entity(index, event.at);
    let ready: BTreeMap<JobId, &JobSnapshot> = event.ready.iter().map(|s| (s.job, s)).collect();

    // Engine-level invariants: referenced jobs must be live, a decision
    // must not both run and abort a job, tasks must exist.
    for snap in &event.ready {
        if snap.task.index() >= env.tufs.len() {
            sink.push(Diagnostic::for_entity(
                DiagCode::AudMalformedCertificate,
                entity.clone(),
                format!(
                    "ready job {} references unknown task index {}",
                    snap.job.get(),
                    snap.task.index()
                ),
            ));
            return;
        }
    }
    if let Some(run) = event.run {
        if !ready.contains_key(&run) {
            sink.push(Diagnostic::for_entity(
                DiagCode::AudMalformedCertificate,
                entity.clone(),
                format!("dispatched job {} is not in the ready set", run.get()),
            ));
        }
        if event.aborts.contains(&run) {
            sink.push(Diagnostic::for_entity(
                DiagCode::AudMalformedCertificate,
                entity.clone(),
                format!("job {} is both dispatched and aborted", run.get()),
            ));
        }
        // The dispatch frequency must come from the table the policy was
        // shown (pre-fault-remap the engine records the request).
        if !env
            .policy_table
            .iter()
            .any(|f| f.as_mhz() == event.frequency.as_mhz())
        {
            sink.push(Diagnostic::for_entity(
                DiagCode::AudDvsOutOfBound,
                entity.clone(),
                format!(
                    "chosen frequency {} MHz is not in the policy-visible table",
                    event.frequency.as_mhz()
                ),
            ));
        }
    }
    for &abort in &event.aborts {
        if !ready.contains_key(&abort) {
            sink.push(Diagnostic::for_entity(
                DiagCode::AudMalformedCertificate,
                entity.clone(),
                format!("aborted job {} is not in the ready set", abort.get()),
            ));
        }
    }

    let Some(expl) = &event.explanation else {
        return;
    };
    let f_m = env.policy_f_max();
    let per_cycle_at_fm = env.policy_model.energy_per_cycle(f_m);

    // UER recomputation and completeness: every feasible ready job must
    // carry a certified UER matching `U(now + c_r/f_m − arrival) /
    // (E(f_m)·c_r)`, and no infeasible job may carry one.
    let uer_of: BTreeMap<JobId, f64> = expl.uer.iter().map(|u| (u.job, u.uer)).collect();
    for u in &expl.uer {
        let Some(snap) = ready.get(&u.job) else {
            sink.push(Diagnostic::for_entity(
                DiagCode::AudMalformedCertificate,
                entity.clone(),
                format!(
                    "UER entry for job {} absent from the ready set",
                    u.job.get()
                ),
            ));
            continue;
        };
        let predicted = event.at.saturating_add(f_m.execution_time(snap.remaining));
        let sojourn = predicted.saturating_since(snap.arrival);
        let utility = env.tufs[snap.task.index()].utility(sojourn);
        let expected = utility / (per_cycle_at_fm * snap.remaining.as_f64());
        if !close(expected, u.uer) {
            sink.push(Diagnostic::for_entity(
                DiagCode::AudUerMismatch,
                entity.clone(),
                format!(
                    "job {}: certified UER {} but recomputation at f_m = {} MHz gives {}",
                    u.job.get(),
                    u.uer,
                    f_m.as_mhz(),
                    expected
                ),
            ));
        }
    }
    for snap in &event.ready {
        let feasible =
            event.at.saturating_add(f_m.execution_time(snap.remaining)) <= snap.termination;
        if feasible && !uer_of.contains_key(&snap.job) {
            sink.push(Diagnostic::for_entity(
                DiagCode::AudUerMismatch,
                entity.clone(),
                format!(
                    "feasible ready job {} is missing from the certified UER set",
                    snap.job.get()
                ),
            ));
        }
        if !feasible && uer_of.contains_key(&snap.job) {
            sink.push(Diagnostic::for_entity(
                DiagCode::AudUerMismatch,
                entity.clone(),
                format!(
                    "infeasible job {} carries a UER (it should be aborted or skipped)",
                    snap.job.get()
                ),
            ));
        }
    }

    // Abort legality: the decision's abort list and the witness list must
    // agree, and each witness must prove `now + c_r/f_m > termination`.
    let witness_jobs: Vec<JobId> = expl.aborts.iter().map(|w| w.job).collect();
    if witness_jobs != event.aborts {
        sink.push(Diagnostic::for_entity(
            DiagCode::AudAbortIllegal,
            entity.clone(),
            format!(
                "abort list {:?} and witness list {:?} disagree",
                event.aborts.iter().map(|j| j.get()).collect::<Vec<_>>(),
                witness_jobs.iter().map(|j| j.get()).collect::<Vec<_>>()
            ),
        ));
    }
    for w in &expl.aborts {
        let Some(snap) = ready.get(&w.job) else {
            continue; // already flagged via event.aborts membership
        };
        let predicted = event.at.saturating_add(f_m.execution_time(w.remaining));
        if w.remaining != snap.remaining
            || w.termination != snap.termination
            || w.predicted_finish != predicted
            || predicted <= w.termination
        {
            sink.push(Diagnostic::for_entity(
                DiagCode::AudAbortIllegal,
                entity.clone(),
                format!(
                    "job {}: witness (remaining {}, termination {} us, predicted {} us) does \
                     not prove infeasibility at f_m = {} MHz",
                    w.job.get(),
                    w.remaining.get(),
                    w.termination.as_micros(),
                    w.predicted_finish.as_micros(),
                    f_m.as_mhz()
                ),
            ));
        }
    }

    // Schedule reconstruction: greedy insertion over the certified UERs
    // must reproduce the certified order exactly.
    let cands: Vec<Cand> = expl
        .uer
        .iter()
        .filter_map(|u| {
            ready.get(&u.job).map(|snap| Cand {
                job: u.job,
                critical: snap.critical,
                termination: snap.termination,
                remaining: snap.remaining,
                key: u.uer,
            })
        })
        .collect();
    let expected = greedy_schedule(event.at, cands, f_m, expl.skip_infeasible);
    let certified: Vec<JobId> = expl.schedule.iter().map(|e| e.job).collect();
    if expected != certified {
        sink.push(Diagnostic::for_entity(
            DiagCode::AudScheduleOrder,
            entity.clone(),
            format!(
                "certified schedule {:?} but greedy non-increasing-UER insertion \
                 reconstructs {:?}",
                certified.iter().map(|j| j.get()).collect::<Vec<_>>(),
                expected.iter().map(|j| j.get()).collect::<Vec<_>>()
            ),
        ));
    } else {
        // Witness replay: predicted finish times must be the back-to-back
        // cumulative sums and each must meet its termination. (Only
        // meaningful when the order itself verified.)
        let mut t = event.at;
        let mut prev: Option<(SimTime, JobId)> = None;
        for entry in &expl.schedule {
            let Some(snap) = ready.get(&entry.job) else {
                continue;
            };
            if let Some(p) = prev {
                if (snap.critical, entry.job) < p {
                    sink.push(Diagnostic::for_entity(
                        DiagCode::AudScheduleOrder,
                        entity.clone(),
                        format!(
                            "schedule is not critical-time ordered at job {}",
                            entry.job.get()
                        ),
                    ));
                }
            }
            prev = Some((snap.critical, entry.job));
            t = t.saturating_add(f_m.execution_time(snap.remaining));
            if entry.predicted_finish != t || t > snap.termination {
                sink.push(Diagnostic::for_entity(
                    DiagCode::AudScheduleInfeasible,
                    entity.clone(),
                    format!(
                        "job {}: certified finish {} us, replay gives {} us against \
                         termination {} us",
                        entry.job.get(),
                        entry.predicted_finish.as_micros(),
                        t.as_micros(),
                        snap.termination.as_micros()
                    ),
                ));
            }
        }
    }
    // The dispatched job must head the certified schedule.
    if event.run != certified.first().copied() {
        sink.push(Diagnostic::for_entity(
            DiagCode::AudScheduleOrder,
            entity.clone(),
            format!(
                "dispatch {:?} disagrees with the schedule head {:?}",
                event.run.map(|j| j.get()),
                certified.first().map(|j| j.get())
            ),
        ));
    }

    // DVS bound (Algorithm 2): the chosen frequency must be the lowest
    // table speed at or above the certified required speed, raised by
    // the UER clamp when one is certified. Without a DVS record (idle
    // decisions and the no-DVS ablation) the choice must be `f_m`.
    if event.run.is_some() {
        match &expl.dvs {
            Some(dvs) => {
                if !(dvs.required_speed >= 0.0 && dvs.required_speed <= f_m.as_f64()) {
                    sink.push(Diagnostic::for_entity(
                        DiagCode::AudDvsOutOfBound,
                        entity.clone(),
                        format!(
                            "certified required speed {} outside [0, f_m = {}]",
                            dvs.required_speed,
                            f_m.as_f64()
                        ),
                    ));
                }
                let mut expected = select_freq(&env.policy_table, dvs.required_speed);
                if let Some(clamp) = dvs.clamp {
                    expected = expected.max(clamp);
                }
                if event.frequency != expected {
                    sink.push(Diagnostic::for_entity(
                        DiagCode::AudDvsOutOfBound,
                        entity.clone(),
                        format!(
                            "chosen {} MHz but required speed {} (clamp {:?}) selects {} MHz",
                            event.frequency.as_mhz(),
                            dvs.required_speed,
                            dvs.clamp.map(|f| f.as_mhz()),
                            expected.as_mhz()
                        ),
                    ));
                }
            }
            None => {
                if event.frequency != f_m {
                    sink.push(Diagnostic::for_entity(
                        DiagCode::AudDvsOutOfBound,
                        entity.clone(),
                        format!(
                            "no DVS record, so the choice must be f_m = {} MHz, got {} MHz",
                            f_m.as_mhz(),
                            event.frequency.as_mhz()
                        ),
                    ));
                }
            }
        }
    }
}

/// Per-charge and cumulative energy audit against Martin's model (and
/// the idle-power bill), using the model bound at the *true* table's
/// `f_m` — degraded-DVS faults change what policies plan with, never
/// what the silicon bills.
fn check_energy(cert: &RunCertificate, env: &Env, sink: &mut Sink) {
    let mut total = 0.0f64;
    for (i, charge) in cert.charges.iter().enumerate() {
        let entity = format!("charge {i} @{}us", charge.at.as_micros());
        let expected = match charge.kind {
            eua_sim::ChargeKind::Idle => env.idle_power * charge.micros as f64,
            _ => {
                if charge.frequency_mhz == 0 {
                    sink.push(Diagnostic::for_entity(
                        DiagCode::AudMalformedCertificate,
                        entity,
                        format!("{} charge at 0 MHz", charge.kind.as_str()),
                    ));
                    total += charge.energy;
                    continue;
                }
                env.true_model
                    .energy_for(charge.cycles, Frequency::from_mhz(charge.frequency_mhz))
            }
        };
        if !close(expected, charge.energy) {
            sink.push(Diagnostic::for_entity(
                DiagCode::AudEnergyMismatch,
                entity,
                format!(
                    "{} charge of {} but E({} MHz) over {} cycles / {} us gives {}",
                    charge.kind.as_str(),
                    charge.energy,
                    charge.frequency_mhz,
                    charge.cycles.get(),
                    charge.micros,
                    expected
                ),
            ));
        }
        total += charge.energy;
    }
    if !close(total, cert.final_energy) {
        sink.push(Diagnostic::new(
            DiagCode::AudEnergyMismatch,
            format!(
                "charges sum to {total} but the certificate claims a final energy of {}",
                cert.final_energy
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eua_platform::TimeDelta;
    use eua_sim::{ChargeKind, ChargeRecord, SchedEvent, TaskDecl, TaskId, TufDecl};

    fn decl(name: &str) -> TaskDecl {
        TaskDecl {
            name: name.into(),
            tuf: TufDecl::Step {
                umax: 10.0,
                step_at: TimeDelta::from_micros(10_000),
                termination: TimeDelta::from_micros(10_000),
            },
            max_arrivals: 2,
            window: TimeDelta::from_micros(10_000),
            allocation: Cycles::new(100_000),
            critical_offset: TimeDelta::from_micros(10_000),
            termination_offset: TimeDelta::from_micros(10_000),
        }
    }

    fn base_cert() -> RunCertificate {
        RunCertificate {
            policy: "hand".into(),
            seed: 1,
            horizon: TimeDelta::from_micros(50_000),
            frequencies_mhz: vec![36, 55, 64, 73, 82, 91, 100],
            policy_frequencies_mhz: vec![36, 55, 64, 73, 82, 91, 100],
            energy_name: "E1".into(),
            energy_rel: (1.0, 0.0, 0.0, 0.0),
            idle_power: 0.0,
            tasks: vec![decl("a")],
            arrivals: vec![(SimTime::ZERO, 0)],
            events: Vec::new(),
            charges: Vec::new(),
            final_energy: 0.0,
        }
    }

    #[test]
    fn clean_minimal_certificate_audits_clean() {
        let report = audit(&base_cert());
        assert!(!report.has_errors(), "{}", report.render_text());
    }

    #[test]
    fn unparsable_text_is_malformed_not_a_crash() {
        let report = audit_text("x", "{nope");
        assert!(report.codes().contains("aud-malformed-certificate"));
    }

    #[test]
    fn smuggled_arrivals_trip_the_uam_check() {
        let mut cert = base_cert();
        // a = 2 per 10 ms window; three arrivals in one window violate it.
        cert.arrivals = vec![
            (SimTime::ZERO, 0),
            (SimTime::from_micros(1), 0),
            (SimTime::from_micros(2), 0),
        ];
        let report = audit(&cert);
        assert!(report.codes().contains("aud-uam-violation"));
    }

    #[test]
    fn forged_energy_totals_are_rejected() {
        let mut cert = base_cert();
        cert.charges = vec![ChargeRecord {
            at: SimTime::ZERO,
            kind: ChargeKind::Execute,
            frequency_mhz: 100,
            cycles: Cycles::new(1_000),
            micros: 10,
            energy: 1_000.0 * 100.0 * 100.0,
        }];
        cert.final_energy = cert.charges[0].energy;
        assert!(!audit(&cert).has_errors());
        cert.final_energy *= 1.5;
        let report = audit(&cert);
        assert!(report.codes().contains("aud-energy-mismatch"));
    }

    #[test]
    fn unknown_task_indices_are_malformed() {
        let mut cert = base_cert();
        cert.arrivals = vec![(SimTime::ZERO, 7)];
        assert!(audit(&cert).codes().contains("aud-malformed-certificate"));
        let mut cert = base_cert();
        cert.events.push(EventRecord {
            at: SimTime::ZERO,
            trigger: SchedEvent::Start,
            ready: vec![JobSnapshot {
                job: JobId(0),
                task: TaskId(9),
                arrival: SimTime::ZERO,
                critical: SimTime::from_micros(10_000),
                termination: SimTime::from_micros(10_000),
                remaining: Cycles::new(100),
            }],
            run: None,
            frequency: Frequency::from_mhz(100),
            aborts: Vec::new(),
            explanation: None,
        });
        assert!(audit(&cert).codes().contains("aud-malformed-certificate"));
    }

    #[test]
    fn greedy_reconstruction_orders_by_critical_time() {
        let mk = |job, critical, key| Cand {
            job: JobId(job),
            critical: SimTime::from_micros(critical),
            termination: SimTime::from_micros(critical),
            remaining: Cycles::new(1_000),
            key,
        };
        let out = greedy_schedule(
            SimTime::ZERO,
            vec![mk(0, 300, 5.0), mk(1, 100, 1.0), mk(2, 200, 3.0)],
            Frequency::from_mhz(100),
            false,
        );
        assert_eq!(out, vec![JobId(1), JobId(2), JobId(0)]);
    }

    #[test]
    fn report_flood_is_capped_per_code() {
        let mut cert = base_cert();
        // 40 forged charges: only MAX_PER_CODE findings plus one
        // suppression note survive.
        for i in 0..40u64 {
            cert.charges.push(ChargeRecord {
                at: SimTime::from_micros(i),
                kind: ChargeKind::Execute,
                frequency_mhz: 100,
                cycles: Cycles::new(1_000),
                micros: 10,
                energy: 1.0, // wrong: E1 bills 1000 * 100^2
            });
        }
        cert.final_energy = 40.0;
        let report = audit(&cert);
        let n = report
            .diagnostics
            .iter()
            .filter(|d| d.code == DiagCode::AudEnergyMismatch)
            .count();
        assert_eq!(n, MAX_PER_CODE + 1, "{}", report.render_text());
    }
}
