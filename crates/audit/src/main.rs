//! The `eua-audit` command-line front end.
//!
//! ```text
//! eua-audit check <certificate.json>... [--format text|json|sarif] [--check]
//! eua-audit codes
//! ```
//!
//! Certificates are produced by the simulator with
//! `SimConfig::with_certificate()` (or `eua-bench robustness --certify`).
//! Exit status matches `eua-analyze`: `0` when every certificate parsed
//! and audited clean, `1` when at least one Error-severity finding was
//! produced, `2` on usage or I/O errors. The three are strictly ordered:
//! an unreadable file yields `2` even if other inputs audited cleanly.
//! (A certificate that *reads* but does not *parse* is an audit finding
//! — `aud-malformed-certificate` — not an I/O failure, so a forged or
//! truncated certificate rejects with `1` like any other violation.)

use std::io::Write;
use std::process::ExitCode;

use eua_analyze::{render_json_reports, render_sarif, validate_sarif, Report};
use eua_audit::{audit_text, AUDIT_CODES};

/// Writes to stdout, exiting quietly if the reader went away (e.g. the
/// output is piped into `head`); `println!` would panic instead.
fn emit(text: &str) {
    if std::io::stdout().write_all(text.as_bytes()).is_err() {
        std::process::exit(0);
    }
}

/// Output format for `check`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    /// Human-readable stanzas.
    Text,
    /// One JSON array of per-certificate report objects.
    Json,
    /// One SARIF 2.1.0 document (single run).
    Sarif,
}

fn usage() -> &'static str {
    "usage: eua-audit check [--format text|json|sarif] [--check] <certificate.json>...\n\
     \x20      eua-audit codes\n\
     \n\
     check          re-validate decision certificates recorded by the simulator\n\
     \x20 --format sarif   emit a SARIF 2.1.0 document instead of text/json\n\
     \x20 --check          (sarif) verify the output byte-round-trips and\n\
     \x20                  validates against the pinned SARIF subset\n\
     codes          list every audit diagnostic code with severity and meaning\n\
     \n\
     exit status (strictly ordered, worst wins):\n\
     \x20 2  usage error or unreadable file\n\
     \x20 1  at least one Error-severity audit finding (including a\n\
     \x20    certificate that does not parse)\n\
     \x20 0  every certificate audited clean"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => run_check(&args[1..]),
        Some("codes") => {
            run_codes();
            ExitCode::SUCCESS
        }
        Some("--help" | "-h" | "help") => {
            emit(usage());
            emit("\n");
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("{}", usage());
            ExitCode::from(2)
        }
    }
}

/// Parses `check` flags and audits each certificate.
fn run_check(args: &[String]) -> ExitCode {
    let mut format = Format::Text;
    let mut self_check = false;
    let mut files: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some("sarif") => format = Format::Sarif,
                other => {
                    eprintln!("--format needs `text`, `json`, or `sarif`, got {other:?}");
                    return ExitCode::from(2);
                }
            },
            "--check" => self_check = true,
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag `{flag}`\n{}", usage());
                return ExitCode::from(2);
            }
            file => files.push(file),
        }
    }
    if files.is_empty() {
        eprintln!("nothing to audit\n{}", usage());
        return ExitCode::from(2);
    }
    if self_check && format != Format::Sarif {
        eprintln!("--check only applies to --format sarif");
        return ExitCode::from(2);
    }

    // Read everything first, continuing past per-file I/O failures so a
    // missing file never hides findings in the readable ones; exit
    // precedence is 2 (any failure here) > 1 (error findings) > 0.
    let mut had_io_failure = false;
    let mut reports: Vec<Report> = Vec::new();
    let mut uris: Vec<Option<String>> = Vec::new();
    for file in files {
        match std::fs::read_to_string(file) {
            Ok(text) => {
                reports.push(audit_text(file, &text));
                uris.push(Some(file.to_string()));
            }
            Err(e) => {
                eprintln!("error: reading `{file}`: {e}");
                had_io_failure = true;
            }
        }
    }

    match format {
        Format::Text => {
            for r in &reports {
                emit(&r.render_text());
            }
        }
        Format::Json => {
            emit(&render_json_reports(&reports));
            emit("\n");
        }
        Format::Sarif => {
            let text = render_sarif(&reports, &uris);
            if self_check {
                if let Err(e) = sarif_self_check(&text) {
                    eprintln!("error: sarif self-check failed: {e}");
                    return ExitCode::from(2);
                }
            }
            emit(&text);
        }
    }
    if had_io_failure {
        ExitCode::from(2)
    } else if reports.iter().any(Report::has_errors) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Asserts the SARIF output byte-round-trips through the first-party
/// JSON tree and satisfies the pinned SARIF 2.1.0 subset.
fn sarif_self_check(text: &str) -> Result<(), String> {
    let reparsed = eua_analyze::json::parse(text)?;
    if reparsed.render() != text {
        return Err("render(parse(output)) differs from output".into());
    }
    validate_sarif(text)
}

/// Prints every audit diagnostic code with its severity and summary.
fn run_codes() {
    for code in AUDIT_CODES {
        emit(&format!(
            "{:<36} {:<8} {}\n",
            code.as_str(),
            code.default_severity().as_str(),
            code.summary()
        ));
    }
}
