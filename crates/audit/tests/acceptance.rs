#![allow(clippy::expect_used, clippy::unwrap_used)] // test code

//! Acceptance gates for the certificate auditor: every shipped example
//! audits clean under EUA\* and under an explanation-less policy pinned
//! to each table frequency; certificates are byte-identical across the
//! two schedule constructions and across worker counts.

mod common;

use common::{bridge, run_certified, FixedFreq};
use eua_analyze::shipped_scenarios;
use eua_audit::audit;
use eua_core::{Eua, EuaOptions};
use eua_sim::map_parallel;

/// Tentpole acceptance: `eua-audit` must pass certificates from every
/// shipped example under the real EUA\* policy (full Algorithm 1/2
/// explanations audited).
#[test]
fn shipped_examples_audit_clean_under_eua() {
    for spec in shipped_scenarios().expect("registry builds") {
        let (tasks, patterns, platform) = bridge(&spec);
        let cert = run_certified(&tasks, &patterns, &platform, &mut Eua::new(), 42);
        let report = audit(&cert);
        assert!(
            !report.has_errors(),
            "`{}` failed its audit:\n{}",
            spec.name,
            report.render_text()
        );
    }
}

/// Acceptance: certificates from every shipped example at every table
/// frequency audit clean (the policy carries no explanation, so this
/// exercises the engine-level checks and the full energy recompute at
/// each operating point).
#[test]
fn every_table_frequency_audits_clean() {
    for spec in shipped_scenarios().expect("registry builds") {
        let (tasks, patterns, platform) = bridge(&spec);
        let freqs: Vec<_> = platform.table().iter().collect();
        for freq in freqs {
            let cert = run_certified(&tasks, &patterns, &platform, &mut FixedFreq(freq), 7);
            let report = audit(&cert);
            assert!(
                !report.has_errors(),
                "`{}` at {} MHz failed its audit:\n{}",
                spec.name,
                freq.as_mhz(),
                report.render_text()
            );
        }
    }
}

/// Certificates round-trip byte-identically through the first-party
/// JSON module on real engine output, not just hand-built fixtures.
#[test]
fn real_certificates_round_trip_byte_identically() {
    let spec = &shipped_scenarios().expect("registry builds")[0];
    let (tasks, patterns, platform) = bridge(spec);
    let cert = run_certified(&tasks, &patterns, &platform, &mut Eua::new(), 3);
    let text = cert.render();
    let reparsed = eua_sim::RunCertificate::parse(&text).expect("round-trips");
    assert_eq!(reparsed.render(), text);
}

/// Satellite (d): forcing the incremental `ScheduleBuilder` and the
/// naive `build_schedule_reference` oracle through the same certified
/// run must yield *byte-identical* certificates — the two constructions
/// are observationally equivalent under the audit.
#[test]
fn builder_and_reference_oracle_certify_identically() {
    for spec in shipped_scenarios().expect("registry builds") {
        let (tasks, patterns, platform) = bridge(&spec);
        let fast = run_certified(&tasks, &patterns, &platform, &mut Eua::new(), 11);
        let mut oracle = Eua::with_options(EuaOptions {
            reference_builder: true,
            ..EuaOptions::default()
        });
        let slow = run_certified(&tasks, &patterns, &platform, &mut oracle, 11);
        assert_eq!(
            fast.render(),
            slow.render(),
            "`{}`: builder and reference certificates diverge",
            spec.name
        );
        assert!(!audit(&fast).has_errors());
    }
}

/// Satellite (d): certificates must not depend on worker count — a
/// parallel sweep over seeds with `--jobs 4` yields the same bytes as
/// the sequential sweep.
#[test]
fn certificates_are_identical_across_jobs() {
    let spec = &shipped_scenarios().expect("registry builds")[0];
    let (tasks, patterns, platform) = bridge(spec);
    let seeds: Vec<u64> = (1..=6).collect();
    let render = |_worker: usize, seed: u64| {
        run_certified(&tasks, &patterns, &platform, &mut Eua::new(), seed).render()
    };
    let sequential = map_parallel(1, seeds.clone(), render).expect("pool runs");
    let parallel = map_parallel(4, seeds, render).expect("pool runs");
    assert_eq!(sequential, parallel);
}
