#![allow(clippy::expect_used, clippy::unwrap_used, dead_code)] // test code

//! Shared bridges for the audit integration suite: shipped-scenario →
//! simulator lowering, certified engine runs, and a minimal
//! explanation-less EDF policy pinned to one table frequency.

use eua_analyze::ScenarioSpec;
use eua_platform::{EnergySetting, Frequency, FrequencyTable, TimeDelta};
use eua_sim::{
    Decision, Engine, FaultPlan, Platform, RunCertificate, SchedContext, SchedulerPolicy,
    SimConfig, TaskSet,
};
use eua_uam::generator::ArrivalPattern;

/// A short but non-trivial audit horizon: long enough for dozens of
/// scheduling events per scenario, short enough to keep 11 scenarios ×
/// 7 frequencies cheap.
pub fn horizon() -> TimeDelta {
    TimeDelta::from_millis(200)
}

/// Raises a shipped scenario spec into the simulator types, paired with
/// UAM-legal window-burst arrivals per task.
pub fn bridge(spec: &ScenarioSpec) -> (TaskSet, Vec<ArrivalPattern>, Platform) {
    let tasks: Vec<_> = spec
        .tasks
        .iter()
        .map(|t| t.to_task().expect("shipped task raises"))
        .collect();
    let patterns: Vec<_> = tasks
        .iter()
        .map(|t| ArrivalPattern::window_burst(*t.uam()).expect("legal burst"))
        .collect();
    let table = FrequencyTable::new(spec.frequencies_mhz.iter().copied()).expect("shipped table");
    let setting = match spec.energy.name.as_str() {
        "E1" => EnergySetting::e1(),
        "E2" => EnergySetting::e2(),
        "E3" => EnergySetting::e3(),
        _ => EnergySetting::custom(
            "custom",
            spec.energy.s3,
            spec.energy.s2,
            spec.energy.s1_rel,
            spec.energy.s0_rel,
        )
        .expect("shipped energy"),
    };
    let set = TaskSet::new(tasks).expect("shipped task set");
    (set, patterns, Platform::new(table, setting))
}

/// Runs `policy` with certificate recording on and returns the recorded
/// certificate.
pub fn run_certified<P: SchedulerPolicy + ?Sized>(
    tasks: &TaskSet,
    patterns: &[ArrivalPattern],
    platform: &Platform,
    policy: &mut P,
    seed: u64,
) -> RunCertificate {
    run_certified_with_faults(tasks, patterns, platform, policy, seed, &FaultPlan::none())
}

/// Like [`run_certified`], with a fault plan.
pub fn run_certified_with_faults<P: SchedulerPolicy + ?Sized>(
    tasks: &TaskSet,
    patterns: &[ArrivalPattern],
    platform: &Platform,
    policy: &mut P,
    seed: u64,
    plan: &FaultPlan,
) -> RunCertificate {
    let config = SimConfig::new(horizon()).with_certificate();
    let out = Engine::run_with_faults(tasks, patterns, platform, policy, &config, seed, plan)
        .expect("engine runs");
    out.certificate.expect("certificate recorded")
}

/// [`run_certified`] through the preserved pre-overhaul event loop
/// ([`Engine::run_with_faults_reference`]) instead of the production
/// one — for pinning the two loops to byte-identical certificates.
pub fn run_certified_reference<P: SchedulerPolicy + ?Sized>(
    tasks: &TaskSet,
    patterns: &[ArrivalPattern],
    platform: &Platform,
    policy: &mut P,
    seed: u64,
) -> RunCertificate {
    let config = SimConfig::new(horizon()).with_certificate();
    let out = Engine::run_with_faults_reference(
        tasks,
        patterns,
        platform,
        policy,
        &config,
        seed,
        &FaultPlan::none(),
    )
    .expect("reference engine runs");
    out.certificate.expect("certificate recorded")
}

/// Earliest-critical-time-first at one fixed frequency, with no
/// self-explanation: exercises the auditor's engine-level degradation
/// path at every point of the frequency table.
pub struct FixedFreq(pub Frequency);

impl SchedulerPolicy for FixedFreq {
    fn name(&self) -> &str {
        "edf-fixed"
    }

    fn decide(&mut self, ctx: &SchedContext<'_>) -> Decision {
        match ctx.jobs.iter().min_by_key(|j| (j.critical_time, j.id)) {
            Some(j) => Decision::run(j.id, self.0),
            None => Decision::idle(self.0),
        }
    }
}
