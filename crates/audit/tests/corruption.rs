#![allow(clippy::expect_used, clippy::unwrap_used)] // test code

//! Adversarial gates: deliberately corrupted certificates must be
//! rejected with the *matching* `aud-*` code — a forged energy total
//! must not masquerade as a schedule-order problem, and vice versa.

mod common;

use common::{bridge, run_certified};
use eua_analyze::shipped_scenarios;
use eua_audit::{audit, audit_text};
use eua_core::Eua;
use eua_platform::{Frequency, SimTime};
use eua_sim::RunCertificate;

/// A real EUA\* certificate with plenty of multi-job events to corrupt.
fn certified() -> RunCertificate {
    let spec = shipped_scenarios()
        .expect("registry builds")
        .into_iter()
        .find(|s| s.name == "overload-survival-0.9")
        .expect("shipped scenario");
    let (tasks, patterns, platform) = bridge(&spec);
    run_certified(&tasks, &patterns, &platform, &mut Eua::new(), 42)
}

/// The index of an event whose explanation certifies at least two UER
/// entries (so order perturbations are observable).
fn multi_uer_event(cert: &RunCertificate) -> usize {
    cert.events
        .iter()
        .position(|e| e.explanation.as_ref().is_some_and(|x| x.uer.len() >= 2))
        .expect("a multi-job decision exists in 200 ms of overload")
}

#[test]
fn pristine_certificate_audits_clean() {
    let report = audit(&certified());
    assert!(!report.has_errors(), "{}", report.render_text());
}

#[test]
fn perturbed_uer_values_are_rejected() {
    let mut cert = certified();
    let i = multi_uer_event(&cert);
    let expl = cert.events[i].explanation.as_mut().unwrap();
    // Swap two certified UER values: both now disagree with the
    // recomputation from the declared TUFs and energy model.
    let (a, b) = (expl.uer[0].uer, expl.uer[1].uer);
    expl.uer[0].uer = b;
    expl.uer[1].uer = a;
    let report = audit(&cert);
    assert!(
        report.codes().contains("aud-uer-mismatch"),
        "{}",
        report.render_text()
    );
}

#[test]
fn perturbed_schedule_order_is_rejected() {
    let mut cert = certified();
    let i = cert
        .events
        .iter()
        .position(|e| {
            e.explanation
                .as_ref()
                .is_some_and(|x| x.schedule.len() >= 2)
        })
        .expect("a multi-entry schedule exists in 200 ms of overload");
    let expl = cert.events[i].explanation.as_mut().unwrap();
    // Reverse the certified insertion outcome; the greedy reconstruction
    // no longer reproduces it.
    expl.schedule.reverse();
    let report = audit(&cert);
    assert!(
        report.codes().contains("aud-schedule-order"),
        "{}",
        report.render_text()
    );
}

#[test]
fn forged_final_energy_is_rejected() {
    let mut cert = certified();
    cert.final_energy *= 1.01;
    let report = audit(&cert);
    assert!(
        report.codes().contains("aud-energy-mismatch"),
        "{}",
        report.render_text()
    );
}

#[test]
fn forged_per_charge_energy_is_rejected() {
    let mut cert = certified();
    let i = cert
        .charges
        .iter()
        .position(|c| c.energy > 0.0)
        .expect("a positive charge exists");
    cert.charges[i].energy *= 0.5;
    let report = audit(&cert);
    assert!(
        report.codes().contains("aud-energy-mismatch"),
        "{}",
        report.render_text()
    );
}

#[test]
fn smuggled_uam_violating_arrival_is_rejected() {
    let mut cert = certified();
    // Flood task 0's first window far past its declared `a` bound.
    let burst = u64::from(cert.tasks[0].max_arrivals) + 1;
    for k in 0..burst {
        cert.arrivals.push((SimTime::from_micros(k), 0));
    }
    let report = audit(&cert);
    assert!(
        report.codes().contains("aud-uam-violation"),
        "{}",
        report.render_text()
    );
}

#[test]
fn off_table_dispatch_frequency_is_rejected() {
    let mut cert = certified();
    let i = cert
        .events
        .iter()
        .position(|e| e.run.is_some())
        .expect("a dispatch exists");
    cert.events[i].frequency = Frequency::from_mhz(9_999);
    let report = audit(&cert);
    assert!(
        report.codes().contains("aud-dvs-out-of-bound"),
        "{}",
        report.render_text()
    );
}

#[test]
fn illegal_abort_of_a_feasible_job_is_rejected() {
    let mut cert = certified();
    // Promote a feasible scheduled job into the abort list without a
    // witness: the abort/witness agreement check must fire.
    let i = cert
        .events
        .iter()
        .position(|e| {
            e.run.is_some() && e.explanation.as_ref().is_some_and(|x| x.aborts.is_empty())
        })
        .expect("a no-abort dispatch exists");
    let victim = cert.events[i].run.unwrap();
    cert.events[i].aborts.push(victim);
    let report = audit(&cert);
    assert!(
        report.codes().contains("aud-abort-illegal"),
        "{}",
        report.render_text()
    );
}

#[test]
fn truncated_text_is_a_malformed_certificate_finding() {
    let text = certified().render();
    let report = audit_text("truncated", &text[..text.len() / 2]);
    assert!(report.codes().contains("aud-malformed-certificate"));
    assert!(report.has_errors());
}

/// Corruptions must be *attributed*, not just detected: each forged
/// aspect yields its own code and none of the unrelated ones.
#[test]
fn corruption_attribution_is_specific() {
    let mut cert = certified();
    cert.final_energy *= 1.01;
    let codes = audit(&cert).codes();
    assert!(codes.contains("aud-energy-mismatch"));
    for unrelated in [
        "aud-uer-mismatch",
        "aud-schedule-order",
        "aud-schedule-infeasible",
        "aud-abort-illegal",
        "aud-dvs-out-of-bound",
        "aud-uam-violation",
        "aud-malformed-certificate",
    ] {
        assert!(!codes.contains(unrelated), "spurious `{unrelated}`");
    }
}
