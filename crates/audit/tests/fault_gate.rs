#![allow(clippy::expect_used, clippy::unwrap_used)] // test code

//! The randomized audit gate: certificates from fault-free runs always
//! audit clean, and certificates from *faulted* runs may only violate
//! the codes their [`FaultPlan`] predicts — injected UAM bursts and
//! arrival jitter legitimately smuggle contract-breaking arrivals into
//! the certified stream (`aud-uam-violation`), while every other fault
//! family (demand mis-estimation, DVS latency/stuck/degraded tables,
//! abort costs) must still produce internally consistent certificates.
//!
//! The case count defaults to 24 per property and can be overridden via
//! the `EUA_AUDIT_CASES` environment variable (ci.sh runs a reduced
//! budget).

mod common;

use std::collections::BTreeSet;

use common::{bridge, run_certified_with_faults};
use eua_analyze::shipped_scenarios;
use eua_audit::audit;
use eua_core::make_policy;
use eua_platform::TimeDelta;
use eua_sim::FaultPlan;
use proptest::prelude::*;

fn audit_cases() -> u32 {
    std::env::var("EUA_AUDIT_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(24)
}

/// The `aud-*` codes a plan's active fault families can legitimately
/// trip. Only the families that tamper with the *arrival stream* may
/// surface in a well-formed certificate; everything else must stay
/// internally consistent.
fn predicted_codes(plan: &FaultPlan) -> BTreeSet<&'static str> {
    let mut codes = BTreeSet::new();
    if plan.uam.extra_per_window > 0 || !plan.timing.arrival_jitter.is_zero() {
        codes.insert("aud-uam-violation");
    }
    codes
}

/// A small curated plan space: one representative per fault family plus
/// a compound plan, all passing [`FaultPlan::validate`] by construction.
fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    prop_oneof![
        Just(FaultPlan::none()),
        (1u32..3, 1u32..4).prop_map(|(extra, every)| {
            let mut plan = FaultPlan::none();
            plan.uam.extra_per_window = extra;
            plan.uam.every_n_windows = every;
            plan
        }),
        (0.5f64..2.5, 0.0f64..0.5).prop_map(|(factor, spread)| {
            let mut plan = FaultPlan::none();
            plan.demand.mean_factor = factor;
            plan.demand.spread = spread;
            plan
        }),
        (0u64..50_000, any::<bool>()).prop_map(|(latency, degrade)| {
            let mut plan = FaultPlan::none();
            plan.dvs.switch_latency_cycles = latency;
            if degrade {
                plan.dvs.degraded_mhz = Some(vec![36, 64, 100]);
            }
            plan
        }),
        (0u64..40_000).prop_map(|stuck_us| {
            let mut plan = FaultPlan::none();
            plan.dvs.stuck_after = Some(TimeDelta::from_micros(stuck_us));
            plan
        }),
        (0u64..500, 0u64..4_000).prop_map(|(cost_us, jitter_us)| {
            let mut plan = FaultPlan::none();
            plan.timing.abort_cost = TimeDelta::from_micros(cost_us);
            plan.timing.arrival_jitter = TimeDelta::from_micros(jitter_us);
            plan
        }),
        // Compound: UAM burst + demand + abort cost at once.
        (1u32..3, 1.2f64..2.0, 0u64..300).prop_map(|(extra, factor, cost_us)| {
            let mut plan = FaultPlan::none();
            plan.uam.extra_per_window = extra;
            plan.uam.every_n_windows = 2;
            plan.demand.mean_factor = factor;
            plan.timing.abort_cost = TimeDelta::from_micros(cost_us);
            plan
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(audit_cases()))]

    /// Fault-free runs — any shipped scenario, any policy, any seed —
    /// produce certificates the auditor accepts.
    #[test]
    fn fault_free_certificates_audit_clean(
        seed in 0u64..1_000,
        scenario_idx in 0usize..11,
        policy_name in prop_oneof![Just("eua"), Just("eua-nodvs"), Just("dasa"), Just("edf")],
    ) {
        let specs = shipped_scenarios().expect("registry builds");
        let spec = &specs[scenario_idx % specs.len()];
        let (tasks, patterns, platform) = bridge(spec);
        let mut policy = make_policy(policy_name).expect("registered policy");
        let cert = run_certified_with_faults(
            &tasks, &patterns, &platform, &mut policy, seed, &FaultPlan::none(),
        );
        let report = audit(&cert);
        prop_assert!(
            !report.has_errors(),
            "`{}` under `{policy_name}` seed {seed}:\n{}",
            spec.name,
            report.render_text()
        );
    }

    /// Faulted runs may only trip the codes their plan predicts: the
    /// certificate stays a faithful record even when the modeled world
    /// misbehaves, so un-predicted violation codes mean the *recording*
    /// (not the fault) is wrong.
    #[test]
    fn faulted_certificates_violate_only_predicted_codes(
        seed in 0u64..1_000,
        scenario_idx in 0usize..11,
        plan in arb_plan(),
    ) {
        let specs = shipped_scenarios().expect("registry builds");
        let spec = &specs[scenario_idx % specs.len()];
        let (tasks, patterns, platform) = bridge(spec);
        let mut policy = make_policy("eua").expect("registered policy");
        let cert = run_certified_with_faults(
            &tasks, &patterns, &platform, &mut policy, seed, &plan,
        );
        let report = audit(&cert);
        let predicted = predicted_codes(&plan);
        for code in report.codes() {
            prop_assert!(
                predicted.contains(code),
                "`{}` seed {seed}: unpredicted `{code}` under {plan:?}:\n{}",
                spec.name,
                report.render_text()
            );
        }
    }
}
