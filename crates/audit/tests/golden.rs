#![allow(clippy::expect_used, clippy::unwrap_used)] // test code

//! Golden certificate fixtures: the serialized certificate for two
//! pinned (scenario, policy, seed) triples is part of the audit
//! contract. A byte drift here means the certificate format, the
//! engine's decision sequence, or the policy's explanations changed —
//! all deliberate events that must update the fixture.
//!
//! Regenerate with:
//!
//! ```text
//! EUA_REGEN_GOLDEN=1 cargo test -p eua-audit --test golden
//! ```

mod common;

use common::{bridge, run_certified, run_certified_reference};
use eua_analyze::shipped_scenarios;
use eua_audit::audit;
use eua_core::Eua;
use eua_sim::policy::MaxSpeedEdf;
use eua_sim::RunCertificate;

fn fixture_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn check_golden(name: &str, cert: &RunCertificate) {
    let rendered = cert.render();
    let path = fixture_path(name);
    if std::env::var("EUA_REGEN_GOLDEN").is_ok() {
        std::fs::write(&path, &rendered).expect("fixture written");
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {}: {e} (regenerate with EUA_REGEN_GOLDEN=1)",
            path.display()
        )
    });
    assert_eq!(
        rendered, golden,
        "`{name}` drifted; regenerate with EUA_REGEN_GOLDEN=1 if the change is deliberate"
    );
    // The committed fixture must itself parse and audit clean — golden
    // files are first-class auditor inputs, not opaque blobs.
    let reparsed = RunCertificate::parse(&golden).expect("fixture parses");
    let report = audit(&reparsed);
    assert!(!report.has_errors(), "{}", report.render_text());
}

fn scenario(name: &str) -> eua_analyze::ScenarioSpec {
    shipped_scenarios()
        .expect("registry builds")
        .into_iter()
        .find(|s| s.name == name)
        .expect("shipped scenario")
}

/// EUA\* on the quickstart workload: full Algorithm 1/2 explanations.
#[test]
fn quickstart_eua_certificate_is_golden() {
    let (tasks, patterns, platform) = bridge(&scenario("quickstart"));
    let cert = run_certified(&tasks, &patterns, &platform, &mut Eua::new(), 3);
    check_golden("quickstart-eua-seed3.json", &cert);
}

/// The explanation-less reference policy on an overload: engine-level
/// records only (`explanation: null` throughout).
#[test]
fn overload_edf_certificate_is_golden() {
    let (tasks, patterns, platform) = bridge(&scenario("overload-survival-0.9"));
    let cert = run_certified(&tasks, &patterns, &platform, &mut MaxSpeedEdf::new(), 5);
    assert!(cert.events.iter().all(|e| e.explanation.is_none()));
    check_golden("overload-edf-seed5.json", &cert);
}

/// The golden fixtures are recorded by the production event loop; the
/// preserved pre-overhaul loop must reproduce them byte-for-byte, and
/// its certificates must audit clean through the same validator. This
/// is the audit-layer smoke of the engine differential suite.
#[test]
fn reference_loop_reproduces_the_golden_certificates() {
    let (tasks, patterns, platform) = bridge(&scenario("quickstart"));
    let new = run_certified(&tasks, &patterns, &platform, &mut Eua::new(), 3);
    let old = run_certified_reference(&tasks, &patterns, &platform, &mut Eua::new(), 3);
    assert_eq!(
        new.render(),
        old.render(),
        "production and reference loops diverged on the quickstart scenario"
    );
    let report = audit(&old);
    assert!(!report.has_errors(), "{}", report.render_text());

    let (tasks, patterns, platform) = bridge(&scenario("overload-survival-0.9"));
    let new = run_certified(&tasks, &patterns, &platform, &mut MaxSpeedEdf::new(), 5);
    let old = run_certified_reference(&tasks, &patterns, &platform, &mut MaxSpeedEdf::new(), 5);
    assert_eq!(
        new.render(),
        old.render(),
        "production and reference loops diverged on the overload scenario"
    );
}
