//! Cost of the Algorithm 2 DVS analysis (`decideFreq()`) as the task
//! count grows — O(n log n) from the reverse-EDF sort.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eua_core::LookAheadDvs;
use eua_platform::{Cycles, EnergySetting, SimTime, TimeDelta};
use eua_sim::{JobId, JobView, Platform, SchedContext, SchedEvent, Task, TaskSet};
use eua_tuf::Tuf;
use eua_uam::demand::DemandModel;
use eua_uam::{Assurance, UamSpec};

fn setup(n: usize) -> (TaskSet, Vec<JobView>) {
    let tasks: Vec<Task> = (0..n)
        .map(|i| {
            let p = TimeDelta::from_millis(10 + 3 * i as u64);
            Task::new(
                format!("t{i}"),
                Tuf::linear(50.0, p).unwrap(),
                UamSpec::new(3, p).unwrap(),
                DemandModel::normal(200_000.0, 200_000.0).unwrap(),
                Assurance::new(0.3, 0.9).unwrap(),
            )
            .unwrap()
        })
        .collect();
    let tasks = TaskSet::new(tasks).unwrap();
    let jobs = tasks
        .iter()
        .enumerate()
        .map(|(i, (tid, task))| JobView {
            id: JobId(i as u64),
            task: tid,
            arrival: SimTime::ZERO,
            critical_time: SimTime::ZERO + task.critical_offset(),
            termination: SimTime::ZERO + task.termination_offset(),
            remaining: task.allocation(),
            executed: Cycles::ZERO,
        })
        .collect();
    (tasks, jobs)
}

fn bench_analyze(c: &mut Criterion) {
    let platform = Platform::powernow(EnergySetting::e1());
    let mut group = c.benchmark_group("decide_freq");
    for &n in &[8usize, 32, 128, 512] {
        let (tasks, jobs) = setup(n);
        let mut dvs = LookAheadDvs::new();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let ctx = SchedContext {
                    now: SimTime::from_micros(5),
                    event: SchedEvent::Arrival,
                    jobs: &jobs,
                    tasks: &tasks,
                    platform: &platform,
                    running: None,
                    energy_used: 0.0,
                };
                std::hint::black_box(dvs.analyze(&ctx))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_analyze);
criterion_main!(benches);
