//! Isolates the Algorithm 1 schedule-construction hot path: the
//! incremental [`ScheduleBuilder`] (O(1) feasibility probe, fused O(n)
//! tail update per accepted insertion) against the naive
//! [`build_schedule_reference`] oracle (full `schedule_feasible` re-walk
//! per insertion). The all-feasible candidate sets used here are the
//! incremental builder's *worst* case — every insertion pays the tail
//! update; rejected insertions would be O(1) instead of O(n).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eua_core::{build_schedule_reference, Candidate, InsertionMode, ScheduleBuilder};
use eua_platform::{Cycles, Frequency, SimTime};
use eua_sim::JobId;

fn candidates(n: u64) -> Vec<Candidate> {
    (0..n)
        .map(|i| {
            let critical = 10_000 + 5_000 * ((i * 7919) % n);
            Candidate {
                id: JobId(i),
                critical: SimTime::from_micros(critical),
                termination: SimTime::from_micros(critical + 40_000),
                remaining: Cycles::new(50_000 + 1_000 * i),
                key: 1.0 + (i as f64 * 13.7) % 97.0,
            }
        })
        .collect()
}

fn bench_build(c: &mut Criterion) {
    let f_m = Frequency::from_mhz(100);
    let mut group = c.benchmark_group("schedule_build");
    for &n in &[4u64, 16, 64, 256] {
        let base = candidates(n);
        let mut builder = ScheduleBuilder::new();
        let mut buf = Vec::new();
        group.bench_with_input(BenchmarkId::new("incremental", n), &n, |b, _| {
            b.iter(|| {
                buf.clear();
                buf.extend_from_slice(&base);
                std::hint::black_box(
                    builder
                        .rebuild(
                            SimTime::ZERO,
                            &mut buf,
                            f_m,
                            InsertionMode::BreakOnInfeasible,
                        )
                        .len(),
                )
            });
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| {
                std::hint::black_box(
                    build_schedule_reference(
                        SimTime::ZERO,
                        base.clone(),
                        f_m,
                        InsertionMode::BreakOnInfeasible,
                    )
                    .len(),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
