//! Per-event scheduling cost versus live-job count — the paper's claim
//! that EUA\* "heuristically computes schedules … in polynomial time".
//!
//! Each benchmark measures one `decide()` call with `n` live jobs across
//! `n` tasks; the growth across the size sweep exposes the per-event
//! complexity (EUA\*: O(n log n) sort + O(n²) feasibility insertions).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eua_core::make_policy;
use eua_platform::{Cycles, EnergySetting, SimTime, TimeDelta};
use eua_sim::{JobId, JobView, Platform, SchedContext, SchedEvent, Task, TaskSet};
use eua_tuf::Tuf;
use eua_uam::demand::DemandModel;
use eua_uam::{Assurance, UamSpec};

fn task_set(n: usize) -> TaskSet {
    let tasks = (0..n)
        .map(|i| {
            let p = TimeDelta::from_millis(10 + 5 * i as u64);
            Task::new(
                format!("t{i}"),
                Tuf::step(10.0 + i as f64, p).unwrap(),
                UamSpec::new(2, p).unwrap(),
                DemandModel::normal(100_000.0, 100_000.0).unwrap(),
                Assurance::new(1.0, 0.96).unwrap(),
            )
            .unwrap()
        })
        .collect();
    TaskSet::new(tasks).unwrap()
}

fn job_views(tasks: &TaskSet) -> Vec<JobView> {
    tasks
        .iter()
        .enumerate()
        .map(|(i, (tid, task))| JobView {
            id: JobId(i as u64),
            task: tid,
            arrival: SimTime::from_micros(13 * i as u64),
            critical_time: SimTime::from_micros(13 * i as u64) + task.critical_offset(),
            termination: SimTime::from_micros(13 * i as u64) + task.termination_offset(),
            remaining: Cycles::new(50_000 + 1_000 * i as u64),
            executed: Cycles::ZERO,
        })
        .collect()
}

fn bench_decide(c: &mut Criterion) {
    let platform = Platform::powernow(EnergySetting::e1());
    let mut group = c.benchmark_group("decide_per_event");
    for &n in &[4usize, 8, 16, 32, 64] {
        let tasks = task_set(n);
        let jobs = job_views(&tasks);
        for policy_name in ["eua", "edf", "laedf", "dasa"] {
            let mut policy = make_policy(policy_name).unwrap();
            group.bench_with_input(BenchmarkId::new(policy_name, n), &n, |b, _| {
                b.iter(|| {
                    let ctx = SchedContext {
                        now: SimTime::from_micros(1),
                        event: SchedEvent::Arrival,
                        jobs: &jobs,
                        tasks: &tasks,
                        platform: &platform,
                        running: None,
                        energy_used: 0.0,
                    };
                    std::hint::black_box(policy.decide(&ctx))
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_decide);
criterion_main!(benches);
