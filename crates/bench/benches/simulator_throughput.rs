//! End-to-end simulator throughput: one full Figure 2 point (Table 1
//! task set, one simulated second) per policy, plus a backlog sweep that
//! holds the pending-job count at a chosen level so the engine's
//! per-event cost is visible where it actually grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eua_core::make_policy;
use eua_platform::{EnergySetting, TimeDelta};
use eua_sim::{Engine, Platform, SimConfig, Task, TaskSet};
use eua_tuf::Tuf;
use eua_uam::demand::DemandModel;
use eua_uam::generator::ArrivalPattern;
use eua_uam::{Assurance, UamSpec};
use eua_workload::fig2_workload;

/// `EUA_BENCH_SMOKE=1` shrinks the run for CI gating: fewer samples and
/// no 256-job backlog level. Timing output is still printed but only
/// "it runs and terminates" is meaningful in that mode.
fn smoke() -> bool {
    std::env::var("EUA_BENCH_SMOKE").is_ok()
}

fn bench_run(c: &mut Criterion) {
    let platform = Platform::powernow(EnergySetting::e1());
    let workload = fig2_workload(0.6, 42, platform.f_max()).unwrap();
    let config = SimConfig::new(TimeDelta::from_secs(1));
    let mut group = c.benchmark_group("simulate_1s");
    group.sample_size(if smoke() { 2 } else { 20 });
    for policy_name in ["eua", "edf", "ccedf", "laedf"] {
        let mut policy = make_policy(policy_name).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(policy_name),
            &policy_name,
            |b, _| {
                b.iter(|| {
                    Engine::run(
                        &workload.tasks,
                        &workload.patterns,
                        &platform,
                        &mut policy,
                        &config,
                        9,
                    )
                    .unwrap()
                });
            },
        );
    }
    group.finish();
}

/// A workload that keeps roughly `n` jobs live at every instant: `n`
/// tasks share a window `P`, arrivals are phase-staggered across it, each
/// job's termination is a full window away, and the aggregate load is 2.0
/// so the backlog never drains. Every arrival therefore triggers a
/// `decide()` over ~`n` pending jobs — the regime where per-event cost
/// dominates end-to-end throughput.
fn backlog_workload(n: usize) -> (TaskSet, Vec<ArrivalPattern>) {
    let window = TimeDelta::from_millis(40);
    // Load 2.0 at f_max = 100 MHz: n jobs per window, each 2·P/n of work.
    let cycles = (2 * window.as_micros() * 100) as f64 / n as f64;
    let tasks = (0..n)
        .map(|i| {
            Task::new(
                format!("b{i}"),
                Tuf::step(1.0 + (i % 7) as f64, window).unwrap(),
                UamSpec::new(1, window).unwrap(),
                DemandModel::deterministic(cycles).unwrap(),
                Assurance::new(1.0, 0.5).unwrap(),
            )
            .unwrap()
        })
        .collect();
    let patterns = (0..n)
        .map(|i| {
            let phase = TimeDelta::from_micros(window.as_micros() * i as u64 / n as u64);
            ArrivalPattern::periodic_with_phase(window, phase).unwrap()
        })
        .collect();
    (TaskSet::new(tasks).unwrap(), patterns)
}

fn bench_backlog(c: &mut Criterion) {
    let platform = Platform::powernow(EnergySetting::e1());
    let config = SimConfig::new(TimeDelta::from_millis(200));
    let mut group = c.benchmark_group("simulate_backlog");
    group.sample_size(if smoke() { 2 } else { 10 });
    let levels: &[usize] = if smoke() { &[4, 16] } else { &[4, 16, 64, 256] };
    for &n in levels {
        let (tasks, patterns) = backlog_workload(n);
        for policy_name in ["eua", "edf", "dasa"] {
            let mut policy = make_policy(policy_name).unwrap();
            group.bench_with_input(BenchmarkId::new(policy_name, n), &n, |b, _| {
                b.iter(|| {
                    Engine::run(&tasks, &patterns, &platform, &mut policy, &config, 9).unwrap()
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_run, bench_backlog);
criterion_main!(benches);
