//! End-to-end simulator throughput: one full Figure 2 point (Table 1
//! task set, one simulated second) per policy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eua_core::make_policy;
use eua_platform::{EnergySetting, TimeDelta};
use eua_sim::{Engine, Platform, SimConfig};
use eua_workload::fig2_workload;

fn bench_run(c: &mut Criterion) {
    let platform = Platform::powernow(EnergySetting::e1());
    let workload = fig2_workload(0.6, 42, platform.f_max()).unwrap();
    let config = SimConfig::new(TimeDelta::from_secs(1));
    let mut group = c.benchmark_group("simulate_1s");
    group.sample_size(20);
    for policy_name in ["eua", "edf", "ccedf", "laedf"] {
        let mut policy = make_policy(policy_name).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(policy_name),
            &policy_name,
            |b, _| {
                b.iter(|| {
                    Engine::run(
                        &workload.tasks,
                        &workload.patterns,
                        &platform,
                        &mut policy,
                        &config,
                        9,
                    )
                    .unwrap()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_run);
criterion_main!(benches);
