//! Ablation studies for EUA\*'s design choices (our addition, flagged in
//! DESIGN.md §7):
//!
//! 1. **UER clamp** (Algorithm 2 line 11) — with the E3 energy setting the
//!    per-cycle-energy optimum is interior, so removing the clamp should
//!    cost energy at low loads;
//! 2. **Feasibility abortion** (Algorithm 1 line 10) — removing it should
//!    collapse overload utility (the domino effect);
//! 3. **Insertion mode** — the paper's `break` versus DASA-style `skip`;
//! 4. **Chebyshev ρ** — allocation head-room versus measured assurance;
//! 5. **Engine realism** — context/frequency-switch overheads and idle
//!    power draw, which the paper's model omits: switch costs erode the
//!    DVS saving slightly, and idle power erodes the *relative* saving
//!    because both policies pay it alike.
//!
//! Usage: `cargo run -p eua-bench --bin ablation [--quick] [--csv-dir DIR]
//! [--jobs N]`

use std::path::PathBuf;

use eua_bench::{jobs_from_args, run_cell, run_cells, write_csv, ExperimentConfig, Table};
use eua_platform::{EnergySetting, Frequency};
use eua_sim::Platform;
use eua_uam::Assurance;
use eua_workload::{fig2_workload, table1, TufShape, WorkloadBuilder};

const WORKLOAD_SEED: u64 = 42;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let csv_dir: Option<PathBuf> = args
        .iter()
        .position(|a| a == "--csv-dir")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from);
    let config = if quick {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::standard()
    }
    .with_jobs(jobs_from_args(&args));

    // --- Ablations 1–3: policy variants across loads, E3. ---
    let platform = Platform::powernow(EnergySetting::e3());
    let variants = ["eua", "eua-noclamp", "eua-na", "eua-skip"];
    let mut table = Table::new(
        std::iter::once("load".to_string())
            .chain(variants.iter().map(|v| format!("util({v})")))
            .chain(variants.iter().map(|v| format!("energy({v})")))
            .collect(),
    );
    for load in [0.3, 0.6, 0.9, 1.2, 1.5] {
        let w = fig2_workload(load, WORKLOAD_SEED, platform.f_max()).expect("workload");
        let cells = run_cells(&variants, &w, &platform, &config);
        let base = &cells[0];
        let mut row = vec![format!("{load:.1}")];
        for c in &cells {
            row.push(format!("{:.3}", c.utility / base.utility.max(1e-12)));
        }
        for c in &cells {
            row.push(format!("{:.3}", c.energy / base.energy.max(1e-12)));
        }
        table.push(row);
    }
    println!("Ablation — EUA* variants under E3 (normalized to full EUA*):");
    print!("{}", table.render());
    println!();
    if let Some(dir) = &csv_dir {
        write_csv(&table, &dir.join("ablation_variants.csv")).expect("csv write");
    }

    // --- Ablation 4: Chebyshev ρ sweep at a fixed 0.7 load, E1. ---
    let platform = Platform::powernow(EnergySetting::e1());
    let f_max: Frequency = platform.f_max();
    let mut rho_table = Table::new(vec![
        "rho".into(),
        "alloc/mean".into(),
        "assurance-ok".into(),
        "energy".into(),
    ]);
    for rho in [0.5, 0.75, 0.9, 0.96, 0.99] {
        let w = WorkloadBuilder::new(table1())
            .shape(TufShape::Step)
            .assurance(Assurance::new(1.0, rho).expect("valid rho"))
            .periodic()
            .build(WORKLOAD_SEED)
            .expect("workload")
            .scaled_to_load(0.7, f_max)
            .expect("scaling");
        let headroom: f64 = w
            .tasks
            .iter()
            .map(|(_, t)| t.allocation().as_f64() / t.demand().mean())
            .sum::<f64>()
            / w.tasks.len() as f64;
        let cell = run_cell("eua", &w, &platform, &config);
        rho_table.push(vec![
            format!("{rho:.2}"),
            format!("{headroom:.4}"),
            format!("{:.3}", cell.assurance_ok_rate),
            format!("{:.3e}", cell.energy),
        ]);
    }
    println!("Ablation — Chebyshev allocation probability ρ (load 0.7, E1):");
    print!("{}", rho_table.render());
    println!();

    // --- Ablation 5: engine realism (switch overheads, idle power). ---
    use eua_core::make_policy;
    use eua_platform::TimeDelta;
    use eua_sim::{Engine, SimConfig};
    let w = fig2_workload(0.5, WORKLOAD_SEED, f_max).expect("workload");
    let horizon = config.horizon;
    let run = |name: &str, sim: &SimConfig| {
        let mut p = make_policy(name).expect("known policy");
        Engine::run(&w.tasks, &w.patterns, &platform, &mut p, sim, 11)
            .expect("run")
            .metrics
    };
    let mut realism = Table::new(vec![
        "configuration".into(),
        "eua energy".into(),
        "edf energy".into(),
        "saving".into(),
    ]);
    let scenarios: [(&str, SimConfig); 4] = [
        ("ideal (paper model)", SimConfig::new(horizon)),
        (
            "ctx switch 100us",
            SimConfig::new(horizon).with_context_switch_overhead(TimeDelta::from_micros(100)),
        ),
        (
            "freq switch 200us",
            SimConfig::new(horizon).with_frequency_switch_overhead(TimeDelta::from_micros(200)),
        ),
        (
            "idle power 2000/us",
            SimConfig::new(horizon).with_idle_power(2_000.0),
        ),
    ];
    for (label, sim) in scenarios {
        let eua = run("eua", &sim);
        let edf = run("edf", &sim);
        realism.push(vec![
            label.into(),
            format!("{:.3e}", eua.energy),
            format!("{:.3e}", edf.energy),
            format!("{:.1}%", 100.0 * (1.0 - eua.energy / edf.energy)),
        ]);
    }
    println!("Ablation — engine realism (load 0.5, E1):");
    print!("{}", realism.render());

    if let Some(dir) = &csv_dir {
        write_csv(&rho_table, &dir.join("ablation_rho.csv")).expect("csv write");
        write_csv(&realism, &dir.join("ablation_realism.csv")).expect("csv write");
        println!("wrote CSVs to {}", dir.display());
    }
}
