//! Finite-energy-budget scheduling — the paper's first named future-work
//! item, explored: sweep the energy budget from 10% to 120% of what
//! unconstrained EUA\* would spend, and record the utility the budgeted
//! policy still accrues.
//!
//! Expected shape: utility rises steeply at small budgets (the policy
//! spends on the cheapest, highest-UER work first) and saturates at the
//! unconstrained level once the budget covers the full run.
//!
//! Usage: `cargo run -p eua-bench --bin budget [--quick] [--csv-dir DIR]
//! [--jobs N]`

use std::path::PathBuf;

use eua_bench::{jobs_from_args, write_csv, ExperimentConfig, Table};
use eua_core::{BudgetedEua, Eua};
use eua_platform::EnergySetting;
use eua_sim::{replicate_parallel, Platform, SimConfig, Summary};
use eua_workload::fig2_workload;

const WORKLOAD_SEED: u64 = 42;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let csv_dir: Option<PathBuf> = args
        .iter()
        .position(|a| a == "--csv-dir")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from);
    let config = if quick {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::standard()
    }
    .with_jobs(jobs_from_args(&args));
    let platform = Platform::powernow(EnergySetting::e1());
    let sim_config = SimConfig::new(config.horizon);
    let totals = |summary: &Summary| {
        summary.runs.iter().fold((0.0, 0.0, 0.0), |acc, r| {
            (
                acc.0 + r.metrics.total_utility,
                acc.1 + r.metrics.energy,
                acc.2 + r.metrics.jobs_completed() as f64,
            )
        })
    };

    let mut table = Table::new(vec![
        "budget-frac".into(),
        "utility-frac".into(),
        "energy-frac".into(),
        "completed-frac".into(),
    ]);
    for load in [0.5, 0.8] {
        let workload = fig2_workload(load, WORKLOAD_SEED, platform.f_max()).expect("workload");
        // Baseline: unconstrained EUA* on the same seeds.
        let base = replicate_parallel(
            &workload.tasks,
            &workload.patterns,
            &platform,
            Eua::new,
            &sim_config,
            &config.seeds,
            config.jobs,
        )
        .expect("run");
        let (base_utility, base_energy, base_completed) = totals(&base);

        table.push(vec![
            format!("load={load}"),
            String::new(),
            String::new(),
            String::new(),
        ]);
        for frac in [0.1, 0.25, 0.5, 0.75, 1.0, 1.2] {
            let budget = frac * base_energy / config.seeds.len() as f64;
            let bounded = replicate_parallel(
                &workload.tasks,
                &workload.patterns,
                &platform,
                || BudgetedEua::new(budget),
                &sim_config,
                &config.seeds,
                config.jobs,
            )
            .expect("run");
            let (utility, energy, completed) = totals(&bounded);
            table.push(vec![
                format!("{frac:.2}"),
                format!("{:.3}", utility / base_utility),
                format!("{:.3}", energy / base_energy),
                format!("{:.3}", completed / base_completed),
            ]);
        }
    }

    println!(
        "Energy-budget extension — budgeted EUA* vs unconstrained EUA* \
         (fractions of the unconstrained run):"
    );
    print!("{}", table.render());
    if let Some(dir) = &csv_dir {
        let path = dir.join("budget.csv");
        write_csv(&table, &path).expect("csv write");
        println!("wrote {}", path.display());
    }
}
