//! Chaos campaigns: randomized fault compositions × workload-universe
//! cells × policies, behind a resumable journal, with automatic
//! shrinking of failing cells to minimal `.scn` repros (DESIGN.md §15).
//!
//! Usage: `cargo run -p eua-bench --bin eua-chaos -- [--quick]
//! [--seed N] [--cells N] [--horizon-ms N] [--jobs N]
//! [--policies a,b,c] [--no-audit] [--journal PATH] [--out PATH]
//! [--resume] [--halt-after N] [--shrink-dir DIR] [--shrink-limit N]`
//!
//! The journal (`results/chaos-journal.jsonl` by default) holds one
//! compact-JSON record per finished cell after a header line; because
//! every cell is a pure function of `(master seed, index)`, a killed
//! campaign resumed with `--resume` finishes with a journal — and a
//! derived report — byte-identical to an uninterrupted run at any
//! `--jobs` count. `--halt-after N` stops after journaling N new cells
//! (the deterministic stand-in for a kill, used by CI's two-phase
//! smoke). `--shrink-dir DIR` shrinks up to `--shrink-limit` (default
//! 3) failing cells to 1-minimal repro `.scn` files ready for
//! `tests/regression_corpus/`.

use std::path::PathBuf;
use std::process::ExitCode;

use eua_bench::chaos::{self, ChaosConfig};
use eua_bench::jobs_from_args;
use eua_bench::shrink;
use eua_platform::TimeDelta;

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let resume = args.iter().any(|a| a == "--resume");
    let no_audit = args.iter().any(|a| a == "--no-audit");
    let journal: PathBuf = flag_value(&args, "--journal")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results/chaos-journal.jsonl"));
    let out: PathBuf = flag_value(&args, "--out")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results/chaos.json"));
    let halt_after: Option<u32> = flag_value(&args, "--halt-after").and_then(|v| v.parse().ok());
    let shrink_dir: Option<PathBuf> = flag_value(&args, "--shrink-dir").map(PathBuf::from);
    let shrink_limit: usize = flag_value(&args, "--shrink-limit")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);

    let mut config = if quick {
        ChaosConfig::quick()
    } else {
        ChaosConfig::standard()
    }
    .with_jobs(jobs_from_args(&args));
    if let Some(seed) = flag_value(&args, "--seed").and_then(|v| v.parse().ok()) {
        config.master_seed = seed;
    }
    if let Some(cells) = flag_value(&args, "--cells").and_then(|v| v.parse().ok()) {
        config.cells = cells;
    }
    if let Some(ms) = flag_value(&args, "--horizon-ms").and_then(|v| v.parse().ok()) {
        config.horizon = TimeDelta::from_millis(ms);
    }
    if let Some(list) = flag_value(&args, "--policies") {
        config.policies = list.split(',').map(String::from).collect();
    }
    if no_audit {
        config.audit = false;
    }

    eprintln!(
        "chaos campaign: seed {}, {} cells, {} ms horizon, policies [{}], audit {}, {} worker(s){}",
        config.master_seed,
        config.cells,
        config.horizon.as_micros() / 1_000,
        config.policies.join(", "),
        config.audit,
        config.jobs,
        if resume { " (resuming)" } else { "" },
    );

    let outcome = match chaos::run_campaign(&config, &journal, resume, halt_after) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("chaos campaign failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "journal {} holds {} / {} cell(s)",
        journal.display(),
        outcome.records.len(),
        config.cells,
    );
    if outcome.halted {
        eprintln!("halted early (--halt-after); resume with --resume");
        return ExitCode::SUCCESS;
    }

    let report = chaos::campaign_report(&config, &outcome.records);
    if let Some(dir) = out.parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("cannot create {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(e) = std::fs::write(&out, report.render()) {
        eprintln!("cannot write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    if let Some(summary) = report.get("summary") {
        eprintln!("summary: {}", summary.render_compact());
    }
    eprintln!("wrote {}", out.display());

    if let Some(dir) = &shrink_dir {
        let failing: Vec<u32> = outcome
            .records
            .iter()
            .filter(|r| chaos::record_is_failing(r))
            .filter_map(chaos::record_cell)
            .collect();
        if failing.is_empty() {
            eprintln!("no failing cells to shrink");
            return ExitCode::SUCCESS;
        }
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
        for &cell in failing.iter().take(shrink_limit) {
            let case = match shrink::case_from_chaos_cell(&config, cell) {
                Ok(case) => case,
                Err(e) => {
                    eprintln!("cell {cell}: cannot rebuild for shrinking: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let origin = format!("{} cell={cell}", case.spec.name);
            let (shrunk, kind) = match shrink::shrink(&case) {
                Ok(result) => result,
                Err(e) => {
                    // A campaign failure that is only marginal under the
                    // shrinker's uniform audited probe is reported, not
                    // fatal — the journal record still names it.
                    eprintln!("cell {cell}: {e}");
                    continue;
                }
            };
            let text = shrink::render_repro(&origin, &shrunk, kind);
            let path = dir.join(format!("chaos-s{}-cell{cell}.scn", config.master_seed));
            if let Err(e) = std::fs::write(&path, &text) {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            eprintln!(
                "  shrunk cell {cell} -> {} ({} task(s), expect={})",
                path.display(),
                shrunk.spec.tasks.len(),
                kind.as_str(),
            );
        }
        let skipped = failing.len().saturating_sub(shrink_limit);
        if skipped > 0 {
            eprintln!("  ({skipped} more failing cell(s) beyond --shrink-limit {shrink_limit})");
        }
    }
    ExitCode::SUCCESS
}
