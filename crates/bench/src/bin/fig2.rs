//! Regenerates **Figure 2** of the paper: normalized accrued utility and
//! normalized energy versus system load, under energy settings E1 and E3
//! (add `--energy e2` for the "results under E2 are similar" check),
//! step TUFs, `{ν = 1, ρ = 0.96}`, periodic Table 1 task sets.
//!
//! All values are normalized to the `edf` baseline (EDF that always uses
//! the highest frequency), exactly as in the paper.
//!
//! Usage: `cargo run -p eua-bench --bin fig2 [--quick] [--energy e1|e2|e3]...
//! [--show-settings] [--csv-dir DIR] [--jobs N]`

use std::path::PathBuf;

use eua_bench::{
    jobs_from_args, render_chart, render_svg, run_cells, write_csv, ExperimentConfig, Series, Table,
};
use eua_platform::EnergySetting;
use eua_sim::Platform;
use eua_workload::{fig2_workload, table1};

const POLICIES: &[&str] = &["eua", "laedf", "ccedf", "edf-na", "edf"];
const BASELINE: &str = "edf";
const WORKLOAD_SEED: u64 = 42;

fn loads() -> Vec<f64> {
    (1..=9).map(|i| 0.2 * i as f64).collect() // 0.2 .. 1.8
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let show_settings = args.iter().any(|a| a == "--show-settings");
    let csv_dir: Option<PathBuf> = args
        .iter()
        .position(|a| a == "--csv-dir")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from);
    let mut settings: Vec<EnergySetting> = args
        .iter()
        .enumerate()
        .filter(|(_, a)| *a == "--energy")
        .filter_map(|(i, _)| args.get(i + 1))
        .filter_map(|v| match v.as_str() {
            "e1" => Some(EnergySetting::e1()),
            "e2" => Some(EnergySetting::e2()),
            "e3" => Some(EnergySetting::e3()),
            _ => None,
        })
        .collect();
    if settings.is_empty() {
        settings = vec![EnergySetting::e1(), EnergySetting::e3()];
    }

    if show_settings {
        println!("Table 1 — task settings (reconstruction, see DESIGN.md):");
        for app in table1() {
            println!("  {app}");
        }
        println!("\nTable 2 — energy settings:");
        for s in EnergySetting::all() {
            println!("  {s}");
        }
        println!();
    }

    let config = if quick {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::standard()
    }
    .with_jobs(jobs_from_args(&args));

    for setting in settings {
        let platform = Platform::powernow(setting);
        let mut header = vec!["load".to_string()];
        for p in POLICIES {
            header.push(format!("util({p})"));
        }
        for p in POLICIES {
            header.push(format!("energy({p})"));
        }
        let mut table = Table::new(header);
        let mut util_series: Vec<Series> = POLICIES
            .iter()
            .map(|p| Series::new(*p, Vec::new()))
            .collect();
        let mut energy_series: Vec<Series> = POLICIES
            .iter()
            .map(|p| Series::new(*p, Vec::new()))
            .collect();

        for load in loads() {
            let workload =
                fig2_workload(load, WORKLOAD_SEED, platform.f_max()).expect("workload synthesis");
            let cells = run_cells(POLICIES, &workload, &platform, &config);
            let base = cells
                .iter()
                .find(|c| c.policy == BASELINE)
                .expect("baseline is in POLICIES");
            let mut row = vec![format!("{load:.1}")];
            for (i, c) in cells.iter().enumerate() {
                let v = c.utility / base.utility.max(1e-12);
                row.push(format!("{v:.3}"));
                util_series[i].points.push((load, v));
            }
            for (i, c) in cells.iter().enumerate() {
                let v = c.energy / base.energy.max(1e-12);
                row.push(format!("{v:.3}"));
                energy_series[i].points.push((load, v));
            }
            table.push(row);
        }

        println!(
            "Figure 2 — normalized utility and energy vs load under {} \
             (normalized to {BASELINE}):",
            setting.name()
        );
        print!("{}", table.render());
        println!();
        println!("normalized utility vs load:");
        print!("{}", render_chart(&util_series, 54, 12));
        println!("normalized energy vs load:");
        print!("{}", render_chart(&energy_series, 54, 12));
        println!();
        if let Some(dir) = &csv_dir {
            let tag = setting.name().to_lowercase();
            let path = dir.join(format!("fig2_{tag}.csv"));
            write_csv(&table, &path).expect("csv write");
            println!("wrote {}", path.display());
            for (kind, series) in [("utility", &util_series), ("energy", &energy_series)] {
                let svg = render_svg(
                    series,
                    &format!("Figure 2 - normalized {kind} vs load ({})", setting.name()),
                    "system load",
                    &format!("normalized {kind}"),
                );
                let path = dir.join(format!("fig2_{tag}_{kind}.svg"));
                std::fs::write(&path, svg).expect("svg write");
                println!("wrote {}", path.display());
            }
        }
    }
}
