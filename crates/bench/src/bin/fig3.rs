//! Regenerates **Figure 3** of the paper: EUA\*'s normalized energy
//! consumption versus load for UAM descriptors `⟨1, P⟩`, `⟨2, P⟩`,
//! `⟨3, P⟩` — linear TUFs with slope `−U^max/P`, `{ν = 0.3, ρ = 0.9}`,
//! energy setting E1.
//!
//! Energy is normalized to EUA\* **without DVS** (always `f_m`), as in
//! the paper. The expected shape: during under-loads energy rises with
//! `a` (burstier arrivals spoil slack prediction); during overloads all
//! curves converge (everything runs at `f_m`).
//!
//! Usage: `cargo run -p eua-bench --bin fig3 [--quick] [--csv-dir DIR]
//! [--jobs N]`

use std::path::PathBuf;

use eua_bench::{
    jobs_from_args, render_chart, render_svg, run_cells, write_csv, ExperimentConfig, Series, Table,
};
use eua_platform::EnergySetting;
use eua_sim::Platform;
use eua_workload::fig3_workload;

const WORKLOAD_SEED: u64 = 42;

fn loads() -> Vec<f64> {
    (1..=9).map(|i| 0.2 * i as f64).collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let csv_dir: Option<PathBuf> = args
        .iter()
        .position(|a| a == "--csv-dir")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from);
    let config = if quick {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::standard()
    }
    .with_jobs(jobs_from_args(&args));
    let platform = Platform::powernow(EnergySetting::e1());

    let mut table = Table::new(vec![
        "load".into(),
        "E, <1,P>".into(),
        "E, <2,P>".into(),
        "E, <3,P>".into(),
    ]);
    let mut series: Vec<Series> = (1..=3u32)
        .map(|a| Series::new(format!("<{a},P>"), Vec::new()))
        .collect();
    for load in loads() {
        let mut row = vec![format!("{load:.1}")];
        for a in 1..=3u32 {
            let workload = fig3_workload(load, a, WORKLOAD_SEED, platform.f_max())
                .expect("workload synthesis");
            let cells = run_cells(&["eua", "eua-nodvs"], &workload, &platform, &config);
            let (dvs, nodvs) = (&cells[0], &cells[1]);
            let v = dvs.energy / nodvs.energy.max(1e-12);
            row.push(format!("{v:.3}"));
            series[(a - 1) as usize].points.push((load, v));
        }
        table.push(row);
    }

    println!(
        "Figure 3 — EUA* energy consumption under different UAM settings \
         (normalized to EUA* without DVS), E1, linear TUFs:"
    );
    print!("{}", table.render());
    println!();
    print!("{}", render_chart(&series, 54, 12));
    if let Some(dir) = &csv_dir {
        let path = dir.join("fig3.csv");
        write_csv(&table, &path).expect("csv write");
        println!("wrote {}", path.display());
        let svg = render_svg(
            &series,
            "Figure 3 - EUA* energy under different UAM settings (E1)",
            "system load",
            "energy normalized to EUA* without DVS",
        );
        let path = dir.join("fig3.svg");
        std::fs::write(&path, svg).expect("svg write");
        println!("wrote {}", path.display());
    }
}
