//! Sweeps fault intensity × policy (EUA\*, DASA, EDF, LLF) through the
//! deterministic fault-injection layer and emits UER-vs-fault-intensity
//! degradation curves for the four fault families of DESIGN.md §10:
//! UAM burst violations, demand mis-estimation, degraded DVS, and
//! abort-cost/jitter timing faults.
//!
//! Usage: `cargo run -p eua-bench --bin robustness [--quick] [--jobs N]
//! [--load X] [--out PATH] [--certify DIR] [--check]`
//!
//! The report goes to `results/robustness.json` (first-party JSON; the
//! document is byte-identical for any `--jobs` count). `--check`
//! re-parses the written file and fails unless rendering it reproduces
//! the bytes on disk exactly. `--certify DIR` additionally records an
//! `eua-certificate/1` document per `(family, intensity, policy, seed)`
//! cell into `DIR` so the sweep can be validated offline:
//!
//! ```text
//! eua-audit check DIR/*.json
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use eua_bench::{jobs_from_args, run_robustness, RobustnessConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let out: PathBuf = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results/robustness.json"));
    let certify_dir: Option<PathBuf> = args
        .iter()
        .position(|a| a == "--certify")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from);

    let mut config = if quick {
        RobustnessConfig::quick()
    } else {
        RobustnessConfig::standard()
    }
    .with_jobs(jobs_from_args(&args));
    if let Some(load) = args
        .iter()
        .position(|a| a == "--load")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
    {
        config.load = load;
    }
    config.certify = certify_dir.is_some();

    eprintln!(
        "robustness sweep: load {}, {} intensities x {} policies x {} seeds, {} worker(s)",
        config.load,
        config.intensities.len(),
        config.policies.len(),
        config.seeds.len(),
        config.jobs,
    );
    let report = match run_robustness(&config) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("robustness sweep failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    for point in &report.points {
        if point.intensity == 0.0 || point.intensity == 1.0 {
            eprintln!(
                "  {:12} intensity {:4} {:6} uer {:>10.3e} (met {} / degraded {} / collapsed {})",
                point.family.key(),
                point.intensity,
                point.policy,
                point.uer,
                point.met,
                point.degraded,
                point.collapsed,
            );
        }
    }

    let text = report.to_json().render();
    if let Some(dir) = out.parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("cannot create {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(e) = std::fs::write(&out, &text) {
        eprintln!("cannot write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {}", out.display());

    if let Some(dir) = &certify_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
        for (name, cert) in &report.certificates {
            if let Err(e) = std::fs::write(dir.join(name), cert) {
                eprintln!("cannot write {}: {e}", dir.join(name).display());
                return ExitCode::FAILURE;
            }
        }
        eprintln!(
            "wrote {} certificate(s) to {} (validate with: eua-audit check {}/*.json)",
            report.certificates.len(),
            dir.display(),
            dir.display(),
        );
    }

    if check {
        let on_disk = match std::fs::read_to_string(&out) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot re-read {}: {e}", out.display());
                return ExitCode::FAILURE;
            }
        };
        let reparsed = match eua_bench::json::parse(&on_disk) {
            Ok(v) => v,
            Err(e) => {
                eprintln!(
                    "round-trip check failed: {} does not parse: {e}",
                    out.display()
                );
                return ExitCode::FAILURE;
            }
        };
        if reparsed.render() != on_disk {
            eprintln!(
                "round-trip check failed: re-rendering {} changed its bytes",
                out.display()
            );
            return ExitCode::FAILURE;
        }
        eprintln!("round-trip check passed");
    }
    ExitCode::SUCCESS
}
