//! Empirically checks the §4 timeliness properties of EUA\* under the
//! theorem conditions — periodic `⟨1, P⟩` tasks, downward-step TUFs, no
//! CPU overload:
//!
//! * **Theorem 2** — EUA\* produces the same (critical-time-ordered)
//!   schedule as EDF, yielding equal total utilities (checked at `f_m` so
//!   the dispatch sequences are directly comparable);
//! * **Corollary 3** — EUA\* meets all task critical times;
//! * **Corollary 4** — EUA\* minimizes the maximum lateness (compared
//!   against EDF's);
//! * **Theorem 5** — EUA\* meets the `{ν, ρ}` statistical requirements;
//! * **Theorem 6** — the same holds for non-step, non-increasing TUFs
//!   under the Baruah–Rosier–Howell condition (checked with linear TUFs).
//!
//! Usage: `cargo run -p eua-bench --bin theorems [--quick] [--jobs N]`

use eua_bench::jobs_from_args;
use eua_core::{EdfPolicy, Eua};
use eua_platform::{EnergySetting, TimeDelta};
use eua_sim::{map_parallel, Engine, Platform, SchedulerPolicy, SimConfig};
use eua_workload::{fig3_workload, theorem_workload, Workload};

fn check(label: &str, ok: bool, detail: String) -> bool {
    println!("  [{}] {label}: {detail}", if ok { "PASS" } else { "FAIL" });
    ok
}

fn run(
    workload: &Workload,
    platform: &Platform,
    policy: &mut dyn SchedulerPolicy,
    horizon: TimeDelta,
    seed: u64,
) -> eua_sim::Outcome {
    let config = SimConfig::new(horizon).with_trace();
    Engine::run(
        &workload.tasks,
        &workload.patterns,
        platform,
        policy,
        &config,
        seed,
    )
    .expect("simulation failed")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let jobs = jobs_from_args(&args);
    let horizon = if quick {
        TimeDelta::from_secs(5)
    } else {
        TimeDelta::from_secs(20)
    };
    let platform = Platform::powernow(EnergySetting::e1());
    let mut all_ok = true;

    for load in [0.3, 0.6, 0.9] {
        println!("load = {load} (periodic, step TUFs, under-load):");
        let w = theorem_workload(load, 42, platform.f_max()).expect("workload");
        // The three comparison runs are independent; fan them out.
        let mut outs = map_parallel(jobs, vec![0usize, 1, 2], |_, which| {
            let mut policy: Box<dyn SchedulerPolicy> = match which {
                0 => Box::new(EdfPolicy::max_speed()),
                1 => Box::new(Eua::without_dvs()),
                _ => Box::new(Eua::new()),
            };
            run(&w, &platform, policy.as_mut(), horizon, 7)
        })
        .expect("theorem runs");
        let (edf, eua_fm, eua) = {
            let eua = outs.pop().expect("three runs");
            let eua_fm = outs.pop().expect("three runs");
            let edf = outs.pop().expect("three runs");
            (edf, eua_fm, eua)
        };

        // Theorem 2: identical schedules at f_m, equal utilities.
        let seq_edf = edf.trace.as_ref().expect("trace").job_sequence();
        let seq_eua = eua_fm.trace.as_ref().expect("trace").job_sequence();
        all_ok &= check(
            "Theorem 2 (schedule)",
            seq_edf == seq_eua,
            format!("{} vs {} dispatches", seq_edf.len(), seq_eua.len()),
        );
        let du = (edf.metrics.total_utility - eua_fm.metrics.total_utility).abs();
        all_ok &= check(
            "Theorem 2 (utility)",
            du < 1e-6,
            format!("|Δutility| = {du:.2e}"),
        );
        let du_dvs = (edf.metrics.total_utility - eua.metrics.total_utility).abs();
        all_ok &= check(
            "Theorem 2 (utility, with DVS)",
            du_dvs < 1e-6,
            format!("|Δutility| = {du_dvs:.2e}"),
        );

        // Corollary 3: all critical times met (with DVS active).
        let misses: u64 = eua
            .metrics
            .per_task
            .iter()
            .map(|t| t.completed - t.critical_met + t.aborted_by_termination + t.aborted_by_policy)
            .sum();
        all_ok &= check(
            "Corollary 3 (critical times)",
            misses == 0,
            format!("{misses} misses"),
        );

        // Corollary 4: max lateness no worse than EDF's.
        let l_eua = eua_fm.metrics.max_lateness_us();
        let l_edf = edf.metrics.max_lateness_us();
        all_ok &= check(
            "Corollary 4 (max lateness)",
            l_eua <= l_edf,
            format!("eua {l_eua} µs vs edf {l_edf} µs"),
        );

        // Theorem 5: statistical requirements met.
        let assured = eua.metrics.meets_assurances(&w.tasks);
        all_ok &= check("Theorem 5 (assurances)", assured, String::new());
        println!();
    }

    // Theorem 6: non-step, non-increasing (linear) TUFs under-load.
    for load in [0.3, 0.6] {
        println!("load = {load} (periodic, linear TUFs — Theorem 6):");
        let w = fig3_workload(load, 1, 42, platform.f_max()).expect("workload");
        let eua = run(&w, &platform, &mut Eua::new(), horizon, 7);
        // Theorem 6 is a *statistical* guarantee: with `{ν = 0.3, ρ = 0.9}`
        // up to 1 − ρ of the jobs may fall short of their critical time.
        let misses: u64 = eua
            .metrics
            .per_task
            .iter()
            .map(|t| t.completed - t.critical_met + t.aborted_by_termination + t.aborted_by_policy)
            .sum();
        let arrived = eua.metrics.jobs_arrived().max(1);
        let miss_rate = misses as f64 / arrived as f64;
        all_ok &= check(
            "Theorem 6 (critical-time miss rate <= 1 - rho)",
            miss_rate <= 0.1,
            format!("{misses}/{arrived} = {:.2}%", 100.0 * miss_rate),
        );
        let assured = eua.metrics.meets_assurances(&w.tasks);
        all_ok &= check("Theorem 6 (assurances)", assured, String::new());
        println!();
    }

    if all_ok {
        println!("all theorem checks passed");
    } else {
        println!("SOME THEOREM CHECKS FAILED");
        std::process::exit(1);
    }
}
