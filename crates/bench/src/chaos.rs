//! Chaos campaigns: randomized fault-plan compositions × workload
//! universes × policies, swept through the worker pool behind a
//! resumable, byte-round-tripping journal (see DESIGN.md §15).
//!
//! Every cell of a campaign is a **pure function of `(master_seed,
//! cell index)`**: the cell's universe address, policy, run seed, and
//! composed [`FaultPlan`] all derive from one mixed seed, and the
//! scenario it simulates is regenerated from its `(family, cell,
//! seed)` address on demand. That purity is what makes the journal a
//! sufficient checkpoint — resuming a killed campaign replays nothing
//! and appends exactly the missing cells, so the finished journal (and
//! the report derived from it) is byte-identical to an uninterrupted
//! run at any `--jobs` count.
//!
//! Grading reuses the robustness oracle ([`classify_degradation`]),
//! and — when [`ChaosConfig::audit`] is set — every cell's decision
//! certificate is checked by the offline `eua-audit` validator. A cell
//! is *failing* when it collapses, fails audit, or panics; panicking
//! cells settle into graded records (via
//! [`eua_sim::map_parallel_settle`]) instead of aborting the campaign,
//! and all failing cells are shrink candidates for
//! [`crate::shrink`].

use std::fs;
use std::io::Write as _;
use std::path::Path;

use eua_analyze::scenario::{EnergySpec, FaultSpec, ScenarioSpec};
use eua_analyze::{DiagCode, Report, Severity};
use eua_core::make_policy;
use eua_platform::{EnergySetting, Frequency, FrequencyTable, TimeDelta};
use eua_sim::{
    classify_degradation, map_parallel_settle, DegradationClass, Engine, FaultPlan, Platform,
    PoolError, SimConfig, DEFAULT_COLLAPSE_FRACTION,
};
use eua_workload::UniverseFamily;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::json::Json;
use crate::robustness::FaultFamily;

/// Schema tag of the journal's header line.
pub const JOURNAL_SCHEMA: &str = "eua-chaos-journal/1";
/// Schema tag of the derived campaign report.
pub const REPORT_SCHEMA: &str = "eua-chaos/1";

/// Campaign configuration. Everything that affects cell *content* is
/// captured in the journal header; `jobs` deliberately is not — the
/// journal must be byte-identical at any worker count.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Master seed: the single source of every cell's randomness.
    pub master_seed: u64,
    /// Number of cells to sweep.
    pub cells: u32,
    /// Simulated horizon per cell.
    pub horizon: TimeDelta,
    /// Worker threads; `1` runs strictly sequentially.
    pub jobs: usize,
    /// Policy names each cell samples from (`eua_core::make_policy`).
    pub policies: Vec<String>,
    /// Record and audit a decision certificate per cell.
    pub audit: bool,
}

impl ChaosConfig {
    /// The default campaign: 256 cells, 2 s horizons, audited.
    #[must_use]
    pub fn standard() -> Self {
        ChaosConfig {
            master_seed: 1,
            cells: 256,
            horizon: TimeDelta::from_secs(2),
            jobs: 1,
            policies: ["eua", "dasa", "edf", "llf"]
                .into_iter()
                .map(String::from)
                .collect(),
            audit: true,
        }
    }

    /// A small-budget configuration for smoke tests and CI.
    #[must_use]
    pub fn quick() -> Self {
        ChaosConfig {
            master_seed: 7,
            cells: 16,
            horizon: TimeDelta::from_millis(300),
            jobs: 1,
            policies: vec!["eua".into(), "edf".into()],
            audit: true,
        }
    }

    /// Sets the worker-thread count (builder style).
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }
}

/// Everything one cell will do, derived purely from
/// `(master_seed, index)` by [`plan_cell`].
#[derive(Debug, Clone, PartialEq)]
pub struct CellPlan {
    /// The cell's campaign index.
    pub index: u32,
    /// The universe family the cell draws its workload from.
    pub family: UniverseFamily,
    /// The family cell (see [`UniverseFamily::generate`]).
    pub universe_cell: u32,
    /// The policy under test.
    pub policy: String,
    /// The engine run seed (demand sampling, fault noise).
    pub run_seed: u64,
    /// The composed fault plan (0–4 families stacked).
    pub faults: FaultPlan,
}

/// SplitMix64 finalizer — the same mixer the universe generator uses
/// for its cell addresses, applied here to campaign cell indices.
fn splitmix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The RNG seed of campaign cell `index` under `master_seed`. Two
/// finalizer rounds over distinct odd constants keep neighbouring
/// cells (and neighbouring master seeds) statistically unrelated.
#[must_use]
pub fn chaos_cell_seed(master_seed: u64, index: u32) -> u64 {
    let mixed = master_seed
        .wrapping_add(0x43_4841_4F53) // "CHAOS"
        .wrapping_add(u64::from(index).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    splitmix(splitmix(mixed))
}

/// Samples a composed fault plan: each robustness fault family joins
/// the plan with probability ½ at an intensity drawn from
/// `[0.25, 1.0]`, so roughly one cell in sixteen runs fault-free and
/// the rest stack one to four families.
fn sample_faults(rng: &mut SmallRng) -> FaultPlan {
    let mut plan = FaultPlan::none();
    for family in FaultFamily::ALL {
        if rng.gen_bool(0.5) {
            let intensity: f64 = rng.gen_range(0.25..=1.0);
            family.apply_at(&mut plan, intensity);
        }
    }
    plan
}

/// Derives cell `index`'s complete plan. Pure: the same
/// `(config.master_seed, config.policies, index)` always yields the
/// same plan, independent of job count or execution order.
#[must_use]
pub fn plan_cell(config: &ChaosConfig, index: u32) -> CellPlan {
    assert!(
        !config.policies.is_empty(),
        "campaign needs at least one policy"
    );
    let mut rng = SmallRng::seed_from_u64(chaos_cell_seed(config.master_seed, index));
    let family = UniverseFamily::ALL[rng.gen_range(0..UniverseFamily::ALL.len())];
    let universe_cell = rng.gen_range(0u32..100_000);
    let policy = config.policies[rng.gen_range(0..config.policies.len())].clone();
    let run_seed: u64 = rng.gen();
    let faults = sample_faults(&mut rng);
    CellPlan {
        index,
        family,
        universe_cell,
        policy,
        run_seed,
        faults,
    }
}

/// Renders cell `index`'s scenario to canonical `.scn` text (the same
/// text the cell executor round-trips before simulating). Exposed so
/// the determinism suite can pin byte-identity across `--jobs` counts.
///
/// # Errors
///
/// Propagates universe-generation and `.scn` lowering failures.
pub fn cell_scenario_text(config: &ChaosConfig, index: u32) -> Result<String, String> {
    let plan = plan_cell(config, index);
    let scenario = plan
        .family
        .generate(
            plan.universe_cell,
            config.master_seed,
            Frequency::from_mhz(100),
        )
        .map_err(|e| format!("universe generation failed: {e}"))?;
    let table = FrequencyTable::powernow_k6();
    let spec =
        ScenarioSpec::from_workload(&scenario.name, &scenario.workload, &table, EnergySpec::e1())?;
    Ok(spec.render())
}

/// Audit errors the injected fault plan does *not* explain. An
/// injected UAM burst or arrival jitter makes the certified arrival
/// stream violate the declared `⟨a, P⟩` on purpose, and the audit
/// detecting that (`aud-uam-violation`) is the fault layer working —
/// not a failing cell. Every other `aud-*` error (UER mismatch,
/// schedule reconstruction, energy accounting, …) counts always: the
/// translation invariants must hold even under faults.
#[must_use]
pub fn unexpected_audit_errors(report: &Report, plan: &FaultPlan) -> u64 {
    report
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .filter(|d| !(plan.arrivals_faulted() && d.code == DiagCode::AudUamViolation))
        .count() as u64
}

/// What a surviving (non-panicking) cell reports back from the pool.
struct CellOutcome {
    grade: DegradationClass,
    utility_ratio: f64,
    audit_errors: u64,
}

/// Runs one cell end to end. Any internal failure — universe
/// generation, `.scn` render drift, unknown policy, simulation error —
/// panics, and the pool settles the panic into the cell's record.
fn execute_cell(config: &ChaosConfig, platform: &Platform, index: u32) -> CellOutcome {
    let plan = plan_cell(config, index);
    let scenario = plan
        .family
        .generate(plan.universe_cell, config.master_seed, platform.f_max())
        .unwrap_or_else(|e| panic!("universe generation failed: {e}"));
    let table = FrequencyTable::powernow_k6();
    let spec =
        ScenarioSpec::from_workload(&scenario.name, &scenario.workload, &table, EnergySpec::e1())
            .unwrap_or_else(|e| panic!("scenario lowering failed: {e}"));
    // The campaign's repro path is the `.scn` text, so the cell
    // simulates what the text says — after checking the text is an
    // exact fixed point of parse ∘ render (drift here would desync the
    // shrinker from the campaign).
    let rendered = spec.render();
    let reparsed = ScenarioSpec::parse(&rendered)
        .unwrap_or_else(|e| panic!("render drift: canonical text does not parse: {e}"));
    assert!(
        reparsed == spec,
        "render drift: parse(render(spec)) != spec"
    );
    assert!(
        reparsed.render() == rendered,
        "render drift: render is not a fixpoint"
    );
    let workload = reparsed
        .to_workload()
        .unwrap_or_else(|e| panic!("workload raise failed: {e}"));
    let mut policy =
        make_policy(&plan.policy).unwrap_or_else(|| panic!("unknown policy {}", plan.policy));
    let sim_config = if config.audit {
        SimConfig::new(config.horizon).with_certificate()
    } else {
        SimConfig::new(config.horizon)
    };
    let outcome = Engine::run_with_faults(
        &workload.tasks,
        &workload.patterns,
        platform,
        &mut policy,
        &sim_config,
        plan.run_seed,
        &plan.faults,
    )
    .unwrap_or_else(|e| panic!("simulation failed: {e}"));
    let audit_errors = outcome.certificate.as_ref().map_or(0, |cert| {
        let report = eua_audit::audit_text(&scenario.name, &cert.render());
        unexpected_audit_errors(&report, &plan.faults)
    });
    let grade =
        classify_degradation(&outcome.metrics, &workload.tasks, DEFAULT_COLLAPSE_FRACTION).overall;
    CellOutcome {
        grade,
        utility_ratio: outcome.metrics.utility_ratio(),
        audit_errors,
    }
}

fn fault_json(plan: &FaultPlan) -> Json {
    // Campaign plans never use `stuck_after`, so lowering always works.
    let spec = FaultSpec::from_plan(plan).unwrap_or_default();
    Json::Obj(vec![
        (
            "burst_extra".into(),
            Json::uint(u64::from(spec.burst_extra)),
        ),
        (
            "burst_every".into(),
            Json::uint(u64::from(spec.burst_every)),
        ),
        ("mean_factor".into(), Json::num(spec.demand_mean_factor)),
        ("spread".into(), Json::num(spec.demand_spread)),
        (
            "switch_latency".into(),
            Json::uint(spec.switch_latency_cycles),
        ),
        (
            "degraded_mhz".into(),
            match &spec.degraded_mhz {
                Some(set) => Json::Arr(set.iter().map(|&f| Json::uint(f)).collect()),
                None => Json::Null,
            },
        ),
        ("abort_cost_us".into(), Json::uint(spec.abort_cost_us)),
        ("jitter_us".into(), Json::uint(spec.arrival_jitter_us)),
    ])
}

/// Builds cell `index`'s journal record from its settled pool slot. A
/// panicked slot grades as `collapsed` with the panic message attached
/// — the worst a cell can do, and a first-class shrink candidate.
fn cell_record(config: &ChaosConfig, index: u32, outcome: &Result<CellOutcome, PoolError>) -> Json {
    let plan = plan_cell(config, index);
    let (grade, ratio, audit_errors, panic_msg) = match outcome {
        Ok(o) => (
            o.grade.as_str(),
            Json::num(o.utility_ratio),
            o.audit_errors,
            Json::Null,
        ),
        Err(PoolError::WorkerPanic { message, .. }) => {
            ("collapsed", Json::Null, 0, Json::Str(message.clone()))
        }
        Err(other) => ("collapsed", Json::Null, 0, Json::Str(other.to_string())),
    };
    Json::Obj(vec![
        ("cell".into(), Json::uint(u64::from(index))),
        ("family".into(), Json::Str(plan.family.key().into())),
        (
            "universe_cell".into(),
            Json::uint(u64::from(plan.universe_cell)),
        ),
        ("policy".into(), Json::Str(plan.policy.clone())),
        ("seed".into(), Json::uint(plan.run_seed)),
        ("faults".into(), fault_json(&plan.faults)),
        ("grade".into(), Json::Str(grade.into())),
        ("utility_ratio".into(), ratio),
        ("audit_errors".into(), Json::uint(audit_errors)),
        ("panic".into(), panic_msg),
    ])
}

/// The journal's header value: everything that determines cell
/// content. Resume refuses a journal whose header line differs.
#[must_use]
pub fn journal_header(config: &ChaosConfig) -> Json {
    Json::Obj(vec![
        ("schema".into(), Json::Str(JOURNAL_SCHEMA.into())),
        ("master_seed".into(), Json::uint(config.master_seed)),
        ("cells".into(), Json::uint(u64::from(config.cells))),
        ("horizon_us".into(), Json::uint(config.horizon.as_micros())),
        ("audit".into(), Json::Bool(config.audit)),
        (
            "policies".into(),
            Json::Arr(
                config
                    .policies
                    .iter()
                    .map(|p| Json::Str(p.clone()))
                    .collect(),
            ),
        ),
    ])
}

fn json_u64(value: &Json) -> Option<u64> {
    match value {
        Json::Num(text) => text.parse().ok(),
        _ => None,
    }
}

/// The campaign index of a journal record.
#[must_use]
pub fn record_cell(record: &Json) -> Option<u32> {
    record
        .get("cell")
        .and_then(json_u64)
        .and_then(|v| u32::try_from(v).ok())
}

/// Whether a journal record is a *failing* cell: collapsed, audit
/// errors, or a settled panic. Failing cells are shrink candidates.
#[must_use]
pub fn record_is_failing(record: &Json) -> bool {
    let collapsed = record.get("grade").and_then(Json::as_str) == Some("collapsed");
    let audit_failed = record.get("audit_errors").and_then(json_u64).unwrap_or(0) > 0;
    let panicked = !matches!(record.get("panic"), Some(Json::Null) | None);
    collapsed || audit_failed || panicked
}

/// A finished (or halted) campaign: every journaled record in cell
/// order, plus whether the run stopped early.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignOutcome {
    /// All records journaled so far, in cell order.
    pub records: Vec<Json>,
    /// `true` when `halt_after` stopped the run before the last cell.
    pub halted: bool,
}

/// Runs (or resumes) a campaign against its journal file.
///
/// * `resume = false` truncates the journal and writes the header;
/// * `resume = true` requires an existing journal whose header line is
///   byte-identical to this configuration's, validates the journaled
///   record prefix is contiguous, and continues after it;
/// * `halt_after = Some(n)` stops once at least `n` *new* cells have
///   been journaled this invocation (the deterministic stand-in for a
///   mid-flight kill in tests and CI).
///
/// Because each record is a pure function of `(master_seed, index)`,
/// any interleaving of halts and resumes yields the same final journal
/// bytes as one uninterrupted run, at any `jobs` count.
///
/// # Errors
///
/// I/O failures, a journal/configuration mismatch on resume, or a
/// corrupt journal prefix.
pub fn run_campaign(
    config: &ChaosConfig,
    journal: &Path,
    resume: bool,
    halt_after: Option<u32>,
) -> Result<CampaignOutcome, String> {
    if config.policies.is_empty() {
        return Err("campaign needs at least one policy".into());
    }
    let header = journal_header(config).render_compact();
    let mut records: Vec<Json> = Vec::new();
    if resume {
        let text = fs::read_to_string(journal)
            .map_err(|e| format!("cannot read journal {}: {e}", journal.display()))?;
        let mut lines = text.lines();
        let first = lines.next().ok_or("journal is empty")?;
        if first != header {
            return Err(format!(
                "journal {} was written by a different campaign configuration \
                 (header mismatch); refusing to resume",
                journal.display()
            ));
        }
        for (i, line) in lines.enumerate() {
            let record =
                crate::json::parse(line).map_err(|e| format!("journal line {}: {e}", i + 2))?;
            let cell = record_cell(&record)
                .ok_or_else(|| format!("journal line {}: missing cell index", i + 2))?;
            if cell as usize != i {
                return Err(format!(
                    "journal line {}: expected cell {i}, found cell {cell}",
                    i + 2
                ));
            }
            records.push(record);
        }
        if records.len() > config.cells as usize {
            return Err(format!(
                "journal holds {} records but the campaign has {} cells",
                records.len(),
                config.cells
            ));
        }
    } else {
        if let Some(dir) = journal.parent() {
            if !dir.as_os_str().is_empty() {
                fs::create_dir_all(dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
            }
        }
        fs::write(journal, format!("{header}\n"))
            .map_err(|e| format!("cannot write journal {}: {e}", journal.display()))?;
    }

    let platform = Platform::powernow(EnergySetting::e1());
    let jobs = config.jobs.max(1);
    let mut file = fs::OpenOptions::new()
        .append(true)
        .open(journal)
        .map_err(|e| format!("cannot append to journal {}: {e}", journal.display()))?;
    // Chunk size only controls append granularity (and how promptly a
    // halt takes effect) — never record content.
    let chunk = (jobs * 4).max(8) as u32;
    let mut next = records.len() as u32;
    let mut fresh = 0u32;
    while next < config.cells {
        if halt_after.is_some_and(|limit| fresh >= limit) {
            return Ok(CampaignOutcome {
                records,
                halted: true,
            });
        }
        let end = next.saturating_add(chunk).min(config.cells);
        let indices: Vec<u32> = (next..end).collect();
        let outcomes = map_parallel_settle(
            jobs,
            indices.clone(),
            |_, &index| format!("cell {index}"),
            || (),
            |(), _, index| execute_cell(config, &platform, index),
        )
        .map_err(|e| format!("worker pool failed: {e}"))?;
        let mut buf = String::new();
        for (&index, outcome) in indices.iter().zip(&outcomes) {
            let record = cell_record(config, index, outcome);
            buf.push_str(&record.render_compact());
            buf.push('\n');
            records.push(record);
        }
        file.write_all(buf.as_bytes())
            .map_err(|e| format!("journal append failed: {e}"))?;
        file.flush()
            .map_err(|e| format!("journal flush failed: {e}"))?;
        fresh += end - next;
        next = end;
    }
    Ok(CampaignOutcome {
        records,
        halted: false,
    })
}

/// Derives the campaign report from the journal's records — and from
/// nothing else, so an interrupted-then-resumed campaign reports the
/// same bytes as an uninterrupted one.
#[must_use]
pub fn campaign_report(config: &ChaosConfig, records: &[Json]) -> Json {
    struct Counts {
        cells: u64,
        met: u64,
        degraded: u64,
        collapsed: u64,
        panics: u64,
        audit_failures: u64,
    }
    impl Counts {
        fn new() -> Self {
            Counts {
                cells: 0,
                met: 0,
                degraded: 0,
                collapsed: 0,
                panics: 0,
                audit_failures: 0,
            }
        }
        fn add(&mut self, record: &Json) {
            self.cells += 1;
            match record.get("grade").and_then(Json::as_str) {
                Some("met") => self.met += 1,
                Some("degraded") => self.degraded += 1,
                _ => self.collapsed += 1,
            }
            if !matches!(record.get("panic"), Some(Json::Null) | None) {
                self.panics += 1;
            }
            if record.get("audit_errors").and_then(json_u64).unwrap_or(0) > 0 {
                self.audit_failures += 1;
            }
        }
        fn fields(&self) -> Vec<(String, Json)> {
            vec![
                ("cells".into(), Json::uint(self.cells)),
                ("met".into(), Json::uint(self.met)),
                ("degraded".into(), Json::uint(self.degraded)),
                ("collapsed".into(), Json::uint(self.collapsed)),
                ("panics".into(), Json::uint(self.panics)),
                ("audit_failures".into(), Json::uint(self.audit_failures)),
            ]
        }
    }

    let mut total = Counts::new();
    let mut failing = Vec::new();
    for record in records {
        total.add(record);
        if record_is_failing(record) {
            failing.push(record.clone());
        }
    }
    let by_family: Vec<Json> = UniverseFamily::ALL
        .iter()
        .map(|family| {
            let mut counts = Counts::new();
            for record in records {
                if record.get("family").and_then(Json::as_str) == Some(family.key()) {
                    counts.add(record);
                }
            }
            let mut fields = vec![("family".into(), Json::Str(family.key().into()))];
            fields.extend(counts.fields());
            Json::Obj(fields)
        })
        .collect();
    let by_policy: Vec<Json> = config
        .policies
        .iter()
        .map(|policy| {
            let mut counts = Counts::new();
            for record in records {
                if record.get("policy").and_then(Json::as_str) == Some(policy.as_str()) {
                    counts.add(record);
                }
            }
            let mut fields = vec![("policy".into(), Json::Str(policy.clone()))];
            fields.extend(counts.fields());
            Json::Obj(fields)
        })
        .collect();

    let mut summary = total.fields();
    summary.push(("failing".into(), Json::uint(failing.len() as u64)));
    Json::Obj(vec![
        ("schema".into(), Json::Str(REPORT_SCHEMA.into())),
        ("master_seed".into(), Json::uint(config.master_seed)),
        ("cells".into(), Json::uint(u64::from(config.cells))),
        ("horizon_us".into(), Json::uint(config.horizon.as_micros())),
        ("audit".into(), Json::Bool(config.audit)),
        (
            "policies".into(),
            Json::Arr(
                config
                    .policies
                    .iter()
                    .map(|p| Json::Str(p.clone()))
                    .collect(),
            ),
        ),
        ("summary".into(), Json::Obj(summary)),
        ("by_family".into(), Json::Arr(by_family)),
        ("by_policy".into(), Json::Arr(by_policy)),
        ("failing_cells".into(), Json::Arr(failing)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_journal(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("eua-chaos-{}-{tag}", std::process::id()));
        fs::create_dir_all(&dir).expect("tmp dir");
        dir.join("campaign.jsonl")
    }

    #[test]
    fn cell_plans_are_pure_and_varied() {
        let config = ChaosConfig::standard();
        let plans: Vec<CellPlan> = (0..64).map(|i| plan_cell(&config, i)).collect();
        for plan in &plans {
            assert_eq!(plan_cell(&config, plan.index), *plan, "plans must be pure");
            plan.faults.validate().expect("sampled plans are valid");
        }
        let faultless = plans.iter().filter(|p| p.faults.is_none()).count();
        let multi = plans
            .iter()
            .filter(|p| p.faults.arrivals_faulted() && p.faults.demand_faulted())
            .count();
        assert!(faultless > 0, "some cells must run fault-free");
        assert!(multi > 0, "some cells must stack fault families");
        let families: std::collections::BTreeSet<&str> =
            plans.iter().map(|p| p.family.key()).collect();
        assert!(families.len() >= 4, "64 cells must hit most families");
    }

    #[test]
    fn scenario_text_is_byte_identical_across_job_counts() {
        let config = ChaosConfig::quick();
        let indices: Vec<u32> = (0..config.cells).collect();
        let render = |jobs: usize| -> Vec<String> {
            map_parallel_settle(
                jobs,
                indices.clone(),
                |_, &i| format!("cell {i}"),
                || (),
                |(), _, i| cell_scenario_text(&config, i).expect("renders"),
            )
            .expect("pool")
            .into_iter()
            .map(|r| r.expect("no panics"))
            .collect()
        };
        assert_eq!(
            render(1),
            render(4),
            "scenario bytes must not depend on jobs"
        );
    }

    #[test]
    fn campaign_is_byte_identical_across_jobs_and_resume() {
        let config = ChaosConfig::quick();

        let full = tmp_journal("full");
        let outcome = run_campaign(&config, &full, false, None).expect("campaign");
        assert!(!outcome.halted);
        assert_eq!(outcome.records.len(), config.cells as usize);
        let full_bytes = fs::read_to_string(&full).expect("journal");
        let report_bytes = campaign_report(&config, &outcome.records).render();

        // Same seed, four workers: identical journal and report bytes.
        let par = tmp_journal("par");
        let outcome_par =
            run_campaign(&config.clone().with_jobs(4), &par, false, None).expect("campaign");
        assert_eq!(fs::read_to_string(&par).expect("journal"), full_bytes);
        assert_eq!(
            campaign_report(&config, &outcome_par.records).render(),
            report_bytes
        );

        // Killed mid-flight (halt after 5 fresh cells), then resumed:
        // byte-identical to the uninterrupted run.
        let two = tmp_journal("twophase");
        let halted = run_campaign(&config, &two, false, Some(5)).expect("phase 1");
        assert!(halted.halted);
        assert!(halted.records.len() < config.cells as usize);
        let resumed = run_campaign(&config, &two, true, None).expect("phase 2");
        assert!(!resumed.halted);
        assert_eq!(fs::read_to_string(&two).expect("journal"), full_bytes);
        assert_eq!(
            campaign_report(&config, &resumed.records).render(),
            report_bytes
        );

        // The report round-trips through the JSON layer byte-for-byte.
        let parsed = crate::json::parse(&report_bytes).expect("report parses");
        assert_eq!(parsed.render(), report_bytes);

        // Resuming an already-complete journal is a no-op with the
        // same derived report.
        let again = run_campaign(&config, &two, true, None).expect("idempotent resume");
        assert_eq!(fs::read_to_string(&two).expect("journal"), full_bytes);
        assert_eq!(
            campaign_report(&config, &again.records).render(),
            report_bytes
        );
    }

    #[test]
    fn resume_refuses_a_mismatched_journal() {
        let mut config = ChaosConfig::quick();
        config.cells = 4;
        let path = tmp_journal("mismatch");
        run_campaign(&config, &path, false, Some(0)).expect("header only");
        config.master_seed += 1;
        let err = run_campaign(&config, &path, true, None).expect_err("must refuse");
        assert!(err.contains("header mismatch"), "{err}");
    }

    #[test]
    fn panicking_cells_become_graded_records() {
        let mut config = ChaosConfig::quick();
        config.cells = 6;
        config.policies = vec!["no-such-policy".into()];
        let path = tmp_journal("panics");
        let outcome = run_campaign(&config, &path, false, None).expect("must not abort");
        assert_eq!(outcome.records.len(), 6);
        for record in &outcome.records {
            assert_eq!(
                record.get("grade").and_then(Json::as_str),
                Some("collapsed")
            );
            let message = record
                .get("panic")
                .and_then(Json::as_str)
                .expect("panic message");
            assert!(message.contains("no-such-policy"), "{message}");
            assert!(record_is_failing(record));
        }
        let report = campaign_report(&config, &outcome.records);
        let summary = report.get("summary").expect("summary");
        assert_eq!(summary.get("panics").and_then(json_u64), Some(6));
        assert_eq!(summary.get("failing").and_then(json_u64), Some(6));
    }
}
