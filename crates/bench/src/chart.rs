//! Minimal ASCII line charts so the figure binaries can *draw* the
//! figures they regenerate, not just tabulate them.

use std::fmt::Write as _;

/// One named series of `(x, y)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// The points, in increasing `x` order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    #[must_use]
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
        }
    }
}

/// Renders series as a fixed-size ASCII chart with one marker character
/// per series, y increasing upward, plus a legend and axis ranges.
///
/// # Example
///
/// ```
/// use eua_bench::chart::{render_chart, Series};
///
/// let s = Series::new("demo", vec![(0.0, 0.0), (1.0, 1.0)]);
/// let art = render_chart(&[s], 20, 8);
/// assert!(art.contains("demo"));
/// assert!(art.contains('a'));
/// ```
#[must_use]
pub fn render_chart(series: &[Series], width: usize, height: usize) -> String {
    const MARKERS: &[u8] = b"abcdefghij";
    let width = width.max(8);
    let height = height.max(4);
    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .collect();
    if all.is_empty() {
        return String::from("(no data)\n");
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for (x, y) in &all {
        x_min = x_min.min(*x);
        x_max = x_max.max(*x);
        y_min = y_min.min(*y);
        y_max = y_max.max(*y);
    }
    if (x_max - x_min).abs() < f64::EPSILON {
        x_max = x_min + 1.0;
    }
    if (y_max - y_min).abs() < f64::EPSILON {
        y_max = y_min + 1.0;
    }
    let mut grid = vec![vec![b' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let marker = MARKERS[si % MARKERS.len()];
        for &(x, y) in &s.points {
            if !x.is_finite() || !y.is_finite() {
                continue;
            }
            let col = (((x - x_min) / (x_max - x_min)) * (width - 1) as f64).round() as usize;
            let row_from_bottom =
                (((y - y_min) / (y_max - y_min)) * (height - 1) as f64).round() as usize;
            let row = height - 1 - row_from_bottom.min(height - 1);
            let cell = &mut grid[row][col.min(width - 1)];
            // Overlapping series show a '*'.
            *cell = if *cell == b' ' || *cell == marker {
                marker
            } else {
                b'*'
            };
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "{y_max:>10.3} ┐");
    for row in &grid {
        let _ = writeln!(out, "{:>10} │{}", "", String::from_utf8_lossy(row));
    }
    let _ = writeln!(out, "{y_min:>10.3} ┴{}", "─".repeat(width));
    let _ = writeln!(
        out,
        "{:>11}{x_min:<.2}{:>pad$}{x_max:.2}",
        "",
        "",
        pad = width.saturating_sub(8)
    );
    for (si, s) in series.iter().enumerate() {
        let _ = writeln!(
            out,
            "{:>12} = {}",
            MARKERS[si % MARKERS.len()] as char,
            s.label
        );
    }
    out
}

/// Colors assigned to series in SVG output, cycling.
const SVG_COLORS: &[&str] = &[
    "#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd", "#8c564b", "#17becf",
];

/// Renders series as a standalone SVG line chart (600×360, with axes,
/// ticks, and a legend) — the file-output twin of [`render_chart`].
///
/// # Example
///
/// ```
/// use eua_bench::chart::{render_svg, Series};
///
/// let s = Series::new("demo", vec![(0.0, 0.0), (1.0, 1.0)]);
/// let svg = render_svg(&[s], "Demo", "x", "y");
/// assert!(svg.starts_with("<svg"));
/// assert!(svg.contains("Demo"));
/// ```
#[must_use]
pub fn render_svg(series: &[Series], title: &str, x_label: &str, y_label: &str) -> String {
    const W: f64 = 600.0;
    const H: f64 = 360.0;
    const ML: f64 = 64.0; // margins
    const MR: f64 = 140.0;
    const MT: f64 = 40.0;
    const MB: f64 = 48.0;
    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .collect();
    let mut out = String::new();
    let _ = write!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{W}" height="{H}" viewBox="0 0 {W} {H}">"#
    );
    let _ = write!(out, r#"<rect width="{W}" height="{H}" fill="white"/>"#);
    let _ = write!(
        out,
        r#"<text x="{}" y="24" text-anchor="middle" font-family="sans-serif" font-size="16">{}</text>"#,
        ML + (W - ML - MR) / 2.0,
        escape(title)
    );
    if all.is_empty() {
        let _ = write!(out, "</svg>");
        return out;
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for (x, y) in &all {
        x_min = x_min.min(*x);
        x_max = x_max.max(*x);
        y_min = y_min.min(*y);
        y_max = y_max.max(*y);
    }
    if (x_max - x_min).abs() < f64::EPSILON {
        x_max = x_min + 1.0;
    }
    if (y_max - y_min).abs() < f64::EPSILON {
        y_max = y_min + 1.0;
    }
    let sx = |x: f64| ML + (x - x_min) / (x_max - x_min) * (W - ML - MR);
    let sy = |y: f64| H - MB - (y - y_min) / (y_max - y_min) * (H - MT - MB);
    // Axes.
    let _ = write!(
        out,
        r#"<line x1="{ML}" y1="{}" x2="{}" y2="{}" stroke="black"/>"#,
        H - MB,
        W - MR,
        H - MB
    );
    let _ = write!(
        out,
        r#"<line x1="{ML}" y1="{MT}" x2="{ML}" y2="{}" stroke="black"/>"#,
        H - MB
    );
    // Ticks (5 per axis).
    for i in 0..=4 {
        let fx = x_min + (x_max - x_min) * f64::from(i) / 4.0;
        let fy = y_min + (y_max - y_min) * f64::from(i) / 4.0;
        let _ = write!(
            out,
            r#"<text x="{:.1}" y="{:.1}" text-anchor="middle" font-family="sans-serif" font-size="10">{fx:.2}</text>"#,
            sx(fx),
            H - MB + 16.0
        );
        let _ = write!(
            out,
            r#"<text x="{:.1}" y="{:.1}" text-anchor="end" font-family="sans-serif" font-size="10">{fy:.2}</text>"#,
            ML - 6.0,
            sy(fy) + 3.0
        );
        let _ = write!(
            out,
            r#"<line x1="{ML}" y1="{:.1}" x2="{}" y2="{:.1}" stroke='#dddddd'/>"#,
            sy(fy),
            W - MR,
            sy(fy)
        );
    }
    // Axis labels.
    let _ = write!(
        out,
        r#"<text x="{}" y="{}" text-anchor="middle" font-family="sans-serif" font-size="12">{}</text>"#,
        ML + (W - ML - MR) / 2.0,
        H - 10.0,
        escape(x_label)
    );
    let _ = write!(
        out,
        r#"<text x="16" y="{}" text-anchor="middle" font-family="sans-serif" font-size="12" transform="rotate(-90 16 {})">{}</text>"#,
        MT + (H - MT - MB) / 2.0,
        MT + (H - MT - MB) / 2.0,
        escape(y_label)
    );
    // Series.
    for (si, s) in series.iter().enumerate() {
        let color = SVG_COLORS[si % SVG_COLORS.len()];
        let pts: Vec<String> = s
            .points
            .iter()
            .filter(|(x, y)| x.is_finite() && y.is_finite())
            .map(|&(x, y)| format!("{:.1},{:.1}", sx(x), sy(y)))
            .collect();
        if pts.len() > 1 {
            let _ = write!(
                out,
                r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="1.5"/>"#,
                pts.join(" ")
            );
        }
        for p in &pts {
            let (px, py) = p.split_once(',').expect("formatted above");
            let _ = write!(
                out,
                r#"<circle cx="{px}" cy="{py}" r="2.5" fill="{color}"/>"#
            );
        }
        // Legend entry.
        let ly = MT + 16.0 * si as f64;
        let _ = write!(
            out,
            r#"<line x1="{}" y1="{ly:.1}" x2="{}" y2="{ly:.1}" stroke="{color}" stroke-width="2"/>"#,
            W - MR + 10.0,
            W - MR + 30.0
        );
        let _ = write!(
            out,
            r#"<text x="{}" y="{:.1}" font-family="sans-serif" font-size="11">{}</text>"#,
            W - MR + 36.0,
            ly + 4.0,
            escape(&s.label)
        );
    }
    let _ = write!(out, "</svg>");
    out
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_bounds_and_legend() {
        let s1 = Series::new("up", vec![(0.0, 0.0), (1.0, 2.0), (2.0, 4.0)]);
        let s2 = Series::new("flat", vec![(0.0, 1.0), (2.0, 1.0)]);
        let art = render_chart(&[s1, s2], 30, 10);
        assert!(art.contains("4.000"));
        assert!(art.contains("0.000"));
        assert!(art.contains("a = up"));
        assert!(art.contains("b = flat"));
    }

    #[test]
    fn empty_series_do_not_panic() {
        assert_eq!(render_chart(&[], 20, 5), "(no data)\n");
        let s = Series::new("nan", vec![(f64::NAN, f64::NAN)]);
        assert_eq!(render_chart(&[s], 20, 5), "(no data)\n");
    }

    #[test]
    fn degenerate_ranges_are_widened() {
        let s = Series::new("dot", vec![(1.0, 1.0)]);
        let art = render_chart(&[s], 12, 4);
        assert!(art.contains('a'));
    }

    #[test]
    fn overlap_is_marked() {
        let s1 = Series::new("x", vec![(0.0, 0.0), (1.0, 1.0)]);
        let s2 = Series::new("y", vec![(0.0, 0.0), (1.0, 0.5)]);
        let art = render_chart(&[s1, s2], 16, 6);
        assert!(
            art.contains('*'),
            "overlapping origin should render '*':\n{art}"
        );
    }

    #[test]
    fn svg_contains_axes_series_and_legend() {
        let s1 = Series::new("alpha", vec![(0.2, 0.1), (1.8, 1.0)]);
        let s2 = Series::new("beta<>&", vec![(0.2, 0.5), (1.8, 0.5)]);
        let svg = render_svg(&[s1, s2], "Figure 2", "load", "normalized energy");
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains("Figure 2"));
        assert!(svg.contains("polyline"));
        assert!(svg.contains("alpha"));
        assert!(svg.contains("beta&lt;&gt;&amp;"), "labels must be escaped");
        assert!(svg.contains("normalized energy"));
        // Two series → two polylines.
        assert_eq!(svg.matches("<polyline").count(), 2);
    }

    #[test]
    fn svg_with_no_data_is_still_valid() {
        let svg = render_svg(&[], "Empty", "x", "y");
        assert!(svg.starts_with("<svg") && svg.ends_with("</svg>"));
    }

    #[test]
    fn monotone_series_is_monotone_on_screen() {
        let s = Series::new("mono", vec![(0.0, 0.0), (1.0, 1.0), (2.0, 2.0), (3.0, 3.0)]);
        let art = render_chart(&[s], 24, 8);
        // The marker column index must increase as the row index decreases.
        let mut last_col = 0usize;
        for line in art.lines().rev() {
            if let Some(pos) = line.find('a') {
                assert!(pos >= last_col, "chart not monotone:\n{art}");
                last_col = pos;
            }
        }
    }
}
