//! Shared sweep machinery: run `(workload, policy)` cells over several
//! seeds — sequentially or fanned out over the `eua_sim::pool` worker
//! pool — and aggregate.

use eua_core::make_policy;
use eua_platform::TimeDelta;
use eua_sim::{map_parallel_labeled, Engine, Metrics, Platform, SimConfig, Summary};
use eua_workload::Workload;

/// Sweep-wide configuration.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Simulated horizon per run.
    pub horizon: TimeDelta,
    /// Seeds (one run per seed; arrival jitter and demand noise vary).
    pub seeds: Vec<u64>,
    /// Worker threads for cell/seed fan-out; `1` runs strictly
    /// sequentially (see `eua_sim::resolve_jobs` for the `--jobs` /
    /// `EUA_JOBS` resolution the binaries apply).
    pub jobs: usize,
}

impl ExperimentConfig {
    /// The default evaluation configuration: 20 simulated seconds × 3
    /// seeds — long enough that every Table 1 window (≤ 3 s) recurs
    /// several times.
    #[must_use]
    pub fn standard() -> Self {
        ExperimentConfig {
            horizon: TimeDelta::from_secs(20),
            seeds: vec![11, 23, 47],
            jobs: 1,
        }
    }

    /// A fast configuration for smoke tests.
    #[must_use]
    pub fn quick() -> Self {
        ExperimentConfig {
            horizon: TimeDelta::from_secs(5),
            seeds: vec![11],
            jobs: 1,
        }
    }

    /// Sets the worker-thread count (builder style).
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }
}

/// Resolves the worker-thread count from a binary's CLI arguments: the
/// value following a `--jobs` flag, else the `EUA_JOBS` environment
/// variable, else the hardware's available parallelism.
#[must_use]
pub fn jobs_from_args(args: &[String]) -> usize {
    eua_sim::resolve_jobs(
        args.iter()
            .position(|a| a == "--jobs")
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok()),
    )
}

/// The aggregated result of one `(workload, policy)` cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// The policy's registry name.
    pub policy: String,
    /// Mean accrued utility across seeds.
    pub utility: f64,
    /// Mean energy across seeds.
    pub energy: f64,
    /// Mean fraction of arrived jobs completed.
    pub completion_rate: f64,
    /// Mean fraction of tasks whose `{ν, ρ}` assurance held.
    pub assurance_ok_rate: f64,
}

fn cell_from_summary(policy_name: &str, workload: &Workload, summary: &Summary) -> Cell {
    let completion_rate = summary.mean_by(|m| {
        let arrived = m.jobs_arrived();
        if arrived == 0 {
            0.0
        } else {
            m.jobs_completed() as f64 / arrived as f64
        }
    });
    let assurance_ok_rate = summary.mean_by(|m| {
        let mut ok = 0usize;
        let mut total = 0usize;
        for (i, tm) in m.per_task.iter().enumerate() {
            if let Some(rate) = tm.assurance_rate() {
                total += 1;
                let rho = workload.tasks.task(eua_sim::TaskId(i)).assurance().rho();
                if rate + 1e-12 >= rho {
                    ok += 1;
                }
            }
        }
        if total == 0 {
            1.0
        } else {
            ok as f64 / total as f64
        }
    });
    Cell {
        policy: policy_name.to_string(),
        utility: summary.mean_utility(),
        energy: summary.mean_energy(),
        completion_rate,
        assurance_ok_rate,
    }
}

/// Runs every `(policy, seed)` pair of the cell block through the worker
/// pool (`config.jobs` threads; `1` = sequential) and aggregates one
/// [`Cell`] per policy, in the order given.
///
/// The flattened `(policy, seed)` item space keeps all workers busy even
/// when one policy is far slower than the rest; each simulation is
/// independent and deterministic, so the aggregation is bit-identical to
/// the sequential loop's.
///
/// # Panics
///
/// Panics on an unknown policy name or a simulation error — experiment
/// binaries treat both as fatal configuration mistakes.
#[must_use]
pub fn run_cells(
    policy_names: &[&str],
    workload: &Workload,
    platform: &Platform,
    config: &ExperimentConfig,
) -> Vec<Cell> {
    let sim_config = SimConfig::new(config.horizon);
    let items: Vec<(usize, u64)> = policy_names
        .iter()
        .enumerate()
        .flat_map(|(pi, _)| config.seeds.iter().map(move |&seed| (pi, seed)))
        .collect();
    let metrics: Vec<Metrics> = map_parallel_labeled(
        config.jobs,
        items,
        |_, &(pi, seed)| format!("policy {}, seed {seed}", policy_names[pi]),
        || (),
        |(), _, (pi, seed)| {
            let name = policy_names[pi];
            let mut policy = make_policy(name).unwrap_or_else(|| panic!("unknown policy {name}"));
            Engine::run(
                &workload.tasks,
                &workload.patterns,
                platform,
                &mut policy,
                &sim_config,
                seed,
            )
            .expect("simulation failed")
            .metrics
        },
    )
    .unwrap_or_else(|e| panic!("parallel sweep failed: {e}"));
    metrics
        .chunks(config.seeds.len())
        .zip(policy_names)
        .map(|(chunk, name)| {
            let summary = Summary {
                runs: config
                    .seeds
                    .iter()
                    .zip(chunk)
                    .map(|(&seed, m)| eua_sim::Replication {
                        seed,
                        metrics: m.clone(),
                    })
                    .collect(),
            };
            cell_from_summary(name, workload, &summary)
        })
        .collect()
}

/// Runs `policy_name` (an `eua_core::make_policy` name) on `workload`
/// under every seed and aggregates. Single-policy form of [`run_cells`].
///
/// # Panics
///
/// Panics on an unknown policy name or a simulation error — experiment
/// binaries treat both as fatal configuration mistakes.
#[must_use]
pub fn run_cell(
    policy_name: &str,
    workload: &Workload,
    platform: &Platform,
    config: &ExperimentConfig,
) -> Cell {
    run_cells(&[policy_name], workload, platform, config)
        .pop()
        .unwrap_or_else(|| unreachable!("run_cells returns one cell per policy"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eua_platform::{EnergySetting, Frequency};
    use eua_workload::fig2_workload;

    #[test]
    fn run_cell_produces_positive_numbers_underload() {
        let platform = Platform::powernow(EnergySetting::e1());
        let w = fig2_workload(0.4, 3, Frequency::from_mhz(100)).unwrap();
        let cfg = ExperimentConfig::quick();
        let cell = run_cell("eua", &w, &platform, &cfg);
        assert!(cell.utility > 0.0);
        assert!(cell.energy > 0.0);
        assert!(cell.completion_rate > 0.95, "rate {}", cell.completion_rate);
        assert!(cell.assurance_ok_rate > 0.9);
    }

    #[test]
    #[should_panic(expected = "unknown policy")]
    fn unknown_policy_panics() {
        let platform = Platform::powernow(EnergySetting::e1());
        let w = fig2_workload(0.4, 3, Frequency::from_mhz(100)).unwrap();
        let _ = run_cell("nope", &w, &platform, &ExperimentConfig::quick());
    }

    #[test]
    fn parallel_cells_match_sequential_cells() {
        let platform = Platform::powernow(EnergySetting::e1());
        let w = fig2_workload(0.8, 3, Frequency::from_mhz(100)).unwrap();
        let policies = ["eua", "edf", "dasa"];
        let mut sequential = ExperimentConfig::quick();
        sequential.seeds = vec![11, 23];
        let parallel = sequential.clone().with_jobs(4);
        let seq_cells: Vec<Cell> = policies
            .iter()
            .map(|p| run_cell(p, &w, &platform, &sequential))
            .collect();
        let par_cells = run_cells(&policies, &w, &platform, &parallel);
        assert_eq!(par_cells, seq_cells);
    }
}
