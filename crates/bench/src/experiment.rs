//! Shared sweep machinery: run one `(workload, policy)` cell over several
//! seeds and aggregate.

use eua_core::make_policy;
use eua_platform::TimeDelta;
use eua_sim::{replicate, Platform, SimConfig, Summary};
use eua_workload::Workload;

/// Sweep-wide configuration.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Simulated horizon per run.
    pub horizon: TimeDelta,
    /// Seeds (one run per seed; arrival jitter and demand noise vary).
    pub seeds: Vec<u64>,
}

impl ExperimentConfig {
    /// The default evaluation configuration: 20 simulated seconds × 3
    /// seeds — long enough that every Table 1 window (≤ 3 s) recurs
    /// several times.
    #[must_use]
    pub fn standard() -> Self {
        ExperimentConfig {
            horizon: TimeDelta::from_secs(20),
            seeds: vec![11, 23, 47],
        }
    }

    /// A fast configuration for smoke tests.
    #[must_use]
    pub fn quick() -> Self {
        ExperimentConfig {
            horizon: TimeDelta::from_secs(5),
            seeds: vec![11],
        }
    }
}

/// The aggregated result of one `(workload, policy)` cell.
#[derive(Debug, Clone)]
pub struct Cell {
    /// The policy's registry name.
    pub policy: String,
    /// Mean accrued utility across seeds.
    pub utility: f64,
    /// Mean energy across seeds.
    pub energy: f64,
    /// Mean fraction of arrived jobs completed.
    pub completion_rate: f64,
    /// Mean fraction of tasks whose `{ν, ρ}` assurance held.
    pub assurance_ok_rate: f64,
}

/// Runs `policy_name` (an `eua_core::make_policy` name) on `workload`
/// under every seed and aggregates.
///
/// # Panics
///
/// Panics on an unknown policy name or a simulation error — experiment
/// binaries treat both as fatal configuration mistakes.
#[must_use]
pub fn run_cell(
    policy_name: &str,
    workload: &Workload,
    platform: &Platform,
    config: &ExperimentConfig,
) -> Cell {
    let mut policy =
        make_policy(policy_name).unwrap_or_else(|| panic!("unknown policy {policy_name}"));
    let sim_config = SimConfig::new(config.horizon);
    let summary: Summary = replicate(
        &workload.tasks,
        &workload.patterns,
        platform,
        &mut policy,
        &sim_config,
        &config.seeds,
    )
    .expect("simulation failed");
    let completion_rate = summary.mean_by(|m| {
        let arrived = m.jobs_arrived();
        if arrived == 0 {
            0.0
        } else {
            m.jobs_completed() as f64 / arrived as f64
        }
    });
    let assurance_ok_rate = summary.mean_by(|m| {
        let mut ok = 0usize;
        let mut total = 0usize;
        for (i, tm) in m.per_task.iter().enumerate() {
            if let Some(rate) = tm.assurance_rate() {
                total += 1;
                let rho = workload.tasks.task(eua_sim::TaskId(i)).assurance().rho();
                if rate + 1e-12 >= rho {
                    ok += 1;
                }
            }
        }
        if total == 0 {
            1.0
        } else {
            ok as f64 / total as f64
        }
    });
    Cell {
        policy: policy_name.to_string(),
        utility: summary.mean_utility(),
        energy: summary.mean_energy(),
        completion_rate,
        assurance_ok_rate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eua_platform::{EnergySetting, Frequency};
    use eua_workload::fig2_workload;

    #[test]
    fn run_cell_produces_positive_numbers_underload() {
        let platform = Platform::powernow(EnergySetting::e1());
        let w = fig2_workload(0.4, 3, Frequency::from_mhz(100)).unwrap();
        let cfg = ExperimentConfig::quick();
        let cell = run_cell("eua", &w, &platform, &cfg);
        assert!(cell.utility > 0.0);
        assert!(cell.energy > 0.0);
        assert!(cell.completion_rate > 0.95, "rate {}", cell.completion_rate);
        assert!(cell.assurance_ok_rate > 0.9);
    }

    #[test]
    #[should_panic(expected = "unknown policy")]
    fn unknown_policy_panics() {
        let platform = Platform::powernow(EnergySetting::e1());
        let w = fig2_workload(0.4, 3, Frequency::from_mhz(100)).unwrap();
        let _ = run_cell("nope", &w, &platform, &ExperimentConfig::quick());
    }
}
