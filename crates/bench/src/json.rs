//! First-party byte-round-tripping JSON values for result files.
//!
//! The implementation lives in [`eua_sim::json`] — one JSON tree is
//! shared by every serializer in the workspace (decision certificates,
//! SARIF, bench result files) so their byte-round-trip guarantees come
//! from a single renderer/parser pair. This module re-exports it under
//! the `crate::json` path the report writers and `--check` flags use.

pub use eua_sim::json::{parse, Json};
