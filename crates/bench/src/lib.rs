//! Experiment harness regenerating every table and figure of the EUA\*
//! paper (see DESIGN.md's experiment index).
//!
//! The binaries in `src/bin` drive the sweeps:
//!
//! * `fig2` — normalized utility and energy vs load under E1/E2/E3
//!   (Figures 2(a)–(d) plus the "results under E2 are similar" remark);
//! * `fig3` — normalized energy vs load for UAM `⟨1..3, P⟩`
//!   (Figure 3);
//! * `theorems` — the §4 timeliness-property checks (Theorems 2–5);
//! * `ablation` — design-choice ablations (UER clamp, abortion,
//!   insertion mode, Chebyshev ρ);
//! * `robustness` — the fault-intensity × policy degradation sweep;
//! * `eua-chaos` — resumable chaos campaigns over the workload
//!   universes, with automatic shrinking of failing cells to minimal
//!   `.scn` repros (DESIGN.md §15).
//!
//! The Criterion benches measure the per-event scheduling cost
//! (the paper's polynomial-time claim) and simulator throughput.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod chart;
pub mod experiment;
pub mod json;
pub mod report;
pub mod robustness;
pub mod shrink;

pub use chaos::{
    campaign_report, chaos_cell_seed, journal_header, plan_cell, record_is_failing, run_campaign,
    unexpected_audit_errors, CampaignOutcome, CellPlan, ChaosConfig,
};
pub use chart::{render_chart, render_svg, Series};
pub use experiment::{jobs_from_args, run_cell, run_cells, Cell, ExperimentConfig};
pub use json::Json;
pub use report::{write_csv, Table};
pub use robustness::{
    run_robustness, FaultFamily, RobustnessConfig, RobustnessPoint, RobustnessReport,
};
pub use shrink::{probe, shrink, FailureKind, ShrinkCase};
