//! Console tables and CSV output for the experiment binaries.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A simple column-aligned table accumulating one row per sweep point.
///
/// # Example
///
/// ```
/// use eua_bench::Table;
///
/// let mut t = Table::new(vec!["load".into(), "eua".into()]);
/// t.push(vec!["0.2".into(), "0.31".into()]);
/// let text = t.render();
/// assert!(text.contains("load"));
/// assert!(text.contains("0.31"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given header.
    #[must_use]
    pub fn new(header: Vec<String>) -> Self {
        Table {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "row width must match header");
        self.rows.push(row);
    }

    /// The rows pushed so far.
    #[must_use]
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>w$}", w = w);
            }
            out.push('\n');
        };
        line(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }

    /// Serializes the table as CSV.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Writes a table as CSV to `path`, creating parent directories.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_csv(table: &Table, path: &Path) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, table.to_csv())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(vec!["a".into(), "long".into()]);
        t.push(vec!["12345".into(), "x".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains('a') && lines[0].contains("long"));
        assert!(lines[2].contains("12345"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(vec!["a".into()]);
        t.push(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new(vec!["x,y".into(), "q\"q".into()]);
        t.push(vec!["1".into(), "2".into()]);
        let csv = t.to_csv();
        assert!(csv.starts_with("\"x,y\",\"q\"\"q\"\n"));
        assert!(csv.ends_with("1,2\n"));
    }

    #[test]
    fn write_csv_round_trips() {
        let mut t = Table::new(vec!["load".into(), "v".into()]);
        t.push(vec!["0.2".into(), "1.0".into()]);
        let dir = std::env::temp_dir().join("eua-bench-test");
        let path = dir.join("t.csv");
        write_csv(&t, &path).unwrap();
        let read = std::fs::read_to_string(&path).unwrap();
        assert_eq!(read, t.to_csv());
        let _ = std::fs::remove_dir_all(dir);
    }
}
