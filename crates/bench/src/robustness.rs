//! The fault-intensity × policy robustness sweep behind the
//! `robustness` binary: how gracefully does each policy's UER degrade
//! when the declared UAM/demand/DVS assumptions are violated?
//!
//! Four fault families (one [`FaultPlan`] shape each) are swept over an
//! intensity grid; at intensity `0.0` every family degenerates to
//! [`FaultPlan::none`], so the leftmost point of every curve is the
//! unfaulted engine bit-for-bit. Each `(family, intensity, policy,
//! seed)` cell is an independent deterministic simulation fanned out
//! over the `eua_sim::pool` worker pool, so the emitted report is
//! byte-identical for any `--jobs` count.

use eua_core::make_policy;
use eua_platform::TimeDelta;
use eua_sim::{
    classify_degradation, map_parallel_settle, DegradationClass, Engine, FaultPlan, Metrics,
    Platform, PoolError, SimConfig, SimError, DEFAULT_COLLAPSE_FRACTION,
};
use eua_workload::{fig2_workload, Workload};

use crate::json::Json;

/// The fixed workload seed (arrival patterns and declared statistics),
/// shared with the figure binaries; run seeds vary per replication.
pub const WORKLOAD_SEED: u64 = 42;

/// One injectable fault family of the sweep (see DESIGN.md §10).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultFamily {
    /// UAM violations: burst arrivals beyond the declared `⟨a, P⟩`.
    UamBurst,
    /// Demand mis-estimation: true cycle demands exceed the declared
    /// statistics the Chebyshev budget was computed from.
    DemandMis,
    /// DVS imperfections: a degraded frequency set plus switch latency.
    DvsDegraded,
    /// Abort-cost overruns plus arrival clock jitter.
    AbortJitter,
}

impl FaultFamily {
    /// All families, in report order.
    pub const ALL: [FaultFamily; 4] = [
        FaultFamily::UamBurst,
        FaultFamily::DemandMis,
        FaultFamily::DvsDegraded,
        FaultFamily::AbortJitter,
    ];

    /// A stable kebab-case key for reports.
    #[must_use]
    pub fn key(self) -> &'static str {
        match self {
            FaultFamily::UamBurst => "uam-burst",
            FaultFamily::DemandMis => "demand-mis",
            FaultFamily::DvsDegraded => "dvs-degraded",
            FaultFamily::AbortJitter => "abort-jitter",
        }
    }

    /// The family's [`FaultPlan`] at `intensity ∈ [0, 1]`. Intensity
    /// `0.0` always returns exactly [`FaultPlan::none`] — the sweep's
    /// zero-fault baseline is the unfaulted engine, not a faulted
    /// engine with zero-magnitude faults.
    ///
    /// # Panics
    ///
    /// Panics if `intensity` is outside `[0, 1]` or non-finite.
    #[must_use]
    pub fn plan_at(self, intensity: f64) -> FaultPlan {
        let mut plan = FaultPlan::none();
        self.apply_at(&mut plan, intensity);
        plan
    }

    /// Writes the family's fault shape at `intensity ∈ [0, 1]` into an
    /// existing plan, leaving the other families' fields untouched.
    /// This is the composable form [`plan_at`](Self::plan_at) wraps:
    /// the chaos campaign stacks several families onto one plan, each
    /// at its own sampled intensity. Intensity `0.0` writes nothing.
    ///
    /// # Panics
    ///
    /// Panics if `intensity` is outside `[0, 1]` or non-finite.
    pub fn apply_at(self, plan: &mut FaultPlan, intensity: f64) {
        assert!(
            intensity.is_finite() && (0.0..=1.0).contains(&intensity),
            "fault intensity must be within [0, 1]"
        );
        if intensity == 0.0 {
            return;
        }
        match self {
            FaultFamily::UamBurst => {
                // 1..=4 extra arrivals per declared window, every window.
                plan.uam.extra_per_window = (intensity * 4.0).round().max(1.0) as u32;
                plan.uam.every_n_windows = 1;
            }
            FaultFamily::DemandMis => {
                // True mean up to 2× the declared one, ±50% spread.
                plan.demand.mean_factor = 1.0 + intensity;
                plan.demand.spread = 0.5 * intensity;
            }
            FaultFamily::DvsDegraded => {
                // Drop the fastest frequencies of the PowerNow table
                // (keep 6 at the lightest intensity down to 1 — the
                // slowest — at full), and add relock latency.
                const POWERNOW_MHZ: [u64; 7] = [36, 55, 64, 73, 82, 91, 100];
                let keep = ((1.0 - intensity) * 6.0).round() as usize + 1;
                plan.dvs.degraded_mhz = Some(POWERNOW_MHZ[..keep].to_vec());
                plan.dvs.switch_latency_cycles = (intensity * 20_000.0).round() as u64;
            }
            FaultFamily::AbortJitter => {
                plan.timing.abort_cost = TimeDelta::from_micros((intensity * 500.0).round() as u64);
                plan.timing.arrival_jitter =
                    TimeDelta::from_micros((intensity * 2_000.0).round() as u64);
            }
        }
    }
}

/// Sweep configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustnessConfig {
    /// Simulated horizon per run.
    pub horizon: TimeDelta,
    /// Run seeds (fault schedules and demand noise vary per seed).
    pub seeds: Vec<u64>,
    /// Worker threads; `1` runs strictly sequentially.
    pub jobs: usize,
    /// System load the workload is scaled to.
    pub load: f64,
    /// The fault-intensity grid (must start at `0.0` for the baseline).
    pub intensities: Vec<f64>,
    /// Policies to sweep (`eua_core::make_policy` names).
    pub policies: Vec<String>,
    /// Record a decision certificate per cell (see
    /// [`RobustnessReport::certificates`]); off by default — certified
    /// runs carry every scheduling event, so the sweep output grows by
    /// orders of magnitude.
    pub certify: bool,
}

impl RobustnessConfig {
    fn policies() -> Vec<String> {
        ["eua", "dasa", "edf", "llf"]
            .into_iter()
            .map(String::from)
            .collect()
    }

    /// The default evaluation configuration.
    #[must_use]
    pub fn standard() -> Self {
        RobustnessConfig {
            horizon: TimeDelta::from_secs(10),
            seeds: vec![11, 23, 47],
            jobs: 1,
            load: 0.8,
            intensities: vec![0.0, 0.25, 0.5, 0.75, 1.0],
            policies: Self::policies(),
            certify: false,
        }
    }

    /// A fast configuration for smoke tests.
    #[must_use]
    pub fn quick() -> Self {
        RobustnessConfig {
            horizon: TimeDelta::from_secs(2),
            seeds: vec![11],
            jobs: 1,
            load: 0.8,
            intensities: vec![0.0, 0.5, 1.0],
            policies: Self::policies(),
            certify: false,
        }
    }

    /// Sets the worker-thread count (builder style).
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }
}

/// One aggregated `(family, intensity, policy)` point of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustnessPoint {
    /// The fault family.
    pub family: FaultFamily,
    /// The fault intensity.
    pub intensity: f64,
    /// The policy's registry name.
    pub policy: String,
    /// Mean accrued utility across seeds.
    pub utility: f64,
    /// Mean energy across seeds.
    pub energy: f64,
    /// Mean per-run UER (accrued utility / energy).
    pub uer: f64,
    /// Mean utility ratio (accrued / ceiling).
    pub utility_ratio: f64,
    /// Seeds whose run met every task's `{ν, ρ}`.
    pub met: usize,
    /// Seeds that gracefully degraded (worst task below `ρ` but above
    /// the collapse threshold).
    pub degraded: usize,
    /// Seeds whose worst task collapsed — including seeds whose cell
    /// panicked (a panic is the worst possible degradation).
    pub collapsed: usize,
    /// Seeds whose cell panicked inside the worker pool. Panicked
    /// seeds contribute no metrics to the means; their labels are
    /// collected in [`RobustnessReport::panic_cells`].
    pub panics: usize,
}

/// The whole sweep's output.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustnessReport {
    /// The configuration that produced it.
    pub config: RobustnessConfig,
    /// All points, ordered by (family, intensity, policy).
    pub points: Vec<RobustnessPoint>,
    /// Rendered `eua-certificate/1` documents, one `(file name, text)`
    /// pair per `(family, intensity, policy, seed)` cell in grid order;
    /// empty unless [`RobustnessConfig::certify`] was set. The sweep
    /// report itself ([`Self::to_json`]) never embeds them — callers
    /// write them next to the report for `eua-audit check`.
    pub certificates: Vec<(String, String)>,
    /// Labels of grid cells that panicked, in grid order, with the
    /// panic message appended (`"<label>: <message>"`). A panicking
    /// cell no longer aborts the sweep — it is graded `collapsed` in
    /// its point and surfaced here so chaos campaigns can harvest it
    /// as a shrink candidate.
    pub panic_cells: Vec<String>,
}

/// Runs the full sweep: every `(family, intensity, policy, seed)` cell
/// through the worker pool, aggregated per `(family, intensity,
/// policy)` in deterministic order.
///
/// # Errors
///
/// Propagates workload-synthesis and simulation errors. A *panicking*
/// cell does not abort the sweep: the panic settles in its pool slot
/// (see [`map_parallel_settle`]), the seed is graded `collapsed`, and
/// the labelled message lands in [`RobustnessReport::panic_cells`].
pub fn run_robustness(config: &RobustnessConfig) -> Result<RobustnessReport, SimError> {
    let platform = Platform::powernow(eua_platform::EnergySetting::e1());
    let workload: Workload =
        fig2_workload(config.load, WORKLOAD_SEED, platform.f_max()).map_err(|e| {
            SimError::InvalidFaultPlan {
                reason: format!("workload synthesis failed: {e}"),
            }
        })?;
    let sim_config = if config.certify {
        SimConfig::new(config.horizon).with_certificate()
    } else {
        SimConfig::new(config.horizon)
    };

    // Flatten the whole grid so the pool keeps every worker busy even
    // when one policy is far slower than the rest.
    struct GridItem {
        family: FaultFamily,
        intensity: f64,
        policy_idx: usize,
        seed: u64,
    }
    let mut items: Vec<GridItem> = Vec::new();
    let mut cell_names: Vec<String> = Vec::new();
    for &family in &FaultFamily::ALL {
        for &intensity in &config.intensities {
            for policy_idx in 0..config.policies.len() {
                for &seed in &config.seeds {
                    cell_names.push(format!(
                        "{}-i{}-{}-s{}.json",
                        family.key(),
                        intensity,
                        config.policies[policy_idx],
                        seed
                    ));
                    items.push(GridItem {
                        family,
                        intensity,
                        policy_idx,
                        seed,
                    });
                }
            }
        }
    }

    type CellResult = Result<(Metrics, Option<String>), SimError>;
    let runs: Vec<Result<CellResult, PoolError>> = map_parallel_settle(
        config.jobs,
        items,
        |_, item| {
            format!(
                "family {}, intensity {}, policy {}, seed {}",
                item.family.key(),
                item.intensity,
                config.policies[item.policy_idx],
                item.seed
            )
        },
        || (),
        |(), _, item| {
            let name = &config.policies[item.policy_idx];
            let mut policy = make_policy(name).unwrap_or_else(|| panic!("unknown policy {name}"));
            let plan = item.family.plan_at(item.intensity);
            Engine::run_with_faults(
                &workload.tasks,
                &workload.patterns,
                &platform,
                &mut policy,
                &sim_config,
                item.seed,
                &plan,
            )
            .map(|outcome| {
                let cert = outcome.certificate.as_ref().map(|c| c.render());
                (outcome.metrics, cert)
            })
        },
    )?;

    // Split certificates and settled panics out in grid order so the
    // chunked aggregation below sees plain per-seed outcomes.
    #[derive(Clone)]
    enum CellRun {
        Done(Metrics),
        Panicked,
    }
    let mut certificates = Vec::new();
    let mut panic_cells = Vec::new();
    let mut cell_runs: Vec<Result<CellRun, SimError>> = Vec::with_capacity(runs.len());
    for (name, run) in cell_names.iter().zip(runs) {
        match run {
            Ok(Ok((metrics, cert))) => {
                if let Some(text) = cert {
                    certificates.push((name.clone(), text));
                }
                cell_runs.push(Ok(CellRun::Done(metrics)));
            }
            Ok(Err(e)) => cell_runs.push(Err(e)),
            Err(PoolError::WorkerPanic { label, message }) => {
                panic_cells.push(format!("{label}: {message}"));
                cell_runs.push(Ok(CellRun::Panicked));
            }
            Err(other) => return Err(other.into()),
        }
    }

    let per_point = config.seeds.len();
    let mut points = Vec::new();
    let mut chunks = cell_runs.chunks(per_point);
    for &family in &FaultFamily::ALL {
        for &intensity in &config.intensities {
            for policy in &config.policies {
                let chunk = chunks.next().unwrap_or_default();
                let mut metrics = Vec::with_capacity(per_point);
                let mut panics = 0usize;
                for run in chunk {
                    match run.clone()? {
                        CellRun::Done(m) => metrics.push(m),
                        CellRun::Panicked => panics += 1,
                    }
                }
                points.push(aggregate(
                    family, intensity, policy, &metrics, panics, &workload,
                ));
            }
        }
    }
    Ok(RobustnessReport {
        config: config.clone(),
        points,
        certificates,
        panic_cells,
    })
}

fn aggregate(
    family: FaultFamily,
    intensity: f64,
    policy: &str,
    metrics: &[Metrics],
    panics: usize,
    workload: &Workload,
) -> RobustnessPoint {
    let n = metrics.len().max(1) as f64;
    let mean = |f: &dyn Fn(&Metrics) -> f64| metrics.iter().map(f).sum::<f64>() / n;
    // A panicked seed is the worst degradation a cell can exhibit.
    let (mut met, mut degraded, mut collapsed) = (0, 0, panics);
    for m in metrics {
        match classify_degradation(m, &workload.tasks, DEFAULT_COLLAPSE_FRACTION).overall {
            DegradationClass::Met => met += 1,
            DegradationClass::Degraded => degraded += 1,
            DegradationClass::Collapsed => collapsed += 1,
        }
    }
    RobustnessPoint {
        family,
        intensity,
        policy: policy.to_string(),
        utility: mean(&|m| m.total_utility),
        energy: mean(&|m| m.energy),
        uer: mean(&|m| {
            if m.energy > 0.0 {
                m.total_utility / m.energy
            } else {
                0.0
            }
        }),
        utility_ratio: mean(&Metrics::utility_ratio),
        met,
        degraded,
        collapsed,
        panics,
    }
}

impl RobustnessReport {
    /// Serializes the report as the deterministic `results/robustness.json`
    /// document (see [`crate::json`]; re-parsing and re-rendering the
    /// output reproduces it byte-for-byte).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut families = Vec::new();
        for &family in &FaultFamily::ALL {
            let mut points_json = Vec::new();
            for &intensity in &self.config.intensities {
                let mut policies_json = Vec::new();
                for point in self
                    .points
                    .iter()
                    .filter(|p| p.family == family && p.intensity == intensity)
                {
                    policies_json.push(Json::Obj(vec![
                        ("policy".into(), Json::Str(point.policy.clone())),
                        ("utility".into(), Json::num(point.utility)),
                        ("energy".into(), Json::num(point.energy)),
                        ("uer".into(), Json::num(point.uer)),
                        ("utility_ratio".into(), Json::num(point.utility_ratio)),
                        ("met".into(), Json::uint(point.met as u64)),
                        ("degraded".into(), Json::uint(point.degraded as u64)),
                        ("collapsed".into(), Json::uint(point.collapsed as u64)),
                        ("panics".into(), Json::uint(point.panics as u64)),
                    ]));
                }
                points_json.push(Json::Obj(vec![
                    ("intensity".into(), Json::num(intensity)),
                    ("policies".into(), Json::Arr(policies_json)),
                ]));
            }
            families.push(Json::Obj(vec![
                ("family".into(), Json::Str(family.key().into())),
                ("points".into(), Json::Arr(points_json)),
            ]));
        }
        Json::Obj(vec![
            ("schema".into(), Json::Str("eua-robustness/2".into())),
            ("load".into(), Json::num(self.config.load)),
            (
                "horizon_us".into(),
                Json::uint(self.config.horizon.as_micros()),
            ),
            (
                "seeds".into(),
                Json::Arr(self.config.seeds.iter().map(|&s| Json::uint(s)).collect()),
            ),
            (
                "panic_cells".into(),
                Json::Arr(
                    self.panic_cells
                        .iter()
                        .map(|c| Json::Str(c.clone()))
                        .collect(),
                ),
            ),
            ("families".into(), Json::Arr(families)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_intensity_plan_is_exactly_none() {
        for family in FaultFamily::ALL {
            assert!(family.plan_at(0.0).is_none(), "{}", family.key());
            assert!(!family.plan_at(1.0).is_none(), "{}", family.key());
            family
                .plan_at(1.0)
                .validate()
                .expect("full intensity valid");
        }
    }

    #[test]
    #[should_panic(expected = "fault intensity")]
    fn out_of_range_intensity_rejected() {
        let _ = FaultFamily::UamBurst.plan_at(1.5);
    }

    #[test]
    fn sweep_is_byte_identical_across_job_counts() {
        let mut config = RobustnessConfig::quick();
        config.policies = vec!["eua".into(), "edf".into()];
        config.intensities = vec![0.0, 1.0];
        let sequential = run_robustness(&config).expect("sweep");
        let bytes = sequential.to_json().render();
        for jobs in [2, 4] {
            let parallel = run_robustness(&config.clone().with_jobs(jobs)).expect("sweep");
            assert_eq!(parallel.points, sequential.points, "jobs = {jobs}");
            assert_eq!(parallel.to_json().render(), bytes, "jobs = {jobs}");
        }
    }

    #[test]
    fn zero_intensity_points_match_the_unfaulted_engine() {
        // The intensity-0 column must be bit-identical to Engine::run —
        // the acceptance criterion for the whole fault layer.
        let mut config = RobustnessConfig::quick();
        config.policies = vec!["eua".into(), "dasa".into(), "edf".into()];
        config.intensities = vec![0.0];
        let report = run_robustness(&config).expect("sweep");
        let platform = Platform::powernow(eua_platform::EnergySetting::e1());
        let workload = fig2_workload(config.load, WORKLOAD_SEED, platform.f_max()).unwrap();
        let sim_config = SimConfig::new(config.horizon);
        for (pi, name) in config.policies.iter().enumerate() {
            let mut policy = make_policy(name).unwrap();
            let baseline = Engine::run(
                &workload.tasks,
                &workload.patterns,
                &platform,
                &mut policy,
                &sim_config,
                config.seeds[0],
            )
            .unwrap();
            let point = &report.points[pi];
            assert_eq!(point.policy, *name);
            assert!(
                point.utility == baseline.metrics.total_utility
                    && point.energy == baseline.metrics.energy,
                "zero-fault point must be bit-identical for {name}"
            );
        }
    }

    #[test]
    fn certified_sweep_cells_audit_clean() {
        // Every certificate a certified sweep emits must pass the
        // offline translation validator: the sweep's hot path is the
        // same engine the audit crate re-checks event by event.
        let mut config = RobustnessConfig::quick();
        config.policies = vec!["eua".into()];
        config.intensities = vec![0.0];
        config.certify = true;
        let report = run_robustness(&config).expect("sweep");
        assert_eq!(
            report.certificates.len(),
            FaultFamily::ALL.len(),
            "one certificate per grid cell"
        );
        for (name, text) in &report.certificates {
            let audit = eua_audit::audit_text(name, text);
            assert!(
                !audit.has_errors(),
                "{name} failed audit:\n{}",
                audit.render_text()
            );
        }
        // Without the flag the sweep stays certificate-free.
        config.certify = false;
        let plain = run_robustness(&config).expect("sweep");
        assert!(plain.certificates.is_empty());
        assert_eq!(
            plain.points, report.points,
            "certifying never perturbs metrics"
        );
    }

    #[test]
    fn panicking_cells_settle_into_graded_points() {
        // A policy name the registry does not know panics inside the
        // worker (`make_policy(..).unwrap_or_else(|| panic!(..))`).
        // The sweep must not abort: the cell settles, grades as
        // collapsed-with-panic, and its label lands in `panic_cells`.
        let mut config = RobustnessConfig::quick();
        config.policies = vec!["eua".into(), "no-such-policy".into()];
        config.intensities = vec![0.0];
        let report = run_robustness(&config).expect("sweep must not abort on a panicking cell");
        let expected = FaultFamily::ALL.len() * config.seeds.len();
        assert_eq!(report.panic_cells.len(), expected);
        assert!(report
            .panic_cells
            .iter()
            .all(|c| c.contains("no-such-policy")));
        for point in &report.points {
            if point.policy == "no-such-policy" {
                assert_eq!(point.panics, config.seeds.len());
                assert_eq!(point.collapsed, config.seeds.len());
                assert_eq!(point.met + point.degraded, 0);
            } else {
                assert_eq!(point.panics, 0, "healthy policy must not panic");
            }
        }
        // Panic surfacing is deterministic: byte-identical across job
        // counts, and the report still round-trips.
        let bytes = report.to_json().render();
        let parallel = run_robustness(&config.clone().with_jobs(4)).expect("sweep");
        assert_eq!(parallel.to_json().render(), bytes);
        let parsed = crate::json::parse(&bytes).expect("report must parse");
        assert_eq!(parsed.render(), bytes);
    }

    #[test]
    fn report_json_round_trips() {
        let mut config = RobustnessConfig::quick();
        config.policies = vec!["eua".into()];
        config.intensities = vec![0.0, 1.0];
        let report = run_robustness(&config).expect("sweep");
        let text = report.to_json().render();
        let parsed = crate::json::parse(&text).expect("report must parse");
        assert_eq!(parsed.render(), text, "byte-exact round-trip");
    }
}
