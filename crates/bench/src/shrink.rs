//! Automatic shrinking of failing chaos cells to minimal `.scn`
//! repros (DESIGN.md §15).
//!
//! A [`ShrinkCase`] is the campaign cell's *canonical* state: its
//! rendered [`ScenarioSpec`] (tasks, arrival specs, fault stanza) plus
//! the policy, run seed, and horizon. Shrinking operates on this state
//! — never on the original in-memory workload — because the `.scn`
//! text is what gets committed to `tests/regression_corpus/` and
//! replayed, and a spec that survived one parse ∘ render round trip is
//! exactly reproducible from its bytes (moment-derived parameters like
//! a Pareto mean can drift an ulp between the raw workload and its
//! canonical text, so the two must never be mixed).
//!
//! The algorithm is greedy fixed-point deletion: repeatedly try every
//! candidate — drop one task, halve the horizon (fewer jobs), zero one
//! fault component — and accept the first that still
//! [reproduces](probe); stop when none does. Termination is immediate
//! (every accepted candidate strictly shrinks a well-founded measure),
//! and the result is **1-minimal**: removing any single remaining
//! element no longer reproduces, which is precisely the fixed-point
//! exit condition. Everything is deterministic — candidate order is
//! fixed and each probe is a seeded simulation — so the same failing
//! cell always shrinks to byte-identical repro text.

use std::panic::{catch_unwind, AssertUnwindSafe};

use eua_analyze::scenario::{EnergySpec, FaultSpec, ScenarioSpec};
use eua_core::make_policy;
use eua_platform::{EnergySetting, Frequency, FrequencyTable, TimeDelta};
use eua_sim::{
    classify_degradation, DegradationClass, Engine, FaultPlan, Platform, SimConfig,
    DEFAULT_COLLAPSE_FRACTION,
};

use crate::chaos::{plan_cell, ChaosConfig};

/// The horizon below which the shrinker stops halving (1 ms — shorter
/// horizons observe no complete job of any realistic task).
const MIN_HORIZON_US: u64 = 1_000;

/// How a failing cell fails; recorded in the repro's `expect=` token
/// and re-asserted by the corpus replay test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The cell panicked (pool-settled in campaigns, caught here).
    Panic,
    /// The degradation oracle graded the run `collapsed`.
    Collapsed,
    /// The offline certificate audit found errors.
    AuditFail,
}

impl FailureKind {
    /// The stable token used in repro names.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            FailureKind::Panic => "panic",
            FailureKind::Collapsed => "collapsed",
            FailureKind::AuditFail => "audit-fail",
        }
    }

    /// Parses a repro-name token.
    #[must_use]
    pub fn parse_token(token: &str) -> Option<Self> {
        match token {
            "panic" => Some(FailureKind::Panic),
            "collapsed" => Some(FailureKind::Collapsed),
            "audit-fail" => Some(FailureKind::AuditFail),
            _ => None,
        }
    }
}

/// A reproducible failing cell in canonical `.scn` state.
#[derive(Debug, Clone, PartialEq)]
pub struct ShrinkCase {
    /// The scenario (tasks, arrivals, faults) as parsed/rendered text.
    pub spec: ScenarioSpec,
    /// The policy under test (`eua_core::make_policy` name).
    pub policy: String,
    /// The engine run seed.
    pub seed: u64,
    /// The simulated horizon.
    pub horizon: TimeDelta,
}

/// Rebuilds campaign cell `index` as a shrinkable case: the cell's
/// scenario lowered to its canonical spec with the sampled fault plan
/// attached as a `faults` stanza.
///
/// # Errors
///
/// Propagates universe-generation and lowering failures.
pub fn case_from_chaos_cell(config: &ChaosConfig, index: u32) -> Result<ShrinkCase, String> {
    let plan = plan_cell(config, index);
    let scenario = plan
        .family
        .generate(
            plan.universe_cell,
            config.master_seed,
            Frequency::from_mhz(100),
        )
        .map_err(|e| format!("universe generation failed: {e}"))?;
    let table = FrequencyTable::powernow_k6();
    let mut spec =
        ScenarioSpec::from_workload(&scenario.name, &scenario.workload, &table, EnergySpec::e1())?;
    spec.faults = if plan.faults.is_none() {
        None
    } else {
        FaultSpec::from_plan(&plan.faults)
    };
    Ok(ShrinkCase {
        spec,
        policy: plan.policy,
        seed: plan.run_seed,
        horizon: config.horizon,
    })
}

/// Runs the case once, certificate recording on, exactly as the chaos
/// campaign would. Unknown policies and engine invariant violations
/// panic (so [`probe`] classifies them); malformed candidate specs
/// return `Err` (so [`probe`] rejects the candidate).
fn run_case(case: &ShrinkCase) -> Result<(DegradationClass, u64), String> {
    let workload = case.spec.to_workload()?;
    let plan = case
        .spec
        .faults
        .as_ref()
        .map_or_else(FaultPlan::none, FaultSpec::to_plan);
    plan.validate().map_err(|e| e.to_string())?;
    let platform = Platform::powernow(EnergySetting::e1());
    let mut policy =
        make_policy(&case.policy).unwrap_or_else(|| panic!("unknown policy {}", case.policy));
    let sim_config = SimConfig::new(case.horizon).with_certificate();
    let outcome = Engine::run_with_faults(
        &workload.tasks,
        &workload.patterns,
        &platform,
        &mut policy,
        &sim_config,
        case.seed,
        &plan,
    )
    .map_err(|e| e.to_string())?;
    let audit_errors = outcome.certificate.as_ref().map_or(0, |cert| {
        let report = eua_audit::audit_text(&case.spec.name, &cert.render());
        crate::chaos::unexpected_audit_errors(&report, &plan)
    });
    let grade =
        classify_degradation(&outcome.metrics, &workload.tasks, DEFAULT_COLLAPSE_FRACTION).overall;
    Ok((grade, audit_errors))
}

/// Whether (and how) the case reproduces a failure. `None` both for
/// healthy runs and for candidates the spec layer rejects — a shrink
/// step must never "succeed" by making the scenario invalid.
#[must_use]
pub fn probe(case: &ShrinkCase) -> Option<FailureKind> {
    match catch_unwind(AssertUnwindSafe(|| run_case(case))) {
        Err(_) => Some(FailureKind::Panic),
        Ok(Err(_)) => None,
        Ok(Ok((DegradationClass::Collapsed, _))) => Some(FailureKind::Collapsed),
        Ok(Ok((_, audit_errors))) if audit_errors > 0 => Some(FailureKind::AuditFail),
        Ok(Ok(_)) => None,
    }
}

/// Every single-deletion candidate of `case`, in the fixed order the
/// greedy loop (and the minimality test) walks: task drops from the
/// back, one horizon halving, then per-component fault zeroing.
#[must_use]
pub fn candidates(case: &ShrinkCase) -> Vec<ShrinkCase> {
    let mut out = Vec::new();
    if case.spec.tasks.len() > 1 {
        for i in (0..case.spec.tasks.len()).rev() {
            let mut cand = case.clone();
            cand.spec.tasks.remove(i);
            out.push(cand);
        }
    }
    let half = case.horizon.as_micros() / 2;
    if half >= MIN_HORIZON_US {
        let mut cand = case.clone();
        cand.horizon = TimeDelta::from_micros(half);
        out.push(cand);
    }
    if let Some(faults) = &case.spec.faults {
        let mut zeroed: Vec<FaultSpec> = Vec::new();
        if faults.burst_extra > 0 {
            let mut f = faults.clone();
            f.burst_extra = 0;
            zeroed.push(f);
        }
        if faults.demand_mean_factor != 1.0 {
            let mut f = faults.clone();
            f.demand_mean_factor = 1.0;
            zeroed.push(f);
        }
        if faults.demand_spread != 0.0 {
            let mut f = faults.clone();
            f.demand_spread = 0.0;
            zeroed.push(f);
        }
        if faults.switch_latency_cycles > 0 {
            let mut f = faults.clone();
            f.switch_latency_cycles = 0;
            zeroed.push(f);
        }
        if faults.degraded_mhz.is_some() {
            let mut f = faults.clone();
            f.degraded_mhz = None;
            zeroed.push(f);
        }
        if faults.abort_cost_us > 0 {
            let mut f = faults.clone();
            f.abort_cost_us = 0;
            zeroed.push(f);
        }
        if faults.arrival_jitter_us > 0 {
            let mut f = faults.clone();
            f.arrival_jitter_us = 0;
            zeroed.push(f);
        }
        for f in zeroed {
            let mut cand = case.clone();
            cand.spec.faults = Some(f);
            out.push(cand);
        }
        if faults.to_plan().is_none() {
            let mut cand = case.clone();
            cand.spec.faults = None;
            out.push(cand);
        }
    }
    out
}

/// Greedily shrinks a reproducing case to a 1-minimal one: no single
/// candidate of the result still reproduces. The failure kind of the
/// *final* case is returned (a panic repro can shrink into a plain
/// collapse and vice versa; the recorded kind is what the minimal
/// repro actually does).
///
/// # Errors
///
/// When the input case does not reproduce any failure.
pub fn shrink(case: &ShrinkCase) -> Result<(ShrinkCase, FailureKind), String> {
    let mut kind = probe(case)
        .ok_or_else(|| "the case does not reproduce a failure; nothing to shrink".to_string())?;
    let mut current = case.clone();
    loop {
        let mut progressed = false;
        for candidate in candidates(&current) {
            if let Some(k) = probe(&candidate) {
                current = candidate;
                kind = k;
                progressed = true;
                break;
            }
        }
        if !progressed {
            return Ok((current, kind));
        }
    }
}

/// The repro's scenario name: self-describing `key=value` tokens the
/// corpus replay test parses back (the `.scn` parser preserves interior
/// name whitespace, so the name is a safe metadata channel).
#[must_use]
pub fn repro_name(origin: &str, case: &ShrinkCase, kind: FailureKind) -> String {
    format!(
        "chaos-repro policy={} seed={} horizon_us={} expect={} from={}",
        case.policy,
        case.seed,
        case.horizon.as_micros(),
        kind.as_str(),
        origin
    )
}

/// Metadata parsed back out of a repro's scenario name.
#[derive(Debug, Clone, PartialEq)]
pub struct ReproMeta {
    /// The policy under test.
    pub policy: String,
    /// The engine run seed.
    pub seed: u64,
    /// The simulated horizon.
    pub horizon: TimeDelta,
    /// The failure the repro is expected to exhibit.
    pub expect: FailureKind,
}

/// Parses a [`repro_name`]-shaped scenario name.
///
/// # Errors
///
/// When a required token is missing or malformed.
pub fn parse_repro_name(name: &str) -> Result<ReproMeta, String> {
    let find = |key: &str| -> Result<&str, String> {
        name.split_whitespace()
            .find_map(|token| token.strip_prefix(key).and_then(|t| t.strip_prefix('=')))
            .ok_or_else(|| format!("repro name is missing `{key}=`: {name}"))
    };
    let policy = find("policy")?.to_string();
    let seed: u64 = find("seed")?
        .parse()
        .map_err(|e| format!("bad seed token: {e}"))?;
    let horizon_us: u64 = find("horizon_us")?
        .parse()
        .map_err(|e| format!("bad horizon_us token: {e}"))?;
    let expect = FailureKind::parse_token(find("expect")?)
        .ok_or_else(|| format!("unknown expect token in: {name}"))?;
    Ok(ReproMeta {
        policy,
        seed,
        horizon: TimeDelta::from_micros(horizon_us),
        expect,
    })
}

/// Renders the final repro `.scn` text: the shrunk spec with its name
/// replaced by the metadata-carrying [`repro_name`].
#[must_use]
pub fn render_repro(origin: &str, case: &ShrinkCase, kind: FailureKind) -> String {
    let mut spec = case.spec.clone();
    spec.name = repro_name(origin, case, kind);
    spec.render()
}

/// Reconstructs a replayable case from repro `.scn` text (the corpus
/// replay test's entry point), returning the case and the failure it
/// is expected to reproduce.
///
/// # Errors
///
/// Parse failures of the text or its metadata name.
pub fn case_from_repro_text(text: &str) -> Result<(ShrinkCase, FailureKind), String> {
    let spec = ScenarioSpec::parse(text).map_err(|e| format!("repro does not parse: {e}"))?;
    let meta = parse_repro_name(&spec.name)?;
    Ok((
        ShrinkCase {
            spec,
            policy: meta.policy,
            seed: meta.seed,
            horizon: meta.horizon,
        },
        meta.expect,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eua_analyze::scenario::{ArrivalSpec, DemandSpec, TaskSpec, TufSpec};

    /// Three identical hopeless tasks: every job demands 50× what the
    /// platform can deliver before its termination, so every policy
    /// collapses on every seed — a deterministic shrink target.
    fn hopeless_case() -> ShrinkCase {
        let task = |k: usize| TaskSpec {
            name: format!("hopeless-{k}"),
            tuf: TufSpec::Step {
                umax: 10.0,
                step_at_us: 10_000,
                termination_us: 10_000,
            },
            max_arrivals: 1.0,
            window_us: 10_000,
            demand: DemandSpec::Deterministic { cycles: 5.0e7 },
            nu: 1.0,
            rho: 0.9,
            declared_allocation: None,
            arrival: Some(ArrivalSpec::Burst),
        };
        let spec = ScenarioSpec {
            name: "hopeless".into(),
            frequencies_mhz: vec![36, 55, 64, 73, 82, 91, 100],
            energy: EnergySpec::e1(),
            tasks: (0..3).map(task).collect(),
            faults: Some(FaultSpec {
                demand_mean_factor: 2.0,
                demand_spread: 0.25,
                arrival_jitter_us: 500,
                ..FaultSpec::default()
            }),
        };
        ShrinkCase {
            spec,
            policy: "eua".into(),
            seed: 11,
            horizon: TimeDelta::from_millis(100),
        }
    }

    #[test]
    fn shrink_reaches_a_one_minimal_collapse() {
        let case = hopeless_case();
        assert_eq!(probe(&case), Some(FailureKind::Collapsed));
        let (shrunk, kind) = shrink(&case).expect("reproduces");
        assert_eq!(kind, FailureKind::Collapsed);
        // The overload is per-task, so one task suffices and every
        // fault component is shed.
        assert_eq!(shrunk.spec.tasks.len(), 1);
        assert!(shrunk.spec.faults.is_none());
        assert!(shrunk.horizon < case.horizon, "horizon must shrink too");
        // 1-minimality — the shrinker's exit condition, re-checked
        // explicitly: no single further deletion still reproduces.
        for candidate in candidates(&shrunk) {
            assert_eq!(probe(&candidate), None, "shrunk case must be 1-minimal");
        }
        // Shrinking is deterministic.
        let (again, _) = shrink(&case).expect("reproduces");
        assert_eq!(again, shrunk);
    }

    #[test]
    fn repro_text_round_trips_and_replays() {
        let case = hopeless_case();
        let (shrunk, kind) = shrink(&case).expect("reproduces");
        let text = render_repro("unit-test", &shrunk, kind);
        let (replayed, expect) = case_from_repro_text(&text).expect("repro parses");
        assert_eq!(expect, kind);
        assert_eq!(replayed.policy, shrunk.policy);
        assert_eq!(replayed.seed, shrunk.seed);
        assert_eq!(replayed.horizon, shrunk.horizon);
        assert_eq!(
            probe(&replayed),
            Some(kind),
            "repro must replay its failure"
        );
        // The repro text itself is a parse ∘ render fixpoint.
        let reparsed = ScenarioSpec::parse(&text).expect("parses");
        assert_eq!(reparsed.render(), text);
    }

    #[test]
    fn unknown_policy_probes_as_panic() {
        let mut case = hopeless_case();
        case.policy = "no-such-policy".into();
        assert_eq!(probe(&case), Some(FailureKind::Panic));
    }

    #[test]
    fn healthy_case_does_not_shrink() {
        let mut case = hopeless_case();
        // Make it feasible: tiny demand, no faults.
        for task in &mut case.spec.tasks {
            task.demand = DemandSpec::Deterministic { cycles: 1_000.0 };
        }
        case.spec.faults = None;
        assert_eq!(probe(&case), None);
        assert!(shrink(&case).is_err());
    }
}
