//! Offline schedulability analysis: Theorem 1's sufficient speed and the
//! Baruah–Rosier–Howell (BRH) processor-demand test the paper's §4 leans
//! on for Theorem 6.
//!
//! Theorem 1 (paper §3.3): a task `⟨a, P⟩` with critical time `D` and
//! per-window demand `C = a·c` meets every critical time if it executes at
//! a speed of at least `C/D`, because the demand in `[0, L]` is
//! `(⌊(L − D)/P⌋ + 1)·C` for `L ≥ D` and the ratio is maximized at
//! `L = D`. Summing over tasks gives a sufficient (not necessary) system
//! speed.
//!
//! The BRH test sharpens this for constrained-deadline task systems by
//! checking the demand-bound inequality `h(L) ≤ f·L` at every absolute
//! critical time `L = D_i + k·P_i` up to the standard busy-period bound.

use eua_platform::Frequency;
use eua_sim::{Task, TaskSet};
use eua_uam::dbf::{self, DemandCurve, DemandVerdict};

/// The per-task [`DemandCurve`]s of a validated task set, at
/// allocation-level (worst-case) demand.
#[must_use]
pub fn demand_curves(tasks: &TaskSet) -> Vec<DemandCurve> {
    tasks
        .iter()
        .map(|(_, t)| DemandCurve {
            window_demand: t.window_demand().as_f64(),
            critical_us: t.critical_offset().as_micros(),
            window_us: t.uam().window().as_micros(),
        })
        .collect()
}

/// Theorem 1's per-task sufficient speed `C_i/D_i`, in cycles/µs.
#[must_use]
pub fn theorem1_speed(task: &Task) -> f64 {
    task.demand_rate()
}

/// The sufficient system speed `Σ C_i/D_i` of Theorem 1, in cycles/µs.
///
/// # Example
///
/// ```
/// use eua_core::sufficient_speed;
/// use eua_platform::TimeDelta;
/// use eua_sim::{Task, TaskSet};
/// use eua_tuf::Tuf;
/// use eua_uam::demand::DemandModel;
/// use eua_uam::{Assurance, UamSpec};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = TimeDelta::from_millis(10);
/// let task = Task::new(
///     "t", Tuf::step(1.0, p)?, UamSpec::new(2, p)?,
///     DemandModel::deterministic(100_000.0)?, Assurance::new(1.0, 0.5)?,
/// )?;
/// let tasks = TaskSet::new(vec![task])?;
/// // 2 × 100k cycles per 10 ms ⇒ 20 cycles/µs.
/// assert!((sufficient_speed(&tasks) - 20.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn sufficient_speed(tasks: &TaskSet) -> f64 {
    tasks.iter().map(|(_, t)| theorem1_speed(t)).sum()
}

/// The processor demand `h(L)`: the cycles that *must* complete within any
/// interval of length `L` under worst-case UAM arrivals, in cycles.
#[must_use]
pub fn demand_bound(tasks: &TaskSet, interval_us: u64) -> f64 {
    dbf::total_demand(&demand_curves(tasks), interval_us)
}

/// The Baruah–Rosier–Howell schedulability test at speed `f`: is the
/// worst-case processor demand within capacity at every critical instant?
///
/// Returns `true` if `h(L) ≤ f·L` holds for all `L`. Sufficient and
/// necessary for EDF-by-critical-time on the worst-case (allocation-level)
/// demands; actual stochastic demands below their allocations can only
/// help.
#[must_use]
pub fn brh_schedulable(tasks: &TaskSet, f: Frequency) -> bool {
    matches!(
        dbf::demand_witness(&demand_curves(tasks), f.as_f64(), usize::MAX),
        DemandVerdict::Fits
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use eua_platform::TimeDelta;
    use eua_tuf::Tuf;
    use eua_uam::demand::DemandModel;
    use eua_uam::{Assurance, UamSpec};

    fn ms(v: u64) -> TimeDelta {
        TimeDelta::from_millis(v)
    }

    fn task(p_ms: u64, a: u32, cycles: f64, nu: f64) -> Task {
        Task::new(
            format!("t{p_ms}"),
            Tuf::linear(10.0, ms(p_ms)).unwrap(),
            UamSpec::new(a, ms(p_ms)).unwrap(),
            DemandModel::deterministic(cycles).unwrap(),
            Assurance::new(nu, 0.5).unwrap(),
        )
        .unwrap()
    }

    fn step_task(p_ms: u64, a: u32, cycles: f64) -> Task {
        Task::new(
            format!("s{p_ms}"),
            Tuf::step(10.0, ms(p_ms)).unwrap(),
            UamSpec::new(a, ms(p_ms)).unwrap(),
            DemandModel::deterministic(cycles).unwrap(),
            Assurance::new(1.0, 0.5).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn sufficient_speed_sums_window_densities() {
        let tasks = TaskSet::new(vec![
            step_task(10, 2, 100_000.0),
            step_task(20, 1, 400_000.0),
        ])
        .unwrap();
        // 200k/10ms + 400k/20ms = 20 + 20 = 40 cycles/µs.
        assert!((sufficient_speed(&tasks) - 40.0).abs() < 1e-9);
    }

    #[test]
    fn demand_bound_counts_whole_windows() {
        let tasks = TaskSet::new(vec![step_task(10, 2, 100_000.0)]).unwrap();
        assert_eq!(demand_bound(&tasks, 9_999), 0.0);
        assert_eq!(demand_bound(&tasks, 10_000), 200_000.0);
        assert_eq!(demand_bound(&tasks, 19_999), 200_000.0);
        assert_eq!(demand_bound(&tasks, 20_000), 400_000.0);
    }

    #[test]
    fn underloaded_implicit_deadline_set_is_schedulable() {
        let tasks = TaskSet::new(vec![
            step_task(10, 1, 300_000.0),
            step_task(25, 1, 500_000.0),
        ])
        .unwrap();
        assert!(brh_schedulable(&tasks, Frequency::from_mhz(100)));
        // At half speed (utilization 50+20=50... at 50 MHz the utilization
        // is exactly the capacity boundary): still schedulable.
        assert!(brh_schedulable(&tasks, Frequency::from_mhz(50)));
        assert!(!brh_schedulable(&tasks, Frequency::from_mhz(49)));
    }

    #[test]
    fn constrained_deadlines_require_more_than_utilization() {
        // Linear TUF with ν = 0.5 ⇒ D = P/2: utilization-based reasoning
        // says 40 MHz suffices (400k per 10 ms), but all 400k must land in
        // the first 5 ms ⇒ 80 MHz is the true requirement.
        let t = Task::new(
            "tight",
            Tuf::linear(10.0, ms(10)).unwrap(),
            UamSpec::periodic(ms(10)).unwrap(),
            DemandModel::deterministic(400_000.0).unwrap(),
            Assurance::new(0.5, 0.5).unwrap(),
        )
        .unwrap();
        let tasks = TaskSet::new(vec![t]).unwrap();
        assert!(brh_schedulable(&tasks, Frequency::from_mhz(80)));
        assert!(!brh_schedulable(&tasks, Frequency::from_mhz(79)));
    }

    #[test]
    fn bursty_uam_demand_is_a_times_periodic() {
        let periodic = TaskSet::new(vec![task(10, 1, 100_000.0, 0.3)]).unwrap();
        let bursty = TaskSet::new(vec![task(10, 3, 100_000.0, 0.3)]).unwrap();
        assert!((sufficient_speed(&bursty) - 3.0 * sufficient_speed(&periodic)).abs() < 1e-9);
    }

    #[test]
    fn theorem1_speed_suffices_in_simulation() {
        // Cross-check the analysis against the simulator: at the Theorem 1
        // speed, an EDF run misses nothing.
        use eua_platform::{EnergySetting, FrequencyTable};
        use eua_sim::{Engine, Platform, SimConfig};
        use eua_uam::generator::ArrivalPattern;

        let tasks = TaskSet::new(vec![
            step_task(10, 2, 100_000.0),
            step_task(40, 1, 800_000.0),
        ])
        .unwrap();
        let speed = sufficient_speed(&tasks).ceil() as u64;
        let platform = Platform::new(FrequencyTable::fixed(speed), EnergySetting::e1());
        let patterns = vec![
            ArrivalPattern::window_burst(*tasks.task(eua_sim::TaskId(0)).uam()).unwrap(),
            ArrivalPattern::periodic(ms(40)).unwrap(),
        ];
        let config = SimConfig::new(TimeDelta::from_secs(2));
        let out = Engine::run(
            &tasks,
            &patterns,
            &platform,
            &mut crate::edf::EdfPolicy::max_speed(),
            &config,
            1,
        )
        .unwrap();
        assert_eq!(out.metrics.jobs_aborted(), 0);
        for tm in &out.metrics.per_task {
            assert_eq!(tm.completed, tm.critical_met);
        }
    }
}
