//! Energy-budgeted EUA\* — the paper's first named future-work item
//! ("scheduling under finite energy budgets").
//!
//! [`BudgetedEua`] wraps EUA\* with a hard bound on total energy: at each
//! event it plans exactly like EUA\* (feasibility aborts, UER-ordered
//! schedule, Algorithm 2 frequency), then walks the schedule looking for
//! the first job it can still **afford**:
//!
//! * it prefers the assurance frequency EUA\* would have chosen;
//! * if that costs more residual energy than remains, it falls back to
//!   the job's cheapest *timeliness-feasible* frequency (the lowest-cost
//!   table entry that still beats the termination time);
//! * jobs that are unaffordable even at their cheapest feasible frequency
//!   are passed over in favour of the next schedule entry — exactly the
//!   "maximize utility per unit energy" overload objective, applied to a
//!   shrinking energy pool;
//! * once the pool is empty the processor idles and pending jobs expire.
//!
//! Affordability uses the job's *believed* remaining cycles (the same
//! information EUA\* plans with), so an actual-demand overrun can still
//! overdraw the budget by at most one allocation tail — the bound is
//! enforced in expectation, not adversarially.

use eua_platform::{select_freq, Frequency};
use eua_sim::{Decision, JobView, SchedContext, SchedulerPolicy};

use crate::eua::{Eua, EuaOptions};

/// EUA\* under a finite energy budget; see the module documentation.
///
/// # Example
///
/// ```
/// use eua_core::BudgetedEua;
/// use eua_sim::SchedulerPolicy;
///
/// let policy = BudgetedEua::new(1e9);
/// assert_eq!(policy.name(), "eua-budget");
/// assert_eq!(policy.budget(), 1e9);
/// ```
#[derive(Debug, Clone)]
pub struct BudgetedEua {
    inner: Eua,
    budget: f64,
}

impl BudgetedEua {
    /// EUA\* with a total energy budget (in the platform's Martin-model
    /// energy units).
    ///
    /// # Panics
    ///
    /// Panics if `budget` is negative or NaN.
    #[must_use]
    pub fn new(budget: f64) -> Self {
        BudgetedEua::with_options(budget, EuaOptions::default())
    }

    /// Budgeted EUA\* with explicit option switches.
    ///
    /// # Panics
    ///
    /// Panics if `budget` is negative or NaN.
    #[must_use]
    pub fn with_options(budget: f64, options: EuaOptions) -> Self {
        assert!(budget >= 0.0, "energy budget must be non-negative");
        BudgetedEua {
            inner: Eua::with_options(options),
            budget,
        }
    }

    /// The configured energy budget.
    #[must_use]
    pub fn budget(&self) -> f64 {
        self.budget
    }

    /// The cheapest frequency at which `job` still meets its termination
    /// time, with the energy that choice would cost.
    fn cheapest_feasible(ctx: &SchedContext<'_>, job: &JobView) -> Option<(Frequency, f64)> {
        let mut best: Option<(Frequency, f64)> = None;
        for f in ctx.platform.table().iter() {
            let done = ctx.now.saturating_add(f.execution_time(job.remaining));
            if done > job.termination {
                continue;
            }
            let cost = ctx.platform.energy().energy_for(job.remaining, f);
            if best.is_none_or(|(_, c)| cost < c) {
                best = Some((f, cost));
            }
        }
        best
    }
}

impl SchedulerPolicy for BudgetedEua {
    fn name(&self) -> &str {
        "eua-budget"
    }

    // eua-lint: hot
    fn decide(&mut self, ctx: &SchedContext<'_>) -> Decision {
        let (aborts, analysis) = self.inner.plan(ctx);
        let f_m = ctx.platform.f_max();
        let residual = (self.budget - ctx.energy_used).max(0.0);
        if residual <= 0.0 {
            return Decision::idle(f_m).with_aborts(aborts);
        }
        let assurance_freq = analysis
            .map(|a| select_freq(ctx.platform.table(), a.required_speed))
            .unwrap_or(f_m);
        for cand in self.inner.planned() {
            let Some(job) = ctx.job(cand.id) else {
                continue;
            };
            // Preferred: the assurance frequency, if it is feasible for
            // this job and affordable.
            let done = ctx
                .now
                .saturating_add(assurance_freq.execution_time(job.remaining));
            if done <= job.termination {
                let cost = ctx
                    .platform
                    .energy()
                    .energy_for(job.remaining, assurance_freq);
                if cost <= residual {
                    return Decision::run(cand.id, assurance_freq).with_aborts(aborts);
                }
            }
            // Fallback: the job's cheapest feasible frequency.
            if let Some((f, cost)) = Self::cheapest_feasible(ctx, job) {
                if cost <= residual {
                    return Decision::run(cand.id, f).with_aborts(aborts);
                }
            }
        }
        Decision::idle(f_m).with_aborts(aborts)
    }

    fn reset(&mut self) {
        self.inner.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eua_platform::{EnergySetting, TimeDelta};
    use eua_sim::{Engine, Platform, SimConfig, Task, TaskSet};
    use eua_tuf::Tuf;
    use eua_uam::demand::DemandModel;
    use eua_uam::generator::ArrivalPattern;
    use eua_uam::{Assurance, UamSpec};

    fn ms(v: u64) -> TimeDelta {
        TimeDelta::from_millis(v)
    }

    fn setup() -> (TaskSet, Vec<ArrivalPattern>, Platform, SimConfig) {
        let p = ms(10);
        let task = Task::new(
            "t",
            Tuf::step(10.0, p).unwrap(),
            UamSpec::periodic(p).unwrap(),
            DemandModel::deterministic(200_000.0).unwrap(),
            Assurance::new(1.0, 0.5).unwrap(),
        )
        .unwrap();
        (
            TaskSet::new(vec![task]).unwrap(),
            vec![ArrivalPattern::periodic(p).unwrap()],
            Platform::powernow(EnergySetting::e1()),
            SimConfig::new(ms(500)),
        )
    }

    #[test]
    fn zero_budget_executes_nothing() {
        let (tasks, patterns, platform, config) = setup();
        let out = Engine::run(
            &tasks,
            &patterns,
            &platform,
            &mut BudgetedEua::new(0.0),
            &config,
            1,
        )
        .unwrap();
        assert_eq!(out.metrics.jobs_completed(), 0);
        assert_eq!(out.metrics.energy, 0.0);
    }

    #[test]
    fn huge_budget_behaves_like_plain_eua() {
        let (tasks, patterns, platform, config) = setup();
        let bounded = Engine::run(
            &tasks,
            &patterns,
            &platform,
            &mut BudgetedEua::new(f64::MAX),
            &config,
            1,
        )
        .unwrap();
        let plain = Engine::run(&tasks, &patterns, &platform, &mut Eua::new(), &config, 1).unwrap();
        assert_eq!(
            bounded.metrics.jobs_completed(),
            plain.metrics.jobs_completed()
        );
        assert!((bounded.metrics.total_utility - plain.metrics.total_utility).abs() < 1e-9);
    }

    #[test]
    fn budget_is_respected_within_one_allocation() {
        let (tasks, patterns, platform, config) = setup();
        // Enough for roughly half the run at the cheapest frequency.
        let unconstrained = Engine::run(&tasks, &patterns, &platform, &mut Eua::new(), &config, 1)
            .unwrap()
            .metrics
            .energy;
        let budget = unconstrained / 2.0;
        let out = Engine::run(
            &tasks,
            &patterns,
            &platform,
            &mut BudgetedEua::new(budget),
            &config,
            1,
        )
        .unwrap();
        // One believed-allocation of slack is the documented tolerance.
        let slack = platform.energy().energy_for(
            tasks.task(eua_sim::TaskId(0)).allocation(),
            platform.f_max(),
        );
        assert!(
            out.metrics.energy <= budget + slack,
            "spent {} against budget {budget}",
            out.metrics.energy
        );
        // And it should have done *some* work.
        assert!(out.metrics.jobs_completed() > 0);
    }

    #[test]
    fn utility_is_monotone_in_budget() {
        let (tasks, patterns, platform, config) = setup();
        let full = Engine::run(&tasks, &patterns, &platform, &mut Eua::new(), &config, 1)
            .unwrap()
            .metrics;
        let mut last_utility = -1.0;
        for frac in [0.1, 0.3, 0.5, 0.8, 1.0] {
            let out = Engine::run(
                &tasks,
                &patterns,
                &platform,
                &mut BudgetedEua::new(full.energy * frac),
                &config,
                1,
            )
            .unwrap();
            assert!(
                out.metrics.total_utility + 1e-9 >= last_utility,
                "utility decreased when budget grew to {frac}"
            );
            last_utility = out.metrics.total_utility;
        }
        assert!((last_utility - full.total_utility).abs() < full.total_utility * 0.05);
    }

    #[test]
    fn tight_budget_stretches_further_at_cheap_frequencies() {
        // With the same budget, the budgeted policy (which may drop to the
        // cheapest feasible frequency) should complete at least as many
        // jobs as an always-f_m policy cut off at the same energy point.
        let (tasks, patterns, platform, config) = setup();
        let full_fmax = Engine::run(
            &tasks,
            &patterns,
            &platform,
            &mut Eua::without_dvs(),
            &config,
            1,
        )
        .unwrap()
        .metrics;
        let budget = full_fmax.energy * 0.3;
        let bounded = Engine::run(
            &tasks,
            &patterns,
            &platform,
            &mut BudgetedEua::new(budget),
            &config,
            1,
        )
        .unwrap()
        .metrics;
        // f_m completes jobs at `energy/job = c·E(f_m)`; the budgeted policy
        // pays ~c·E(36MHz) ≈ 13% of that per job under E1.
        let fmax_jobs_at_budget = (budget
            / (platform.energy().energy_for(
                tasks.task(eua_sim::TaskId(0)).allocation(),
                platform.f_max(),
            )))
        .floor() as u64;
        assert!(
            bounded.jobs_completed() > fmax_jobs_at_budget,
            "budgeted {} vs fmax-equivalent {}",
            bounded.jobs_completed(),
            fmax_jobs_at_budget
        );
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_budget_rejected() {
        let _ = BudgetedEua::new(-1.0);
    }
}
