//! Shared schedule-construction machinery: feasibility at `f_m` and the
//! greedy key-ordered insertion used by EUA\* (and DASA).

use eua_platform::{Cycles, Frequency, SimTime};
use eua_sim::{JobId, JobView};

/// One schedulable job plus the ordering key (UER for EUA\*, utility
/// density for DASA) driving greedy insertion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// The job's id.
    pub id: JobId,
    /// Absolute critical time (schedule position key).
    pub critical: SimTime,
    /// Absolute termination time (feasibility bound).
    pub termination: SimTime,
    /// Believed remaining cycles.
    pub remaining: Cycles,
    /// The greedy ordering key; higher is better.
    pub key: f64,
}

impl Candidate {
    /// Builds a candidate from a live-job view with the given key.
    #[must_use]
    pub fn from_view(view: &JobView, key: f64) -> Self {
        Candidate {
            id: view.id,
            critical: view.critical_time,
            termination: view.termination,
            remaining: view.remaining,
            key,
        }
    }
}

/// Whether greedy construction stops at the first infeasible insertion
/// (the paper's Algorithm 1 `break`) or skips it and tries lower-key jobs
/// (DASA-style).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InsertionMode {
    /// Stop considering further jobs once one fails to fit (paper
    /// Algorithm 1 line 18).
    #[default]
    BreakOnInfeasible,
    /// Skip the failing job and keep trying the rest.
    SkipInfeasible,
}

/// Is a single job completable by its termination time at `f_m`?
/// (Algorithm 1 line 10's per-job test.)
#[must_use]
pub fn job_feasible(now: SimTime, view: &JobView, f_max: Frequency) -> bool {
    now.saturating_add(f_max.execution_time(view.remaining)) <= view.termination
}

/// The paper's `feasible(σ)`: executing the critical-time-ordered
/// `schedule` back-to-back at `f_max` starting at `now`, does every job
/// finish by its termination time?
#[must_use]
pub fn schedule_feasible(now: SimTime, schedule: &[Candidate], f_max: Frequency) -> bool {
    let mut t = now;
    for c in schedule {
        t = t.saturating_add(f_max.execution_time(c.remaining));
        if t > c.termination {
            return false;
        }
    }
    true
}

/// Greedy construction of a feasible critical-time-ordered schedule
/// (Algorithm 1 lines 12–18): consider `candidates` in non-increasing key
/// order (ties broken by earlier critical time, then id, for determinism),
/// insert each at its critical-time position, and keep the insertion only
/// if the schedule remains feasible.
///
/// The paper leaves the order of entries with *equal* critical times
/// unspecified; this implementation places them in id (= arrival) order,
/// which matches EDF's `(critical, id)` dispatch tie-break. Under the
/// conditions of Theorem 2 the constructed schedule is then *identical*
/// to EDF's, not merely tie-equivalent. Key priority still decides which
/// jobs survive when an insertion turns the schedule infeasible.
///
/// Only candidates with a strictly positive key are considered (line 14's
/// `UER > 0` guard).
#[must_use]
pub fn build_schedule(
    now: SimTime,
    mut candidates: Vec<Candidate>,
    f_max: Frequency,
    mode: InsertionMode,
) -> Vec<Candidate> {
    candidates.sort_by(|a, b| {
        b.key
            .partial_cmp(&a.key)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.critical.cmp(&b.critical))
            .then_with(|| a.id.cmp(&b.id))
    });
    let mut schedule: Vec<Candidate> = Vec::with_capacity(candidates.len());
    for cand in candidates {
        if cand.key <= 0.0 {
            break;
        }
        // Insert in (critical, id) order so equal critical times dispatch
        // in arrival order, exactly like the EDF baseline's tie-break.
        let pos = schedule.partition_point(|c| (c.critical, c.id) < (cand.critical, cand.id));
        schedule.insert(pos, cand);
        if !schedule_feasible(now, &schedule, f_max) {
            schedule.remove(pos);
            match mode {
                InsertionMode::BreakOnInfeasible => break,
                InsertionMode::SkipInfeasible => continue,
            }
        }
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(id: u64, critical: u64, termination: u64, remaining: u64, key: f64) -> Candidate {
        Candidate {
            id: JobId(id),
            critical: SimTime::from_micros(critical),
            termination: SimTime::from_micros(termination),
            remaining: Cycles::new(remaining),
            key,
        }
    }

    fn fm() -> Frequency {
        Frequency::from_mhz(100)
    }

    #[test]
    fn single_job_feasibility() {
        let view = JobView {
            id: JobId(0),
            task: eua_sim::TaskId(0),
            arrival: SimTime::ZERO,
            critical_time: SimTime::from_micros(50),
            termination: SimTime::from_micros(100),
            remaining: Cycles::new(5_000), // 50 µs at 100 MHz
            executed: Cycles::ZERO,
        };
        assert!(job_feasible(SimTime::from_micros(50), &view, fm()));
        assert!(!job_feasible(SimTime::from_micros(51), &view, fm()));
    }

    #[test]
    fn schedule_feasibility_accumulates_backlog() {
        // Two jobs of 50 µs each; terminations at 60 and 100 µs.
        let a = cand(0, 60, 60, 5_000, 1.0);
        let b = cand(1, 100, 100, 5_000, 1.0);
        assert!(schedule_feasible(SimTime::ZERO, &[a, b], fm()));
        // Reversed order misses a's termination.
        assert!(!schedule_feasible(SimTime::ZERO, &[b, a], fm()));
        // Starting later, even the good order fails.
        assert!(!schedule_feasible(SimTime::from_micros(20), &[a, b], fm()));
    }

    #[test]
    fn build_schedule_orders_by_critical_time() {
        let jobs = vec![
            cand(0, 300, 300, 1_000, 5.0),
            cand(1, 100, 100, 1_000, 1.0),
            cand(2, 200, 200, 1_000, 3.0),
        ];
        let sched = build_schedule(SimTime::ZERO, jobs, fm(), InsertionMode::BreakOnInfeasible);
        let order: Vec<u64> = sched.iter().map(|c| c.id.get()).collect();
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn low_key_job_dropped_when_it_breaks_feasibility() {
        // High-key job takes the whole window; low-key job cannot fit.
        let jobs = vec![
            cand(0, 100, 100, 10_000, 10.0), // 100 µs of work
            cand(1, 100, 100, 10_000, 1.0),
        ];
        let sched = build_schedule(SimTime::ZERO, jobs, fm(), InsertionMode::BreakOnInfeasible);
        assert_eq!(sched.len(), 1);
        assert_eq!(sched[0].id, JobId(0));
    }

    #[test]
    fn break_mode_stops_at_first_failure_skip_mode_continues() {
        // key order: j0 (fits), j1 (doesn't fit), j2 (would fit).
        let jobs = vec![
            cand(0, 50, 50, 4_000, 10.0),  // 40 µs
            cand(1, 60, 60, 5_000, 5.0),   // 50 µs — infeasible after j0
            cand(2, 500, 500, 1_000, 1.0), // 10 µs — plenty of slack
        ];
        let brk = build_schedule(
            SimTime::ZERO,
            jobs.clone(),
            fm(),
            InsertionMode::BreakOnInfeasible,
        );
        assert_eq!(brk.iter().map(|c| c.id.get()).collect::<Vec<_>>(), vec![0]);
        let skip = build_schedule(SimTime::ZERO, jobs, fm(), InsertionMode::SkipInfeasible);
        assert_eq!(
            skip.iter().map(|c| c.id.get()).collect::<Vec<_>>(),
            vec![0, 2]
        );
    }

    #[test]
    fn non_positive_keys_are_excluded() {
        let jobs = vec![
            cand(0, 100, 100, 1_000, 0.0),
            cand(1, 100, 100, 1_000, -1.0),
        ];
        assert!(build_schedule(SimTime::ZERO, jobs, fm(), InsertionMode::default()).is_empty());
    }

    #[test]
    fn equal_critical_times_dispatch_in_id_order() {
        let jobs = vec![
            cand(7, 100, 200, 1_000, 3.0),
            cand(3, 100, 200, 1_000, 2.0),
            cand(5, 100, 200, 1_000, 1.0),
        ];
        let sched = build_schedule(SimTime::ZERO, jobs, fm(), InsertionMode::default());
        // Equal critical times order by id (EDF's tie-break), regardless
        // of the key order the candidates were considered in.
        assert_eq!(
            sched.iter().map(|c| c.id.get()).collect::<Vec<_>>(),
            vec![3, 5, 7]
        );
    }

    #[test]
    fn equal_critical_ties_still_drop_low_key_jobs_first() {
        // Two 60 µs jobs, same critical/termination at 100 µs: only one
        // fits. The high-key job is inserted first and survives; the
        // low-key job fails feasibility and is dropped even though its id
        // would place it earlier.
        let jobs = vec![cand(1, 100, 100, 6_000, 0.5), cand(9, 100, 100, 6_000, 8.0)];
        let sched = build_schedule(SimTime::ZERO, jobs, fm(), InsertionMode::SkipInfeasible);
        assert_eq!(
            sched.iter().map(|c| c.id.get()).collect::<Vec<_>>(),
            vec![9]
        );
    }

    #[test]
    fn nan_keys_do_not_panic() {
        let jobs = vec![
            cand(0, 100, 100, 1_000, f64::NAN),
            cand(1, 90, 100, 1_000, 2.0),
        ];
        let sched = build_schedule(SimTime::ZERO, jobs, fm(), InsertionMode::default());
        // The NaN-keyed job sorts unspecified but must not crash; the
        // positive-keyed job survives.
        assert!(sched.iter().any(|c| c.id == JobId(1)));
    }
}
