//! Shared schedule-construction machinery: feasibility at `f_m` and the
//! greedy key-ordered insertion used by EUA\* (and DASA).
//!
//! Two implementations of the paper's Algorithm 1 lines 12–18 live here:
//!
//! * [`ScheduleBuilder`] — the production path. It maintains per-position
//!   finish times and a suffix-minimum of slack so every insertion is
//!   tested in O(1) and an *accepted* insertion costs one O(n) incremental
//!   update, instead of re-walking the whole schedule through
//!   [`schedule_feasible`] at every attempt. Its buffers are reusable
//!   across scheduling events (see [`crate::Eua`]).
//! * [`build_schedule_reference`] — the naive textbook construction that
//!   re-checks [`schedule_feasible`] after every insertion. It is kept as
//!   the differential-testing oracle; the property suite asserts the two
//!   produce identical schedules.

use std::cmp::Ordering;

use eua_platform::{Cycles, Frequency, SimTime, TimeDelta};
use eua_sim::{JobId, JobView};

/// One schedulable job plus the ordering key (UER for EUA\*, utility
/// density for DASA) driving greedy insertion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// The job's id.
    pub id: JobId,
    /// Absolute critical time (schedule position key).
    pub critical: SimTime,
    /// Absolute termination time (feasibility bound).
    pub termination: SimTime,
    /// Believed remaining cycles.
    pub remaining: Cycles,
    /// The greedy ordering key; higher is better.
    pub key: f64,
}

impl Candidate {
    /// Builds a candidate from a live-job view with the given key.
    #[must_use]
    pub fn from_view(view: &JobView, key: f64) -> Self {
        Candidate {
            id: view.id,
            critical: view.critical_time,
            termination: view.termination,
            remaining: view.remaining,
            key,
        }
    }
}

/// Whether greedy construction stops at the first infeasible insertion
/// (the paper's Algorithm 1 `break`) or skips it and tries lower-key jobs
/// (DASA-style).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InsertionMode {
    /// Stop considering further jobs once one fails to fit (paper
    /// Algorithm 1 line 18).
    #[default]
    BreakOnInfeasible,
    /// Skip the failing job and keep trying the rest.
    SkipInfeasible,
}

/// Is a single job completable by its termination time at `f_m`?
/// (Algorithm 1 line 10's per-job test.)
#[must_use]
pub fn job_feasible(now: SimTime, view: &JobView, f_max: Frequency) -> bool {
    now.saturating_add(f_max.execution_time(view.remaining)) <= view.termination
}

/// The paper's `feasible(σ)`: executing the critical-time-ordered
/// `schedule` back-to-back at `f_max` starting at `now`, does every job
/// finish by its termination time?
#[must_use]
pub fn schedule_feasible(now: SimTime, schedule: &[Candidate], f_max: Frequency) -> bool {
    let mut t = now;
    for c in schedule {
        t = t.saturating_add(f_max.execution_time(c.remaining));
        if t > c.termination {
            return false;
        }
    }
    true
}

/// NaN keys sort as if they were −∞, i.e. strictly after every real key.
/// They can only arise from a degenerate UER (0/0); treating them as
/// worst-possible keeps the ordering total *and* deterministic, and the
/// strictly-positive guard then excludes them from the schedule.
fn sort_key(key: f64) -> f64 {
    if key.is_nan() {
        f64::NEG_INFINITY
    } else {
        key
    }
}

/// The deterministic consideration order of greedy insertion:
/// non-increasing key (NaN last, via [`sort_key`]), ties broken by earlier
/// critical time, then id. `f64::total_cmp` makes the comparator a total
/// order, so the sort cannot reorder equal-key runs differently between
/// builds.
fn consideration_order(a: &Candidate, b: &Candidate) -> Ordering {
    sort_key(b.key)
        .total_cmp(&sort_key(a.key))
        .then_with(|| a.critical.cmp(&b.critical))
        .then_with(|| a.id.cmp(&b.id))
}

/// Incremental constructor of feasible critical-time-ordered schedules
/// (Algorithm 1 lines 12–18) with reusable buffers.
///
/// Alongside each scheduled candidate the builder maintains (in one
/// cache-line-sized [`Entry`], so an insertion is a single memmove):
///
/// * `finish` — the entry's back-to-back finish time starting at `now`;
/// * `entry_slack` — the entry's own tolerance `termination − finish`
///   ([`TimeDelta::MAX`] when the termination is the [`SimTime::MAX`]
///   sentinel, which tolerates any shift);
/// * `slack` — the suffix minimum of `entry_slack` from this position on.
///
/// **Invariant** (after every accepted insertion): `finish[i]` equals the
/// cumulative saturating sum of execution times through position `i`, and
/// `slack[i] = min(entry_slack[i..])`. Inserting a candidate with
/// execution time `e` at position `p` then keeps the schedule feasible
/// **iff** the candidate itself finishes by its termination
/// (`finish[p−1] + e ≤ termination`) **and** every later entry tolerates
/// the shift (`e ≤ slack[p]`) — an O(1) test. Positions before `p` are
/// untouched by the insertion and were feasible already.
///
/// An accepted insertion updates the tail in one fused forward pass:
/// entries after `p` have their finish raised and both slack fields
/// lowered by `e`. The suffix minimum never needs recomputation there —
/// every tolerance in the suffix drops by the same `e` (pinned
/// [`TimeDelta::MAX`] sentinels excepted, and a sentinel can never be the
/// minimum of a suffix containing a finite tolerance), so the minimum
/// drops by `e` too. The prefix `[0, p)` is then fixed with an early
/// exit: once a position's suffix minimum is unchanged, every earlier one
/// is too (it depends only on its own unchanged tolerance and the
/// unchanged minimum to its right). No division happens inside the
/// per-insertion loop; the naive re-walk paid one `execution_time`
/// division per schedule entry per attempt.
///
/// Saturating arithmetic composes: all addends are non-negative, so
/// `sat(sat(x+a)+b) = sat(x+a+b)` and the incrementally-maintained finish
/// times are exactly the ones the naive re-walk would compute. A finish
/// time can only saturate when the entry's termination is the
/// [`SimTime::MAX`] sentinel (otherwise feasibility bounds it), and those
/// entries' tolerances are pinned to [`TimeDelta::MAX`] and never
/// decremented, so saturation cannot make the incremental state drift
/// from the oracle's.
#[derive(Debug, Clone, Copy)]
struct Entry {
    cand: Candidate,
    finish: SimTime,
    entry_slack: TimeDelta,
    slack: TimeDelta,
}

/// Incremental constructor of feasible critical-time-ordered schedules;
/// see [`Entry`] for the maintained per-position state and its invariant.
#[derive(Debug, Clone, Default)]
pub struct ScheduleBuilder {
    entries: Vec<Entry>,
    schedule: Vec<Candidate>,
    /// Path-selection hysteresis, never correctness: `true` after a
    /// rebuild rejected a candidate, so the next rebuild skips the
    /// all-feasible fast-path probe (its sort + walk are wasted work in
    /// sustained overload). Cleared when a greedy pass accepts every
    /// candidate again. Both paths produce identical schedules, so a
    /// stale flag costs one misprediction, nothing else.
    overloaded: bool,
}

impl ScheduleBuilder {
    /// An empty builder; buffers grow on first use and are retained
    /// across [`ScheduleBuilder::rebuild`] calls.
    #[must_use]
    pub fn new() -> Self {
        ScheduleBuilder::default()
    }

    /// The most recently built schedule.
    #[must_use]
    pub fn schedule(&self) -> &[Candidate] {
        &self.schedule
    }

    /// Greedy construction of a feasible critical-time-ordered schedule.
    ///
    /// Considers `candidates` in [`consideration_order`] (draining the
    /// vector but keeping its capacity for reuse), inserts each at its
    /// critical-time position, and keeps the insertion only if the
    /// schedule remains feasible. Only candidates with a strictly
    /// positive key are considered (Algorithm 1 line 14's `UER > 0`
    /// guard); NaN keys are excluded by the same guard.
    ///
    /// The paper leaves the order of entries with *equal* critical times
    /// unspecified; this implementation places them in id (= arrival)
    /// order, which matches EDF's `(critical, id)` dispatch tie-break.
    /// Under the conditions of Theorem 2 the constructed schedule is then
    /// *identical* to EDF's, not merely tie-equivalent. Key priority
    /// still decides which jobs survive when an insertion turns the
    /// schedule infeasible.
    // eua-lint: hot
    pub fn rebuild(
        &mut self,
        now: SimTime,
        candidates: &mut Vec<Candidate>,
        f_max: Frequency,
        mode: InsertionMode,
    ) -> &[Candidate] {
        // Non-positive (and NaN) keys never enter any schedule: in the
        // key-descending consideration order they sort last and the first
        // one ends consideration in both insertion modes. Dropping them
        // up front is therefore exact, and it enables the fast path.
        candidates.retain(|c| c.key.partial_cmp(&0.0) == Some(Ordering::Greater));

        // Fast path: if the WHOLE candidate set is feasible in
        // (critical, id) order, greedy insertion cannot reject anything —
        // every intermediate schedule is a subset of the full one in the
        // same relative order, and removing entries from a feasible
        // critical-ordered schedule only lowers later finish times, so
        // each insertion's feasibility test passes. The result is then
        // the full set in (critical, id) order, regardless of key order
        // or insertion mode: one sort and one O(n) walk replace the
        // O(n²) insertion loop. (The differential suites pin this
        // equivalence against both the naive oracle and the pre-overhaul
        // engine.) The probe is skipped while `overloaded` — in sustained
        // overload it cannot succeed and its sort + walk are pure waste.
        if !self.overloaded {
            candidates.sort_by_key(|c| (c.critical, c.id));
            let mut t = now;
            let all_fit = candidates.iter().all(|c| {
                t = t.saturating_add(f_max.execution_time(c.remaining));
                t <= c.termination
            });
            if all_fit {
                self.schedule.clear();
                self.schedule.append(candidates);
                return &self.schedule;
            }
            self.overloaded = true;
        }

        // Slow path (overload): full greedy insertion in key order.
        let mut rejected = false;
        candidates.sort_by(consideration_order);
        self.entries.clear();
        for cand in candidates.drain(..) {
            // Sorted non-increasing with NaN last, so the first
            // non-positive (or NaN) key ends consideration entirely.
            if cand.key.partial_cmp(&0.0) != Some(Ordering::Greater) {
                break;
            }
            let exec = f_max.execution_time(cand.remaining);
            // Insert in (critical, id) order so equal critical times
            // dispatch in arrival order, exactly like the EDF baseline's
            // tie-break.
            let pos = self
                .entries
                .partition_point(|e| (e.cand.critical, e.cand.id) < (cand.critical, cand.id));
            let prev_finish = if pos == 0 {
                now
            } else {
                self.entries[pos - 1].finish
            };
            let own_finish = prev_finish.saturating_add(exec);
            let fits = own_finish <= cand.termination
                && (pos == self.entries.len() || exec <= self.entries[pos].slack);
            if !fits {
                rejected = true;
                match mode {
                    InsertionMode::BreakOnInfeasible => break,
                    InsertionMode::SkipInfeasible => continue,
                }
            }
            let own_slack = if cand.termination == SimTime::MAX {
                TimeDelta::MAX
            } else {
                cand.termination.saturating_since(own_finish)
            };
            self.entries.insert(
                pos,
                Entry {
                    cand,
                    finish: own_finish,
                    entry_slack: own_slack,
                    slack: own_slack, // placeholder; fixed after the shift
                },
            );
            // Fused tail shift: later entries finish `exec` later and
            // tolerate `exec` less. The feasibility test above guarantees
            // the subtractions cannot underflow, and each shifted entry's
            // `slack` (its old suffix minimum, which now covers exactly
            // the same entries) drops by `exec` too — MAX-pinned
            // sentinels excepted in both fields.
            for e in &mut self.entries[pos + 1..] {
                e.finish = e.finish.saturating_add(exec);
                if e.entry_slack != TimeDelta::MAX {
                    e.entry_slack = e.entry_slack.saturating_sub(exec);
                }
                if e.slack != TimeDelta::MAX {
                    e.slack = e.slack.saturating_sub(exec);
                }
            }
            // The new entry's suffix minimum, then the early-exiting
            // prefix fix-up.
            let right = match self.entries.get(pos + 1) {
                Some(e) => e.slack,
                None => TimeDelta::MAX,
            };
            self.entries[pos].slack = own_slack.min(right);
            for i in (0..pos).rev() {
                let v = self.entries[i].entry_slack.min(self.entries[i + 1].slack);
                if v == self.entries[i].slack {
                    break;
                }
                self.entries[i].slack = v;
            }
        }
        // A clean greedy pass means the set was fully feasible after
        // all — re-arm the fast-path probe for the next event.
        self.overloaded = rejected;
        self.schedule.clear();
        self.schedule.extend(self.entries.iter().map(|e| e.cand));
        &self.schedule
    }
}

/// One-shot greedy schedule construction; see [`ScheduleBuilder::rebuild`]
/// for the full contract. Call sites with a per-event cadence should hold
/// a [`ScheduleBuilder`] instead to reuse its buffers.
#[must_use]
pub fn build_schedule(
    now: SimTime,
    mut candidates: Vec<Candidate>,
    f_max: Frequency,
    mode: InsertionMode,
) -> Vec<Candidate> {
    let mut builder = ScheduleBuilder::new();
    builder.rebuild(now, &mut candidates, f_max, mode);
    builder.schedule
}

/// The naive reference construction: identical consideration order and
/// insertion positions to [`ScheduleBuilder::rebuild`], but every
/// insertion is validated by a full [`schedule_feasible`] re-walk.
///
/// Retained solely as the differential-testing oracle for the incremental
/// builder — do not use it on hot paths.
#[must_use]
pub fn build_schedule_reference(
    now: SimTime,
    mut candidates: Vec<Candidate>,
    f_max: Frequency,
    mode: InsertionMode,
) -> Vec<Candidate> {
    candidates.sort_by(consideration_order);
    let mut schedule: Vec<Candidate> = Vec::with_capacity(candidates.len());
    for cand in candidates {
        if cand.key.partial_cmp(&0.0) != Some(Ordering::Greater) {
            break;
        }
        let pos = schedule.partition_point(|c| (c.critical, c.id) < (cand.critical, cand.id));
        schedule.insert(pos, cand);
        if !schedule_feasible(now, &schedule, f_max) {
            schedule.remove(pos);
            match mode {
                InsertionMode::BreakOnInfeasible => break,
                InsertionMode::SkipInfeasible => continue,
            }
        }
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(id: u64, critical: u64, termination: u64, remaining: u64, key: f64) -> Candidate {
        Candidate {
            id: JobId(id),
            critical: SimTime::from_micros(critical),
            termination: SimTime::from_micros(termination),
            remaining: Cycles::new(remaining),
            key,
        }
    }

    fn fm() -> Frequency {
        Frequency::from_mhz(100)
    }

    #[test]
    fn single_job_feasibility() {
        let view = JobView {
            id: JobId(0),
            task: eua_sim::TaskId(0),
            arrival: SimTime::ZERO,
            critical_time: SimTime::from_micros(50),
            termination: SimTime::from_micros(100),
            remaining: Cycles::new(5_000), // 50 µs at 100 MHz
            executed: Cycles::ZERO,
        };
        assert!(job_feasible(SimTime::from_micros(50), &view, fm()));
        assert!(!job_feasible(SimTime::from_micros(51), &view, fm()));
    }

    #[test]
    fn schedule_feasibility_accumulates_backlog() {
        // Two jobs of 50 µs each; terminations at 60 and 100 µs.
        let a = cand(0, 60, 60, 5_000, 1.0);
        let b = cand(1, 100, 100, 5_000, 1.0);
        assert!(schedule_feasible(SimTime::ZERO, &[a, b], fm()));
        // Reversed order misses a's termination.
        assert!(!schedule_feasible(SimTime::ZERO, &[b, a], fm()));
        // Starting later, even the good order fails.
        assert!(!schedule_feasible(SimTime::from_micros(20), &[a, b], fm()));
    }

    #[test]
    fn build_schedule_orders_by_critical_time() {
        let jobs = vec![
            cand(0, 300, 300, 1_000, 5.0),
            cand(1, 100, 100, 1_000, 1.0),
            cand(2, 200, 200, 1_000, 3.0),
        ];
        let sched = build_schedule(SimTime::ZERO, jobs, fm(), InsertionMode::BreakOnInfeasible);
        let order: Vec<u64> = sched.iter().map(|c| c.id.get()).collect();
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn low_key_job_dropped_when_it_breaks_feasibility() {
        // High-key job takes the whole window; low-key job cannot fit.
        let jobs = vec![
            cand(0, 100, 100, 10_000, 10.0), // 100 µs of work
            cand(1, 100, 100, 10_000, 1.0),
        ];
        let sched = build_schedule(SimTime::ZERO, jobs, fm(), InsertionMode::BreakOnInfeasible);
        assert_eq!(sched.len(), 1);
        assert_eq!(sched[0].id, JobId(0));
    }

    #[test]
    fn break_mode_stops_at_first_failure_skip_mode_continues() {
        // key order: j0 (fits), j1 (doesn't fit), j2 (would fit).
        let jobs = vec![
            cand(0, 50, 50, 4_000, 10.0),  // 40 µs
            cand(1, 60, 60, 5_000, 5.0),   // 50 µs — infeasible after j0
            cand(2, 500, 500, 1_000, 1.0), // 10 µs — plenty of slack
        ];
        let brk = build_schedule(
            SimTime::ZERO,
            jobs.clone(),
            fm(),
            InsertionMode::BreakOnInfeasible,
        );
        assert_eq!(brk.iter().map(|c| c.id.get()).collect::<Vec<_>>(), vec![0]);
        let skip = build_schedule(SimTime::ZERO, jobs, fm(), InsertionMode::SkipInfeasible);
        assert_eq!(
            skip.iter().map(|c| c.id.get()).collect::<Vec<_>>(),
            vec![0, 2]
        );
    }

    #[test]
    fn non_positive_keys_are_excluded() {
        let jobs = vec![
            cand(0, 100, 100, 1_000, 0.0),
            cand(1, 100, 100, 1_000, -1.0),
        ];
        assert!(build_schedule(SimTime::ZERO, jobs, fm(), InsertionMode::default()).is_empty());
    }

    #[test]
    fn equal_critical_times_dispatch_in_id_order() {
        let jobs = vec![
            cand(7, 100, 200, 1_000, 3.0),
            cand(3, 100, 200, 1_000, 2.0),
            cand(5, 100, 200, 1_000, 1.0),
        ];
        let sched = build_schedule(SimTime::ZERO, jobs, fm(), InsertionMode::default());
        // Equal critical times order by id (EDF's tie-break), regardless
        // of the key order the candidates were considered in.
        assert_eq!(
            sched.iter().map(|c| c.id.get()).collect::<Vec<_>>(),
            vec![3, 5, 7]
        );
    }

    #[test]
    fn equal_critical_ties_still_drop_low_key_jobs_first() {
        // Two 60 µs jobs, same critical/termination at 100 µs: only one
        // fits. The high-key job is inserted first and survives; the
        // low-key job fails feasibility and is dropped even though its id
        // would place it earlier.
        let jobs = vec![cand(1, 100, 100, 6_000, 0.5), cand(9, 100, 100, 6_000, 8.0)];
        let sched = build_schedule(SimTime::ZERO, jobs, fm(), InsertionMode::SkipInfeasible);
        assert_eq!(
            sched.iter().map(|c| c.id.get()).collect::<Vec<_>>(),
            vec![9]
        );
    }

    #[test]
    fn nan_keys_do_not_panic() {
        let jobs = vec![
            cand(0, 100, 100, 1_000, f64::NAN),
            cand(1, 90, 100, 1_000, 2.0),
        ];
        let sched = build_schedule(SimTime::ZERO, jobs, fm(), InsertionMode::default());
        // The NaN-keyed job sorts last and must not crash; the
        // positive-keyed job survives.
        assert!(sched.iter().any(|c| c.id == JobId(1)));
    }

    #[test]
    fn nan_keys_sort_last_and_never_schedule() {
        // Regression test for the `partial_cmp(..).unwrap_or(Equal)`
        // comparator: a NaN key used to sort *wherever the input order
        // left it* (Equal against everything), making the schedule depend
        // on input permutation — and, worse, a NaN that landed before the
        // break guard was inserted as if it had a positive key. With
        // `total_cmp` over the NaN→−∞ sort key, every permutation pins
        // the same schedule and the NaN entry is always excluded.
        let jobs = [
            cand(0, 100, 400, 1_000, f64::NAN),
            cand(1, 200, 400, 1_000, 3.0),
            cand(2, 300, 400, 1_000, 1.0),
            cand(3, 50, 400, 1_000, f64::NAN),
        ];
        let expect = vec![1u64, 2];
        // All 24 permutations of the four candidates.
        let mut idx = [0usize, 1, 2, 3];
        let mut perms = Vec::new();
        heap_permutations(&mut idx, 4, &mut perms);
        assert_eq!(perms.len(), 24);
        for perm in perms {
            let permuted: Vec<Candidate> = perm.iter().map(|&i| jobs[i]).collect();
            for mode in [
                InsertionMode::BreakOnInfeasible,
                InsertionMode::SkipInfeasible,
            ] {
                let sched = build_schedule(SimTime::ZERO, permuted.clone(), fm(), mode);
                assert_eq!(
                    sched.iter().map(|c| c.id.get()).collect::<Vec<_>>(),
                    expect,
                    "permutation {perm:?} mode {mode:?}"
                );
            }
        }
    }

    fn heap_permutations(idx: &mut [usize; 4], k: usize, out: &mut Vec<[usize; 4]>) {
        if k == 1 {
            out.push(*idx);
            return;
        }
        for i in 0..k {
            heap_permutations(idx, k - 1, out);
            if k.is_multiple_of(2) {
                idx.swap(i, k - 1);
            } else {
                idx.swap(0, k - 1);
            }
        }
    }

    #[test]
    fn builder_matches_reference_on_handcrafted_sets() {
        let sets = [
            vec![],
            vec![cand(0, 10, 10, 2_000, 1.0)],
            vec![
                cand(0, 50, 50, 4_000, 10.0),
                cand(1, 60, 60, 5_000, 5.0),
                cand(2, 500, 500, 1_000, 1.0),
                cand(3, 70, 90, 3_000, 7.0),
                cand(4, 70, 90, 3_000, 7.0),
            ],
            // Saturating-time edge: a termination at the MAX sentinel.
            vec![
                cand(0, 100, u64::MAX, u64::MAX, 2.0),
                cand(1, 50, 120, 4_000, 1.0),
            ],
        ];
        for set in sets {
            for mode in [
                InsertionMode::BreakOnInfeasible,
                InsertionMode::SkipInfeasible,
            ] {
                let fast = build_schedule(SimTime::ZERO, set.clone(), fm(), mode);
                let slow = build_schedule_reference(SimTime::ZERO, set.clone(), fm(), mode);
                assert_eq!(fast, slow, "set {set:?} mode {mode:?}");
                assert!(schedule_feasible(SimTime::ZERO, &fast, fm()));
            }
        }
    }

    #[test]
    fn builder_buffers_are_reusable() {
        let mut builder = ScheduleBuilder::new();
        let mut buf = vec![cand(0, 100, 100, 1_000, 2.0), cand(1, 200, 200, 1_000, 1.0)];
        let first: Vec<u64> = builder
            .rebuild(SimTime::ZERO, &mut buf, fm(), InsertionMode::default())
            .iter()
            .map(|c| c.id.get())
            .collect();
        assert_eq!(first, vec![0, 1]);
        assert!(buf.is_empty(), "rebuild drains the candidate buffer");
        // Refill and rebuild from a different state: no stale entries.
        buf.push(cand(7, 50, 50, 1_000, 1.0));
        let second: Vec<u64> = builder
            .rebuild(SimTime::ZERO, &mut buf, fm(), InsertionMode::default())
            .iter()
            .map(|c| c.id.get())
            .collect();
        assert_eq!(second, vec![7]);
    }
}
