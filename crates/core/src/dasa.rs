//! A DASA-style pure utility-accrual baseline (Locke's best-effort
//! decision making): greedy insertion by **utility density** `U/c` with no
//! DVS. Included as the non-energy-aware ancestor of EUA\* — with a
//! constant energy model, EUA\*'s UER ordering degenerates to exactly this
//! policy.

use eua_sim::{Decision, SchedContext, SchedulerPolicy};

use crate::candidates::{Candidate, InsertionMode, ScheduleBuilder};
use crate::score::ScoreCache;

/// Dependent Activity Scheduling Algorithm (independent-task form):
/// utility-density-ordered greedy scheduling at the maximum frequency.
///
/// # Example
///
/// ```
/// use eua_core::Dasa;
/// use eua_sim::SchedulerPolicy;
///
/// assert_eq!(Dasa::new().name(), "dasa");
/// ```
#[derive(Debug, Clone, Default)]
pub struct Dasa {
    /// Incremental schedule constructor; buffers persist across events so
    /// the per-event hot path does not reallocate.
    builder: ScheduleBuilder,
    /// Reused candidate scratch, refilled every event.
    cand_buf: Vec<Candidate>,
    /// Reused abort scratch, taken by value only on events that abort.
    abort_buf: Vec<eua_sim::JobId>,
    /// Event-to-event execution-time and utility cache (DESIGN.md §14).
    cache: ScoreCache,
}

impl Dasa {
    /// Creates the policy.
    #[must_use]
    pub fn new() -> Self {
        Dasa::default()
    }
}

impl SchedulerPolicy for Dasa {
    fn name(&self) -> &str {
        "dasa"
    }

    // eua-lint: hot
    fn decide(&mut self, ctx: &SchedContext<'_>) -> Decision {
        let f_m = ctx.platform.f_max();
        self.abort_buf.clear();
        self.cand_buf.clear();
        self.cache.begin(f_m);
        for j in ctx.jobs {
            let (exec, utility) = self
                .cache
                .score(ctx.now, j, ctx.tasks.task(j.task).tuf(), f_m);
            if ctx.now.saturating_add(exec) > j.termination {
                self.abort_buf.push(j.id);
                continue;
            }
            // Utility density: expected utility per remaining cycle.
            self.cand_buf
                .push(Candidate::from_view(j, utility / j.remaining.as_f64()));
        }
        self.cache.commit();
        let schedule = self.builder.rebuild(
            ctx.now,
            &mut self.cand_buf,
            f_m,
            InsertionMode::SkipInfeasible,
        );
        let aborts = std::mem::take(&mut self.abort_buf);
        match schedule.first() {
            Some(head) => Decision::run(head.id, f_m).with_aborts(aborts),
            None => Decision::idle(f_m).with_aborts(aborts),
        }
    }

    fn reset(&mut self) {
        self.cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eua_platform::{EnergySetting, TimeDelta};
    use eua_sim::{Engine, Platform, SimConfig, Task, TaskSet};
    use eua_tuf::Tuf;
    use eua_uam::demand::DemandModel;
    use eua_uam::generator::ArrivalPattern;
    use eua_uam::{Assurance, UamSpec};

    fn ms(v: u64) -> TimeDelta {
        TimeDelta::from_millis(v)
    }

    #[test]
    fn dasa_favors_high_density_jobs_during_overload() {
        let p = ms(10);
        let mk = |name: &str, umax: f64| {
            Task::new(
                name,
                Tuf::step(umax, p).unwrap(),
                UamSpec::periodic(p).unwrap(),
                DemandModel::deterministic(700_000.0).unwrap(),
                Assurance::new(1.0, 0.5).unwrap(),
            )
            .unwrap()
        };
        let tasks = TaskSet::new(vec![mk("low", 1.0), mk("high", 20.0)]).unwrap();
        let patterns = vec![
            ArrivalPattern::periodic(p).unwrap(),
            ArrivalPattern::periodic(p).unwrap(),
        ];
        let config = SimConfig::new(ms(300));
        let platform = Platform::powernow(EnergySetting::e1());
        let out = Engine::run(&tasks, &patterns, &platform, &mut Dasa::new(), &config, 1).unwrap();
        assert!(out.metrics.per_task[1].completed > out.metrics.per_task[0].completed);
        assert_eq!(out.metrics.per_task[1].completed, 30);
    }

    #[test]
    fn dasa_equals_optimal_underload() {
        let p = ms(20);
        let task = Task::new(
            "t",
            Tuf::step(5.0, p).unwrap(),
            UamSpec::periodic(p).unwrap(),
            DemandModel::deterministic(500_000.0).unwrap(),
            Assurance::new(1.0, 0.5).unwrap(),
        )
        .unwrap();
        let tasks = TaskSet::new(vec![task]).unwrap();
        let patterns = vec![ArrivalPattern::periodic(p).unwrap()];
        let config = SimConfig::new(ms(400));
        let platform = Platform::powernow(EnergySetting::e1());
        let out = Engine::run(&tasks, &patterns, &platform, &mut Dasa::new(), &config, 1).unwrap();
        assert_eq!(out.metrics.jobs_completed(), 20);
        assert!((out.metrics.utility_ratio() - 1.0).abs() < 1e-9);
    }
}
