//! Deadline-based baselines: EDF at `f_m`, cycle-conserving EDF, and
//! look-ahead EDF (Pillai & Shin, SOSP'01 — reference [13] of the paper),
//! each with or without feasibility aborts (the paper's `-NA` variants).
//!
//! As in the paper's §5.1, the DVS baselines are driven by the same cycle
//! allocations EUA\* computes ("the other strategies are based on the worst
//! case workload; here we use cycles allocated by EUA\* as their inputs"),
//! so differences in the figures isolate the scheduling and DVS policies
//! rather than the demand estimates.

use eua_platform::select_freq;
use eua_sim::{Decision, JobView, SchedContext, SchedulerPolicy};

use crate::candidates::job_feasible;
use crate::eua::decide_freq::LookAheadDvs;

/// Which DVS technique the EDF baseline applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum DvsMode {
    /// No DVS: always the maximum frequency (the paper's normalization
    /// baseline).
    #[default]
    None,
    /// Static DVS: the constant sufficient speed of Theorem 1,
    /// `Σ C_i/D_i`, selected once from the task set.
    Static,
    /// Cycle-conserving: frequency tracks the aggregate utilization of
    /// live work, with idle tasks reserving their expected demand.
    CycleConserving,
    /// Look-ahead: the Algorithm 2 deferral analysis (shared with EUA\*),
    /// without the UER clamp.
    LookAhead,
}

/// Critical-time-ordered (EDF) scheduling with optional DVS and optional
/// feasibility aborts.
///
/// # Example
///
/// ```
/// use eua_core::{DvsMode, EdfPolicy};
/// use eua_sim::SchedulerPolicy;
///
/// assert_eq!(EdfPolicy::max_speed().name(), "edf");
/// assert_eq!(EdfPolicy::look_ahead().name(), "laedf");
/// assert_eq!(EdfPolicy::new(DvsMode::CycleConserving, false).name(), "ccedf-na");
/// ```
#[derive(Debug, Clone)]
pub struct EdfPolicy {
    dvs: DvsMode,
    abort_infeasible: bool,
    name: String,
    look_ahead: LookAheadDvs,
}

impl EdfPolicy {
    /// An EDF baseline with the given DVS mode and abort behaviour.
    #[must_use]
    pub fn new(dvs: DvsMode, abort_infeasible: bool) -> Self {
        let mut name = String::from(match dvs {
            DvsMode::None => "edf",
            DvsMode::Static => "edf-static",
            DvsMode::CycleConserving => "ccedf",
            DvsMode::LookAhead => "laedf",
        });
        if !abort_infeasible {
            name.push_str("-na");
        }
        EdfPolicy {
            dvs,
            abort_infeasible,
            name,
            look_ahead: LookAheadDvs::new(),
        }
    }

    /// EDF at the maximum frequency with feasibility aborts — the
    /// normalization baseline of Figure 2.
    #[must_use]
    pub fn max_speed() -> Self {
        EdfPolicy::new(DvsMode::None, true)
    }

    /// Cycle-conserving EDF with aborts.
    #[must_use]
    pub fn cycle_conserving() -> Self {
        EdfPolicy::new(DvsMode::CycleConserving, true)
    }

    /// Look-ahead EDF with aborts.
    #[must_use]
    pub fn look_ahead() -> Self {
        EdfPolicy::new(DvsMode::LookAhead, true)
    }

    /// The non-aborting variant of this policy (the paper's `-NA`).
    #[must_use]
    pub fn without_abort(&self) -> Self {
        EdfPolicy::new(self.dvs, false)
    }

    /// The DVS mode in use.
    #[must_use]
    pub fn dvs(&self) -> DvsMode {
        self.dvs
    }

    fn cycle_conserving_speed(ctx: &SchedContext<'_>) -> f64 {
        let mut speed = 0.0;
        for (tid, task) in ctx.tasks.iter() {
            let pending = ctx.pending_count(tid);
            if pending > 0 {
                let considered = f64::from(pending.min(task.uam().max_arrivals()));
                speed += considered * task.allocation().as_f64()
                    / task.critical_offset().as_micros() as f64;
            } else {
                // The cycle-conserving reclamation: an idle task reserves
                // only its expected demand until its next release.
                speed += task.demand().mean() / task.critical_offset().as_micros() as f64;
            }
        }
        speed
    }
}

impl SchedulerPolicy for EdfPolicy {
    fn name(&self) -> &str {
        &self.name
    }

    // eua-lint: hot
    fn decide(&mut self, ctx: &SchedContext<'_>) -> Decision {
        let f_m = ctx.platform.f_max();
        // Keep the look-ahead window anchors fresh at every event.
        let analysis = (self.dvs == DvsMode::LookAhead).then(|| self.look_ahead.analyze(ctx));
        let mut aborts = Vec::new();
        let mut best: Option<&JobView> = None;
        for j in ctx.jobs {
            if self.abort_infeasible && !job_feasible(ctx.now, j, f_m) {
                aborts.push(j.id);
                continue;
            }
            if best.is_none_or(|b| (j.critical_time, j.id) < (b.critical_time, b.id)) {
                best = Some(j);
            }
        }
        let Some(job) = best else {
            return Decision::idle(f_m).with_aborts(aborts);
        };
        let frequency = match self.dvs {
            DvsMode::None => f_m,
            DvsMode::Static => {
                // Theorem 1: speed Σ C_i/D_i suffices for all critical
                // times under UAM arrivals.
                let demand: f64 = ctx.tasks.iter().map(|(_, t)| t.demand_rate()).sum();
                select_freq(ctx.platform.table(), demand)
            }
            DvsMode::CycleConserving => {
                select_freq(ctx.platform.table(), Self::cycle_conserving_speed(ctx))
            }
            DvsMode::LookAhead => {
                #[allow(clippy::expect_used)] // populated above exactly when LookAhead
                let analysis = analysis.expect("computed for LookAhead above");
                select_freq(ctx.platform.table(), analysis.required_speed)
            }
        };
        Decision::run(job.id, frequency).with_aborts(aborts)
    }

    fn reset(&mut self) {
        self.look_ahead.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eua_platform::{EnergySetting, SimTime, TimeDelta};
    use eua_sim::{Engine, Platform, SimConfig, Task, TaskSet};
    use eua_tuf::Tuf;
    use eua_uam::demand::DemandModel;
    use eua_uam::generator::ArrivalPattern;
    use eua_uam::{ArrivalTrace, Assurance, UamSpec};

    fn ms(v: u64) -> TimeDelta {
        TimeDelta::from_millis(v)
    }

    fn platform() -> Platform {
        Platform::powernow(EnergySetting::e1())
    }

    fn step_task(name: &str, p_ms: u64, cycles: f64) -> Task {
        Task::new(
            name,
            Tuf::step(10.0, ms(p_ms)).unwrap(),
            UamSpec::periodic(ms(p_ms)).unwrap(),
            DemandModel::deterministic(cycles).unwrap(),
            Assurance::new(1.0, 0.5).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn dvs_modes_order_energy_sensibly_underload() {
        let tasks = TaskSet::new(vec![
            step_task("a", 10, 100_000.0),
            step_task("b", 20, 200_000.0),
        ])
        .unwrap();
        let patterns = vec![
            ArrivalPattern::periodic(ms(10)).unwrap(),
            ArrivalPattern::periodic(ms(20)).unwrap(),
        ];
        let config = SimConfig::new(ms(1_000));
        let run = |policy: &mut EdfPolicy| {
            Engine::run(&tasks, &patterns, &platform(), policy, &config, 5)
                .unwrap()
                .metrics
        };
        let fixed = run(&mut EdfPolicy::max_speed());
        let cc = run(&mut EdfPolicy::cycle_conserving());
        let la = run(&mut EdfPolicy::look_ahead());
        // All complete everything at load 0.2...
        assert_eq!(fixed.jobs_completed(), 150);
        assert_eq!(cc.jobs_completed(), 150);
        assert_eq!(la.jobs_completed(), 150);
        // ...with DVS strictly saving energy, look-ahead at least as well
        // as cycle-conserving.
        assert!(cc.energy < fixed.energy);
        assert!(la.energy <= cc.energy * 1.05);
    }

    #[test]
    fn na_variant_burns_cycles_on_doomed_jobs() {
        // One hopeless job (2 P of work): the aborting variant drops it at
        // release; the -NA variant burns the whole window on it.
        let tasks = TaskSet::new(vec![step_task("doomed", 10, 2_000_000.0)]).unwrap();
        let traces = vec![ArrivalTrace::from_times([SimTime::ZERO])];
        let config = SimConfig::new(ms(10));
        let abort = Engine::run_with_traces(
            &tasks,
            &traces,
            &platform(),
            &mut EdfPolicy::max_speed(),
            &config,
            1,
        )
        .unwrap();
        let na = Engine::run_with_traces(
            &tasks,
            &traces,
            &platform(),
            &mut EdfPolicy::max_speed().without_abort(),
            &config,
            1,
        )
        .unwrap();
        assert_eq!(abort.metrics.energy, 0.0);
        assert!(na.metrics.energy > 0.0);
        assert_eq!(na.metrics.per_task[0].aborted_by_termination, 1);
        assert_eq!(abort.metrics.per_task[0].aborted_by_policy, 1);
    }

    #[test]
    fn edf_meets_all_deadlines_underload() {
        let tasks = TaskSet::new(vec![
            step_task("a", 10, 300_000.0),
            step_task("b", 25, 500_000.0),
            step_task("c", 50, 1_000_000.0),
        ])
        .unwrap();
        let patterns = vec![
            ArrivalPattern::periodic(ms(10)).unwrap(),
            ArrivalPattern::periodic(ms(25)).unwrap(),
            ArrivalPattern::periodic(ms(50)).unwrap(),
        ];
        let config = SimConfig::new(ms(2_000));
        for policy in [
            &mut EdfPolicy::max_speed(),
            &mut EdfPolicy::cycle_conserving(),
            &mut EdfPolicy::look_ahead(),
        ] {
            let m = Engine::run(&tasks, &patterns, &platform(), policy, &config, 2)
                .unwrap()
                .metrics;
            assert_eq!(m.jobs_aborted(), 0, "{} aborted jobs", policy.name());
            for tm in &m.per_task {
                assert_eq!(
                    tm.critical_met,
                    tm.completed,
                    "{} missed deadlines",
                    policy.name()
                );
            }
        }
    }

    #[test]
    fn names_and_accessors() {
        assert_eq!(EdfPolicy::max_speed().name(), "edf");
        assert_eq!(EdfPolicy::max_speed().without_abort().name(), "edf-na");
        assert_eq!(EdfPolicy::cycle_conserving().name(), "ccedf");
        assert_eq!(EdfPolicy::look_ahead().dvs(), DvsMode::LookAhead);
    }
}
