//! Algorithm 2 — `decideFreq()`: EUA\*'s stochastic, UAM-aware DVS step.
//!
//! The analysis generalizes Pillai & Shin's look-ahead EDF to the UAM
//! model. It considers the interval up to the earliest absolute critical
//! time `D_a_n` among current task windows and tries to **defer as much
//! work as possible beyond it**: walking tasks in latest-critical-time-
//! first order (reverse EDF), it computes for each task the minimum number
//! of cycles `x` that must execute before `D_a_n` for the task to still
//! meet its own critical time, assuming worst-case aggregate demand `Util`
//! from earlier-critical-time tasks. The sum `s` of those minima, spread
//! over the time until `D_a_n`, is the required processor speed.
//!
//! Per Theorem 1, a task's sustainable demand is `C_i/D_i` with
//! `C_i = a_i·c_i` (all `a_i` window arrivals at the Chebyshev
//! allocation), which seeds the aggregate `Util`. Remaining demand inside
//! the current window is `C_i^r = c_i^r + (min(a_i, pending_i) − 1)·c_i`
//! (paper §3.3).
//!
//! The paper defines `D_i^a` and `C_i^r` **per current arrival window**,
//! not per live job: a window whose jobs have all completed still anchors
//! the analysis at its critical time (with zero remaining cycles), exactly
//! as a completed invocation does in Pillai & Shin's `defer()`. Dropping
//! that anchor makes the analysis defer work that later arrivals then
//! collide with — the [`LookAheadDvs`] state tracks window anchors from
//! observed arrivals for this reason.
//!
//! Further resolutions of pseudo-code ambiguities (documented in DESIGN.md
//! §3): tasks sharing the earliest critical time contribute `x = C_i^r`
//! and no `Util` adjustment (the `gap → 0` limit); tasks that are idle
//! with an expired window keep their static reservation inside `Util` and
//! are skipped by the deferral loop; `x` is clamped to `[0, C_i^r]` so
//! transient overload cannot drive `Util` negative.

use eua_platform::SimTime;
use eua_sim::SchedContext;

/// The outcome of the Algorithm 2 analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DvsAnalysis {
    /// The continuous processor speed (cycles/µs) required to push all
    /// deferred work past the earliest critical time, already clamped to
    /// `[0, f_m]` (Algorithm 2 line 9).
    pub required_speed: f64,
    /// The earliest absolute critical time `D_a_n` among current windows,
    /// if any.
    pub earliest_critical: Option<SimTime>,
    /// The total cycles `s` that must execute before `D_a_n`.
    pub must_run_cycles: f64,
}

/// The stateful Algorithm 2 analysis: window anchors plus the `defer()`
/// computation. Owned by each DVS-capable policy ([`crate::Eua`],
/// look-ahead [`crate::EdfPolicy`]).
///
/// Call [`LookAheadDvs::analyze`] at **every** scheduling event so the
/// anchor bookkeeping observes every arrival (the engine invokes policies
/// at each arrival, so live views never miss one).
#[derive(Debug, Clone, Default)]
pub struct LookAheadDvs {
    /// Per-task start of the current arrival window (the first arrival at
    /// or after the previous window's end).
    anchors: Vec<Option<SimTime>>,
    /// Scratch for the deferral walk, reused across calls so the
    /// steady-state analysis performs no per-event heap allocation.
    entries: Vec<Entry>,
    /// Per-task aggregation scratch for the single job pass, reused
    /// across calls.
    scratch: Vec<TaskScratch>,
}

/// One task's contribution to the deferral walk (scratch state).
#[derive(Debug, Clone)]
struct Entry {
    critical: SimTime,
    remaining: f64,
    static_rate: f64,
}

/// Per-task facts gathered in one pass over the live jobs: how many are
/// pending, and the `(critical, id, remaining)` of the earliest-critical
/// one.
#[derive(Debug, Clone, Copy, Default)]
struct TaskScratch {
    pending: u32,
    earliest: Option<(SimTime, eua_sim::JobId, eua_platform::Cycles)>,
}

impl LookAheadDvs {
    /// Creates an empty analysis state.
    #[must_use]
    pub fn new() -> Self {
        LookAheadDvs::default()
    }

    /// Clears all window anchors (for policy reuse across runs).
    pub fn reset(&mut self) {
        self.anchors.clear();
        self.entries.clear();
        self.scratch.clear();
    }

    /// Observes the context's arrivals and runs the Algorithm 2 demand
    /// analysis.
    ///
    /// Returns `required_speed = 0` when no window is active. When the
    /// earliest critical time is already due (`D_a_n ≤ now`), the full
    /// `f_m` is required.
    // eua-lint: hot
    pub fn analyze(&mut self, ctx: &SchedContext<'_>) -> DvsAnalysis {
        if self.anchors.len() != ctx.tasks.len() {
            self.anchors.clear();
            self.anchors.resize(ctx.tasks.len(), None);
        }
        let f_m = ctx.platform.f_max().as_f64();

        // One pass over the live jobs (they are in arrival order, so each
        // task's subsequence is too): count pending jobs, find the
        // earliest-critical one, and advance the window anchors from
        // observed arrivals. This replaces the per-task `jobs_of` filter
        // scans — O(jobs) total instead of O(tasks · jobs) — and
        // aggregates exactly the facts the old inner loop derived.
        self.scratch.clear();
        self.scratch.resize(ctx.tasks.len(), TaskScratch::default());
        for j in ctx.jobs {
            let s = &mut self.scratch[j.task.index()];
            s.pending += 1;
            let anchor = &mut self.anchors[j.task.index()];
            match *anchor {
                None => *anchor = Some(j.arrival),
                Some(a) if j.arrival >= a.saturating_add(ctx.tasks.task(j.task).uam().window()) => {
                    *anchor = Some(j.arrival);
                }
                _ => {}
            }
            if s.earliest
                .is_none_or(|(crit, id, _)| (j.critical_time, j.id) < (crit, id))
            {
                s.earliest = Some((j.critical_time, j.id, j.remaining));
            }
        }

        self.entries.clear();
        // Aggregate worst-case utilization over ALL tasks (line 2). Tasks
        // without an active window keep their reservation: under UAM they
        // may release a full window of work at any instant.
        let mut util: f64 = 0.0;
        for (tid, task) in ctx.tasks.iter() {
            util += task.demand_rate();
            let window = task.uam().window();
            let anchor = self.anchors[tid.index()];
            let TaskScratch { pending, earliest } = self.scratch[tid.index()];

            // The current window's critical time, while the window is
            // active and the critical time has not yet passed.
            let window_critical = anchor.and_then(|a| {
                let expiry = a.saturating_add(window);
                let crit = a.saturating_add(task.critical_offset());
                (ctx.now < expiry && crit > ctx.now).then_some(crit)
            });

            let (critical, remaining) = match (earliest, window_critical) {
                (Some((first_critical, _, first_remaining)), wc) => {
                    let considered = pending.min(task.uam().max_arrivals());
                    let remaining = first_remaining.as_f64()
                        + f64::from(considered.saturating_sub(1)) * task.allocation().as_f64();
                    let critical = match wc {
                        Some(w) => w.min(first_critical),
                        None => first_critical,
                    };
                    (critical, remaining)
                }
                // Completed-but-active window: it still anchors the
                // analysis horizon, with nothing left to run.
                (None, Some(w)) => (w, 0.0),
                (None, None) => continue,
            };
            self.entries.push(Entry {
                critical,
                remaining,
                static_rate: task.demand_rate(),
            });
        }

        let Some(earliest_critical) = self.entries.iter().map(|e| e.critical).min() else {
            return DvsAnalysis {
                required_speed: 0.0,
                earliest_critical: None,
                must_run_cycles: 0.0,
            };
        };

        // Reverse EDF order: latest critical time first (line 4).
        self.entries.sort_by_key(|e| std::cmp::Reverse(e.critical));

        let mut s = 0.0f64;
        for e in &self.entries {
            util -= e.static_rate;
            let gap = e.critical.saturating_since(earliest_critical).as_micros() as f64;
            // Minimum cycles that must run before D_a_n so the task can
            // still finish by its own critical time at worst-case demand
            // `util` from more-urgent tasks (line 6), clamped to the
            // physically meaningful range.
            let x = (e.remaining - (f_m - util) * gap).clamp(0.0, e.remaining);
            if gap > 0.0 {
                util += (e.remaining - x) / gap;
            }
            s += x;
        }

        let horizon = earliest_critical.saturating_since(ctx.now).as_micros() as f64;
        let required_speed = if horizon <= 0.0 {
            f_m
        } else {
            (s / horizon).min(f_m)
        };
        DvsAnalysis {
            required_speed: required_speed.max(0.0),
            earliest_critical: Some(earliest_critical),
            must_run_cycles: s,
        }
    }
}

/// One-shot convenience wrapper over [`LookAheadDvs::analyze`] with fresh
/// anchor state — suitable for inspection and tests, but policies should
/// hold a persistent [`LookAheadDvs`] so completed windows keep anchoring
/// the analysis.
#[must_use]
pub fn decide_freq(ctx: &SchedContext<'_>) -> DvsAnalysis {
    LookAheadDvs::new().analyze(ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eua_platform::{Cycles, EnergySetting, TimeDelta};
    use eua_sim::{JobId, JobView, Platform, SchedEvent, Task, TaskId, TaskSet};
    use eua_tuf::Tuf;
    use eua_uam::demand::DemandModel;
    use eua_uam::{Assurance, UamSpec};

    fn ms(v: u64) -> TimeDelta {
        TimeDelta::from_millis(v)
    }

    fn task(p_ms: u64, a: u32, cycles: f64) -> Task {
        Task::new(
            format!("t{p_ms}"),
            Tuf::step(10.0, ms(p_ms)).unwrap(),
            UamSpec::new(a, ms(p_ms)).unwrap(),
            DemandModel::deterministic(cycles).unwrap(),
            Assurance::new(1.0, 0.5).unwrap(),
        )
        .unwrap()
    }

    fn view(id: u64, tid: usize, arrival_us: u64, critical_us: u64, remaining: u64) -> JobView {
        JobView {
            id: JobId(id),
            task: TaskId(tid),
            arrival: SimTime::from_micros(arrival_us),
            critical_time: SimTime::from_micros(critical_us),
            termination: SimTime::from_micros(critical_us),
            remaining: Cycles::new(remaining),
            executed: Cycles::ZERO,
        }
    }

    fn ctx_with<'a>(
        tasks: &'a TaskSet,
        platform: &'a Platform,
        jobs: &'a [JobView],
        now_us: u64,
    ) -> SchedContext<'a> {
        SchedContext {
            now: SimTime::from_micros(now_us),
            event: SchedEvent::Arrival,
            jobs,
            tasks,
            platform,
            running: None,
            energy_used: 0.0,
        }
    }

    #[test]
    fn no_jobs_needs_no_speed() {
        let tasks = TaskSet::new(vec![task(10, 1, 100_000.0)]).unwrap();
        let platform = Platform::powernow(EnergySetting::e1());
        let ctx = ctx_with(&tasks, &platform, &[], 0);
        let a = decide_freq(&ctx);
        assert_eq!(a.required_speed, 0.0);
        assert_eq!(a.earliest_critical, None);
    }

    #[test]
    fn single_task_single_job_requires_its_density() {
        // One job: 100k cycles due in 10 ms, no other reservations beyond
        // its own task ⇒ speed = 100k/10k µs = 10 cycles/µs.
        let tasks = TaskSet::new(vec![task(10, 1, 100_000.0)]).unwrap();
        let platform = Platform::powernow(EnergySetting::e1());
        let jobs = [view(0, 0, 0, 10_000, 100_000)];
        let a = decide_freq(&ctx_with(&tasks, &platform, &jobs, 0));
        assert!(
            (a.required_speed - 10.0).abs() < 1e-9,
            "{}",
            a.required_speed
        );
        assert_eq!(a.earliest_critical, Some(SimTime::from_micros(10_000)));
        assert!((a.must_run_cycles - 100_000.0).abs() < 1e-9);
    }

    #[test]
    fn deferral_pushes_later_work_past_earliest_critical_time() {
        // Urgent job due at 1 ms; lazy job due at 100 ms. The lazy task's
        // work can almost entirely run after 1 ms, so the required speed is
        // dominated by the urgent job.
        let tasks = TaskSet::new(vec![task(1, 1, 50_000.0), task(100, 1, 1_000_000.0)]).unwrap();
        let platform = Platform::powernow(EnergySetting::e1());
        let jobs = [
            view(0, 0, 0, 1_000, 50_000),
            view(1, 1, 0, 100_000, 1_000_000),
        ];
        let a = decide_freq(&ctx_with(&tasks, &platform, &jobs, 0));
        // Urgent: 50k cycles / 1 ms = 50 cycles/µs; the lazy job defers.
        assert!(a.required_speed >= 50.0);
        assert!(
            a.required_speed < 75.0,
            "deferral failed: {}",
            a.required_speed
        );
    }

    #[test]
    fn due_now_demands_fmax() {
        let tasks = TaskSet::new(vec![task(10, 1, 100_000.0)]).unwrap();
        let platform = Platform::powernow(EnergySetting::e1());
        let jobs = [view(0, 0, 0, 5_000, 100_000)];
        let a = decide_freq(&ctx_with(&tasks, &platform, &jobs, 5_000));
        assert_eq!(a.required_speed, 100.0);
        let b = decide_freq(&ctx_with(&tasks, &platform, &jobs, 6_000));
        assert_eq!(b.required_speed, 100.0);
    }

    #[test]
    fn overload_is_clamped_to_fmax() {
        let tasks = TaskSet::new(vec![task(10, 1, 5_000_000.0)]).unwrap();
        let platform = Platform::powernow(EnergySetting::e1());
        let jobs = [view(0, 0, 0, 10_000, 5_000_000)];
        let a = decide_freq(&ctx_with(&tasks, &platform, &jobs, 0));
        assert_eq!(a.required_speed, 100.0);
    }

    #[test]
    fn pending_jobs_beyond_uam_bound_are_capped() {
        // Task with a = 2 but 4 live jobs: only 2 instances of demand count
        // (paper: "we only need to consider at most a_i instances").
        let t = task(10, 2, 100_000.0);
        let alloc = t.allocation().as_f64();
        let tasks = TaskSet::new(vec![t]).unwrap();
        let platform = Platform::powernow(EnergySetting::e1());
        let jobs = [
            view(0, 0, 0, 10_000, 100_000),
            view(1, 0, 0, 10_000, 100_000),
            view(2, 0, 0, 10_000, 100_000),
            view(3, 0, 0, 10_000, 100_000),
        ];
        let a = decide_freq(&ctx_with(&tasks, &platform, &jobs, 0));
        // C_r = remaining(earliest) + (2−1)·c = 100k + alloc.
        let expected = (100_000.0 + alloc) / 10_000.0;
        assert!(
            (a.must_run_cycles - (100_000.0 + alloc)).abs() < 1e-6,
            "s = {}",
            a.must_run_cycles
        );
        assert!((a.required_speed - expected.min(100.0)).abs() < 1e-9);
    }

    #[test]
    fn completed_window_still_anchors_the_horizon() {
        // Task 0's window [0, 10 ms) completed its job; task 1 has a job
        // due at 50 ms. With the anchor, work must be paced against the
        // 10 ms boundary rather than 50 ms — this is the Pillai–Shin
        // behaviour our first (stateless) adaptation missed.
        let tasks = TaskSet::new(vec![task(10, 1, 300_000.0), task(50, 1, 1_000_000.0)]).unwrap();
        let platform = Platform::powernow(EnergySetting::e1());
        let mut dvs = LookAheadDvs::new();
        // First event: both jobs live at t = 0 (anchors learned).
        let jobs0 = [
            view(0, 0, 0, 10_000, 300_000),
            view(1, 1, 0, 50_000, 1_000_000),
        ];
        let _ = dvs.analyze(&ctx_with(&tasks, &platform, &jobs0, 0));
        // Task 0's job completed by t = 3 ms: only task 1 is live, with so
        // much work that not all of it can defer past the 10 ms anchor.
        let jobs1 = [view(1, 1, 0, 50_000, 3_500_000)];
        let a = dvs.analyze(&ctx_with(&tasks, &platform, &jobs1, 3_000));
        assert_eq!(
            a.earliest_critical,
            Some(SimTime::from_micros(10_000)),
            "completed window must keep anchoring D_a_n"
        );
        // x = 3.5M − (100 − 30)·40 000 = 700 000 cycles before 10 ms.
        assert!(
            (a.must_run_cycles - 700_000.0).abs() < 1e-6,
            "{}",
            a.must_run_cycles
        );
        assert_eq!(a.required_speed, 100.0);
        // A fresh (stateless) analysis sees only the 50 ms deadline and
        // under-provisions — the failure mode the anchor state prevents.
        let fresh = decide_freq(&ctx_with(&tasks, &platform, &jobs1, 3_000));
        assert_eq!(fresh.earliest_critical, Some(SimTime::from_micros(50_000)));
        assert!(fresh.required_speed < a.required_speed);
    }

    #[test]
    fn expired_window_releases_its_anchor() {
        let tasks = TaskSet::new(vec![task(10, 1, 300_000.0), task(50, 1, 1_000_000.0)]).unwrap();
        let platform = Platform::powernow(EnergySetting::e1());
        let mut dvs = LookAheadDvs::new();
        let jobs0 = [
            view(0, 0, 0, 10_000, 300_000),
            view(1, 1, 0, 50_000, 1_000_000),
        ];
        let _ = dvs.analyze(&ctx_with(&tasks, &platform, &jobs0, 0));
        // At t = 12 ms the 10 ms window has expired and no new arrival was
        // observed: only task 1's deadline remains.
        let jobs1 = [view(1, 1, 0, 50_000, 500_000)];
        let a = dvs.analyze(&ctx_with(&tasks, &platform, &jobs1, 12_000));
        assert_eq!(a.earliest_critical, Some(SimTime::from_micros(50_000)));
    }

    #[test]
    fn new_arrival_advances_the_window_anchor() {
        let tasks = TaskSet::new(vec![task(10, 1, 300_000.0)]).unwrap();
        let platform = Platform::powernow(EnergySetting::e1());
        let mut dvs = LookAheadDvs::new();
        let jobs0 = [view(0, 0, 0, 10_000, 300_000)];
        let _ = dvs.analyze(&ctx_with(&tasks, &platform, &jobs0, 0));
        // Next window's job arrives at 10 ms.
        let jobs1 = [view(1, 0, 10_000, 20_000, 300_000)];
        let a = dvs.analyze(&ctx_with(&tasks, &platform, &jobs1, 10_000));
        assert_eq!(a.earliest_critical, Some(SimTime::from_micros(20_000)));
        assert!((a.required_speed - 30.0).abs() < 1e-9);
    }

    #[test]
    fn two_tasks_same_critical_time_sum_their_demand() {
        let tasks = TaskSet::new(vec![task(10, 1, 200_000.0), task(10, 1, 300_000.0)]).unwrap();
        let platform = Platform::powernow(EnergySetting::e1());
        let jobs = [
            view(0, 0, 0, 10_000, 200_000),
            view(1, 1, 0, 10_000, 300_000),
        ];
        let a = decide_freq(&ctx_with(&tasks, &platform, &jobs, 0));
        // Both gaps are zero ⇒ x = full remaining for both ⇒ s = 500k over
        // 10 ms ⇒ 50 cycles/µs.
        assert!(
            (a.required_speed - 50.0).abs() < 1e-9,
            "{}",
            a.required_speed
        );
    }

    #[test]
    fn reset_clears_anchors() {
        let tasks = TaskSet::new(vec![task(10, 1, 300_000.0)]).unwrap();
        let platform = Platform::powernow(EnergySetting::e1());
        let mut dvs = LookAheadDvs::new();
        let jobs = [view(0, 0, 0, 10_000, 300_000)];
        let _ = dvs.analyze(&ctx_with(&tasks, &platform, &jobs, 0));
        dvs.reset();
        // After reset, a completed window no longer anchors anything.
        let a = dvs.analyze(&ctx_with(&tasks, &platform, &[], 3_000));
        assert_eq!(a.earliest_critical, None);
    }
}
