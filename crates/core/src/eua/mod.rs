//! The EUA\* scheduling policy (paper Algorithm 1 + Algorithm 2).

pub mod decide_freq;

use eua_platform::{select_freq, Frequency};
use eua_sim::{
    AbortWitness, Decision, DecisionExplanation, DvsExplanation, SchedContext, ScheduleEntry,
    SchedulerPolicy, TaskId, UerEntry,
};

use crate::candidates::{build_schedule_reference, Candidate, InsertionMode, ScheduleBuilder};
use crate::score::ScoreCache;
use decide_freq::LookAheadDvs;

/// Tunable switches of [`Eua`], defaulting to the paper's algorithm.
///
/// The non-default settings exist for the ablation experiments: disabling
/// DVS yields the Fig. 3 normalization baseline ("EUA\* without DVS, which
/// always selects `f_m`"); disabling the UER clamp or abortion isolates
/// those design choices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EuaOptions {
    /// Scale frequency with Algorithm 2 (`true`) or always run at `f_m`.
    pub dvs: bool,
    /// Abort jobs that cannot finish by their termination time at `f_m`
    /// (Algorithm 1 line 10).
    pub abort_infeasible: bool,
    /// Clamp the chosen frequency from below by the task's offline
    /// UER-optimal frequency (Algorithm 2 line 11).
    pub uer_clamp: bool,
    /// Greedy insertion behaviour on an infeasible insertion.
    pub insertion: InsertionMode,
    /// Construct schedules with the naive [`build_schedule_reference`]
    /// oracle instead of the incremental [`ScheduleBuilder`]. Slower and
    /// semantically identical — exists so certificate tests can force both
    /// construction paths through the same audit.
    pub reference_builder: bool,
}

impl Default for EuaOptions {
    fn default() -> Self {
        EuaOptions {
            dvs: true,
            abort_infeasible: true,
            uer_clamp: true,
            insertion: InsertionMode::BreakOnInfeasible,
            reference_builder: false,
        }
    }
}

/// The **EUA\*** policy: energy-efficient utility-accrual scheduling under
/// the unimodal arbitrary arrival model.
///
/// See the crate-level documentation for the algorithm and a full
/// simulation example.
///
/// # Example
///
/// ```
/// use eua_core::Eua;
///
/// let paper = Eua::new();            // the algorithm as published
/// let no_dvs = Eua::without_dvs();   // Fig. 3 normalization baseline
/// assert_ne!(paper.options(), no_dvs.options());
/// ```
#[derive(Debug, Clone)]
pub struct Eua {
    options: EuaOptions,
    name: String,
    /// Per-task UER-optimal frequencies, computed on first use
    /// (`offlineComputing`).
    f_opt: Vec<Frequency>,
    /// The Algorithm 2 window-anchor state.
    dvs: LookAheadDvs,
    /// Incremental schedule constructor; its buffers persist across
    /// scheduling events so the per-event hot path does not reallocate.
    builder: ScheduleBuilder,
    /// Reused candidate scratch ([`Eua::plan`] refills it every event).
    cand_buf: Vec<Candidate>,
    /// Event-to-event execution-time and utility cache; jobs whose TUF
    /// value provably cannot have changed since the last event are
    /// re-scored without re-evaluating the TUF (DESIGN.md §14).
    cache: ScoreCache,
    /// Reused abort scratch; taken (and thus only reallocated on events
    /// that actually abort) when handed to the engine.
    abort_buf: Vec<eua_sim::JobId>,
    /// Schedule storage for [`EuaOptions::reference_builder`] mode.
    reference_schedule: Vec<Candidate>,
    /// Whether the engine asked for per-decision explanations.
    certifying: bool,
    /// The explanation of the most recent decision, while certifying.
    explanation: Option<DecisionExplanation>,
}

impl Eua {
    /// EUA\* exactly as published.
    #[must_use]
    pub fn new() -> Self {
        Eua::with_options(EuaOptions::default())
    }

    /// EUA\* with explicit option switches (for ablations).
    #[must_use]
    pub fn with_options(options: EuaOptions) -> Self {
        let mut name = String::from("eua");
        if !options.dvs {
            name.push_str("-nodvs");
        }
        if !options.abort_infeasible {
            name.push_str("-na");
        }
        if !options.uer_clamp && options.dvs {
            name.push_str("-noclamp");
        }
        if options.insertion == InsertionMode::SkipInfeasible {
            name.push_str("-skip");
        }
        Eua {
            options,
            name,
            f_opt: Vec::new(),
            dvs: LookAheadDvs::new(),
            builder: ScheduleBuilder::new(),
            cand_buf: Vec::new(),
            cache: ScoreCache::default(),
            abort_buf: Vec::new(),
            reference_schedule: Vec::new(),
            certifying: false,
            explanation: None,
        }
    }

    /// The Fig. 3 normalization baseline: EUA\* that always selects `f_m`.
    #[must_use]
    pub fn without_dvs() -> Self {
        Eua::with_options(EuaOptions {
            dvs: false,
            ..EuaOptions::default()
        })
    }

    /// The active option switches.
    #[must_use]
    pub fn options(&self) -> EuaOptions {
        self.options
    }

    fn ensure_offline(&mut self, ctx: &SchedContext<'_>) {
        if self.f_opt.len() == ctx.tasks.len() {
            return;
        }
        // offlineComputing(): the frequency maximizing the task's UER
        // (paper §3.2), given its allocation and TUF.
        self.f_opt = ctx
            .tasks
            .iter()
            .map(|(_, task)| {
                eua_platform::optimal_uer_frequency(
                    ctx.platform.table(),
                    ctx.platform.energy(),
                    task.allocation(),
                    |sojourn| task.tuf().utility(sojourn),
                )
            })
            .collect();
    }

    fn uer_optimal(&self, task: TaskId) -> Frequency {
        self.f_opt[task.index()]
    }

    /// Algorithm 1 lines 3–18 plus the Algorithm 2 analysis: builds the
    /// feasible UER-ordered schedule into [`Eua::planned`]'s buffer and
    /// returns the infeasible jobs to abort plus the DVS analysis (when
    /// enabled). Shared with the energy-budgeted variant.
    ///
    /// The candidate and schedule buffers live on `self` and are reused
    /// across events, so a steady-state `plan` call performs no heap
    /// allocation (aborting events hand their — rare — abort list to the
    /// engine by value).
    // eua-lint: hot
    pub(crate) fn plan(
        &mut self,
        ctx: &SchedContext<'_>,
    ) -> (Vec<eua_sim::JobId>, Option<decide_freq::DvsAnalysis>) {
        self.ensure_offline(ctx);
        let f_m = ctx.platform.f_max();
        let per_cycle_at_fm = ctx.platform.energy().energy_per_cycle(f_m);
        // Run the DVS analysis at every event so its window anchors
        // observe every arrival, even when this decision ends up idling.
        let analysis = self.options.dvs.then(|| self.dvs.analyze(ctx));

        // Lines 9–11: abort infeasible jobs, compute the rest's UER. The
        // execution time and TUF utility come from the event-to-event
        // [`ScoreCache`], which returns bit-identical values to the
        // direct `job_feasible` / `Tuf::utility` computation.
        let mut expl = self.certifying.then(DecisionExplanation::default);
        self.abort_buf.clear();
        self.cand_buf.clear();
        self.cache.begin(f_m);
        for j in ctx.jobs {
            let (exec, utility) = self
                .cache
                .score(ctx.now, j, ctx.tasks.task(j.task).tuf(), f_m);
            let predicted = ctx.now.saturating_add(exec);
            if predicted > j.termination {
                if self.options.abort_infeasible {
                    self.abort_buf.push(j.id);
                    if let Some(expl) = expl.as_mut() {
                        expl.aborts.push(AbortWitness {
                            job: j.id,
                            remaining: j.remaining,
                            termination: j.termination,
                            predicted_finish: predicted,
                        });
                    }
                }
                continue;
            }
            let uer = utility / (per_cycle_at_fm * j.remaining.as_f64());
            if let Some(expl) = expl.as_mut() {
                expl.uer.push(UerEntry { job: j.id, uer });
            }
            self.cand_buf.push(Candidate::from_view(j, uer));
        }
        self.cache.commit();

        // Lines 12–18: greedy UER-ordered construction of a feasible
        // critical-time-ordered schedule.
        if self.options.reference_builder {
            let cands = std::mem::take(&mut self.cand_buf);
            self.reference_schedule =
                build_schedule_reference(ctx.now, cands, f_m, self.options.insertion);
        } else {
            self.builder
                .rebuild(ctx.now, &mut self.cand_buf, f_m, self.options.insertion);
        }

        if let Some(expl) = expl.as_mut() {
            expl.skip_infeasible = self.options.insertion == InsertionMode::SkipInfeasible;
            // The schedule's own feasibility witness: back-to-back finish
            // times at `f_m` starting now.
            let mut t = ctx.now;
            for c in self.planned() {
                t = t.saturating_add(f_m.execution_time(c.remaining));
                expl.schedule.push(ScheduleEntry {
                    job: c.id,
                    predicted_finish: t,
                });
            }
        }
        self.explanation = expl;
        (std::mem::take(&mut self.abort_buf), analysis)
    }

    /// The schedule built by the most recent [`Eua::plan`] call.
    pub(crate) fn planned(&self) -> &[Candidate] {
        if self.options.reference_builder {
            &self.reference_schedule
        } else {
            self.builder.schedule()
        }
    }
}

impl Default for Eua {
    fn default() -> Self {
        Eua::new()
    }
}

impl SchedulerPolicy for Eua {
    fn name(&self) -> &str {
        &self.name
    }

    // eua-lint: hot
    fn decide(&mut self, ctx: &SchedContext<'_>) -> Decision {
        let (aborts, analysis) = self.plan(ctx);
        let f_m = ctx.platform.f_max();

        // Lines 19–21: execute the head at the decideFreq() frequency.
        let Some(head) = self.planned().first().copied() else {
            return Decision::idle(f_m).with_aborts(aborts);
        };
        #[allow(clippy::expect_used)] // `plan` only schedules ids drawn from `ctx.jobs`
        let head_task = ctx.job(head.id).expect("head comes from ctx.jobs").task;
        let frequency = match analysis {
            Some(analysis) => {
                let mut f = select_freq(ctx.platform.table(), analysis.required_speed);
                if self.options.uer_clamp {
                    // "The higher frequency is selected to provide
                    // performance assurances; we may increase it to
                    // maximize energy efficiency" — never decrease below
                    // the assurance demand.
                    f = f.max(self.uer_optimal(head_task));
                }
                f
            }
            None => f_m,
        };
        if self.explanation.is_some() {
            let clamp =
                (self.options.uer_clamp && analysis.is_some()).then(|| self.uer_optimal(head_task));
            if let Some(expl) = self.explanation.as_mut() {
                expl.dvs = analysis.map(|a| DvsExplanation {
                    required_speed: a.required_speed,
                    must_run_cycles: a.must_run_cycles,
                    earliest_critical: a.earliest_critical,
                    clamp,
                });
            }
        }
        Decision::run(head.id, frequency).with_aborts(aborts)
    }

    fn reset(&mut self) {
        self.f_opt.clear();
        self.dvs.reset();
        self.cache.clear();
        self.explanation = None;
    }

    fn certify(&mut self, on: bool) {
        self.certifying = on;
        self.explanation = None;
    }

    fn explain(&self) -> Option<DecisionExplanation> {
        self.explanation.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eua_platform::{EnergySetting, SimTime, TimeDelta};
    use eua_sim::{Engine, JobOutcome, Platform, SimConfig, Task, TaskSet};
    use eua_tuf::Tuf;
    use eua_uam::demand::DemandModel;
    use eua_uam::generator::ArrivalPattern;
    use eua_uam::{ArrivalTrace, Assurance, UamSpec};

    fn ms(v: u64) -> TimeDelta {
        TimeDelta::from_millis(v)
    }

    fn platform() -> Platform {
        Platform::powernow(EnergySetting::e1())
    }

    fn step_task(name: &str, p_ms: u64, cycles: f64, a: u32) -> Task {
        Task::new(
            name,
            Tuf::step(10.0, ms(p_ms)).unwrap(),
            UamSpec::new(a, ms(p_ms)).unwrap(),
            DemandModel::deterministic(cycles).unwrap(),
            Assurance::new(1.0, 0.5).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn underload_completes_everything_with_less_energy_than_fmax() {
        let tasks = TaskSet::new(vec![
            step_task("a", 10, 100_000.0, 1),
            step_task("b", 20, 300_000.0, 1),
        ])
        .unwrap();
        let patterns = vec![
            ArrivalPattern::periodic(ms(10)).unwrap(),
            ArrivalPattern::periodic(ms(20)).unwrap(),
        ];
        let config = SimConfig::new(ms(1_000));
        let eua_out =
            Engine::run(&tasks, &patterns, &platform(), &mut Eua::new(), &config, 3).unwrap();
        let fmax_out = Engine::run(
            &tasks,
            &patterns,
            &platform(),
            &mut Eua::without_dvs(),
            &config,
            3,
        )
        .unwrap();
        // Same (optimal) utility...
        assert_eq!(eua_out.metrics.jobs_completed(), 150);
        assert_eq!(fmax_out.metrics.jobs_completed(), 150);
        assert!((eua_out.metrics.total_utility - fmax_out.metrics.total_utility).abs() < 1e-9);
        // ...at strictly less energy (load ≈ 0.25 ⇒ plenty of slack).
        assert!(
            eua_out.metrics.energy < 0.6 * fmax_out.metrics.energy,
            "eua {} vs fmax {}",
            eua_out.metrics.energy,
            fmax_out.metrics.energy
        );
    }

    #[test]
    fn infeasible_jobs_are_aborted_immediately() {
        // A job that needs 2 P of work at f_m can never finish: EUA aborts
        // it at release rather than burning energy.
        let tasks = TaskSet::new(vec![step_task("hopeless", 10, 2_000_000.0, 1)]).unwrap();
        let traces = vec![ArrivalTrace::from_times([SimTime::ZERO])];
        let config = SimConfig::new(ms(30)).with_job_records();
        let out =
            Engine::run_with_traces(&tasks, &traces, &platform(), &mut Eua::new(), &config, 1)
                .unwrap();
        let records = out.jobs.unwrap();
        assert_eq!(records.len(), 1);
        match records[0].outcome {
            JobOutcome::Aborted { at, by_policy } => {
                assert!(by_policy, "EUA should abort, not the termination exception");
                assert_eq!(at, SimTime::ZERO);
            }
            ref other => panic!("expected an abort, got {other:?}"),
        }
        assert_eq!(
            out.metrics.energy, 0.0,
            "no cycles wasted on a hopeless job"
        );
    }

    #[test]
    fn overload_prefers_higher_uer_jobs() {
        // Two tasks, each 1.5 P of work at f_m (individually feasible,
        // jointly not): the one with 10× utility should win.
        let p = ms(10);
        let mk = |name: &str, umax: f64| {
            Task::new(
                name,
                Tuf::step(umax, p).unwrap(),
                UamSpec::periodic(p).unwrap(),
                DemandModel::deterministic(600_000.0).unwrap(),
                Assurance::new(1.0, 0.5).unwrap(),
            )
            .unwrap()
        };
        let tasks = TaskSet::new(vec![mk("cheap", 1.0), mk("precious", 10.0)]).unwrap();
        let patterns = vec![
            ArrivalPattern::periodic(p).unwrap(),
            ArrivalPattern::periodic(p).unwrap(),
        ];
        let config = SimConfig::new(ms(500));
        let out = Engine::run(&tasks, &patterns, &platform(), &mut Eua::new(), &config, 1).unwrap();
        let cheap = &out.metrics.per_task[0];
        let precious = &out.metrics.per_task[1];
        assert_eq!(precious.completed, 50, "every precious job completes");
        assert_eq!(
            cheap.completed, 0,
            "cheap jobs are sacrificed during overload"
        );
    }

    #[test]
    fn names_reflect_options() {
        assert_eq!(Eua::new().name(), "eua");
        assert_eq!(Eua::without_dvs().name(), "eua-nodvs");
        let na = Eua::with_options(EuaOptions {
            abort_infeasible: false,
            ..EuaOptions::default()
        });
        assert_eq!(na.name(), "eua-na");
        let noclamp = Eua::with_options(EuaOptions {
            uer_clamp: false,
            ..EuaOptions::default()
        });
        assert_eq!(noclamp.name(), "eua-noclamp");
    }

    #[test]
    fn reset_recomputes_offline_state() {
        let tasks = TaskSet::new(vec![step_task("a", 10, 100_000.0, 1)]).unwrap();
        let patterns = vec![ArrivalPattern::periodic(ms(10)).unwrap()];
        let config = SimConfig::new(ms(100));
        let mut eua = Eua::new();
        let a = Engine::run(&tasks, &patterns, &platform(), &mut eua, &config, 1).unwrap();
        // Re-running the same policy value must give identical results.
        let b = Engine::run(&tasks, &patterns, &platform(), &mut eua, &config, 1).unwrap();
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn uer_clamp_keeps_frequency_at_or_above_e3_knee() {
        // Under E3 the energy-per-cycle optimum is ≈ 63 MHz. A nearly idle
        // workload would tempt pure look-ahead DVS down to 36 MHz; the UER
        // clamp must keep EUA* at ≥ 64 MHz, which shows up as lower energy.
        let platform = Platform::powernow(EnergySetting::e3());
        let tasks = TaskSet::new(vec![step_task("light", 100, 100_000.0, 1)]).unwrap();
        let patterns = vec![ArrivalPattern::periodic(ms(100)).unwrap()];
        let config = SimConfig::new(ms(2_000));
        let clamped =
            Engine::run(&tasks, &patterns, &platform, &mut Eua::new(), &config, 1).unwrap();
        let unclamped = Engine::run(
            &tasks,
            &patterns,
            &platform,
            &mut Eua::with_options(EuaOptions {
                uer_clamp: false,
                ..EuaOptions::default()
            }),
            &config,
            1,
        )
        .unwrap();
        assert!(
            clamped.metrics.energy < unclamped.metrics.energy,
            "clamped {} vs unclamped {}",
            clamped.metrics.energy,
            unclamped.metrics.energy
        );
        assert_eq!(
            clamped.metrics.jobs_completed(),
            unclamped.metrics.jobs_completed()
        );
    }
}
