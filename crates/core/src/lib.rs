//! **EUA\*** — the energy-efficient, utility-accrual real-time scheduler of
//! Wu, Ravindran & Jensen (DATE 2005) — together with the deadline-based
//! baselines it is evaluated against.
//!
//! # The algorithm
//!
//! At every scheduling event (job release, completion, or termination-time
//! expiry) EUA\* ([`Eua`]):
//!
//! 1. **aborts infeasible jobs** — any job that cannot finish by its
//!    termination time even at the maximum frequency `f_m`;
//! 2. computes each remaining job's **utility and energy ratio**
//!    `UER = U(t + c/f_m) / (c · E(f_m))` — utility earned per unit energy;
//! 3. greedily builds a **critical-time-ordered schedule**: jobs are
//!    considered in non-increasing UER order and inserted at their
//!    critical-time position while the schedule stays feasible at `f_m`
//!    (Algorithm 1);
//! 4. executes the head of the schedule at the frequency chosen by the
//!    **stochastic UAM-aware DVS step** [`decide_freq`] (Algorithm 2),
//!    which defers as much work as possible past the earliest critical
//!    time and scales the current task, clamped from below by the task's
//!    offline UER-optimal frequency.
//!
//! # Baselines
//!
//! * [`EdfPolicy`] — deadline (critical-time) ordered scheduling with three
//!   DVS modes: none (always `f_m`, the paper's normalization baseline),
//!   cycle-conserving and look-ahead (Pillai & Shin), each with or without
//!   feasibility aborts (the paper's `-NA` variants);
//! * [`Dasa`] — a DASA-style pure utility-accrual baseline (utility
//!   density ordering, no DVS), included for reference.
//!
//! # Example
//!
//! ```
//! use eua_core::Eua;
//! use eua_platform::{EnergySetting, TimeDelta};
//! use eua_sim::{Engine, Platform, SimConfig, Task, TaskSet};
//! use eua_tuf::Tuf;
//! use eua_uam::demand::DemandModel;
//! use eua_uam::generator::ArrivalPattern;
//! use eua_uam::{Assurance, UamSpec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let platform = Platform::powernow(EnergySetting::e1());
//! let p = TimeDelta::from_millis(10);
//! let task = Task::new(
//!     "control",
//!     Tuf::step(10.0, p)?,
//!     UamSpec::periodic(p)?,
//!     DemandModel::normal(100_000.0, 100_000.0)?,
//!     Assurance::new(1.0, 0.96)?,
//! )?;
//! let tasks = TaskSet::new(vec![task])?;
//! let patterns = vec![ArrivalPattern::periodic(p)?];
//!
//! let mut eua = Eua::new();
//! let config = SimConfig::new(TimeDelta::from_secs(1));
//! let out = Engine::run(&tasks, &patterns, &platform, &mut eua, &config, 7)?;
//! // Under-load: every job completes, at far less energy than f_m would use.
//! assert_eq!(out.metrics.jobs_completed(), 100);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod budget;
mod candidates;
mod dasa;
mod edf;
mod eua;
mod llf;
mod registry;
mod score;

pub use analysis::{brh_schedulable, demand_bound, sufficient_speed, theorem1_speed};
pub use budget::BudgetedEua;
pub use candidates::{
    build_schedule, build_schedule_reference, job_feasible, schedule_feasible, Candidate,
    InsertionMode, ScheduleBuilder,
};
pub use dasa::Dasa;
pub use edf::{DvsMode, EdfPolicy};
pub use eua::decide_freq::{decide_freq, DvsAnalysis, LookAheadDvs};
pub use eua::{Eua, EuaOptions};
pub use llf::Llf;
pub use registry::{available_policies, make_policy};
