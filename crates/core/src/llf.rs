//! Least-laxity-first — an additional dynamic-priority baseline.
//!
//! Laxity is the slack before a job *must* run continuously at `f_m` to
//! meet its critical time: `laxity = (D − now) − c/f_m`. LLF is optimal
//! on a uniprocessor like EDF, but reshuffles priorities as laxities decay,
//! so it exhibits many more preemptions — a useful stress test for the
//! simulator's context-switch accounting and an instructive contrast in
//! the ablation experiments.

use eua_sim::{Decision, SchedContext, SchedulerPolicy};

use crate::candidates::job_feasible;

/// Least-laxity-first at the maximum frequency, with feasibility aborts.
///
/// # Example
///
/// ```
/// use eua_core::Llf;
/// use eua_sim::SchedulerPolicy;
///
/// assert_eq!(Llf::new().name(), "llf");
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Llf {
    _private: (),
}

impl Llf {
    /// Creates the policy.
    #[must_use]
    pub fn new() -> Self {
        Llf::default()
    }
}

impl SchedulerPolicy for Llf {
    fn name(&self) -> &str {
        "llf"
    }

    // eua-lint: hot
    fn decide(&mut self, ctx: &SchedContext<'_>) -> Decision {
        let f_m = ctx.platform.f_max();
        let mut aborts = Vec::new();
        let mut best: Option<(i64, eua_sim::JobId)> = None;
        for j in ctx.jobs {
            if !job_feasible(ctx.now, j, f_m) {
                aborts.push(j.id);
                continue;
            }
            let exec = f_m.execution_time(j.remaining);
            let laxity = j.critical_time.as_micros() as i64
                - ctx.now.as_micros() as i64
                - exec.as_micros() as i64;
            if best.is_none_or(|b| (laxity, j.id) < b) {
                best = Some((laxity, j.id));
            }
        }
        match best {
            Some((_, id)) => Decision::run(id, f_m).with_aborts(aborts),
            None => Decision::idle(f_m).with_aborts(aborts),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eua_platform::{EnergySetting, TimeDelta};
    use eua_sim::{Engine, Platform, SimConfig, Task, TaskSet};
    use eua_tuf::Tuf;
    use eua_uam::demand::DemandModel;
    use eua_uam::generator::ArrivalPattern;
    use eua_uam::{Assurance, UamSpec};

    fn ms(v: u64) -> TimeDelta {
        TimeDelta::from_millis(v)
    }

    fn task(name: &str, p_ms: u64, cycles: f64) -> Task {
        Task::new(
            name,
            Tuf::step(1.0, ms(p_ms)).unwrap(),
            UamSpec::periodic(ms(p_ms)).unwrap(),
            DemandModel::deterministic(cycles).unwrap(),
            Assurance::new(1.0, 0.5).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn llf_meets_deadlines_underload() {
        let tasks = TaskSet::new(vec![task("a", 10, 300_000.0), task("b", 25, 700_000.0)]).unwrap();
        let patterns = vec![
            ArrivalPattern::periodic(ms(10)).unwrap(),
            ArrivalPattern::periodic(ms(25)).unwrap(),
        ];
        let platform = Platform::powernow(EnergySetting::e1());
        let config = SimConfig::new(ms(1_000));
        let out = Engine::run(&tasks, &patterns, &platform, &mut Llf::new(), &config, 1).unwrap();
        assert_eq!(out.metrics.jobs_aborted(), 0);
        for tm in &out.metrics.per_task {
            assert_eq!(tm.completed, tm.critical_met);
        }
    }

    #[test]
    fn llf_preempts_more_than_edf() {
        let tasks = TaskSet::new(vec![task("a", 10, 400_000.0), task("b", 11, 400_000.0)]).unwrap();
        let patterns = vec![
            ArrivalPattern::periodic(ms(10)).unwrap(),
            ArrivalPattern::periodic(ms(11)).unwrap(),
        ];
        let platform = Platform::powernow(EnergySetting::e1());
        let config = SimConfig::new(ms(2_000));
        let llf = Engine::run(&tasks, &patterns, &platform, &mut Llf::new(), &config, 1)
            .unwrap()
            .metrics;
        let edf = Engine::run(
            &tasks,
            &patterns,
            &platform,
            &mut crate::edf::EdfPolicy::max_speed(),
            &config,
            1,
        )
        .unwrap()
        .metrics;
        assert!(
            llf.context_switches >= edf.context_switches,
            "llf {} vs edf {}",
            llf.context_switches,
            edf.context_switches
        );
        assert_eq!(llf.jobs_completed(), edf.jobs_completed());
    }
}
