//! Name-based policy construction for the experiment harness.

use eua_sim::SchedulerPolicy;

use crate::dasa::Dasa;
use crate::edf::{DvsMode, EdfPolicy};
use crate::eua::{Eua, EuaOptions};
use crate::llf::Llf;

/// The names accepted by [`make_policy`], in presentation order.
#[must_use]
pub fn available_policies() -> &'static [&'static str] {
    &[
        "eua",
        "eua-nodvs",
        "eua-na",
        "eua-noclamp",
        "eua-skip",
        "edf",
        "edf-na",
        "edf-static",
        "ccedf",
        "ccedf-na",
        "laedf",
        "laedf-na",
        "dasa",
        "llf",
    ]
}

/// Builds a policy by name; `None` for an unknown name.
///
/// # Example
///
/// ```
/// use eua_core::{available_policies, make_policy};
///
/// for name in available_policies() {
///     let policy = make_policy(name).expect("every listed name constructs");
///     assert_eq!(policy.name(), *name);
/// }
/// assert!(make_policy("fifo").is_none());
/// ```
#[must_use]
pub fn make_policy(name: &str) -> Option<Box<dyn SchedulerPolicy>> {
    let policy: Box<dyn SchedulerPolicy> = match name {
        "eua" => Box::new(Eua::new()),
        "eua-nodvs" => Box::new(Eua::without_dvs()),
        "eua-na" => Box::new(Eua::with_options(EuaOptions {
            abort_infeasible: false,
            ..EuaOptions::default()
        })),
        "eua-noclamp" => Box::new(Eua::with_options(EuaOptions {
            uer_clamp: false,
            ..EuaOptions::default()
        })),
        "eua-skip" => Box::new(Eua::with_options(EuaOptions {
            insertion: crate::candidates::InsertionMode::SkipInfeasible,
            ..EuaOptions::default()
        })),
        "edf" => Box::new(EdfPolicy::max_speed()),
        "edf-na" => Box::new(EdfPolicy::new(DvsMode::None, false)),
        "edf-static" => Box::new(EdfPolicy::new(DvsMode::Static, true)),
        "ccedf" => Box::new(EdfPolicy::cycle_conserving()),
        "ccedf-na" => Box::new(EdfPolicy::new(DvsMode::CycleConserving, false)),
        "laedf" => Box::new(EdfPolicy::look_ahead()),
        "laedf-na" => Box::new(EdfPolicy::new(DvsMode::LookAhead, false)),
        "dasa" => Box::new(Dasa::new()),
        "llf" => Box::new(Llf::new()),
        _ => return None,
    };
    Some(policy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_total_over_listed_names() {
        for name in available_policies() {
            let p = make_policy(name).unwrap();
            assert_eq!(p.name(), *name);
        }
    }

    #[test]
    fn unknown_names_rejected() {
        assert!(make_policy("").is_none());
        assert!(make_policy("EUA").is_none(), "names are case-sensitive");
    }
}
