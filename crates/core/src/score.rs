//! Incremental per-job score maintenance for the utility-accrual
//! policies.
//!
//! [`Eua`](crate::Eua) and [`Dasa`](crate::Dasa) re-derive, at every
//! scheduling event, each pending job's predicted execution time at `f_m`
//! and the TUF utility of its predicted completion. Both values are pure
//! functions of slowly-changing inputs: the execution time depends only
//! on `(remaining, f_m)`, and between two events the utility of a
//! non-executing job can change **only** if the advancing clock pushes
//! its predicted sojourn off a plateau of its TUF. [`ScoreCache`]
//! exploits that: it keeps the previous event's scores keyed by job id
//! and, per job, a *staleness bound* obtained from
//! [`Tuf::utility_plateau`] — the sojourn range over which the cached
//! utility is bit-identical to a fresh evaluation. Jobs whose sojourn is
//! still inside the range (the common case: every pending job except the
//! one that just executed) are re-admitted without touching the TUF.
//!
//! The cache is a merge walk, not a map: scheduling contexts present
//! jobs in ascending id order, so one cursor over last event's entries
//! finds each job's prior score in O(1). A miss (new job, changed
//! remaining, expired plateau, unsorted input) falls back to the direct
//! computation, so reuse is strictly an optimization — every value the
//! cache returns is bit-identical to what the uncached code computed.
//! See DESIGN.md §14 for the staleness invariants.

use eua_platform::{Cycles, Frequency, SimTime, TimeDelta};
use eua_sim::{JobId, JobView, TaskId};
use eua_tuf::Tuf;

/// One job's scores from the previous scheduling event, with the
/// validity conditions under which they may be reused.
#[derive(Debug, Clone, Copy)]
struct ScoreEntry {
    id: JobId,
    task: TaskId,
    /// Remaining cycles when scored; `exec` is stale if this changed.
    remaining: Cycles,
    /// `f_m.execution_time(remaining)` — valid while `remaining` and the
    /// cache-wide frequency both hold.
    exec: TimeDelta,
    /// `tuf.utility(sojourn_from)`.
    utility: f64,
    /// The sojourn this utility was computed at.
    sojourn_from: TimeDelta,
    /// End of the TUF plateau containing `sojourn_from`: the utility is
    /// bit-identical over `[sojourn_from, sojourn_until]`. `None` means
    /// the value holds forever (the TUF has gone flat).
    sojourn_until: Option<TimeDelta>,
}

/// Event-to-event score cache shared by the UER / utility-density hot
/// loops. Usage per event: [`ScoreCache::begin`], then one
/// [`ScoreCache::score`] per pending job in ascending id order, then
/// [`ScoreCache::commit`].
#[derive(Debug, Clone, Default)]
pub(crate) struct ScoreCache {
    /// Last committed event's entries, ascending by id.
    entries: Vec<ScoreEntry>,
    /// This event's entries, built by [`ScoreCache::score`].
    scratch: Vec<ScoreEntry>,
    /// Merge cursor into `entries`.
    cursor: usize,
    /// The frequency all cached `exec` values were computed at.
    f_m: Option<Frequency>,
}

impl ScoreCache {
    /// Starts a new event. A changed `f_m` invalidates every cached
    /// execution time, so the whole cache is dropped.
    // eua-lint: hot
    pub(crate) fn begin(&mut self, f_m: Frequency) {
        self.scratch.clear();
        self.cursor = 0;
        if self.f_m != Some(f_m) {
            self.entries.clear();
            self.f_m = Some(f_m);
        }
    }

    /// The job's predicted execution time at `f_m` and the utility of
    /// its predicted completion — from the cache when provably
    /// unchanged, recomputed otherwise. Bit-identical to
    /// `f_m.execution_time(j.remaining)` and `tuf.utility(sojourn)`
    /// either way.
    // eua-lint: hot
    pub(crate) fn score(
        &mut self,
        now: SimTime,
        j: &JobView,
        tuf: &Tuf,
        f_m: Frequency,
    ) -> (TimeDelta, f64) {
        while self.cursor < self.entries.len() && self.entries[self.cursor].id < j.id {
            self.cursor += 1;
        }
        let prior = self
            .entries
            .get(self.cursor)
            .filter(|e| e.id == j.id && e.task == j.task && e.remaining == j.remaining)
            .copied();
        // Same remaining + same frequency ⇒ the division result is the
        // same; reuse skips the 128-bit div-ceil, not just the lookup.
        let exec = prior.map_or_else(|| f_m.execution_time(j.remaining), |e| e.exec);
        let sojourn = now.saturating_add(exec).saturating_since(j.arrival);
        let (utility, sojourn_until) = match prior {
            Some(e)
                if sojourn >= e.sojourn_from
                    && e.sojourn_until.is_none_or(|until| sojourn <= until) =>
            {
                (e.utility, e.sojourn_until)
            }
            _ => tuf.utility_plateau(sojourn),
        };
        self.scratch.push(ScoreEntry {
            id: j.id,
            task: j.task,
            remaining: j.remaining,
            exec,
            utility,
            sojourn_from: sojourn,
            sojourn_until,
        });
        (exec, utility)
    }

    /// Publishes this event's entries as the next event's cache.
    // eua-lint: hot
    pub(crate) fn commit(&mut self) {
        std::mem::swap(&mut self.entries, &mut self.scratch);
    }

    /// Drops all cached state. Must be called from the policy's
    /// `reset()`: job ids and task ids restart between runs, so entries
    /// from a previous run could otherwise alias unrelated jobs.
    pub(crate) fn clear(&mut self) {
        self.entries.clear();
        self.scratch.clear();
        self.cursor = 0;
        self.f_m = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eua_sim::{JobId, TaskId};

    fn view(id: u64, arrival_us: u64, remaining: u64) -> JobView {
        JobView {
            id: JobId(id),
            task: TaskId(0),
            arrival: SimTime::from_micros(arrival_us),
            critical_time: SimTime::from_micros(arrival_us + 10_000),
            termination: SimTime::from_micros(arrival_us + 10_000),
            remaining: Cycles::new(remaining),
            executed: Cycles::ZERO,
        }
    }

    fn fresh(now: SimTime, j: &JobView, tuf: &Tuf, f_m: Frequency) -> (TimeDelta, f64) {
        let exec = f_m.execution_time(j.remaining);
        let sojourn = now.saturating_add(exec).saturating_since(j.arrival);
        (exec, tuf.utility(sojourn))
    }

    #[test]
    fn cached_scores_match_direct_computation_over_a_run() {
        let f_m = Frequency::from_mhz(100);
        let shapes = [
            Tuf::step(7.0, TimeDelta::from_millis(10)).unwrap(),
            Tuf::linear(5.0, TimeDelta::from_millis(10)).unwrap(),
            Tuf::exponential(4.0, TimeDelta::from_millis(3), TimeDelta::from_millis(10)).unwrap(),
        ];
        for tuf in &shapes {
            let mut cache = ScoreCache::default();
            let mut jobs = vec![
                view(0, 0, 300_000),
                view(1, 500, 200_000),
                view(2, 900, 50_000),
            ];
            // March time forward; job 1 "executes" (remaining shrinks),
            // the others idle so their cached scores must stay live.
            for (step, now_us) in [0u64, 400, 1_000, 2_500, 9_000, 12_000].iter().enumerate() {
                let now = SimTime::from_micros(*now_us);
                if step == 2 {
                    jobs[1].remaining = Cycles::new(120_000);
                }
                cache.begin(f_m);
                for j in &jobs {
                    let got = cache.score(now, j, tuf, f_m);
                    let want = fresh(now, j, tuf, f_m);
                    assert_eq!(got.0, want.0, "exec at t={now_us} for {:?}", j.id);
                    assert!(
                        got.1 == want.1,
                        "utility at t={now_us} for {:?}: cached {} fresh {}",
                        j.id,
                        got.1,
                        want.1
                    );
                }
                cache.commit();
            }
        }
    }

    #[test]
    fn frequency_change_invalidates_execution_times() {
        let tuf = Tuf::step(1.0, TimeDelta::from_millis(10)).unwrap();
        let mut cache = ScoreCache::default();
        let j = view(0, 0, 100_000);
        let now = SimTime::ZERO;
        let slow = Frequency::from_mhz(50);
        let fast = Frequency::from_mhz(100);
        cache.begin(slow);
        assert_eq!(
            cache.score(now, &j, &tuf, slow).0,
            TimeDelta::from_micros(2000)
        );
        cache.commit();
        cache.begin(fast);
        assert_eq!(
            cache.score(now, &j, &tuf, fast).0,
            TimeDelta::from_micros(1000)
        );
    }

    #[test]
    fn clear_forgets_previous_run_entries() {
        let tuf = Tuf::step(3.0, TimeDelta::from_millis(10)).unwrap();
        let f_m = Frequency::from_mhz(100);
        let mut cache = ScoreCache::default();
        let j = view(0, 0, 100_000);
        cache.begin(f_m);
        cache.score(SimTime::ZERO, &j, &tuf, f_m);
        cache.commit();
        cache.clear();
        assert!(cache.entries.is_empty());
        assert_eq!(cache.f_m, None);
    }

    #[test]
    fn departed_jobs_drop_out_of_the_walk() {
        let tuf = Tuf::step(2.0, TimeDelta::from_millis(10)).unwrap();
        let f_m = Frequency::from_mhz(100);
        let mut cache = ScoreCache::default();
        let jobs = [view(0, 0, 10_000), view(1, 0, 20_000), view(2, 0, 30_000)];
        cache.begin(f_m);
        for j in &jobs {
            cache.score(SimTime::ZERO, j, &tuf, f_m);
        }
        cache.commit();
        // Job 1 completed; the cursor must still line up entries for 0
        // and 2 and produce exact values.
        let now = SimTime::from_micros(300);
        cache.begin(f_m);
        for j in [&jobs[0], &jobs[2]] {
            let got = cache.score(now, j, &tuf, f_m);
            assert_eq!(got, fresh(now, j, &tuf, f_m));
        }
        cache.commit();
        assert_eq!(cache.entries.len(), 2);
    }
}
