#![allow(clippy::expect_used)] // test code: panicking on bad setup is the point

//! Edge cases of the offline schedulability analysis
//! (`crates/core/src/analysis.rs`): intervals shorter than any critical
//! offset, the demand-ratio maximum at `L = D`, and the non-empty
//! task-set precondition the analysis relies on.

use eua_core::{brh_schedulable, demand_bound, sufficient_speed, theorem1_speed};
use eua_platform::{Frequency, TimeDelta};
use eua_sim::{Task, TaskSet};
use eua_tuf::Tuf;
use eua_uam::demand::DemandModel;
use eua_uam::{Assurance, UamSpec};

fn ms(v: u64) -> TimeDelta {
    TimeDelta::from_millis(v)
}

/// A linear-TUF task with termination `p_ms` and assurance `nu`, so its
/// critical offset is `D = (1 − ν)·P` — strictly inside the window.
fn linear_task(name: &str, p_ms: u64, a: u32, cycles: f64, nu: f64) -> Task {
    Task::new(
        name,
        Tuf::linear(10.0, ms(p_ms)).expect("valid tuf"),
        UamSpec::new(a, ms(p_ms)).expect("valid uam"),
        DemandModel::deterministic(cycles).expect("valid demand"),
        Assurance::new(nu, 0.5).expect("valid assurance"),
    )
    .expect("valid task")
}

fn step_task(name: &str, p_ms: u64, a: u32, cycles: f64) -> Task {
    Task::new(
        name,
        Tuf::step(10.0, ms(p_ms)).expect("valid tuf"),
        UamSpec::new(a, ms(p_ms)).expect("valid uam"),
        DemandModel::deterministic(cycles).expect("valid demand"),
        Assurance::new(1.0, 0.5).expect("valid assurance"),
    )
    .expect("valid task")
}

#[test]
fn demand_bound_is_zero_before_any_critical_offset() {
    // D = 0.5 · 10 ms = 5 ms for ν = 0.5; no demand is *due* in any
    // interval shorter than the earliest critical offset.
    let tasks = TaskSet::new(vec![
        linear_task("half", 10, 2, 100_000.0, 0.5),
        step_task("late", 20, 1, 400_000.0),
    ])
    .expect("non-empty");
    assert_eq!(demand_bound(&tasks, 0), 0.0);
    assert_eq!(demand_bound(&tasks, 4_999), 0.0);
    // At exactly L = 5 000 µs only the ν = 0.5 task has matured.
    assert_eq!(demand_bound(&tasks, 5_000), 200_000.0);
    // The step task joins at its own D = P = 20 ms.
    assert_eq!(demand_bound(&tasks, 19_999), 200_000.0 * 2.0);
    assert_eq!(demand_bound(&tasks, 20_000), 200_000.0 * 2.0 + 400_000.0);
}

#[test]
fn demand_bound_handles_mixed_maturity_within_one_set() {
    // A task whose D exceeds another task's whole window: intervals in
    // between must count only the matured task's windows.
    let tasks = TaskSet::new(vec![
        step_task("fast", 5, 1, 50_000.0),
        step_task("slow", 40, 2, 800_000.0),
    ])
    .expect("non-empty");
    // Critical instants at D + k·P = 5, 10, …: seven have matured by
    // L = 35 ms; slow (D = 40 ms) is not yet due.
    assert_eq!(demand_bound(&tasks, 35_000), 7.0 * 50_000.0);
    assert_eq!(
        demand_bound(&tasks, 40_000),
        8.0 * 50_000.0 + 2.0 * 800_000.0
    );
}

#[test]
fn single_task_demand_ratio_peaks_at_l_equals_d() {
    // Theorem 1's core claim: h(L)/L is maximized at L = D, so the
    // per-task sufficient speed equals the demand ratio there.
    let tasks = TaskSet::new(vec![step_task("solo", 10, 2, 100_000.0)]).expect("non-empty");
    let (_, t) = tasks.iter().next().expect("one task");
    let d = t.critical_offset().as_micros();
    let peak = demand_bound(&tasks, d) / d as f64;
    assert!((peak - theorem1_speed(t)).abs() < 1e-9);
    assert!((peak - sufficient_speed(&tasks)).abs() < 1e-9);
    // Any later critical instant has a strictly lower ratio.
    for k in 1..=4u64 {
        let l = d + k * t.uam().window().as_micros();
        assert!(demand_bound(&tasks, l) / l as f64 <= peak + 1e-12);
    }
}

#[test]
fn single_task_is_brh_schedulable_exactly_at_its_demand_ratio() {
    // D = P here, so the BRH boundary coincides with Theorem 1's speed:
    // 200k cycles / 10 ms = 20 cycles/µs = 20 MHz.
    let tasks = TaskSet::new(vec![step_task("solo", 10, 2, 100_000.0)]).expect("non-empty");
    assert!(brh_schedulable(&tasks, Frequency::from_mhz(20)));
    assert!(!brh_schedulable(&tasks, Frequency::from_mhz(19)));
}

#[test]
fn constrained_single_task_boundary_sits_at_c_over_d() {
    // With ν = 0.75 the critical offset is D = 2.5 ms while the window
    // stays 10 ms: BRH must demand C/D (80 cycles/µs), four times the
    // utilization bound.
    let tasks =
        TaskSet::new(vec![linear_task("tight", 10, 1, 200_000.0, 0.75)]).expect("non-empty");
    let (_, t) = tasks.iter().next().expect("one task");
    assert_eq!(t.critical_offset().as_micros(), 2_500);
    assert!(brh_schedulable(&tasks, Frequency::from_mhz(80)));
    assert!(!brh_schedulable(&tasks, Frequency::from_mhz(79)));
}

#[test]
fn empty_task_sets_are_unrepresentable() {
    // The analysis functions take `&TaskSet`, and `TaskSet::new` rejects
    // an empty vector — so `sufficient_speed`/`demand_bound` never see
    // the degenerate sum-over-nothing case.
    assert!(TaskSet::new(vec![]).is_err());
}
