#![allow(clippy::expect_used, clippy::unwrap_used)] // test code: panicking on bad setup is the point

//! Differential suite for the engine-throughput overhaul: the production
//! event loop (calendar event queue, arena job state, incremental policy
//! views — DESIGN.md §14) must be **byte-identical** to the preserved
//! pre-overhaul loop (`Engine::run_*_reference`) on arbitrary workloads,
//! across every policy family, with and without fault injection.
//!
//! "Byte-identical" is checked at full strength: the two outcomes must
//! compare equal (metrics, per-job records, traces, fault stats) and the
//! rendered `eua-certificate/1` documents must be equal as strings.
//!
//! The proptest case count defaults to 24 and can be overridden through
//! the `EUA_ENGINE_DIFF_CASES` environment variable (ci.sh runs this
//! suite in both invariant-check feature states on a reduced budget).

use eua_core::make_policy;
use eua_platform::{EnergySetting, TimeDelta};
use eua_sim::{Engine, FaultPlan, Platform, SimConfig, Task, TaskSet};
use eua_tuf::Tuf;
use eua_uam::demand::DemandModel;
use eua_uam::generator::ArrivalPattern;
use eua_uam::{Assurance, UamSpec};
use proptest::prelude::*;

fn diff_cases() -> u32 {
    std::env::var("EUA_ENGINE_DIFF_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(24)
}

fn ms(v: u64) -> TimeDelta {
    TimeDelta::from_millis(v)
}

/// The policy families under differential test: the UER scheduler with
/// its incremental score cache, the density baseline sharing that cache,
/// and the two deadline/laxity baselines with per-event state of their
/// own.
const POLICIES: [&str; 4] = ["eua", "dasa", "edf", "llf"];

/// One task with a proptest-chosen TUF shape, window and demand model.
fn build_task(name: &str, shape: u8, p_ms: u64, a: u32, kilocycles: u64) -> Task {
    let p = ms(p_ms);
    let cycles = kilocycles as f64 * 1_000.0;
    let tuf = match shape % 3 {
        0 => Tuf::step(10.0, p).unwrap(),
        1 => Tuf::linear(8.0, p).unwrap(),
        _ => Tuf::exponential(6.0, ms(p_ms / 2 + 1), p).unwrap(),
    };
    let demand = if shape.is_multiple_of(2) {
        DemandModel::deterministic(cycles).unwrap()
    } else {
        DemandModel::normal(cycles, cycles / 2.0).unwrap()
    };
    // ν = 1 is only meaningful for the step shape (the paper restricts
    // it so); decaying shapes get a mid-curve critical time.
    let nu = if shape.is_multiple_of(3) { 1.0 } else { 0.5 };
    Task::new(
        name,
        tuf,
        UamSpec::new(a, p).unwrap(),
        demand,
        Assurance::new(nu, 0.5).unwrap(),
    )
    .unwrap()
}

#[derive(Debug, Clone)]
struct WorkloadParams {
    tasks: Vec<(u8, u64, u32, u64)>,
}

/// 1–4 tasks spanning underload through heavy overload, window bursts
/// included (the interesting regimes for abort waves and calendar
/// churn).
fn arb_workload() -> impl Strategy<Value = WorkloadParams> {
    proptest::collection::vec(
        (
            0u8..6,       // shape / demand-model selector
            4u64..40,     // window, ms
            1u32..4,      // UAM arrivals per window
            20u64..3_000, // kilocycles per job (up to ~3 windows of work)
        ),
        1..4,
    )
    .prop_map(|tasks| WorkloadParams { tasks })
}

fn raise(params: &WorkloadParams) -> (TaskSet, Vec<ArrivalPattern>) {
    let tasks: Vec<Task> = params
        .tasks
        .iter()
        .enumerate()
        .map(|(i, &(shape, p_ms, a, kc))| build_task(&format!("t{i}"), shape, p_ms, a, kc))
        .collect();
    let patterns = tasks
        .iter()
        .map(|t| {
            if t.uam().max_arrivals() > 1 {
                ArrivalPattern::window_burst(*t.uam()).unwrap()
            } else {
                ArrivalPattern::periodic(t.uam().window()).unwrap()
            }
        })
        .collect();
    (TaskSet::new(tasks).unwrap(), patterns)
}

/// Fault plans the differential must hold under: the zero plan (pins
/// that faulted plumbing stays out of the unfaulted path), and an
/// everything-on plan (jitter, bursts, demand spread, switch latency,
/// degraded table, costly aborts — the last one drives the mid-wave
/// clock advances that stress batched abort processing).
fn plan_for(intensity: u8) -> FaultPlan {
    let mut plan = FaultPlan::none();
    if intensity == 0 {
        return plan;
    }
    plan.uam.extra_per_window = 2;
    plan.uam.every_n_windows = 2;
    plan.demand.mean_factor = 1.6;
    plan.demand.spread = 0.4;
    plan.dvs.switch_latency_cycles = 5_000;
    plan.dvs.degraded_mhz = Some(vec![36, 64, 100]);
    plan.timing.abort_cost = TimeDelta::from_micros(150);
    plan.timing.arrival_jitter = TimeDelta::from_micros(700);
    plan
}

/// Runs one (workload, policy, plan, seed) cell through both loops and
/// asserts full-outcome equality plus certificate byte-identity.
fn assert_differential(
    tasks: &TaskSet,
    patterns: &[ArrivalPattern],
    policy_name: &str,
    plan: &FaultPlan,
    seed: u64,
    horizon_ms: u64,
) {
    let platform = Platform::powernow(EnergySetting::e1());
    let config = SimConfig::new(ms(horizon_ms))
        .with_certificate()
        .with_job_records()
        .with_trace();

    let mut policy = make_policy(policy_name).expect("registry policy");
    let new = Engine::run_with_faults(tasks, patterns, &platform, &mut policy, &config, seed, plan)
        .expect("production engine runs");
    let mut policy = make_policy(policy_name).expect("registry policy");
    let old = Engine::run_with_faults_reference(
        tasks,
        patterns,
        &platform,
        &mut policy,
        &config,
        seed,
        plan,
    )
    .expect("reference engine runs");

    let new_cert = new
        .certificate
        .as_ref()
        .expect("certificate recorded")
        .render();
    let old_cert = old
        .certificate
        .as_ref()
        .expect("certificate recorded")
        .render();
    assert_eq!(
        new_cert, old_cert,
        "policy {policy_name}, seed {seed}: certificates diverged"
    );
    assert_eq!(
        new, old,
        "policy {policy_name}, seed {seed}: outcomes diverged"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(diff_cases()))]

    #[test]
    fn production_loop_matches_reference_loop(
        params in arb_workload(),
        policy_pick in 0usize..POLICIES.len(),
        intensity in 0u8..2,
        seed in 0u64..10_000,
    ) {
        let (tasks, patterns) = raise(&params);
        assert_differential(
            &tasks,
            &patterns,
            POLICIES[policy_pick],
            &plan_for(intensity),
            seed,
            150,
        );
    }
}

/// Deterministic pin: every registry policy family, both fault
/// intensities, on a fixed mixed workload. Catches divergence even when
/// the proptest budget is reduced to almost nothing.
#[test]
fn all_policies_match_reference_on_the_fixed_workload() {
    let params = WorkloadParams {
        tasks: vec![(0, 10, 2, 700), (1, 15, 1, 400), (4, 25, 3, 1_800)],
    };
    let (tasks, patterns) = raise(&params);
    for name in POLICIES {
        for intensity in 0..2 {
            assert_differential(&tasks, &patterns, name, &plan_for(intensity), 42, 200);
        }
    }
}

/// Overload with many same-instant terminations: several jobs share each
/// termination time, so the batched abort wave must visit and abort them
/// in exactly the reference order for certificates to stay identical.
#[test]
fn termination_tie_waves_match_reference() {
    let params = WorkloadParams {
        tasks: vec![(0, 10, 3, 2_500), (0, 10, 3, 2_500)],
    };
    let (tasks, patterns) = raise(&params);
    for name in ["eua", "eua-na", "edf-na"] {
        // Costly aborts advance the clock mid-wave — the regime where a
        // naive wave implementation diverges first.
        assert_differential(&tasks, &patterns, name, &plan_for(1), 7, 150);
        assert_differential(&tasks, &patterns, name, &FaultPlan::none(), 7, 150);
    }
}
