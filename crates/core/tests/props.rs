#![allow(clippy::expect_used)] // test/demo code: panicking on bad setup is the point

//! Property-based tests of the scheduling algorithms: greedy schedule
//! construction invariants, DVS analysis bounds, and policy-decision
//! validity against the engine's contract.

use eua_core::{
    build_schedule, decide_freq, make_policy, schedule_feasible, Candidate, InsertionMode,
};
use eua_platform::{Cycles, EnergySetting, Frequency, SimTime, TimeDelta};
use eua_sim::{
    Engine, JobId, JobView, Platform, SchedContext, SchedEvent, SimConfig, Task, TaskId, TaskSet,
};
use eua_tuf::Tuf;
use eua_uam::demand::DemandModel;
use eua_uam::generator::ArrivalPattern;
use eua_uam::{Assurance, UamSpec};
use proptest::prelude::*;

fn arb_candidates() -> impl Strategy<Value = Vec<Candidate>> {
    proptest::collection::vec(
        (
            0u64..1_000_000,
            0u64..1_000_000,
            1u64..2_000_000,
            -1.0f64..100.0,
        ),
        0..20,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (crit, extra, remaining, key))| Candidate {
                id: JobId(i as u64),
                critical: SimTime::from_micros(crit),
                termination: SimTime::from_micros(crit + extra),
                remaining: Cycles::new(remaining),
                key,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn built_schedules_are_feasible_and_critical_ordered(
        cands in arb_candidates(),
        now_us in 0u64..100_000,
        skip in any::<bool>(),
    ) {
        let f_m = Frequency::from_mhz(100);
        let now = SimTime::from_micros(now_us);
        let mode = if skip { InsertionMode::SkipInfeasible } else { InsertionMode::BreakOnInfeasible };
        let schedule = build_schedule(now, cands.clone(), f_m, mode);
        // Feasible at f_m from `now`.
        prop_assert!(schedule_feasible(now, &schedule, f_m));
        // Non-decreasing critical times.
        for w in schedule.windows(2) {
            prop_assert!(w[0].critical <= w[1].critical);
        }
        // Only positive keys appear, each at most once.
        let mut seen = std::collections::BTreeSet::new();
        for c in &schedule {
            prop_assert!(c.key > 0.0 || c.key.is_nan());
            prop_assert!(seen.insert(c.id), "duplicate {:?}", c.id);
        }
    }
}

fn small_task_set(n: usize) -> (TaskSet, Vec<ArrivalPattern>) {
    let mut tasks = Vec::new();
    let mut patterns = Vec::new();
    for i in 0..n {
        let window = TimeDelta::from_micros(5_000 + 3_777 * i as u64);
        let spec = UamSpec::new(1 + (i as u32 % 3), window).expect("valid");
        tasks.push(
            Task::new(
                format!("t{i}"),
                Tuf::step(5.0 + i as f64, window).expect("valid"),
                spec,
                DemandModel::normal(50_000.0 + 9_000.0 * i as f64, 50_000.0).expect("valid"),
                Assurance::new(1.0, 0.9).expect("valid"),
            )
            .expect("valid"),
        );
        patterns.push(ArrivalPattern::random_burst(spec).expect("valid"));
    }
    (TaskSet::new(tasks).expect("non-empty"), patterns)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn decide_freq_speed_is_bounded(
        n in 1usize..6,
        jobs in proptest::collection::vec((0u64..50_000, 1u64..5_000_000), 0..8),
        now_us in 0u64..100_000,
    ) {
        let (tasks, _) = small_task_set(n);
        let platform = Platform::powernow(EnergySetting::e1());
        let views: Vec<JobView> = jobs
            .iter()
            .enumerate()
            .map(|(i, &(arrival, remaining))| {
                let tid = TaskId(i % n);
                let task = tasks.task(tid);
                let arrival = SimTime::from_micros(arrival);
                JobView {
                    id: JobId(i as u64),
                    task: tid,
                    arrival,
                    critical_time: arrival.saturating_add(task.critical_offset()),
                    termination: arrival.saturating_add(task.termination_offset()),
                    remaining: Cycles::new(remaining),
                    executed: Cycles::ZERO,
                }
            })
            .collect();
        let ctx = SchedContext {
            now: SimTime::from_micros(now_us),
            event: SchedEvent::Arrival,
            jobs: &views,
            tasks: &tasks,
            platform: &platform,
            running: None,
            energy_used: 0.0,
        };
        let analysis = decide_freq(&ctx);
        prop_assert!(analysis.required_speed >= 0.0);
        prop_assert!(analysis.required_speed <= platform.f_max().as_f64());
        prop_assert!(analysis.must_run_cycles >= 0.0);
        prop_assert_eq!(analysis.earliest_critical.is_none(), views.is_empty());
    }

    #[test]
    fn every_policy_survives_random_workloads(
        n in 1usize..5,
        seed in 0u64..5_000,
        policy_idx in 0usize..11,
    ) {
        let (tasks, patterns) = small_task_set(n);
        let platform = Platform::powernow(EnergySetting::e2());
        let config = SimConfig::new(TimeDelta::from_millis(200)).with_trace();
        let names = eua_core::available_policies();
        let name = names[policy_idx % names.len()];
        let mut policy = make_policy(name).expect("registry name");
        let out = Engine::run(&tasks, &patterns, &platform, &mut policy, &config, seed)
            .expect("policy produced an invalid decision");
        prop_assert!(out.trace.expect("trace").is_serial());
        prop_assert!(out.metrics.total_utility <= out.metrics.max_possible_utility + 1e-6);
    }
}
