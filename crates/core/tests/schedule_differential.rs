#![allow(clippy::expect_used)] // test code: panicking on bad setup is the point

//! Differential tests for the incremental-feasibility schedule builder:
//! the optimized `build_schedule` (per-position finish times + suffix-min
//! slack) must produce byte-identical schedules to the naive
//! `build_schedule_reference` oracle (full `schedule_feasible` re-walk per
//! insertion) on arbitrary candidate sets, in both insertion modes, and
//! across buffer reuse.

use eua_core::{
    build_schedule, build_schedule_reference, Candidate, InsertionMode, ScheduleBuilder,
};
use eua_platform::{Cycles, Frequency, SimTime};
use eua_sim::JobId;
use proptest::prelude::*;

/// Candidate sets that stress the interesting regimes: tight and loose
/// terminations, zero and huge remaining work, negative / zero / NaN keys,
/// and saturating `SimTime::MAX` sentinels.
fn arb_candidates() -> impl Strategy<Value = Vec<Candidate>> {
    // The vendored proptest's `prop_oneof!` is unweighted; repeat the
    // common arm to bias toward it.
    let key = prop_oneof![
        -10.0f64..1_000.0,
        -10.0f64..1_000.0,
        -10.0f64..1_000.0,
        Just(0.0f64),
        Just(f64::NAN),
    ];
    let termination = prop_oneof![
        0u64..3_000_000,
        0u64..3_000_000,
        0u64..3_000_000,
        Just(u64::MAX),
    ];
    let remaining = prop_oneof![
        0u64..2_000_000,
        0u64..2_000_000,
        0u64..2_000_000,
        Just(u64::MAX),
    ];
    proptest::collection::vec((0u64..2_000_000, termination, remaining, key), 0..24).prop_map(
        |raw| {
            raw.into_iter()
                .enumerate()
                .map(|(i, (crit, term, remaining, key))| Candidate {
                    id: JobId(i as u64),
                    critical: SimTime::from_micros(crit),
                    // Termination can fall before the critical time here;
                    // the builder must handle that (nothing fits) without
                    // diverging from the oracle.
                    termination: if term == u64::MAX {
                        SimTime::MAX
                    } else {
                        SimTime::from_micros(crit.saturating_add(term))
                    },
                    remaining: Cycles::new(remaining),
                    key,
                })
                .collect()
        },
    )
}

fn same_schedule(a: &[Candidate], b: &[Candidate]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.id == y.id)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn incremental_builder_matches_naive_oracle(
        cands in arb_candidates(),
        now_us in 0u64..200_000,
        skip in any::<bool>(),
    ) {
        let f_m = Frequency::from_mhz(100);
        let now = SimTime::from_micros(now_us);
        let mode = if skip {
            InsertionMode::SkipInfeasible
        } else {
            InsertionMode::BreakOnInfeasible
        };
        let fast = build_schedule(now, cands.clone(), f_m, mode);
        let slow = build_schedule_reference(now, cands, f_m, mode);
        prop_assert!(
            same_schedule(&fast, &slow),
            "incremental {:?} != reference {:?}",
            fast.iter().map(|c| c.id).collect::<Vec<_>>(),
            slow.iter().map(|c| c.id).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn builder_reuse_matches_one_shot(
        sets in proptest::collection::vec(arb_candidates(), 1..5),
        now_us in 0u64..200_000,
        skip in any::<bool>(),
    ) {
        let f_m = Frequency::from_mhz(100);
        let now = SimTime::from_micros(now_us);
        let mode = if skip {
            InsertionMode::SkipInfeasible
        } else {
            InsertionMode::BreakOnInfeasible
        };
        // One builder reused across every set (as `Eua::plan` does per
        // event) must match a fresh one-shot build for each set.
        let mut builder = ScheduleBuilder::new();
        let mut buf = Vec::new();
        for cands in sets {
            buf.clear();
            buf.extend_from_slice(&cands);
            let reused: Vec<Candidate> = builder.rebuild(now, &mut buf, f_m, mode).to_vec();
            let fresh = build_schedule(now, cands, f_m, mode);
            prop_assert!(
                same_schedule(&reused, &fresh),
                "reused {:?} != fresh {:?}",
                reused.iter().map(|c| c.id).collect::<Vec<_>>(),
                fresh.iter().map(|c| c.id).collect::<Vec<_>>(),
            );
        }
    }
}
