//! A lightweight Rust lexer for first-party source scans, in the style
//! of `eua-analyze`'s `.scn` token scanner: no rustc or syn dependency,
//! just enough lexical structure for the determinism rules to match
//! token sequences with exact spans.
//!
//! The lexer distinguishes what the rules need and nothing more:
//! identifiers (keywords lex as identifiers), the `::` path separator,
//! brackets (for brace/paren matching), `!` and `.` (macro bangs and
//! method calls), and comments (kept, because directives live in them
//! and one rule scans them). String, character, and numeric literals
//! are consumed and *dropped* — a hazard name inside a string is data,
//! not code, and must not trip a lint. Raw strings (`r#"…"#`), byte and
//! C strings, raw identifiers, lifetimes, and nested block comments are
//! all handled so that brace matching never desynchronizes.
//!
//! Lines and columns are 1-based byte positions; `end_col` is exclusive,
//! matching [`eua_analyze::Span`] and SARIF's `endColumn`.

/// What kind of token was lexed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `spawn`, `HashMap`, …).
    Ident,
    /// The `::` path separator, lexed as one token.
    PathSep,
    /// An opening bracket: `(`, `[`, or `{` (the byte is in `text`).
    Open,
    /// A closing bracket: `)`, `]`, or `}`.
    Close,
    /// The `!` of a macro invocation (or any bare `!`).
    Bang,
    /// A `.` (method calls, field access).
    Dot,
    /// A comment, delimiters included; `line` is false for `/* … */`.
    Comment {
        /// Whether this is a `//` line comment (directives only live
        /// in line comments).
        line: bool,
    },
    /// Any other single punctuation byte.
    Punct,
}

/// One lexed token with its byte extent in the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tok<'a> {
    /// The token class.
    pub kind: TokKind,
    /// The token's text, delimiters included for comments.
    pub text: &'a str,
    /// 1-based line of the first byte.
    pub line: u32,
    /// 1-based byte column of the first byte.
    pub col: u32,
    /// 1-based line of the last byte (differs from `line` only for
    /// block comments).
    pub end_line: u32,
    /// 1-based exclusive end column on `end_line`.
    pub end_col: u32,
}

impl Tok<'_> {
    /// Whether this token is an identifier with exactly this text.
    #[must_use]
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }
}

/// Cursor state shared by the scan helpers.
struct Cursor<'a> {
    bytes: &'a [u8],
    src: &'a str,
    i: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.i + ahead).copied()
    }

    /// Advances one byte, maintaining the line/column counters.
    fn bump(&mut self) {
        if self.bytes.get(self.i) == Some(&b'\n') {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        self.i += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    /// Consumes an identifier run starting at the cursor.
    fn eat_ident(&mut self) {
        while self
            .peek(0)
            .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
        {
            self.bump();
        }
    }

    /// Consumes a `"…"` literal body after the opening quote, honoring
    /// backslash escapes. Unterminated literals run to end of input.
    fn eat_string_body(&mut self) {
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => self.bump_n(2),
                b'"' => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// Consumes a `'…'` literal body after the opening quote (same
    /// escape handling as strings, closing on `'`).
    fn eat_char_body(&mut self) {
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => self.bump_n(2),
                b'\'' => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// Consumes a raw-string body after `r` and its `n` hashes plus the
    /// opening quote: runs until `"` followed by `n` hashes.
    fn eat_raw_string_body(&mut self, hashes: usize) {
        while let Some(b) = self.peek(0) {
            if b == b'"' {
                let closed = (1..=hashes).all(|k| self.peek(k) == Some(b'#'));
                if closed {
                    self.bump_n(1 + hashes);
                    return;
                }
            }
            self.bump();
        }
    }

    /// Consumes a numeric literal (integers, floats, suffixes). The
    /// digits themselves never matter to a rule; this exists so `1.0`
    /// does not leak a spurious `.` token.
    fn eat_number(&mut self) {
        while self
            .peek(0)
            .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
        {
            self.bump();
        }
        // A fractional part: `.` followed by a digit (so `1..4` and
        // `1.max(2)` stop at the integer).
        if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|b| b.is_ascii_digit()) {
            self.bump();
            while self
                .peek(0)
                .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
            {
                self.bump();
            }
        }
    }
}

/// Whether `ident` is a literal prefix that can precede a quote
/// (`b"…"`, `r#"…"#`, `br"…"`, `c"…"`, `cr#"…"#`).
fn is_literal_prefix(ident: &str) -> bool {
    matches!(ident, "r" | "b" | "c" | "br" | "cr")
}

/// Lexes `src` into a token stream. Never fails: malformed input
/// degrades to `Punct` tokens or an early end of stream, it does not
/// panic — the linter must survive any bytes a `.rs` file can hold.
#[must_use]
pub fn lex(src: &str) -> Vec<Tok<'_>> {
    let mut cur = Cursor {
        bytes: src.as_bytes(),
        src,
        i: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    while let Some(b) = cur.peek(0) {
        let (start_i, start_line, start_col) = (cur.i, cur.line, cur.col);
        // Capture `src` (not `&cur`) so the slice keeps the input's
        // lifetime rather than the closure borrow's.
        let emit = |end_i: usize, end_line: u32, end_col: u32, kind| {
            (
                kind,
                &src[start_i..end_i],
                start_line,
                start_col,
                end_line,
                end_col,
            )
        };
        let tok = match b {
            _ if b.is_ascii_whitespace() => {
                cur.bump();
                continue;
            }
            b'/' if cur.peek(1) == Some(b'/') => {
                while cur.peek(0).is_some_and(|c| c != b'\n') {
                    cur.bump();
                }
                emit(cur.i, cur.line, cur.col, TokKind::Comment { line: true })
            }
            b'/' if cur.peek(1) == Some(b'*') => {
                cur.bump_n(2);
                let mut depth = 1usize;
                while depth > 0 {
                    match (cur.peek(0), cur.peek(1)) {
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            cur.bump_n(2);
                        }
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            cur.bump_n(2);
                        }
                        (Some(_), _) => cur.bump(),
                        (None, _) => break,
                    }
                }
                emit(cur.i, cur.line, cur.col, TokKind::Comment { line: false })
            }
            b'"' => {
                cur.bump();
                cur.eat_string_body();
                continue;
            }
            b'\'' => {
                cur.bump();
                match cur.peek(0) {
                    // `'\n'`-style escapes are always char literals.
                    Some(b'\\') => cur.eat_char_body(),
                    // `'a` starts either a lifetime (`'a`, `'static`) or
                    // a char literal (`'a'`): consume the identifier run
                    // and look for the closing quote.
                    Some(c) if c.is_ascii_alphabetic() || c == b'_' => {
                        cur.eat_ident();
                        if cur.peek(0) == Some(b'\'') {
                            cur.bump();
                        }
                    }
                    // `'('` and friends.
                    Some(_) => cur.eat_char_body(),
                    None => {}
                }
                continue;
            }
            _ if b.is_ascii_digit() => {
                cur.eat_number();
                continue;
            }
            _ if b.is_ascii_alphabetic() || b == b'_' => {
                cur.eat_ident();
                let ident = &cur.src[start_i..cur.i];
                match cur.peek(0) {
                    // `b"…"`, `r"…"`, `c"…"` …: a prefixed literal, not
                    // an identifier.
                    Some(b'"') if is_literal_prefix(ident) => {
                        cur.bump();
                        if ident.contains('r') {
                            cur.eat_raw_string_body(0);
                        } else {
                            cur.eat_string_body();
                        }
                        continue;
                    }
                    // `r#"…"#` (any hash count) or a raw identifier
                    // `r#ident` (emitted as one Ident, `r#` included).
                    Some(b'#') if is_literal_prefix(ident) && ident.contains('r') => {
                        let mut hashes = 0usize;
                        while cur.peek(hashes) == Some(b'#') {
                            hashes += 1;
                        }
                        if cur.peek(hashes) == Some(b'"') {
                            cur.bump_n(hashes + 1);
                            cur.eat_raw_string_body(hashes);
                            continue;
                        }
                        if hashes == 1
                            && cur
                                .peek(1)
                                .is_some_and(|c| c.is_ascii_alphabetic() || c == b'_')
                        {
                            cur.bump();
                            cur.eat_ident();
                            emit(cur.i, cur.line, cur.col, TokKind::Ident)
                        } else {
                            emit(cur.i, cur.line, cur.col, TokKind::Ident)
                        }
                    }
                    // `b'x'` byte char literal.
                    Some(b'\'') if ident == "b" => {
                        cur.bump();
                        cur.eat_char_body();
                        continue;
                    }
                    _ => emit(cur.i, cur.line, cur.col, TokKind::Ident),
                }
            }
            b':' if cur.peek(1) == Some(b':') => {
                cur.bump_n(2);
                emit(cur.i, cur.line, cur.col, TokKind::PathSep)
            }
            b'(' | b'[' | b'{' => {
                cur.bump();
                emit(cur.i, cur.line, cur.col, TokKind::Open)
            }
            b')' | b']' | b'}' => {
                cur.bump();
                emit(cur.i, cur.line, cur.col, TokKind::Close)
            }
            b'!' => {
                cur.bump();
                emit(cur.i, cur.line, cur.col, TokKind::Bang)
            }
            b'.' => {
                cur.bump();
                emit(cur.i, cur.line, cur.col, TokKind::Dot)
            }
            _ => {
                cur.bump();
                emit(cur.i, cur.line, cur.col, TokKind::Punct)
            }
        };
        let (kind, text, line, col, end_line, end_col) = tok;
        out.push(Tok {
            kind,
            text,
            line,
            col,
            end_line,
            end_col,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    fn idents<'a>(toks: &[Tok<'a>]) -> Vec<&'a str> {
        toks.iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn paths_lex_as_ident_pathsep_ident() {
        let toks = lex("std::time::Instant");
        let kinds: Vec<TokKind> = toks.iter().map(|t| t.kind).collect();
        assert_eq!(
            kinds,
            [
                TokKind::Ident,
                TokKind::PathSep,
                TokKind::Ident,
                TokKind::PathSep,
                TokKind::Ident
            ]
        );
        assert_eq!(toks[4].text, "Instant");
        assert_eq!((toks[4].line, toks[4].col, toks[4].end_col), (1, 12, 19));
    }

    #[test]
    fn string_contents_produce_no_tokens() {
        let toks = lex(r#"let x = "Instant::now() inside a string";"#);
        assert_eq!(idents(&toks), ["let", "x"]);
    }

    #[test]
    fn raw_strings_and_hashes_are_skipped() {
        let src = "let y = r#\"thread::spawn \" quote inside\"#; after";
        assert_eq!(idents(&lex(src)), ["let", "y", "after"]);
        let src = "let z = br\"HashMap\"; tail";
        assert_eq!(idents(&lex(src)), ["let", "z", "tail"]);
    }

    #[test]
    fn char_literals_and_lifetimes_disambiguate() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'b' }");
        // Neither the lifetime nor the char literal leaks tokens, and
        // the braces still match.
        assert_eq!(idents(&toks), ["fn", "f", "x", "str", "char"]);
        let opens = toks.iter().filter(|t| t.kind == TokKind::Open).count();
        let closes = toks.iter().filter(|t| t.kind == TokKind::Close).count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn escaped_char_literal_does_not_desync() {
        assert_eq!(
            idents(&lex(r"let q = '\''; let w = '\u{7f}'; end")),
            ["let", "q", "let", "w", "end"]
        );
    }

    #[test]
    fn comments_are_kept_with_spans() {
        let toks = lex("a // trailing note\n/* block\nspans lines */ b");
        let comments: Vec<&Tok<'_>> = toks
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Comment { .. }))
            .collect();
        assert_eq!(comments.len(), 2);
        assert_eq!(comments[0].text, "// trailing note");
        assert_eq!(comments[0].line, 1);
        assert!(matches!(comments[1].kind, TokKind::Comment { line: false }));
        assert_eq!((comments[1].line, comments[1].end_line), (2, 3));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let toks = lex("/* outer /* inner */ still comment */ visible");
        assert_eq!(idents(&toks), ["visible"]);
    }

    #[test]
    fn numbers_do_not_emit_dot_tokens() {
        let toks = lex("let v = 1.0e3f64 + 0x_ff + 7_u32; v.max(2.0)");
        let dots = toks.iter().filter(|t| t.kind == TokKind::Dot).count();
        assert_eq!(dots, 1, "only the method-call dot survives");
    }

    #[test]
    fn macro_bang_and_brackets() {
        let toks = lex("vec![1, 2]");
        assert_eq!(toks[0].text, "vec");
        assert_eq!(toks[1].kind, TokKind::Bang);
        assert_eq!(toks[2].kind, TokKind::Open);
        assert_eq!(toks[2].text, "[");
    }

    #[test]
    fn raw_identifiers_lex_as_one_ident() {
        let toks = lex("let r#type = 1;");
        assert_eq!(idents(&toks), ["let", "r#type"]);
    }

    #[test]
    fn survives_unterminated_garbage() {
        for src in ["\"unterminated", "/* open", "'", "r#\"open", "b'"] {
            let _ = lex(src);
        }
    }
}
