//! `eua-lint` — first-party determinism and hot-path static analyzer
//! over the workspace's Rust sources.
//!
//! The engine-throughput overhaul and the sharded sweep fabric both
//! stand on one property: *nothing nondeterministic ever leaks into the
//! engine*. Certificate byte-identity pins, bit-identical parallel
//! sweeps, and remote-worker audits all assume it. This crate guards
//! that property at the source level, before a refactor can break it:
//! a token-aware scan (no rustc/syn — the same first-party philosophy
//! as the `.scn` source maps and JSON parsers) over every first-party
//! `.rs` file, reporting hazards as [`Diagnostic`]s with stable
//! `lint-*` codes from the shared `eua-analyze` registry.
//!
//! | Module | What it holds |
//! |--------|---------------|
//! | [`lexer`] | the lightweight Rust lexer (tokens with exact spans) |
//! | [`rules`] | the eight hazard rules ([`rules::HAZARD_CODES`]) |
//! | this | directives, suppression accounting, the file walker |
//!
//! # Directives
//!
//! Two line-comment directives steer the scan (plain `//` comments
//! only, exact `eua-lint:` prefix):
//!
//! * an allow directive — `eua-lint:` followed by `allow(code, …)` —
//!   suppresses the named hazards on its own line (when trailing) or
//!   on the next line holding any token (when alone on a line). An
//!   allow that suppresses nothing is itself a finding
//!   (`lint-unused-suppression`), so stale exemptions cannot linger.
//! * a hot marker — `eua-lint:` followed by `hot` — marks the next
//!   function; allocating calls inside its body become
//!   `lint-hot-path-alloc` findings.
//!
//! Malformed directives, unknown codes, and markers that precede no
//! function body are `lint-unknown-suppression` findings: a typo in an
//! exemption must fail loudly, not silently stop suppressing.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod rules;

use std::collections::BTreeSet;
use std::io;
use std::path::{Path, PathBuf};

use eua_analyze::{DiagCode, Diagnostic, Report, Span};

use lexer::{lex, Tok, TokKind};
pub use rules::{Finding, HAZARD_CODES, LINT_CODES};

/// Whether a comment token is an `eua-lint:` directive (and therefore
/// exempt from the banned-keyword comment scan).
#[must_use]
pub fn is_directive_comment(text: &str) -> bool {
    text.strip_prefix("//")
        .is_some_and(|rest| rest.trim_start().starts_with("eua-lint:"))
}

/// Resolves a kebab-case name to a lint code.
#[must_use]
pub fn code_from_str(name: &str) -> Option<DiagCode> {
    LINT_CODES.iter().copied().find(|c| c.as_str() == name)
}

/// One lint result for one file: the report plus the token extent of
/// each diagnostic, index-aligned, for SARIF regions.
#[derive(Debug, Clone)]
pub struct FileLint {
    /// The scanned file's path as given.
    pub path: String,
    /// Findings for this file (empty when clean).
    pub report: Report,
    /// `spans[i]` is the extent of `report.diagnostics[i]`.
    pub spans: Vec<Option<Span>>,
}

/// A parsed `eua-lint:` directive.
#[derive(Debug)]
enum DirectiveKind {
    /// `hot`: the next function is a marked hot path.
    Hot,
    /// `allow(...)`: suppress the named codes (unknown names kept as
    /// strings for the error message).
    Allow(Vec<Result<DiagCode, String>>),
    /// Anything else after the `eua-lint:` prefix.
    Malformed,
}

#[derive(Debug)]
struct Directive {
    kind: DirectiveKind,
    span: Span,
    /// Whether the directive is alone on its line (it then covers the
    /// next token-holding line instead of its own).
    standalone: bool,
}

/// Parses the directive grammar after the `eua-lint:` prefix.
fn parse_directive(rest: &str, span: Span, standalone: bool) -> Directive {
    let rest = rest.trim();
    let kind = if rest == "hot" {
        DirectiveKind::Hot
    } else if let Some(inner) = rest
        .strip_prefix("allow(")
        .and_then(|r| r.strip_suffix(')'))
    {
        let codes: Vec<Result<DiagCode, String>> = inner
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|name| {
                HAZARD_CODES
                    .iter()
                    .copied()
                    .find(|c| c.as_str() == name)
                    .ok_or_else(|| name.to_string())
            })
            .collect();
        if codes.is_empty() {
            DirectiveKind::Malformed
        } else {
            DirectiveKind::Allow(codes)
        }
    } else {
        DirectiveKind::Malformed
    };
    Directive {
        kind,
        span,
        standalone,
    }
}

/// Extracts directives from the token stream. `standalone` is computed
/// against code tokens: a directive with code before it on its line is
/// trailing.
fn directives(toks: &[Tok<'_>]) -> Vec<Directive> {
    let mut out = Vec::new();
    for t in toks {
        if !matches!(t.kind, TokKind::Comment { line: true }) || !is_directive_comment(t.text) {
            continue;
        }
        let rest = t
            .text
            .strip_prefix("//")
            .map(str::trim_start)
            .and_then(|r| r.strip_prefix("eua-lint:"))
            .unwrap_or("");
        let standalone = !toks.iter().any(|o| {
            !matches!(o.kind, TokKind::Comment { .. }) && o.line == t.line && o.col < t.col
        });
        let span = Span {
            start_line: t.line,
            start_col: t.col,
            end_line: t.end_line,
            end_col: t.end_col,
        };
        out.push(parse_directive(rest, span, standalone));
    }
    out
}

/// The line a standalone directive covers: the first later line that
/// holds any non-directive token (code or prose comment). Directives
/// stack — another directive line is skipped, so several allows can sit
/// above one offending line.
fn covered_line(toks: &[Tok<'_>], directive_line: u32) -> Option<u32> {
    toks.iter()
        .filter(|t| {
            t.line > directive_line
                && !(matches!(t.kind, TokKind::Comment { line: true })
                    && is_directive_comment(t.text))
        })
        .map(|t| t.line)
        .min()
}

/// Resolves a hot marker to the body token range of the next `fn`.
///
/// Returns `Err` with a description when no function body follows (the
/// marker would otherwise silently guard nothing).
fn hot_body_range(code: &[&Tok<'_>], after: Span) -> Result<(usize, usize), &'static str> {
    let fn_idx = code
        .iter()
        .position(|t| t.is_ident("fn") && (t.line, t.col) > (after.start_line, after.start_col))
        .ok_or("no `fn` follows the marker")?;
    // The body is the first brace group after the `fn` keyword; a `;`
    // first means a bodyless declaration.
    let mut open_idx = None;
    for (k, t) in code.iter().enumerate().skip(fn_idx) {
        if t.text == "{" {
            open_idx = Some(k);
            break;
        }
        if t.text == ";" {
            return Err("the marked function has no body");
        }
    }
    let open_idx = open_idx.ok_or("the marked function has no body")?;
    let mut depth = 0usize;
    for (k, t) in code.iter().enumerate().skip(open_idx) {
        match t.text {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return Ok((open_idx + 1, k));
                }
            }
            _ => {}
        }
    }
    Ok((open_idx + 1, code.len()))
}

/// Lints one file's text. `selected` restricts which codes run (pass
/// [`LINT_CODES`] for the full set); suppression accounting only
/// considers directives whose codes are selected, so a partial run
/// never misreports an exemption as unused.
#[must_use]
pub fn lint_source(path: &str, text: &str, selected: &BTreeSet<DiagCode>) -> FileLint {
    let on = |c: DiagCode| selected.contains(&c);
    let toks = lex(text);
    let code_toks: Vec<&Tok<'_>> = toks
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::Comment { .. }))
        .collect();
    let dirs = directives(&toks);

    // Resolve directives: hot bodies, malformed/unknown findings.
    let mut meta: Vec<Finding> = Vec::new();
    let mut hot_bodies: Vec<(usize, usize)> = Vec::new();
    for d in &dirs {
        match &d.kind {
            DirectiveKind::Hot => match hot_body_range(&code_toks, d.span) {
                Ok(range) => hot_bodies.push(range),
                Err(why) => meta.push(Finding {
                    code: DiagCode::LintUnknownSuppression,
                    span: d.span,
                    entity: "hot".into(),
                    message: format!("dangling hot marker: {why}"),
                }),
            },
            DirectiveKind::Allow(codes) => {
                for unknown in codes.iter().filter_map(|c| c.as_ref().err()) {
                    meta.push(Finding {
                        code: DiagCode::LintUnknownSuppression,
                        span: d.span,
                        entity: unknown.clone(),
                        message: format!(
                            "allow() names `{unknown}`, which is not a suppressible \
                             lint code (see `eua-lint codes`)"
                        ),
                    });
                }
            }
            DirectiveKind::Malformed => meta.push(Finding {
                code: DiagCode::LintUnknownSuppression,
                span: d.span,
                entity: "eua-lint:".into(),
                message: "malformed directive: expected `eua-lint: hot` or \
                          `eua-lint: allow(code, ...)`"
                    .into(),
            }),
        }
    }

    let hazards = rules::run_hazards(&toks, &code_toks, &hot_bodies, &on);

    // Suppression: each allow directive covers one line; a finding on
    // that line with a named code is dropped and the (directive, code)
    // pair marked used.
    struct Cover {
        code: DiagCode,
        line: u32,
        span: Span,
        used: bool,
    }
    let mut covers: Vec<Cover> = Vec::new();
    for d in &dirs {
        if let DirectiveKind::Allow(codes) = &d.kind {
            let line = if d.standalone {
                covered_line(&toks, d.span.start_line)
            } else {
                Some(d.span.start_line)
            };
            let Some(line) = line else { continue };
            for code in codes.iter().filter_map(|c| c.as_ref().ok()) {
                covers.push(Cover {
                    code: *code,
                    line,
                    span: d.span,
                    used: false,
                });
            }
        }
    }
    let mut kept: Vec<Finding> = Vec::new();
    for f in hazards {
        let suppressed = covers
            .iter_mut()
            .find(|c| c.code == f.code && c.line == f.span.start_line);
        match suppressed {
            Some(c) => c.used = true,
            None => kept.push(f),
        }
    }
    if on(DiagCode::LintUnusedSuppression) {
        for c in covers.iter().filter(|c| !c.used && on(c.code)) {
            kept.push(Finding {
                code: DiagCode::LintUnusedSuppression,
                span: c.span,
                entity: c.code.as_str().into(),
                message: format!(
                    "allow({}) suppressed nothing on line {}; delete the stale directive",
                    c.code.as_str(),
                    c.line
                ),
            });
        }
    }
    if on(DiagCode::LintUnknownSuppression) {
        kept.extend(meta);
    }

    kept.sort_by(|a, b| {
        (a.span.start_line, a.span.start_col, a.code.as_str()).cmp(&(
            b.span.start_line,
            b.span.start_col,
            b.code.as_str(),
        ))
    });

    let mut report = Report::new(path);
    let mut spans = Vec::with_capacity(kept.len());
    for f in kept {
        report.push(Diagnostic::for_entity(
            f.code,
            f.entity,
            format!("{}:{}: {}", f.span.start_line, f.span.start_col, f.message),
        ));
        spans.push(Some(f.span));
    }
    FileLint {
        path: path.to_string(),
        report,
        spans,
    }
}

/// Directory names the walker never descends into: vendored shims stand
/// in for external crates, build output is generated, fixture corpora
/// are deliberately hazardous, and hidden directories are not source.
const SKIPPED_DIRS: [&str; 3] = ["vendor", "target", "fixtures"];

/// Recursively collects `.rs` files under `root` in a deterministic
/// (sorted) order.
///
/// # Errors
///
/// Any I/O failure reading a directory, with the failing path embedded
/// in the error message via [`io::Error::other`].
pub fn collect_sources(root: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let label = |e: io::Error, p: &Path| io::Error::other(format!("{}: {e}", p.display()));
    let meta = std::fs::metadata(root).map_err(|e| label(e, root))?;
    if meta.is_file() {
        if root.extension().is_some_and(|x| x == "rs") {
            out.push(root.to_path_buf());
        }
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(root)
        .map_err(|e| label(e, root))?
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| label(e, root))?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        if path.is_dir() {
            if SKIPPED_DIRS.contains(&name) || name.starts_with('.') {
                continue;
            }
            collect_sources(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The default scan roots, relative to a workspace checkout: the same
/// set the repository's CI gate greps covered.
pub const DEFAULT_ROOTS: [&str; 4] = ["src", "crates", "tests", "examples"];

/// Lints every `.rs` file under the given roots (files or directories).
///
/// # Errors
///
/// The first I/O failure (unreadable root, file, or directory).
pub fn lint_roots(roots: &[PathBuf], selected: &BTreeSet<DiagCode>) -> io::Result<Vec<FileLint>> {
    let mut files = Vec::new();
    for root in roots {
        collect_sources(root, &mut files)?;
    }
    let mut out = Vec::with_capacity(files.len());
    for file in files {
        let text = std::fs::read_to_string(&file)
            .map_err(|e| io::Error::other(format!("{}: {e}", file.display())))?;
        out.push(lint_source(&file.display().to_string(), &text, selected));
    }
    Ok(out)
}

/// The full code set, as a selection.
#[must_use]
pub fn all_codes() -> BTreeSet<DiagCode> {
    LINT_CODES.iter().copied().collect()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    fn codes_of(lint: &FileLint) -> Vec<&'static str> {
        lint.report
            .diagnostics
            .iter()
            .map(|d| d.code.as_str())
            .collect()
    }

    #[test]
    fn clean_source_yields_empty_report() {
        let lint = lint_source("x.rs", "fn main() { let a = 1 + 2; }", &all_codes());
        assert!(lint.report.diagnostics.is_empty());
        assert!(!lint.report.has_errors());
    }

    #[test]
    fn trailing_allow_suppresses_same_line() {
        let src = "let t = Instant::now(); // eua-lint: allow(lint-wall-clock)\n";
        let lint = lint_source("x.rs", src, &all_codes());
        assert!(codes_of(&lint).is_empty(), "{:?}", lint.report);
    }

    #[test]
    fn standalone_allow_suppresses_next_line() {
        let src = "// eua-lint: allow(lint-wall-clock)\nlet t = Instant::now();\n";
        let lint = lint_source("x.rs", src, &all_codes());
        assert!(codes_of(&lint).is_empty(), "{:?}", lint.report);
    }

    #[test]
    fn stacked_standalone_allows_cover_one_line() {
        let src = "// eua-lint: allow(lint-wall-clock)\n\
                   // eua-lint: allow(lint-hash-collection)\n\
                   let t: HashMap<u8, u8> = index(Instant::now());\n";
        let lint = lint_source("x.rs", src, &all_codes());
        assert!(codes_of(&lint).is_empty(), "{:?}", lint.report);
    }

    #[test]
    fn unused_allow_is_reported_at_the_directive() {
        let src = "// eua-lint: allow(lint-thread-spawn)\nlet a = 1;\n";
        let lint = lint_source("x.rs", src, &all_codes());
        assert_eq!(codes_of(&lint), ["lint-unused-suppression"]);
        assert_eq!(lint.spans[0].unwrap().start_line, 1);
    }

    #[test]
    fn unknown_code_in_allow_is_reported() {
        let src = "// eua-lint: allow(lint-imaginary)\nlet a = 1;\n";
        let lint = lint_source("x.rs", src, &all_codes());
        assert_eq!(codes_of(&lint), ["lint-unknown-suppression"]);
    }

    #[test]
    fn meta_codes_cannot_be_suppressed() {
        let src = "// eua-lint: allow(lint-unused-suppression)\nlet a = 1;\n";
        let lint = lint_source("x.rs", src, &all_codes());
        assert_eq!(codes_of(&lint), ["lint-unknown-suppression"]);
    }

    #[test]
    fn malformed_directive_is_reported() {
        let src = "// eua-lint: alow(lint-wall-clock)\nlet a = 1;\n";
        let lint = lint_source("x.rs", src, &all_codes());
        assert_eq!(codes_of(&lint), ["lint-unknown-suppression"]);
    }

    #[test]
    fn dangling_hot_marker_is_reported() {
        let src = "// eua-lint: hot\nconst X: u32 = 1;\n";
        let lint = lint_source("x.rs", src, &all_codes());
        assert_eq!(codes_of(&lint), ["lint-unknown-suppression"]);
    }

    #[test]
    fn hot_marker_binds_to_next_fn_past_docs_and_attrs() {
        let src = "// eua-lint: hot\n\
                   /// Docs between marker and fn.\n\
                   #[must_use]\n\
                   pub fn decide(xs: &[u64]) -> Vec<u64> {\n\
                   \x20   xs.to_vec()\n\
                   }\n";
        let lint = lint_source("x.rs", src, &all_codes());
        assert_eq!(codes_of(&lint), ["lint-hot-path-alloc"]);
        assert_eq!(lint.spans[0].unwrap().start_line, 5);
    }

    #[test]
    fn hot_fn_alloc_can_be_allowed_inline() {
        let src = "// eua-lint: hot\n\
                   fn decide(xs: &[u64]) -> Vec<u64> {\n\
                   \x20   xs.to_vec() // eua-lint: allow(lint-hot-path-alloc)\n\
                   }\n";
        let lint = lint_source("x.rs", src, &all_codes());
        assert!(codes_of(&lint).is_empty(), "{:?}", lint.report);
    }

    #[test]
    fn selection_skips_unused_accounting_for_unselected_codes() {
        let src = "// eua-lint: allow(lint-thread-spawn)\nlet a = 1;\n";
        let only: BTreeSet<DiagCode> = [DiagCode::LintWallClock, DiagCode::LintUnusedSuppression]
            .into_iter()
            .collect();
        let lint = lint_source("x.rs", src, &only);
        assert!(
            codes_of(&lint).is_empty(),
            "an allow for an unselected rule is not 'unused': {:?}",
            lint.report
        );
    }

    #[test]
    fn findings_sort_by_position() {
        let src = "let s = SystemTime::now();\nlet m: HashSet<u8> = make();\n";
        let lint = lint_source("x.rs", src, &all_codes());
        assert_eq!(codes_of(&lint), ["lint-wall-clock", "lint-hash-collection"]);
        let lines: Vec<u32> = lint.spans.iter().map(|s| s.unwrap().start_line).collect();
        assert_eq!(lines, [1, 2]);
    }

    #[test]
    fn messages_carry_line_and_column() {
        let lint = lint_source("x.rs", "let t = Instant::now();\n", &all_codes());
        assert!(lint.report.diagnostics[0].message.starts_with("1:9: "));
        assert_eq!(
            lint.report.diagnostics[0].entity.as_deref(),
            Some("Instant::now")
        );
    }
}
