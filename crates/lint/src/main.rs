//! The `eua-lint` command-line front end.
//!
//! ```text
//! eua-lint check [--format text|json|sarif] [--check] [--only code,...] [path...]
//! eua-lint codes
//! ```
//!
//! With no paths, `check` scans the default roots (`src`, `crates`,
//! `tests`, `examples` — whichever exist under the current directory),
//! which is exactly the file set the repository's CI gate used to grep.
//! Exit status matches `eua-analyze`/`eua-audit` and is strictly
//! ordered: `2` on usage or I/O errors, `1` when at least one
//! Error-severity finding survives suppression, `0` when every scanned
//! file is clean.

use std::collections::BTreeSet;
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

use eua_analyze::{
    render_json_reports, render_sarif_with_regions, validate_sarif, DiagCode, Report, Span,
};
use eua_lint::{all_codes, code_from_str, lint_roots, FileLint, DEFAULT_ROOTS, LINT_CODES};

/// Writes to stdout, exiting quietly if the reader went away (e.g. the
/// output is piped into `head`); `println!` would panic instead.
fn emit(text: &str) {
    if std::io::stdout().write_all(text.as_bytes()).is_err() {
        std::process::exit(0);
    }
}

/// Output format for `check`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    /// Human-readable stanzas for files with findings.
    Text,
    /// One JSON array of per-file report objects (findings only).
    Json,
    /// One SARIF 2.1.0 document (single run, token-exact regions).
    Sarif,
}

fn usage() -> &'static str {
    "usage: eua-lint check [--format text|json|sarif] [--check] [--only code,...] [path...]\n\
     \x20      eua-lint codes\n\
     \n\
     check          scan first-party Rust sources for determinism and\n\
     \x20             hot-path hazards (default paths: src crates tests examples)\n\
     \x20 --format sarif   emit a SARIF 2.1.0 document instead of text/json\n\
     \x20 --check          (sarif) verify the output byte-round-trips and\n\
     \x20                  validates against the pinned SARIF subset\n\
     \x20 --only a,b       run only the named lint codes\n\
     codes          list every lint code with severity and meaning\n\
     \n\
     exit status (strictly ordered, worst wins):\n\
     \x20 2  usage error or unreadable path\n\
     \x20 1  at least one Error-severity finding survives suppression\n\
     \x20 0  every scanned file is clean"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => run_check(&args[1..]),
        Some("codes") => {
            run_codes();
            ExitCode::SUCCESS
        }
        Some("--help" | "-h" | "help") => {
            emit(usage());
            emit("\n");
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("{}", usage());
            ExitCode::from(2)
        }
    }
}

/// Parses a `--only` argument into a selection, always keeping the two
/// meta codes live so a typo in a directive cannot hide behind a
/// narrowed run.
fn parse_only(arg: &str) -> Result<BTreeSet<DiagCode>, String> {
    let mut selected = BTreeSet::new();
    for name in arg.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        match code_from_str(name) {
            Some(code) => {
                selected.insert(code);
            }
            None => return Err(format!("--only names unknown lint code `{name}`")),
        }
    }
    if selected.is_empty() {
        return Err("--only needs at least one code".into());
    }
    selected.insert(DiagCode::LintUnusedSuppression);
    selected.insert(DiagCode::LintUnknownSuppression);
    Ok(selected)
}

/// Parses `check` flags and scans the requested roots.
fn run_check(args: &[String]) -> ExitCode {
    let mut format = Format::Text;
    let mut self_check = false;
    let mut selected = all_codes();
    let mut roots: Vec<PathBuf> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some("sarif") => format = Format::Sarif,
                other => {
                    eprintln!("--format needs `text`, `json`, or `sarif`, got {other:?}");
                    return ExitCode::from(2);
                }
            },
            "--check" => self_check = true,
            "--only" => match it.next() {
                Some(list) => match parse_only(list) {
                    Ok(set) => selected = set,
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::from(2);
                    }
                },
                None => {
                    eprintln!("--only needs a comma-separated code list");
                    return ExitCode::from(2);
                }
            },
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag `{flag}`\n{}", usage());
                return ExitCode::from(2);
            }
            path => roots.push(PathBuf::from(path)),
        }
    }
    if self_check && format != Format::Sarif {
        eprintln!("--check only applies to --format sarif");
        return ExitCode::from(2);
    }
    if roots.is_empty() {
        // Default roots are best-effort: only the ones that exist.
        roots = DEFAULT_ROOTS
            .iter()
            .map(PathBuf::from)
            .filter(|p| p.exists())
            .collect();
        if roots.is_empty() {
            eprintln!("no default roots ({}) exist here", DEFAULT_ROOTS.join(", "));
            return ExitCode::from(2);
        }
    }

    let lints = match lint_roots(&roots, &selected) {
        Ok(lints) => lints,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let scanned = lints.len();
    let dirty: Vec<&FileLint> = lints
        .iter()
        .filter(|l| !l.report.diagnostics.is_empty())
        .collect();
    let findings: usize = dirty.iter().map(|l| l.report.diagnostics.len()).sum();

    match format {
        Format::Text => {
            for l in &dirty {
                emit(&l.report.render_text());
            }
            emit(&format!(
                "eua-lint: {scanned} file(s) scanned, {findings} finding(s)\n"
            ));
        }
        Format::Json => {
            let reports: Vec<Report> = dirty.iter().map(|l| l.report.clone()).collect();
            emit(&render_json_reports(&reports));
            emit("\n");
        }
        Format::Sarif => {
            let reports: Vec<Report> = dirty.iter().map(|l| l.report.clone()).collect();
            let uris: Vec<Option<String>> = dirty.iter().map(|l| Some(l.path.clone())).collect();
            let regions: Vec<Vec<Option<Span>>> = dirty.iter().map(|l| l.spans.clone()).collect();
            let text = render_sarif_with_regions("eua-lint", &reports, &uris, &regions);
            if self_check {
                if let Err(e) = sarif_self_check(&text) {
                    eprintln!("error: sarif self-check failed: {e}");
                    return ExitCode::from(2);
                }
            }
            emit(&text);
        }
    }
    if dirty.iter().any(|l| l.report.has_errors()) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Asserts the SARIF output byte-round-trips through the first-party
/// JSON tree and satisfies the pinned SARIF 2.1.0 subset.
fn sarif_self_check(text: &str) -> Result<(), String> {
    let reparsed = eua_analyze::json::parse(text)?;
    if reparsed.render() != text {
        return Err("render(parse(output)) differs from output".into());
    }
    validate_sarif(text)
}

/// Prints every lint code with its severity and summary.
fn run_codes() {
    for code in LINT_CODES {
        emit(&format!(
            "{:<36} {:<8} {}\n",
            code.as_str(),
            code.default_severity().as_str(),
            code.summary()
        ));
    }
}
