//! The hazard rules: token-sequence matchers over the lexed stream.
//!
//! Each rule looks for one class of determinism or hot-path hazard and
//! reports token-exact [`Span`]s. Rules only examine *code* tokens —
//! string literals never trip a rule (a hazard name inside a string is
//! data), and comments are only scanned by the banned-keyword rule,
//! whose job is precisely to keep one token out of comments too.

use eua_analyze::{DiagCode, Span};

use crate::lexer::{Tok, TokKind};

/// One raw rule hit, before suppression accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The lint code.
    pub code: DiagCode,
    /// The offending token extent.
    pub span: Span,
    /// The offending token text (the diagnostic's entity).
    pub entity: String,
    /// Why this is a hazard, with the remedy inline where obvious.
    pub message: String,
}

/// The eight hazard codes (everything except the two suppression
/// meta-codes), in registry order. Only these may appear in an
/// `allow(...)` directive.
pub const HAZARD_CODES: [DiagCode; 8] = [
    DiagCode::LintTimeUnit,
    DiagCode::LintWallClock,
    DiagCode::LintThreadSpawn,
    DiagCode::LintUnsafeToken,
    DiagCode::LintHashCollection,
    DiagCode::LintFloatSortPartialCmp,
    DiagCode::LintEntropyRng,
    DiagCode::LintHotPathAlloc,
];

/// All ten lint codes, in registry order (`eua-lint codes` order).
pub const LINT_CODES: [DiagCode; 10] = [
    DiagCode::LintTimeUnit,
    DiagCode::LintWallClock,
    DiagCode::LintThreadSpawn,
    DiagCode::LintUnsafeToken,
    DiagCode::LintHashCollection,
    DiagCode::LintFloatSortPartialCmp,
    DiagCode::LintEntropyRng,
    DiagCode::LintHotPathAlloc,
    DiagCode::LintUnusedSuppression,
    DiagCode::LintUnknownSuppression,
];

/// The span of one token.
fn span_of(t: &Tok<'_>) -> Span {
    Span {
        start_line: t.line,
        start_col: t.col,
        end_line: t.end_line,
        end_col: t.end_col,
    }
}

/// The span from the first byte of `a` to the last byte of `b`.
fn span_between(a: &Tok<'_>, b: &Tok<'_>) -> Span {
    Span {
        start_line: a.line,
        start_col: a.col,
        end_line: b.end_line,
        end_col: b.end_col,
    }
}

/// Whether code token `i` starts the path-like sequence `names[0] ::
/// names[1] :: …` (every hop through a `PathSep`). Returns the index
/// one past the final segment on a match.
fn match_path(code: &[&Tok<'_>], i: usize, names: &[&str]) -> Option<usize> {
    let mut at = i;
    for (k, name) in names.iter().enumerate() {
        if k > 0 {
            if code.get(at).map(|t| t.kind) != Some(TokKind::PathSep) {
                return None;
            }
            at += 1;
        }
        if !code.get(at).is_some_and(|t| t.is_ident(name)) {
            return None;
        }
        at += 1;
    }
    Some(at)
}

/// `lint-time-unit`: `std::time` paths and `Duration::from_secs*`
/// constructors outside the sanctioned newtypes.
fn time_unit(code: &[&Tok<'_>], out: &mut Vec<Finding>) {
    for i in 0..code.len() {
        if let Some(end) = match_path(code, i, &["std", "time"]) {
            out.push(Finding {
                code: DiagCode::LintTimeUnit,
                span: span_between(code[i], code[end - 1]),
                entity: "std::time".into(),
                message: "raw std::time type: all time quantities are integer microseconds \
                          (SimTime/TimeDelta in crates/platform/src/units.rs)"
                    .into(),
            });
        }
        if code.get(i).is_some_and(|t| t.is_ident("Duration"))
            && code.get(i + 1).map(|t| t.kind) == Some(TokKind::PathSep)
            && code
                .get(i + 2)
                .is_some_and(|t| t.kind == TokKind::Ident && t.text.starts_with("from_secs"))
        {
            out.push(Finding {
                code: DiagCode::LintTimeUnit,
                span: span_between(code[i], code[i + 2]),
                entity: format!("Duration::{}", code[i + 2].text),
                message: "float/second Duration constructor: construct TimeDelta micros \
                          instead (crates/platform/src/units.rs)"
                    .into(),
            });
        }
    }
}

/// `lint-wall-clock`: `Instant::now` and any `SystemTime` use. The
/// engine's clock is the simulated `SimTime`; a wall-clock read is
/// nondeterministic input that byte-identity pins cannot see.
fn wall_clock(code: &[&Tok<'_>], out: &mut Vec<Finding>) {
    for i in 0..code.len() {
        if match_path(code, i, &["Instant", "now"]).is_some() {
            out.push(Finding {
                code: DiagCode::LintWallClock,
                span: span_between(code[i], code[i + 2]),
                entity: "Instant::now".into(),
                message: "wall-clock read: certificates and parallel sweeps must be \
                          byte-identical across runs; derive timing from SimTime"
                    .into(),
            });
        }
        if code[i].is_ident("SystemTime") {
            out.push(Finding {
                code: DiagCode::LintWallClock,
                span: span_of(code[i]),
                entity: "SystemTime".into(),
                message: "wall-clock type: nondeterministic input to a deterministic \
                          engine; derive timing from SimTime"
                    .into(),
            });
        }
    }
}

/// `lint-thread-spawn`: `thread::spawn`/`scope`/`Builder` outside the
/// worker pool (which carries an inline allow).
fn thread_spawn(code: &[&Tok<'_>], out: &mut Vec<Finding>) {
    for i in 0..code.len() {
        for tail in ["spawn", "scope", "Builder"] {
            if match_path(code, i, &["thread", tail]).is_some() {
                out.push(Finding {
                    code: DiagCode::LintThreadSpawn,
                    span: span_between(code[i], code[i + 2]),
                    entity: format!("thread::{tail}"),
                    message: "raw std::thread use: all first-party parallelism goes \
                              through crates/sim/src/pool.rs (deterministic ordering, \
                              panic containment, --jobs resolution)"
                        .into(),
                });
            }
        }
    }
}

/// The keyword the workspace-wide forbid bans, assembled so this file's
/// own code tokens never contain it.
const BANNED_KEYWORD: &str = "unsafe";

/// `lint-unsafe-token`: the banned keyword as a code token, and as a
/// word inside any non-directive comment (so the forbid can never be
/// weakened quietly, not even in prose). Word boundaries exclude `-`
/// and `_`, so `lint-unsafe-token` and the `unsafe_code` lint name are
/// both mentionable.
fn unsafe_token(toks: &[Tok<'_>], out: &mut Vec<Finding>) {
    for t in toks {
        match t.kind {
            TokKind::Ident if t.text == BANNED_KEYWORD => out.push(Finding {
                code: DiagCode::LintUnsafeToken,
                span: span_of(t),
                entity: BANNED_KEYWORD.into(),
                message: "banned keyword in first-party source: every crate carries the \
                          workspace forbid, and the token stays out of comments too"
                    .into(),
            }),
            TokKind::Comment { .. } if !crate::is_directive_comment(t.text) => {
                comment_word_hits(t, BANNED_KEYWORD, out);
            }
            _ => {}
        }
    }
}

/// Reports each boundary-delimited occurrence of `word` inside a
/// comment token, with the occurrence's own line/column.
fn comment_word_hits(t: &Tok<'_>, word: &str, out: &mut Vec<Finding>) {
    let is_word_byte = |b: u8| b.is_ascii_alphanumeric() || b == b'_' || b == b'-';
    let bytes = t.text.as_bytes();
    let (mut line, mut col) = (t.line, t.col);
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            line += 1;
            col = 1;
            i += 1;
            continue;
        }
        let bounded_start = i == 0 || !is_word_byte(bytes[i - 1]);
        // Byte-wise compare: comments hold arbitrary UTF-8 and `i` may
        // sit mid-codepoint, where a str slice would panic.
        if bounded_start && bytes[i..].starts_with(word.as_bytes()) {
            let after = i + word.len();
            if after >= bytes.len() || !is_word_byte(bytes[after]) {
                #[allow(clippy::cast_possible_truncation)]
                let width = word.len() as u32;
                out.push(Finding {
                    code: DiagCode::LintUnsafeToken,
                    span: Span {
                        start_line: line,
                        start_col: col,
                        end_line: line,
                        end_col: col + width,
                    },
                    entity: word.into(),
                    message: "banned keyword in a comment: the unsafe-code forbid also \
                              keeps the bare token out of prose"
                        .into(),
                });
                col += width;
                i = after;
                continue;
            }
        }
        col += 1;
        i += 1;
    }
}

/// `lint-hash-collection`: `HashMap`/`HashSet` anywhere in first-party
/// source. Their iteration order varies per process (randomized hasher
/// seed), which leaks into any ordered output they feed.
fn hash_collection(code: &[&Tok<'_>], out: &mut Vec<Finding>) {
    for t in code {
        if t.is_ident("HashMap") || t.is_ident("HashSet") {
            out.push(Finding {
                code: DiagCode::LintHashCollection,
                span: span_of(t),
                entity: t.text.into(),
                message: "nondeterministic iteration order: use BTreeMap/BTreeSet or an \
                          index-keyed Vec so ordered output is reproducible"
                    .into(),
            });
        }
    }
}

/// Comparator-taking methods whose argument must not rank floats with
/// `partial_cmp`.
const SORT_FAMILY: [&str; 5] = [
    "sort_by",
    "sort_unstable_by",
    "binary_search_by",
    "max_by",
    "min_by",
];

/// `lint-float-sort-partial-cmp`: `partial_cmp` inside the argument of
/// a `sort_by`-family call. NaN makes the comparator non-total, and the
/// fallback branch (`unwrap_or(Equal)` and friends) makes the resulting
/// order input-dependent; `total_cmp` is deterministic for every bit
/// pattern.
fn float_sort(code: &[&Tok<'_>], out: &mut Vec<Finding>) {
    for i in 0..code.len() {
        if !(code[i].kind == TokKind::Ident && SORT_FAMILY.contains(&code[i].text)) {
            continue;
        }
        if code.get(i + 1).map(|t| t.text) != Some("(") {
            continue;
        }
        let mut depth = 0usize;
        for t in &code[i + 1..] {
            match t.kind {
                TokKind::Open if t.text == "(" => depth += 1,
                TokKind::Close if t.text == ")" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokKind::Ident if t.text == "partial_cmp" => out.push(Finding {
                    code: DiagCode::LintFloatSortPartialCmp,
                    span: span_of(t),
                    entity: "partial_cmp".into(),
                    message: format!(
                        "partial_cmp inside `{}`: NaN ordering is unspecified and \
                         input-dependent; use f64::total_cmp (see the NaN regression \
                         suite in crates/core)",
                        code[i].text
                    ),
                }),
                _ => {}
            }
        }
    }
}

/// `lint-entropy-rng`: RNG construction seeded from ambient entropy.
/// Every first-party stream is `seed_from_u64` with a salted per-seed
/// scheme (see `FaultPlan::rng`), so sweeps replay bit-identically.
fn entropy_rng(code: &[&Tok<'_>], out: &mut Vec<Finding>) {
    for i in 0..code.len() {
        let hit = if code[i].is_ident("from_entropy")
            || code[i].is_ident("thread_rng")
            || code[i].is_ident("OsRng")
        {
            Some((span_of(code[i]), code[i].text.to_string()))
        } else {
            match_path(code, i, &["rand", "random"])
                .map(|end| (span_between(code[i], code[end - 1]), "rand::random".into()))
        };
        if let Some((span, entity)) = hit {
            out.push(Finding {
                code: DiagCode::LintEntropyRng,
                span,
                entity,
                message: "entropy-seeded RNG: streams must come from \
                          SmallRng::seed_from_u64 under the salted per-seed scheme so \
                          every cell replays bit-identically"
                    .into(),
            });
        }
    }
}

/// Identifier methods that always allocate when called (matched only
/// after a `.` or `::`, so a local function named `collect` in another
/// position does not trip).
const ALLOC_METHODS: [&str; 6] = [
    "to_string",
    "to_owned",
    "to_vec",
    "collect",
    "with_capacity",
    "clone",
];

/// `lint-hot-path-alloc`: allocating calls inside a function marked
/// `// eua-lint: hot`. `body_ranges` are half-open code-token index
/// ranges of marked function bodies (computed by the directive layer).
///
/// The banned set is lexical and deliberate: constructors that defer
/// their first allocation (`Vec::new`, `String::new`) are allowed —
/// the reused-buffer idiom depends on them — while tokens that always
/// allocate on execution (`vec!`, `format!`, `Box::new`,
/// `String::from`, `.collect()`, `.to_vec()`, `.clone()`, …) are not.
fn hot_path_alloc(code: &[&Tok<'_>], body_ranges: &[(usize, usize)], out: &mut Vec<Finding>) {
    for &(start, end) in body_ranges {
        let mut i = start;
        while i < end.min(code.len()) {
            let t = code[i];
            let prev_kind = i.checked_sub(1).map(|p| code[p].kind);
            let hit = if t.kind == TokKind::Ident
                && ALLOC_METHODS.contains(&t.text)
                && matches!(prev_kind, Some(TokKind::Dot | TokKind::PathSep))
            {
                Some((span_of(t), t.text.to_string()))
            } else if (t.is_ident("vec") || t.is_ident("format"))
                && code.get(i + 1).map(|n| n.kind) == Some(TokKind::Bang)
            {
                Some((span_between(t, code[i + 1]), format!("{}!", t.text)))
            } else if match_path(code, i, &["Box", "new"]).is_some() {
                Some((span_between(t, code[i + 2]), "Box::new".into()))
            } else if match_path(code, i, &["String", "from"]).is_some() {
                Some((span_between(t, code[i + 2]), "String::from".into()))
            } else {
                None
            };
            if let Some((span, entity)) = hit {
                out.push(Finding {
                    code: DiagCode::LintHotPathAlloc,
                    span,
                    entity,
                    message: "allocating call inside a `// eua-lint: hot` function: hoist \
                              the buffer into the owning struct and reuse it across \
                              events (see ScheduleBuilder)"
                        .into(),
                });
            }
            i += 1;
        }
    }
}

/// Runs every hazard rule whose code is in `selected` over the token
/// stream. `code_toks` must be `toks` minus comments; `hot_bodies` are
/// the marked function-body ranges in `code_toks` indices.
pub fn run_hazards(
    toks: &[Tok<'_>],
    code_toks: &[&Tok<'_>],
    hot_bodies: &[(usize, usize)],
    selected: &dyn Fn(DiagCode) -> bool,
) -> Vec<Finding> {
    let mut out = Vec::new();
    if selected(DiagCode::LintTimeUnit) {
        time_unit(code_toks, &mut out);
    }
    if selected(DiagCode::LintWallClock) {
        wall_clock(code_toks, &mut out);
    }
    if selected(DiagCode::LintThreadSpawn) {
        thread_spawn(code_toks, &mut out);
    }
    if selected(DiagCode::LintUnsafeToken) {
        unsafe_token(toks, &mut out);
    }
    if selected(DiagCode::LintHashCollection) {
        hash_collection(code_toks, &mut out);
    }
    if selected(DiagCode::LintFloatSortPartialCmp) {
        float_sort(code_toks, &mut out);
    }
    if selected(DiagCode::LintEntropyRng) {
        entropy_rng(code_toks, &mut out);
    }
    if selected(DiagCode::LintHotPathAlloc) {
        hot_path_alloc(code_toks, hot_bodies, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use crate::lexer::lex;

    fn run_all(src: &str) -> Vec<Finding> {
        let toks = lex(src);
        let code: Vec<&Tok<'_>> = toks
            .iter()
            .filter(|t| !matches!(t.kind, TokKind::Comment { .. }))
            .collect();
        run_hazards(&toks, &code, &[], &|_| true)
    }

    #[test]
    fn time_unit_matches_paths_and_constructors() {
        let hits = run_all("use std::time::Duration;\nlet d = Duration::from_secs_f64(0.5);");
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|f| f.code == DiagCode::LintTimeUnit));
        assert_eq!(hits[1].entity, "Duration::from_secs_f64");
        assert_eq!((hits[1].span.start_line, hits[1].span.start_col), (2, 9));
    }

    #[test]
    fn wall_clock_matches_instant_and_system_time() {
        let hits = run_all("let t = Instant::now(); let s = SystemTime::now();");
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|f| f.code == DiagCode::LintWallClock));
    }

    #[test]
    fn thread_spawn_matches_all_three_tails() {
        let hits = run_all("thread::spawn(f); std::thread::scope(g); thread::Builder::new()");
        assert_eq!(hits.len(), 3);
        assert!(hits.iter().all(|f| f.code == DiagCode::LintThreadSpawn));
    }

    #[test]
    fn float_sort_only_fires_inside_sort_family_args() {
        // A comparison against a constant outside a sort is legitimate
        // (the candidates.rs positivity guard).
        let clean = run_all("if cand.key.partial_cmp(&0.0) != Some(Ordering::Greater) {}");
        assert!(clean.is_empty(), "{clean:?}");
        let hits = run_all("v.sort_by(|a, b| a.partial_cmp(b).unwrap());");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].code, DiagCode::LintFloatSortPartialCmp);
        let hits = run_all("let m = xs.iter().max_by(|a, b| a.partial_cmp(b).unwrap());");
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn total_cmp_sorts_are_clean() {
        assert!(run_all("v.sort_by(|a, b| a.total_cmp(b));").is_empty());
        assert!(run_all("v.sort_by_key(|d| Reverse(d.severity));").is_empty());
    }

    #[test]
    fn entropy_rng_matches_construction_not_seeding() {
        assert!(run_all("let mut rng = SmallRng::seed_from_u64(seed ^ SALT);").is_empty());
        let hits =
            run_all("let a = rand::thread_rng(); let b = SmallRng::from_entropy(); rand::random()");
        assert_eq!(hits.len(), 3);
        assert!(hits.iter().all(|f| f.code == DiagCode::LintEntropyRng));
    }

    #[test]
    fn hash_collections_trip_everywhere() {
        let hits = run_all("fn f(m: &HashMap<u32, u32>) -> HashSet<u32> { todo() }");
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|f| f.code == DiagCode::LintHashCollection));
    }

    #[test]
    fn hazard_names_in_strings_are_data() {
        assert!(run_all(r#"let msg = "thread::spawn HashMap Instant::now";"#).is_empty());
    }

    #[test]
    fn hot_path_alloc_respects_body_ranges() {
        let src = "fn cold() { let v = xs.to_vec(); } fn hot() { let v = xs.to_vec(); }";
        let toks = lex(src);
        let code: Vec<&Tok<'_>> = toks
            .iter()
            .filter(|t| !matches!(t.kind, TokKind::Comment { .. }))
            .collect();
        // Mark only the second fn's body: tokens after its `{`.
        let second_open = code
            .iter()
            .enumerate()
            .filter(|(_, t)| t.text == "{")
            .nth(1)
            .unwrap()
            .0;
        let hits = run_hazards(&toks, &code, &[(second_open, code.len())], &|_| true);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].code, DiagCode::LintHotPathAlloc);
        assert!(hits[0].span.start_col > 40, "the hit is in the marked fn");
    }

    #[test]
    fn hot_path_alloc_allows_lazy_constructors() {
        let src = "fn h() { let v: Vec<u32> = Vec::new(); let s = String::new(); }";
        let toks = lex(src);
        let code: Vec<&Tok<'_>> = toks
            .iter()
            .filter(|t| !matches!(t.kind, TokKind::Comment { .. }))
            .collect();
        let hits = run_hazards(&toks, &code, &[(0, code.len())], &|_| true);
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn hot_path_alloc_flags_macros_and_methods() {
        let src = "fn h() { let a = vec![0; n]; let b = format!(\"x\"); let c = q.clone(); }";
        let toks = lex(src);
        let code: Vec<&Tok<'_>> = toks
            .iter()
            .filter(|t| !matches!(t.kind, TokKind::Comment { .. }))
            .collect();
        let hits = run_hazards(&toks, &code, &[(0, code.len())], &|_| true);
        let entities: Vec<&str> = hits.iter().map(|f| f.entity.as_str()).collect();
        assert_eq!(entities, ["vec!", "format!", "clone"]);
    }

    #[test]
    fn selection_filters_rules() {
        let toks = lex("let t = Instant::now(); let m: HashMap<u8, u8>;");
        let code: Vec<&Tok<'_>> = toks
            .iter()
            .filter(|t| !matches!(t.kind, TokKind::Comment { .. }))
            .collect();
        let hits = run_hazards(&toks, &code, &[], &|c| c == DiagCode::LintWallClock);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].code, DiagCode::LintWallClock);
    }
}
