#![allow(clippy::expect_used, clippy::unwrap_used)] // test code

//! Binary-level contract tests for `eua-lint`: the strict 2>1>0 exit
//! ordering, format selection, `--only` narrowing, the `codes` listing,
//! and a golden SARIF pin for one fixture.
//!
//! Regenerate the golden file with:
//!
//! ```text
//! EUA_REGEN_GOLDEN=1 cargo test -p eua-lint --test cli
//! ```

use std::path::Path;
use std::process::{Command, Output};

use eua_lint::LINT_CODES;

fn eua_lint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_eua-lint"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("eua-lint runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("utf-8 stdout")
}

#[test]
fn clean_file_exits_zero_with_summary() {
    let out = eua_lint(&["check", "src/main.rs"]);
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
    assert_eq!(stdout(&out), "eua-lint: 1 file(s) scanned, 0 finding(s)\n");
}

#[test]
fn hazard_fixture_exits_one() {
    let out = eua_lint(&["check", "tests/fixtures/wall_clock.rs"]);
    assert_eq!(out.status.code(), Some(1));
    let text = stdout(&out);
    assert!(text.contains("lint-wall-clock"), "{text}");
    assert!(text.contains("Instant::now"), "{text}");
}

#[test]
fn missing_path_exits_two_even_with_findings_elsewhere() {
    let out = eua_lint(&["check", "tests/fixtures/wall_clock.rs", "no/such/file.rs"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn usage_errors_exit_two() {
    assert_eq!(eua_lint(&[]).status.code(), Some(2));
    assert_eq!(
        eua_lint(&["check", "--format", "yaml"]).status.code(),
        Some(2)
    );
    assert_eq!(
        eua_lint(&["check", "--frmat", "text"]).status.code(),
        Some(2)
    );
    assert_eq!(
        eua_lint(&["check", "--check", "src/main.rs"]).status.code(),
        Some(2),
        "--check without sarif is a usage error"
    );
    assert_eq!(
        eua_lint(&["check", "--only", "lint-bogus", "src/main.rs"])
            .status
            .code(),
        Some(2)
    );
}

#[test]
fn only_narrows_the_scan() {
    // The wall-clock fixture is clean under a thread-spawn-only scan.
    let out = eua_lint(&[
        "check",
        "--only",
        "lint-thread-spawn",
        "tests/fixtures/wall_clock.rs",
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
    // And dirty when its own code is selected.
    let out = eua_lint(&[
        "check",
        "--only",
        "lint-wall-clock",
        "tests/fixtures/wall_clock.rs",
    ]);
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn only_keeps_directive_meta_codes_live() {
    // A typo'd directive must fail even under a narrowed run.
    let out = eua_lint(&[
        "check",
        "--only",
        "lint-wall-clock",
        "tests/fixtures/unknown_suppression.rs",
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stdout(&out).contains("lint-unknown-suppression"));
}

#[test]
fn codes_lists_the_registry_in_order() {
    let out = eua_lint(&["codes"]);
    assert_eq!(out.status.code(), Some(0));
    let text = stdout(&out);
    let listed: Vec<&str> = text
        .lines()
        .map(|l| l.split_whitespace().next().expect("code column"))
        .collect();
    let expected: Vec<&str> = LINT_CODES.iter().map(|c| c.as_str()).collect();
    assert_eq!(listed, expected);
    assert!(text.lines().all(|l| l.contains("error")), "{text}");
}

#[test]
fn json_format_renders_reports() {
    let out = eua_lint(&["check", "--format", "json", "tests/fixtures/wall_clock.rs"]);
    assert_eq!(out.status.code(), Some(1));
    let text = stdout(&out);
    assert!(text.starts_with('['), "{text}");
    assert!(text.contains("\"lint-wall-clock\""), "{text}");
}

/// The SARIF output for the wall-clock fixture is byte-pinned: a drift
/// means the SARIF writer, the rule's spans, or the message text changed
/// — all deliberate events that must update the fixture.
#[test]
fn wall_clock_sarif_is_golden() {
    let out = eua_lint(&[
        "check",
        "--format",
        "sarif",
        "--check",
        "tests/fixtures/wall_clock.rs",
    ]);
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
    let rendered = stdout(&out);
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/wall_clock.sarif");
    if std::env::var("EUA_REGEN_GOLDEN").is_ok() {
        std::fs::write(&path, &rendered).expect("golden written");
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {}: {e} (regenerate with EUA_REGEN_GOLDEN=1)",
            path.display()
        )
    });
    assert_eq!(
        rendered, golden,
        "SARIF drifted; regenerate with EUA_REGEN_GOLDEN=1 if deliberate"
    );
    // The pinned document names the right driver and both findings.
    assert!(golden.contains("\"name\": \"eua-lint\""));
    assert_eq!(golden.matches("\"ruleId\": \"lint-wall-clock\"").count(), 2);
}
