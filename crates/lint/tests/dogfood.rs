#![allow(clippy::expect_used, clippy::unwrap_used)] // test code

//! The dogfood gate: the workspace's own first-party sources must lint
//! clean. This is the same scan `ci.sh` runs; having it as a test keeps
//! `cargo test` sufficient to catch a new hazard before CI does.

use eua_lint::{all_codes, lint_roots, DEFAULT_ROOTS};

#[test]
fn workspace_sources_lint_clean() {
    let ws = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let roots: Vec<std::path::PathBuf> = DEFAULT_ROOTS
        .iter()
        .map(|r| ws.join(r))
        .filter(|p| p.exists())
        .collect();
    assert!(!roots.is_empty(), "no scan roots under {}", ws.display());
    let lints = lint_roots(&roots, &all_codes()).expect("workspace readable");
    assert!(lints.len() > 50, "suspiciously few files: {}", lints.len());
    let dirty: Vec<String> = lints
        .iter()
        .filter(|l| !l.report.diagnostics.is_empty())
        .map(|l| l.report.render_text())
        .collect();
    assert!(dirty.is_empty(), "{}", dirty.join("\n"));
}
