#![allow(clippy::expect_used, clippy::unwrap_used)] // test code

//! The fixture corpus contract: one minimal bad-snippet `.rs` file per
//! `lint-*` code, each tripping **exactly** its own code — at least one
//! finding, and no finding of any other code. This pins both directions
//! of every rule at once: the rule fires on its canonical hazard, and no
//! other rule misfires on the same snippet (the cross-contamination trap
//! that grep-based lints cannot express).

use std::collections::BTreeSet;
use std::path::PathBuf;

use eua_analyze::DiagCode;
use eua_lint::{all_codes, lint_source, LINT_CODES};

fn fixture_path(name: &str) -> PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// The fixture file for a code: `lint-time-unit` → `time_unit.rs`.
fn fixture_name(code: DiagCode) -> String {
    format!(
        "{}.rs",
        code.as_str()
            .strip_prefix("lint-")
            .expect("lint codes are lint-*")
            .replace('-', "_")
    )
}

/// Lints one fixture and returns the distinct codes plus finding count.
fn lint_fixture(code: DiagCode) -> (BTreeSet<&'static str>, usize) {
    let path = fixture_path(&fixture_name(code));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()));
    let lint = lint_source(&path.display().to_string(), &text, &all_codes());
    let codes: BTreeSet<&'static str> = lint
        .report
        .diagnostics
        .iter()
        .map(|d| d.code.as_str())
        .collect();
    (codes, lint.report.diagnostics.len())
}

/// Every code has a fixture, and every fixture trips exactly its code.
#[test]
fn each_code_has_a_fixture_tripping_exactly_itself() {
    for code in LINT_CODES {
        let (codes, count) = lint_fixture(code);
        assert!(count >= 1, "fixture for {} tripped nothing", code.as_str());
        assert_eq!(
            codes,
            BTreeSet::from([code.as_str()]),
            "fixture for {} must trip exactly that code",
            code.as_str()
        );
    }
}

/// No stray files: the corpus is exactly one fixture per code, so a
/// renamed code cannot leave an orphan behind.
#[test]
fn fixture_corpus_is_exactly_one_file_per_code() {
    let dir = fixture_path("");
    let mut on_disk: Vec<String> = std::fs::read_dir(&dir)
        .expect("fixtures dir")
        .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
        .collect();
    on_disk.sort();
    let mut expected: Vec<String> = LINT_CODES.iter().map(|c| fixture_name(*c)).collect();
    expected.sort();
    assert_eq!(on_disk, expected);
}

/// Spot-check spans and entities on the wall-clock fixture (the same
/// fixture the golden SARIF pin renders, so a drift here points at the
/// rule rather than the SARIF writer).
#[test]
fn wall_clock_fixture_has_token_exact_spans() {
    let path = fixture_path("wall_clock.rs");
    let text = std::fs::read_to_string(&path).expect("fixture");
    let lint = lint_source("tests/fixtures/wall_clock.rs", &text, &all_codes());
    let entities: Vec<&str> = lint
        .report
        .diagnostics
        .iter()
        .filter_map(|d| d.entity.as_deref())
        .collect();
    assert_eq!(entities, ["Instant::now", "SystemTime"]);
    let spans: Vec<_> = lint.spans.iter().map(|s| s.expect("spanned")).collect();
    assert_eq!((spans[0].start_line, spans[0].start_col), (5, 19));
    assert_eq!(spans[0].end_col, spans[0].start_col + 12);
    assert_eq!((spans[1].start_line, spans[1].start_col), (6, 17));
}

/// The hot-path fixture only fires inside the marked function.
#[test]
fn hot_path_fixture_spares_the_unmarked_function() {
    let path = fixture_path("hot_path_alloc.rs");
    let text = std::fs::read_to_string(&path).expect("fixture");
    let lint = lint_source("hot_path_alloc.rs", &text, &all_codes());
    assert_eq!(lint.report.diagnostics.len(), 1);
    // The marked `decide` body starts on line 9; `cold_copy`'s identical
    // call on line 5 must stay clean.
    assert_eq!(lint.spans[0].expect("spanned").start_line, 10);
}
