//! Fixture: trips `lint-entropy-rng` only (entropy-seeded construction;
//! `seed_from_u64` below is the sanctioned form and stays clean).

fn fresh_stream(seed: u64) -> (SmallRng, SmallRng) {
    let good = SmallRng::seed_from_u64(seed);
    let bad = SmallRng::from_entropy();
    (good, bad)
}
