//! Fixture: trips `lint-float-sort-partial-cmp` only. The comparison
//! against a constant outside any sort argument is deliberately clean.

fn rank(xs: &mut [f64], floor: f64) -> bool {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[0].partial_cmp(&floor) == Some(core::cmp::Ordering::Greater)
}
