//! Fixture: trips `lint-hash-collection` only (once per named type).

fn histogram(xs: &[u64]) -> HashMap<u64, u64> {
    let mut out = HashMap::default();
    for x in xs {
        *out.entry(*x).or_insert(0) += 1;
    }
    out
}
