//! Fixture: trips `lint-hot-path-alloc` only — the same call in the
//! unmarked function is deliberately clean.

fn cold_copy(xs: &[u64]) -> Vec<u64> {
    xs.to_vec()
}

// eua-lint: hot
fn decide(xs: &[u64]) -> Vec<u64> {
    xs.to_vec()
}
