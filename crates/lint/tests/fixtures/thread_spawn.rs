//! Fixture: trips `lint-thread-spawn` only.

fn fan_out(work: fn()) {
    let handle = std::thread::spawn(work);
    handle.join().ok();
}
