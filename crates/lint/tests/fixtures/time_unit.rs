//! Fixture: trips `lint-time-unit` only (raw std::time path and a
//! seconds-based constructor). Fixtures are lexed, never compiled.

fn pause(ms: u64) -> std::time::Duration {
    Duration::from_secs_f64(ms as f64 / 1e3)
}
