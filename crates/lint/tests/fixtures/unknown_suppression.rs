//! Fixture: trips `lint-unknown-suppression` only (the allow names a
//! code that does not exist).

// eua-lint: allow(lint-made-up)
fn target() -> u32 {
    7
}
