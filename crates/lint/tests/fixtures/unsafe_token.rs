//! Fixture: trips `lint-unsafe-token` only — once for the keyword in
//! code, once for the bare word in the comment below.

// Even prose saying unsafe is fine here would itself be flagged.
fn read(p: *const u8) -> u8 {
    unsafe { *p }
}
