//! Fixture: trips `lint-unused-suppression` only (the allow names a
//! real code but the covered line is already clean).

// eua-lint: allow(lint-wall-clock)
fn already_clean() -> u32 {
    7
}
