//! Fixture: trips `lint-wall-clock` only (no std::time path appears, so
//! the time-unit rule stays silent).

fn stamp() -> bool {
    let started = Instant::now();
    let epoch = SystemTime::now();
    epoch.elapsed().is_ok() && started.elapsed().as_nanos() > 0
}
