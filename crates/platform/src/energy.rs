//! Martin's system-level energy-consumption model.
//!
//! When a component operates at frequency `f`, its dynamic power is a
//! polynomial in `f`: the CPU core contributes `S3·f³`, second-order effects
//! (DC-DC regulator efficiency, CMOS leakage) contribute `S2·f²`, fixed-
//! voltage components such as main memory contribute `S1·f`, and
//! frequency-independent components such as displays contribute `S0`.
//! Dividing system power by the cycle rate gives the **energy per cycle**
//!
//! ```text
//! E(f) = S3·f² + S2·f + S1 + S0/f        (paper, Equation 1)
//! ```
//!
//! Unlike the CPU-only model (`S3` alone), `E(f)` is not monotonic: the
//! `S0/f` term grows as the clock slows, so there is an interior
//! energy-optimal frequency. This is what makes the per-task UER-optimal
//! clamp in EUA\* meaningful.

use std::fmt;

use crate::error::PlatformError;
use crate::frequency::{Frequency, FrequencyTable};
use crate::units::Cycles;

/// The per-cycle energy envelope of a discrete frequency table under one
/// [`EnergyModel`]: the cheapest and dearest `E(f)` over the table, with
/// the frequencies that attain them.
///
/// Because `E(f)` is non-monotonic (the `S0/f` term), the cheapest
/// frequency is generally *interior*; static analyses use the envelope to
/// bracket achievable utility-and-energy ratios without enumerating
/// schedules. Ties go to the lowest frequency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyInterval {
    /// Smallest per-cycle energy over the table.
    pub min: f64,
    /// Largest per-cycle energy over the table.
    pub max: f64,
    /// Frequency attaining `min` (lowest such, on ties).
    pub cheapest: Frequency,
    /// Frequency attaining `max` (lowest such, on ties).
    pub dearest: Frequency,
}

/// Coefficients `(S3, S2, S1, S0)` of Martin's model, before binding to a
/// concrete maximum frequency.
///
/// The paper's Table 2 expresses the static coefficients relative to the
/// maximum frequency `f_m` so that each power term is comparable in
/// magnitude at full speed; [`EnergySetting::model`] performs that binding.
///
/// # Example
///
/// ```
/// use eua_platform::{EnergySetting, Frequency};
///
/// let e3 = EnergySetting::e3();
/// let model = e3.model(Frequency::from_mhz(100));
/// // Under E3 the optimal frequency is interior, not the minimum:
/// let opt = model.energy_optimal_speed();
/// assert!(opt > 0.0 && opt < 100.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergySetting {
    name: &'static str,
    /// Cubic (CPU core) power coefficient.
    s3: f64,
    /// Quadratic (regulator/leakage) coefficient.
    s2: f64,
    /// Linear coefficient as a fraction of `f_m²` (fixed-voltage components).
    s1_rel: f64,
    /// Constant coefficient as a fraction of `f_m³` (constant-power
    /// components).
    s0_rel: f64,
}

impl EnergySetting {
    /// Table 2 setting **E1**: the conventional CPU-only model,
    /// `(S3, S2, S1, S0) = (1, 0, 0, 0)`.
    #[must_use]
    pub const fn e1() -> Self {
        EnergySetting {
            name: "E1",
            s3: 1.0,
            s2: 0.0,
            s1_rel: 0.0,
            s0_rel: 0.0,
        }
    }

    /// Table 2 setting **E2**: mild static consumption,
    /// `S1 = 0.1·f_m²`, `S0 = 0.1·f_m³`.
    #[must_use]
    pub const fn e2() -> Self {
        EnergySetting {
            name: "E2",
            s3: 1.0,
            s2: 0.0,
            s1_rel: 0.1,
            s0_rel: 0.1,
        }
    }

    /// Table 2 setting **E3**: heavy static consumption,
    /// `S1 = 0.5·f_m²`, `S0 = 0.5·f_m³`.
    #[must_use]
    pub const fn e3() -> Self {
        EnergySetting {
            name: "E3",
            s3: 1.0,
            s2: 0.0,
            s1_rel: 0.5,
            s0_rel: 0.5,
        }
    }

    /// All three Table 2 settings, in order.
    #[must_use]
    pub const fn all() -> [EnergySetting; 3] {
        [
            EnergySetting::e1(),
            EnergySetting::e2(),
            EnergySetting::e3(),
        ]
    }

    /// A custom setting with explicit relative coefficients.
    ///
    /// `s1_rel` and `s0_rel` are fractions of `f_m²` and `f_m³`
    /// respectively, mirroring how the paper's Table 2 scales the static
    /// terms to the platform's top speed.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::InvalidEnergyCoefficient`] if any
    /// coefficient is negative or non-finite.
    pub fn custom(
        name: &'static str,
        s3: f64,
        s2: f64,
        s1_rel: f64,
        s0_rel: f64,
    ) -> Result<Self, PlatformError> {
        for (coeff_name, value) in [("s3", s3), ("s2", s2), ("s1", s1_rel), ("s0", s0_rel)] {
            if !value.is_finite() || value < 0.0 {
                return Err(PlatformError::InvalidEnergyCoefficient {
                    name: coeff_name,
                    value,
                });
            }
        }
        Ok(EnergySetting {
            name,
            s3,
            s2,
            s1_rel,
            s0_rel,
        })
    }

    /// The setting's display name (`"E1"`, `"E2"`, `"E3"`, or custom).
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The unbound coefficients `(S3, S2, S1/fm², S0/fm³)` — the exact
    /// values [`EnergySetting::model`] scales by `f_max`. Recording these
    /// (rather than the bound model) lets an offline auditor rebind the
    /// same setting to a different table's maximum frequency.
    #[must_use]
    pub fn relative_coefficients(&self) -> (f64, f64, f64, f64) {
        (self.s3, self.s2, self.s1_rel, self.s0_rel)
    }

    /// Binds the setting to a platform's maximum frequency, producing a
    /// concrete [`EnergyModel`].
    #[must_use]
    pub fn model(&self, f_max: Frequency) -> EnergyModel {
        let fm = f_max.as_f64();
        EnergyModel {
            name: self.name,
            s3: self.s3,
            s2: self.s2,
            s1: self.s1_rel * fm * fm,
            s0: self.s0_rel * fm * fm * fm,
        }
    }
}

impl fmt::Display for EnergySetting {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: S3={} S2={} S1={}·fm² S0={}·fm³",
            self.name, self.s3, self.s2, self.s1_rel, self.s0_rel
        )
    }
}

/// A concrete instance of Martin's model with bound coefficients.
///
/// Produced by [`EnergySetting::model`]; see the module documentation for
/// the formula.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    name: &'static str,
    s3: f64,
    s2: f64,
    s1: f64,
    s0: f64,
}

impl EnergyModel {
    /// The underlying setting's name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The bound coefficients `(S3, S2, S1, S0)`.
    #[must_use]
    pub fn coefficients(&self) -> (f64, f64, f64, f64) {
        (self.s3, self.s2, self.s1, self.s0)
    }

    /// Energy consumed per cycle at frequency `f`:
    /// `E(f) = S3·f² + S2·f + S1 + S0/f`.
    #[must_use]
    pub fn energy_per_cycle(&self, f: Frequency) -> f64 {
        let fv = f.as_f64();
        self.s3 * fv * fv + self.s2 * fv + self.s1 + self.s0 / fv
    }

    /// Energy consumed executing `cycles` of work at frequency `f`.
    #[must_use]
    pub fn energy_for(&self, cycles: Cycles, f: Frequency) -> f64 {
        cycles.as_f64() * self.energy_per_cycle(f)
    }

    /// The per-cycle energy envelope of `table` under this model.
    ///
    /// Iterates the table ascending; strict comparisons mean the lowest
    /// frequency wins ties for both ends of the interval.
    #[must_use]
    pub fn per_cycle_interval(&self, table: &FrequencyTable) -> EnergyInterval {
        // Tables are non-empty by construction; seed from the slowest
        // frequency and sweep the rest.
        let first = table.min();
        let e0 = self.energy_per_cycle(first);
        let mut interval = EnergyInterval {
            min: e0,
            max: e0,
            cheapest: first,
            dearest: first,
        };
        for f in table.iter() {
            let e = self.energy_per_cycle(f);
            if e < interval.min {
                interval.min = e;
                interval.cheapest = f;
            }
            if e > interval.max {
                interval.max = e;
                interval.dearest = f;
            }
        }
        interval
    }

    /// The continuous frequency (cycles/µs) minimizing energy per cycle.
    ///
    /// Solving `dE/df = 2·S3·f + S2 − S0/f² = 0`; with `S2 = 0` this is
    /// `f* = (S0 / (2·S3))^(1/3)`. Returns `0.0` when the model is CPU-only
    /// (`S0 = 0`), meaning "the slower the better".
    #[must_use]
    pub fn energy_optimal_speed(&self) -> f64 {
        if self.s0 == 0.0 {
            return 0.0;
        }
        if self.s3 == 0.0 && self.s2 == 0.0 {
            // Pure constant + static linear: energy per cycle strictly
            // decreases with f, so run as fast as possible.
            return f64::INFINITY;
        }
        // Newton iteration on g(f) = 2·S3·f³ + S2·f² − S0 = 0, which has a
        // single positive root because g is increasing for f > 0.
        let mut f = (self.s0 / (2.0 * self.s3 + self.s2).max(f64::MIN_POSITIVE))
            .cbrt()
            .max(1e-9);
        for _ in 0..64 {
            let g = 2.0 * self.s3 * f * f * f + self.s2 * f * f - self.s0;
            let dg = 6.0 * self.s3 * f * f + 2.0 * self.s2 * f;
            if dg == 0.0 {
                break;
            }
            let next = f - g / dg;
            if !next.is_finite() || (next - f).abs() < 1e-12 * f.max(1.0) {
                f = next.max(1e-12);
                break;
            }
            f = next.max(1e-12);
        }
        f
    }
}

impl fmt::Display for EnergyModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: E(f) = {}·f² + {}·f + {} + {}/f",
            self.name, self.s3, self.s2, self.s1, self.s0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fm() -> Frequency {
        Frequency::from_mhz(100)
    }

    #[test]
    fn e1_is_pure_quadratic_per_cycle() {
        let m = EnergySetting::e1().model(fm());
        assert!((m.energy_per_cycle(Frequency::from_mhz(10)) - 100.0).abs() < 1e-9);
        assert!((m.energy_per_cycle(fm()) - 10_000.0).abs() < 1e-9);
    }

    #[test]
    fn e2_and_e3_match_reconstruction_at_fmax() {
        // At f = f_m: E(f_m) = f_m²·(1 + s1_rel + s0_rel).
        let e2 = EnergySetting::e2().model(fm());
        assert!((e2.energy_per_cycle(fm()) - 10_000.0 * 1.2).abs() < 1e-6);
        let e3 = EnergySetting::e3().model(fm());
        assert!((e3.energy_per_cycle(fm()) - 10_000.0 * 2.0).abs() < 1e-6);
    }

    #[test]
    fn e1_energy_optimal_speed_is_zero() {
        assert_eq!(EnergySetting::e1().model(fm()).energy_optimal_speed(), 0.0);
    }

    #[test]
    fn e3_energy_optimal_speed_is_interior() {
        // f* = (0.5·f_m³ / 2)^(1/3) = f_m·(0.25)^(1/3) ≈ 0.63·f_m.
        let opt = EnergySetting::e3().model(fm()).energy_optimal_speed();
        assert!((opt - 100.0 * 0.25f64.cbrt()).abs() < 1e-6, "got {opt}");
    }

    #[test]
    fn optimal_speed_minimizes_energy_among_neighbors() {
        for setting in [EnergySetting::e2(), EnergySetting::e3()] {
            let m = setting.model(fm());
            let opt = m.energy_optimal_speed();
            let at = |f: f64| m.s3 * f * f + m.s2 * f + m.s1 + m.s0 / f;
            assert!(at(opt) <= at(opt * 1.01) + 1e-9);
            assert!(at(opt) <= at(opt * 0.99) + 1e-9);
        }
    }

    #[test]
    fn energy_for_scales_linearly_with_cycles() {
        let m = EnergySetting::e1().model(fm());
        let one = m.energy_for(Cycles::new(1), fm());
        let thousand = m.energy_for(Cycles::new(1_000), fm());
        assert!((thousand - 1_000.0 * one).abs() < 1e-6);
    }

    #[test]
    fn custom_rejects_bad_coefficients() {
        assert!(EnergySetting::custom("bad", -1.0, 0.0, 0.0, 0.0).is_err());
        assert!(EnergySetting::custom("bad", 1.0, f64::NAN, 0.0, 0.0).is_err());
        assert!(EnergySetting::custom("ok", 1.0, 0.5, 0.1, 0.2).is_ok());
    }

    #[test]
    fn newton_handles_nonzero_s2() {
        let m = EnergySetting::custom("mix", 1.0, 2.0, 0.0, 0.3)
            .unwrap()
            .model(fm());
        let opt = m.energy_optimal_speed();
        // Root of 2f³ + 2f² = S0 = 0.3e6.
        let g = 2.0 * opt * opt * opt + 2.0 * opt * opt - 0.3 * 1e6;
        assert!(g.abs() < 1e-3, "residual {g}");
    }

    #[test]
    fn degenerate_static_only_model_prefers_fast() {
        let m = EnergySetting::custom("static", 0.0, 0.0, 0.0, 1.0)
            .unwrap()
            .model(fm());
        assert!(m.energy_optimal_speed().is_infinite());
    }

    #[test]
    fn e1_interval_is_monotone_min_to_max() {
        // CPU-only energy grows with f: cheapest = slowest, dearest = fastest.
        let table = FrequencyTable::powernow_k6();
        let iv = EnergySetting::e1()
            .model(table.max())
            .per_cycle_interval(&table);
        assert_eq!(iv.cheapest, table.min());
        assert_eq!(iv.dearest, table.max());
        assert!(iv.min < iv.max);
    }

    #[test]
    fn e3_interval_cheapest_is_interior() {
        // E3's optimum is ≈ 0.63·f_m, so neither table endpoint is cheapest.
        let table = FrequencyTable::powernow_k6();
        let iv = EnergySetting::e3()
            .model(table.max())
            .per_cycle_interval(&table);
        assert_ne!(iv.cheapest, table.min());
        assert_ne!(iv.cheapest, table.max());
        let m = EnergySetting::e3().model(table.max());
        for f in table.iter() {
            let e = m.energy_per_cycle(f);
            assert!(e >= iv.min - 1e-9 && e <= iv.max + 1e-9);
        }
    }

    #[test]
    fn singleton_table_interval_is_degenerate() {
        let table = FrequencyTable::fixed(64);
        let iv = EnergySetting::e2()
            .model(table.max())
            .per_cycle_interval(&table);
        assert_eq!(iv.min, iv.max);
        assert_eq!(iv.cheapest, iv.dearest);
    }

    #[test]
    fn display_is_informative() {
        let s = EnergySetting::e2().to_string();
        assert!(s.contains("E2"));
        let m = EnergySetting::e2().model(fm()).to_string();
        assert!(m.contains("E(f)"));
    }
}
