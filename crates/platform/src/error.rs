//! Error types for platform-model construction and frequency selection.

use std::error::Error;
use std::fmt;

/// Errors produced when building or querying the platform model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PlatformError {
    /// A frequency table was constructed with no frequencies.
    EmptyFrequencyTable,
    /// A frequency table contained a zero frequency (division by zero in
    /// every time conversion).
    ZeroFrequency,
    /// A frequency table was not strictly increasing.
    UnsortedFrequencyTable {
        /// Index of the first out-of-order entry.
        index: usize,
    },
    /// A demanded frequency exceeds the highest available frequency, so
    /// `selectFreq` cannot return a value (the paper handles this by
    /// clamping to `f_m` before calling `selectFreq`).
    DemandExceedsMaxFrequency {
        /// The demanded processor speed, in cycles per microsecond.
        demanded: f64,
        /// The highest available frequency, in cycles per microsecond.
        max: u64,
    },
    /// An energy-model coefficient was negative or non-finite.
    InvalidEnergyCoefficient {
        /// Which coefficient (`"s3"`, `"s2"`, `"s1"`, `"s0"`).
        name: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::EmptyFrequencyTable => {
                write!(f, "frequency table must contain at least one frequency")
            }
            PlatformError::ZeroFrequency => {
                write!(f, "frequency table must not contain a zero frequency")
            }
            PlatformError::UnsortedFrequencyTable { index } => {
                write!(
                    f,
                    "frequency table must be strictly increasing (violated at index {index})"
                )
            }
            PlatformError::DemandExceedsMaxFrequency { demanded, max } => {
                write!(
                    f,
                    "demanded speed {demanded} cycles/us exceeds maximum frequency {max}"
                )
            }
            PlatformError::InvalidEnergyCoefficient { name, value } => {
                write!(
                    f,
                    "energy coefficient {name} must be finite and non-negative, got {value}"
                )
            }
        }
    }
}

impl Error for PlatformError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let msgs = [
            PlatformError::EmptyFrequencyTable.to_string(),
            PlatformError::ZeroFrequency.to_string(),
            PlatformError::UnsortedFrequencyTable { index: 2 }.to_string(),
            PlatformError::DemandExceedsMaxFrequency {
                demanded: 120.0,
                max: 100,
            }
            .to_string(),
            PlatformError::InvalidEnergyCoefficient {
                name: "s3",
                value: -1.0,
            }
            .to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(m.chars().next().unwrap().is_lowercase());
            assert!(!m.ends_with('.'));
        }
    }

    #[test]
    fn error_is_std_error_send_sync() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<PlatformError>();
    }
}
