//! Discrete DVS clock frequencies and frequency tables.

use std::fmt;

use crate::error::PlatformError;
use crate::units::{Cycles, TimeDelta};

/// A processor clock frequency, in cycles per microsecond.
///
/// One cycle-per-microsecond equals one MHz, so the AMD K6-2+ frequency
/// `100 MHz` is represented as `Frequency::from_mhz(100)`. Keeping the unit
/// at cycles/µs makes `cycles / frequency` an exact integer number of
/// microseconds (rounded up), which is what the simulator relies on for
/// determinism.
///
/// # Example
///
/// ```
/// use eua_platform::{Cycles, Frequency, TimeDelta};
///
/// let f = Frequency::from_mhz(50);
/// assert_eq!(f.execution_time(Cycles::new(100)), TimeDelta::from_micros(2));
/// // Partial microseconds round up: 101 cycles still need 3 µs at 50 MHz.
/// assert_eq!(f.execution_time(Cycles::new(101)), TimeDelta::from_micros(3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Frequency(u64);

impl Frequency {
    /// Creates a frequency of `mhz` cycles per microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `mhz` is zero; a zero clock can execute nothing and would
    /// make every time conversion divide by zero. Use
    /// [`FrequencyTable::new`] for fallible validation of user input.
    #[must_use]
    pub const fn from_mhz(mhz: u64) -> Self {
        assert!(mhz > 0, "frequency must be positive");
        Frequency(mhz)
    }

    /// The frequency in cycles per microsecond (numerically MHz).
    #[must_use]
    pub const fn as_mhz(self) -> u64 {
        self.0
    }

    /// The frequency as `f64` cycles/µs, for energy-model arithmetic.
    #[must_use]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Time needed to execute `cycles` at this frequency, rounded up to the
    /// next whole microsecond (a job is only observed complete at integer
    /// clock ticks).
    #[must_use]
    pub const fn execution_time(self, cycles: Cycles) -> TimeDelta {
        TimeDelta::from_micros(cycles.get().div_ceil(self.0))
    }

    /// Work performed in `delta` time at this frequency.
    #[must_use]
    pub const fn cycles_in(self, delta: TimeDelta) -> Cycles {
        Cycles::new(delta.as_micros().saturating_mul(self.0))
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}MHz", self.0)
    }
}

/// An ordered set of discrete frequencies a DVS processor can run at,
/// `f_1 < f_2 < … < f_m`.
///
/// # Example
///
/// ```
/// use eua_platform::FrequencyTable;
///
/// # fn main() -> Result<(), eua_platform::PlatformError> {
/// let table = FrequencyTable::powernow_k6();
/// assert_eq!(table.len(), 7);
/// assert_eq!(table.max().as_mhz(), 100);
/// assert_eq!(table.min().as_mhz(), 36);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FrequencyTable {
    freqs: Vec<Frequency>,
}

impl FrequencyTable {
    /// Creates a table from strictly-increasing positive frequencies in MHz.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::EmptyFrequencyTable`] for an empty list,
    /// [`PlatformError::ZeroFrequency`] if any entry is zero, and
    /// [`PlatformError::UnsortedFrequencyTable`] if the list is not strictly
    /// increasing.
    pub fn new(mhz: impl IntoIterator<Item = u64>) -> Result<Self, PlatformError> {
        let raw: Vec<u64> = mhz.into_iter().collect();
        if raw.is_empty() {
            return Err(PlatformError::EmptyFrequencyTable);
        }
        if raw.contains(&0) {
            return Err(PlatformError::ZeroFrequency);
        }
        for (i, pair) in raw.windows(2).enumerate() {
            if pair[0] >= pair[1] {
                return Err(PlatformError::UnsortedFrequencyTable { index: i + 1 });
            }
        }
        Ok(FrequencyTable {
            freqs: raw.into_iter().map(Frequency::from_mhz).collect(),
        })
    }

    /// The AMD K6-2+ PowerNow! frequency set used throughout the paper's
    /// evaluation: {36, 55, 64, 73, 82, 91, 100} MHz.
    #[must_use]
    #[allow(clippy::expect_used)] // static preset, valid by inspection
    pub fn powernow_k6() -> Self {
        FrequencyTable::new([36, 55, 64, 73, 82, 91, 100])
            .expect("PowerNow preset is valid by construction")
    }

    /// A single-speed table (no DVS), pinned at `mhz`.
    ///
    /// # Panics
    ///
    /// Panics if `mhz` is zero.
    #[must_use]
    #[allow(clippy::expect_used)] // the panic on zero is documented API
    pub fn fixed(mhz: u64) -> Self {
        FrequencyTable::new([mhz]).expect("a single positive frequency is valid")
    }

    /// Number of available frequencies `m`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.freqs.len()
    }

    /// `false` always — an empty table cannot be constructed — but provided
    /// for API completeness alongside [`FrequencyTable::len`].
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.freqs.is_empty()
    }

    /// The highest frequency `f_m`.
    #[must_use]
    #[allow(clippy::expect_used)] // the constructor rejects empty tables
    pub fn max(&self) -> Frequency {
        *self
            .freqs
            .last()
            .expect("table is non-empty by construction")
    }

    /// The lowest frequency `f_1`.
    #[must_use]
    pub fn min(&self) -> Frequency {
        self.freqs[0]
    }

    /// Iterates over the frequencies in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = Frequency> + '_ {
        self.freqs.iter().copied()
    }

    /// The frequencies as a slice, in increasing order.
    #[must_use]
    pub fn as_slice(&self) -> &[Frequency] {
        &self.freqs
    }

    /// The lowest table frequency whose speed is at least `demand`
    /// cycles/µs, i.e. the paper's `selectFreq(x)`.
    ///
    /// Returns `None` when `demand` exceeds `f_m` (the paper then clamps
    /// the demand to `f_m` before retrying; see
    /// [`crate::select::select_freq`] for the clamping wrapper).
    #[must_use]
    pub fn lowest_at_least(&self, demand: f64) -> Option<Frequency> {
        if !demand.is_finite() {
            return None;
        }
        self.freqs.iter().copied().find(|f| f.as_f64() >= demand)
    }
}

impl fmt::Display for FrequencyTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, freq) in self.freqs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{freq}")?;
        }
        write!(f, "}}")
    }
}

impl<'a> IntoIterator for &'a FrequencyTable {
    type Item = Frequency;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, Frequency>>;
    fn into_iter(self) -> Self::IntoIter {
        self.freqs.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn execution_time_rounds_up() {
        let f = Frequency::from_mhz(73);
        assert_eq!(f.execution_time(Cycles::new(73)), TimeDelta::from_micros(1));
        assert_eq!(f.execution_time(Cycles::new(74)), TimeDelta::from_micros(2));
        assert_eq!(f.execution_time(Cycles::ZERO), TimeDelta::ZERO);
    }

    #[test]
    fn cycles_in_is_inverse_of_execution_time_for_exact_multiples() {
        let f = Frequency::from_mhz(50);
        let c = Cycles::new(50 * 123);
        let t = f.execution_time(c);
        assert_eq!(f.cycles_in(t), c);
    }

    #[test]
    fn powernow_preset_matches_paper() {
        let t = FrequencyTable::powernow_k6();
        let mhz: Vec<u64> = t.iter().map(Frequency::as_mhz).collect();
        assert_eq!(mhz, vec![36, 55, 64, 73, 82, 91, 100]);
    }

    #[test]
    fn new_rejects_empty_zero_and_unsorted() {
        assert_eq!(
            FrequencyTable::new([]),
            Err(PlatformError::EmptyFrequencyTable)
        );
        assert_eq!(
            FrequencyTable::new([0, 10]),
            Err(PlatformError::ZeroFrequency)
        );
        assert_eq!(
            FrequencyTable::new([10, 10]),
            Err(PlatformError::UnsortedFrequencyTable { index: 1 })
        );
        assert_eq!(
            FrequencyTable::new([10, 20, 15]),
            Err(PlatformError::UnsortedFrequencyTable { index: 2 })
        );
    }

    #[test]
    fn lowest_at_least_picks_ceiling_frequency() {
        let t = FrequencyTable::powernow_k6();
        assert_eq!(t.lowest_at_least(0.0).unwrap().as_mhz(), 36);
        assert_eq!(t.lowest_at_least(36.0).unwrap().as_mhz(), 36);
        assert_eq!(t.lowest_at_least(36.1).unwrap().as_mhz(), 55);
        assert_eq!(t.lowest_at_least(100.0).unwrap().as_mhz(), 100);
        assert!(t.lowest_at_least(100.1).is_none());
        assert!(t.lowest_at_least(f64::NAN).is_none());
        assert!(t.lowest_at_least(f64::INFINITY).is_none());
    }

    #[test]
    fn fixed_table_is_single_speed() {
        let t = FrequencyTable::fixed(100);
        assert_eq!(t.len(), 1);
        assert_eq!(t.max(), t.min());
    }

    #[test]
    fn display_lists_frequencies() {
        let t = FrequencyTable::new([10, 20]).unwrap();
        assert_eq!(t.to_string(), "{10MHz, 20MHz}");
    }
}
