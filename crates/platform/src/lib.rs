//! DVS processor platform model for the EUA\* reproduction.
//!
//! This crate is the hardware-facing substrate of the workspace. It provides:
//!
//! * [`units`] — strongly-typed time ([`SimTime`], [`TimeDelta`]), work
//!   ([`Cycles`]) and clock-frequency ([`Frequency`]) quantities. All time is
//!   integer microseconds and frequencies are integer cycles-per-microsecond
//!   (numerically equal to MHz), so `execution time = cycles / frequency`
//!   is exact integer arithmetic and simulations are bit-reproducible.
//! * [`frequency`] — discrete DVS frequency tables, including the AMD
//!   K6-2+ PowerNow! preset used by the paper's evaluation
//!   ([`FrequencyTable::powernow_k6`]).
//! * [`energy`] — Martin's system-level energy model: per-cycle energy
//!   `E(f) = S3·f² + S2·f + S1 + S0/f`, with the paper's Table 2 settings
//!   E1/E2/E3 ([`EnergySetting`]).
//! * [`select`] — frequency-selection helpers: `selectFreq` (lowest
//!   frequency ≥ a demand) and the per-task UER-optimal frequency search
//!   used by EUA\*'s `offlineComputing`.
//!
//! # Example
//!
//! ```
//! use eua_platform::{Cycles, EnergySetting, FrequencyTable, TimeDelta};
//!
//! # fn main() -> Result<(), eua_platform::PlatformError> {
//! let table = FrequencyTable::powernow_k6();
//! let energy = EnergySetting::e1().model(table.max());
//!
//! // Executing one million cycles at the top frequency (100 cycles/µs)
//! // takes 10 ms and costs 1e6 · E(100) energy units.
//! let f = table.max();
//! assert_eq!(f.execution_time(Cycles::new(1_000_000)), TimeDelta::from_micros(10_000));
//! let per_cycle = energy.energy_per_cycle(f);
//! assert!(per_cycle > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod energy;
pub mod error;
pub mod frequency;
pub mod select;
pub mod units;

pub use energy::{EnergyInterval, EnergyModel, EnergySetting};
pub use error::PlatformError;
pub use frequency::{Frequency, FrequencyTable};
pub use select::{optimal_uer_frequency, select_freq};
pub use units::{Cycles, SimTime, TimeDelta};
