//! Frequency-selection helpers shared by the schedulers.

use crate::energy::EnergyModel;
use crate::frequency::{Frequency, FrequencyTable};
use crate::units::{Cycles, TimeDelta};

/// The paper's `selectFreq(x)` with the Algorithm 2 overload clamp.
///
/// Returns the lowest table frequency whose speed is at least `demand`
/// cycles/µs. During overload the required speed can exceed `f_m`, in which
/// case the bare table lookup fails; Algorithm 2 (line 9) resolves this by
/// capping the demand at `f_m`, so this helper returns `f_m` for any demand
/// above it (including non-finite demands, which arise from a zero
/// time-to-critical-time denominator).
///
/// # Example
///
/// ```
/// use eua_platform::{select_freq, FrequencyTable};
///
/// let table = FrequencyTable::powernow_k6();
/// assert_eq!(select_freq(&table, 60.0).as_mhz(), 64);
/// assert_eq!(select_freq(&table, 250.0).as_mhz(), 100); // overload clamp
/// ```
#[must_use]
pub fn select_freq(table: &FrequencyTable, demand: f64) -> Frequency {
    if demand.is_nan() {
        // A 0/0 demand means "due now": be conservative and run flat out.
        return table.max();
    }
    table
        .lowest_at_least(demand.max(0.0))
        .unwrap_or_else(|| table.max())
}

/// The per-task UER-optimal frequency computed by EUA\*'s
/// `offlineComputing`.
///
/// For a task with cycle allocation `c` and TUF `U(·)` (supplied as the
/// `utility` closure over the job's sojourn time), the **utility and energy
/// ratio** at frequency `f` is
///
/// ```text
/// UER(f) = U(c / f) / (c · E(f))
/// ```
///
/// This scans the discrete table and returns the frequency maximizing
/// `UER`, breaking ties toward the lower frequency (less energy for equal
/// ratio, and equal ratio at lower speed means equal utility for less
/// power). If every frequency yields non-positive utility, the highest
/// frequency is returned so the task finishes as early as possible.
///
/// # Example
///
/// ```
/// use eua_platform::{optimal_uer_frequency, Cycles, EnergySetting, FrequencyTable, TimeDelta};
///
/// let table = FrequencyTable::powernow_k6();
/// let model = EnergySetting::e3().model(table.max());
/// // A step TUF with critical time 1 ms and 40k cycles of work.
/// let step = |t: TimeDelta| if t <= TimeDelta::from_millis(1) { 10.0 } else { 0.0 };
/// let f = optimal_uer_frequency(&table, &model, Cycles::new(40_000), step);
/// // Under E3 slower is not always better: the optimum sits at or above
/// // the feasibility bound of 40 MHz *and* near the E3 energy knee.
/// assert!(f.as_mhz() >= 55);
/// ```
#[must_use]
pub fn optimal_uer_frequency<U>(
    table: &FrequencyTable,
    model: &EnergyModel,
    cycles: Cycles,
    utility: U,
) -> Frequency
where
    U: Fn(TimeDelta) -> f64,
{
    let mut best: Option<(f64, Frequency)> = None;
    for f in table.iter() {
        let sojourn = f.execution_time(cycles);
        let u = utility(sojourn);
        if u <= 0.0 {
            continue;
        }
        let denom = cycles.as_f64().max(1.0) * model.energy_per_cycle(f);
        let uer = u / denom;
        let better = match best {
            None => true,
            Some((best_uer, _)) => uer > best_uer + 1e-15,
        };
        if better {
            best = Some((uer, f));
        }
    }
    best.map_or_else(|| table.max(), |(_, f)| f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::energy::EnergySetting;

    fn table() -> FrequencyTable {
        FrequencyTable::powernow_k6()
    }

    #[test]
    fn select_freq_clamps_overload_to_fmax() {
        let t = table();
        assert_eq!(select_freq(&t, 1e9).as_mhz(), 100);
        assert_eq!(select_freq(&t, f64::INFINITY).as_mhz(), 100);
        assert_eq!(select_freq(&t, f64::NAN).as_mhz(), 100);
    }

    #[test]
    fn select_freq_handles_negative_demand() {
        assert_eq!(select_freq(&table(), -5.0).as_mhz(), 36);
    }

    #[test]
    fn select_freq_exact_boundary() {
        assert_eq!(select_freq(&table(), 91.0).as_mhz(), 91);
        assert_eq!(select_freq(&table(), 91.0001).as_mhz(), 100);
    }

    #[test]
    fn uer_optimum_under_e1_is_slowest_feasible_for_step_tuf() {
        // Under E1, E(f) = f², so UER strictly improves as f drops while the
        // step TUF still pays out; the optimum is the slowest frequency that
        // meets the critical time.
        let t = table();
        let m = EnergySetting::e1().model(t.max());
        // 64k cycles, critical time 1 ms → need ≥ 64 MHz.
        let step = |d: TimeDelta| {
            if d <= TimeDelta::from_millis(1) {
                5.0
            } else {
                0.0
            }
        };
        let f = optimal_uer_frequency(&t, &m, Cycles::new(64_000), step);
        assert_eq!(f.as_mhz(), 64);
    }

    #[test]
    fn uer_optimum_under_e3_avoids_too_slow_frequencies() {
        // Under E3 the energy knee is at ≈63 MHz; dropping to 36 MHz costs
        // more energy per cycle, so even a generous critical time should not
        // pull the optimum below the knee.
        let t = table();
        let m = EnergySetting::e3().model(t.max());
        let step = |d: TimeDelta| {
            if d <= TimeDelta::from_secs(10) {
                5.0
            } else {
                0.0
            }
        };
        let f = optimal_uer_frequency(&t, &m, Cycles::new(1_000), step);
        assert_eq!(f.as_mhz(), 64, "expected the frequency nearest the E3 knee");
    }

    #[test]
    fn uer_falls_back_to_fmax_when_nothing_pays() {
        let t = table();
        let m = EnergySetting::e1().model(t.max());
        // TUF already expired: utility 0 everywhere.
        let f = optimal_uer_frequency(&t, &m, Cycles::new(1_000), |_| 0.0);
        assert_eq!(f, t.max());
    }

    #[test]
    fn uer_tie_breaks_toward_lower_frequency() {
        // Flat utility and flat per-cycle energy → all frequencies tie; the
        // scan keeps the first (lowest) one.
        let t = table();
        let m = EnergySetting::custom("flat", 0.0, 0.0, 1.0, 0.0)
            .unwrap()
            .model(t.max());
        let f = optimal_uer_frequency(&t, &m, Cycles::new(1_000), |_| 1.0);
        assert_eq!(f, t.min());
    }

    #[test]
    fn uer_with_decreasing_tuf_balances_speed_and_energy() {
        // Linear TUF: finishing sooner earns more utility; under E1 slower is
        // cheaper. The optimum must be interior or boundary but well-defined.
        let t = table();
        let m = EnergySetting::e1().model(t.max());
        let linear = |d: TimeDelta| (1_000.0 - d.as_micros() as f64).max(0.0);
        let f = optimal_uer_frequency(&t, &m, Cycles::new(30_000), linear);
        // Exhaustive check against a manual scan.
        let mut best = (f64::MIN, t.max());
        for cand in t.iter() {
            let s = cand.execution_time(Cycles::new(30_000));
            let u = linear(s);
            if u <= 0.0 {
                continue;
            }
            let uer = u / (30_000.0 * m.energy_per_cycle(cand));
            if uer > best.0 {
                best = (uer, cand);
            }
        }
        assert_eq!(f, best.1);
    }

    #[test]
    fn uer_zero_cycles_does_not_divide_by_zero() {
        let t = table();
        let m = EnergySetting::e1().model(t.max());
        let f = optimal_uer_frequency(&t, &m, Cycles::ZERO, |_| 1.0);
        assert_eq!(f, t.min());
    }
}
