//! Strongly-typed simulation units.
//!
//! All simulation time is measured in integer **microseconds** and all work
//! in integer **processor cycles**. Frequencies (see
//! [`crate::frequency::Frequency`]) are integer cycles-per-microsecond, which
//! keeps every `time = cycles / frequency` conversion exact and the whole
//! simulation deterministic.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// An absolute instant on the simulation clock, in microseconds since the
/// start of the simulation.
///
/// `SimTime` is totally ordered and supports the obvious affine arithmetic
/// with [`TimeDelta`]: `SimTime + TimeDelta = SimTime` and
/// `SimTime - SimTime = TimeDelta`.
///
/// # Example
///
/// ```
/// use eua_platform::{SimTime, TimeDelta};
///
/// let t = SimTime::ZERO + TimeDelta::from_millis(3);
/// assert_eq!(t.as_micros(), 3_000);
/// assert_eq!(t - SimTime::ZERO, TimeDelta::from_millis(3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of the simulation clock.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `micros` microseconds after the origin.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant `millis` milliseconds after the origin.
    ///
    /// # Panics
    ///
    /// Panics if the value overflows `u64` microseconds.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        match millis.checked_mul(1_000) {
            Some(us) => SimTime(us),
            None => panic!("SimTime::from_millis overflow"),
        }
    }

    /// Returns the number of microseconds since the origin.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the instant as fractional seconds (for reporting only).
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The elapsed time since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    #[must_use]
    pub const fn saturating_since(self, earlier: SimTime) -> TimeDelta {
        TimeDelta(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a delta; `None` on overflow.
    #[must_use]
    pub const fn checked_add(self, delta: TimeDelta) -> Option<SimTime> {
        match self.0.checked_add(delta.0) {
            Some(v) => Some(SimTime(v)),
            None => None,
        }
    }

    /// Addition of a delta that saturates at [`SimTime::MAX`] instead of
    /// overflowing. Useful when projecting completion times that may be
    /// "never".
    #[must_use]
    pub const fn saturating_add(self, delta: TimeDelta) -> SimTime {
        SimTime(self.0.saturating_add(delta.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

impl Add<TimeDelta> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: TimeDelta) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<TimeDelta> for SimTime {
    fn add_assign(&mut self, rhs: TimeDelta) {
        self.0 += rhs.0;
    }
}

impl Sub<TimeDelta> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: TimeDelta) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub for SimTime {
    type Output = TimeDelta;
    fn sub(self, rhs: SimTime) -> TimeDelta {
        TimeDelta(self.0 - rhs.0)
    }
}

/// A span of simulation time, in microseconds.
///
/// # Example
///
/// ```
/// use eua_platform::TimeDelta;
///
/// let d = TimeDelta::from_millis(2) + TimeDelta::from_micros(500);
/// assert_eq!(d.as_micros(), 2_500);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TimeDelta(u64);

impl TimeDelta {
    /// The zero-length span.
    pub const ZERO: TimeDelta = TimeDelta(0);
    /// The largest representable span; used as an "unbounded" sentinel.
    pub const MAX: TimeDelta = TimeDelta(u64::MAX);

    /// Creates a span of `micros` microseconds.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        TimeDelta(micros)
    }

    /// Creates a span of `millis` milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if the value overflows `u64` microseconds.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        match millis.checked_mul(1_000) {
            Some(us) => TimeDelta(us),
            None => panic!("TimeDelta::from_millis overflow"),
        }
    }

    /// Creates a span of `secs` seconds.
    ///
    /// # Panics
    ///
    /// Panics if the value overflows `u64` microseconds.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        match secs.checked_mul(1_000_000) {
            Some(us) => TimeDelta(us),
            None => panic!("TimeDelta::from_secs overflow"),
        }
    }

    /// Returns the span in microseconds.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the span as fractional seconds (for reporting only).
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// `true` if this is the zero-length span.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Subtraction that saturates at zero.
    #[must_use]
    pub const fn saturating_sub(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0.saturating_sub(rhs.0))
    }

    /// Checked multiplication by a scalar; `None` on overflow.
    #[must_use]
    pub const fn checked_mul(self, rhs: u64) -> Option<TimeDelta> {
        match self.0.checked_mul(rhs) {
            Some(v) => Some(TimeDelta(v)),
            None => None,
        }
    }
}

impl fmt::Display for TimeDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

impl Add for TimeDelta {
    type Output = TimeDelta;
    fn add(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0 + rhs.0)
    }
}

impl AddAssign for TimeDelta {
    fn add_assign(&mut self, rhs: TimeDelta) {
        self.0 += rhs.0;
    }
}

impl Sub for TimeDelta {
    type Output = TimeDelta;
    fn sub(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0 - rhs.0)
    }
}

impl SubAssign for TimeDelta {
    fn sub_assign(&mut self, rhs: TimeDelta) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for TimeDelta {
    type Output = TimeDelta;
    fn mul(self, rhs: u64) -> TimeDelta {
        TimeDelta(self.0 * rhs)
    }
}

impl Sum for TimeDelta {
    fn sum<I: Iterator<Item = TimeDelta>>(iter: I) -> TimeDelta {
        iter.fold(TimeDelta::ZERO, Add::add)
    }
}

/// An amount of processor work, in clock cycles.
///
/// # Example
///
/// ```
/// use eua_platform::Cycles;
///
/// let c = Cycles::new(700) + Cycles::new(300);
/// assert_eq!(c.get(), 1_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(u64);

impl Cycles {
    /// Zero cycles of work.
    pub const ZERO: Cycles = Cycles(0);

    /// Creates a cycle count.
    #[must_use]
    pub const fn new(cycles: u64) -> Self {
        Cycles(cycles)
    }

    /// Returns the raw cycle count.
    #[must_use]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// `true` if no work remains.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Subtraction that saturates at zero — the natural operation for
    /// "remaining work after executing for a while".
    #[must_use]
    pub const fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// Returns the smaller of two cycle counts.
    #[must_use]
    pub const fn min(self, rhs: Cycles) -> Cycles {
        if self.0 <= rhs.0 {
            self
        } else {
            rhs
        }
    }

    /// Checked multiplication by a scalar; `None` on overflow.
    #[must_use]
    pub const fn checked_mul(self, rhs: u64) -> Option<Cycles> {
        match self.0.checked_mul(rhs) {
            Some(v) => Some(Cycles(v)),
            None => None,
        }
    }

    /// The cycle count as `f64`, for statistics and energy accounting.
    #[must_use]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl SubAssign for Cycles {
    fn sub_assign(&mut self, rhs: Cycles) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_time_affine_arithmetic() {
        let a = SimTime::from_micros(100);
        let d = TimeDelta::from_micros(40);
        assert_eq!(a + d, SimTime::from_micros(140));
        assert_eq!((a + d) - a, d);
        assert_eq!((a + d) - d, a);
    }

    #[test]
    fn sim_time_saturating_since_clamps() {
        let early = SimTime::from_micros(10);
        let late = SimTime::from_micros(30);
        assert_eq!(late.saturating_since(early), TimeDelta::from_micros(20));
        assert_eq!(early.saturating_since(late), TimeDelta::ZERO);
    }

    #[test]
    fn sim_time_saturating_add_stops_at_max() {
        assert_eq!(
            SimTime::MAX.saturating_add(TimeDelta::from_micros(5)),
            SimTime::MAX
        );
        assert_eq!(
            SimTime::from_micros(1).saturating_add(TimeDelta::from_micros(2)),
            SimTime::from_micros(3)
        );
    }

    #[test]
    fn sim_time_checked_add_detects_overflow() {
        assert!(SimTime::MAX
            .checked_add(TimeDelta::from_micros(1))
            .is_none());
        assert_eq!(
            SimTime::ZERO.checked_add(TimeDelta::from_micros(7)),
            Some(SimTime::from_micros(7))
        );
    }

    #[test]
    fn time_delta_unit_constructors_agree() {
        assert_eq!(TimeDelta::from_millis(1), TimeDelta::from_micros(1_000));
        assert_eq!(TimeDelta::from_secs(1), TimeDelta::from_millis(1_000));
    }

    #[test]
    fn time_delta_ordering_is_numeric() {
        assert!(TimeDelta::from_micros(9) < TimeDelta::from_micros(10));
        assert!(TimeDelta::MAX > TimeDelta::from_secs(1_000_000));
    }

    #[test]
    fn time_delta_sum_and_scale() {
        let total: TimeDelta = [1u64, 2, 3]
            .iter()
            .map(|&m| TimeDelta::from_micros(m))
            .sum();
        assert_eq!(total, TimeDelta::from_micros(6));
        assert_eq!(TimeDelta::from_micros(6) * 2, TimeDelta::from_micros(12));
    }

    #[test]
    fn cycles_saturating_sub_models_remaining_work() {
        let remaining = Cycles::new(100);
        assert_eq!(remaining.saturating_sub(Cycles::new(30)), Cycles::new(70));
        assert_eq!(remaining.saturating_sub(Cycles::new(1_000)), Cycles::ZERO);
        assert!(remaining.saturating_sub(Cycles::new(100)).is_zero());
    }

    #[test]
    fn cycles_min_and_checked_mul() {
        assert_eq!(Cycles::new(5).min(Cycles::new(3)), Cycles::new(3));
        assert_eq!(Cycles::new(5).checked_mul(3), Some(Cycles::new(15)));
        assert!(Cycles::new(u64::MAX).checked_mul(2).is_none());
    }

    #[test]
    fn display_formats_carry_units() {
        assert_eq!(SimTime::from_micros(12).to_string(), "12us");
        assert_eq!(TimeDelta::from_micros(7).to_string(), "7us");
        assert_eq!(Cycles::new(3).to_string(), "3cy");
    }

    #[test]
    fn as_secs_f64_round_trips_magnitude() {
        assert!((TimeDelta::from_secs(2).as_secs_f64() - 2.0).abs() < 1e-12);
        assert!((SimTime::from_millis(1_500).as_secs_f64() - 1.5).abs() < 1e-12);
    }
}
