#![allow(clippy::expect_used)] // test/demo code: panicking on bad setup is the point

//! Property-based tests for frequency/energy arithmetic.

use eua_platform::{select_freq, Cycles, EnergySetting, Frequency, FrequencyTable, TimeDelta};
use proptest::prelude::*;

fn arb_table() -> impl Strategy<Value = FrequencyTable> {
    proptest::collection::btree_set(1u64..2_000, 1..12)
        .prop_map(|set| FrequencyTable::new(set).expect("sorted positive set is valid"))
}

proptest! {
    #[test]
    fn execution_time_is_sufficient(mhz in 1u64..2_000, cycles in 0u64..10_000_000_000) {
        let f = Frequency::from_mhz(mhz);
        let t = f.execution_time(Cycles::new(cycles));
        // Work achievable in that time covers the demand...
        prop_assert!(f.cycles_in(t).get() >= cycles);
        // ...and one microsecond less would not (tightness).
        if !t.is_zero() {
            let shorter = t - TimeDelta::from_micros(1);
            prop_assert!(f.cycles_in(shorter).get() < cycles);
        }
    }

    #[test]
    fn select_freq_returns_lowest_sufficient(table in arb_table(), demand in 0.0f64..3_000.0) {
        let f = select_freq(&table, demand);
        prop_assert!(table.as_slice().contains(&f));
        if demand <= table.max().as_f64() {
            // Sufficient...
            prop_assert!(f.as_f64() >= demand);
            // ...and minimal among sufficient table entries.
            for cand in table.iter() {
                if cand.as_f64() >= demand {
                    prop_assert!(f <= cand);
                }
            }
        } else {
            prop_assert_eq!(f, table.max());
        }
    }

    #[test]
    fn energy_per_cycle_positive_for_paper_settings(mhz in 1u64..2_000) {
        let f = Frequency::from_mhz(mhz);
        for setting in EnergySetting::all() {
            let m = setting.model(Frequency::from_mhz(2_000));
            prop_assert!(m.energy_per_cycle(f) > 0.0);
        }
    }

    #[test]
    fn energy_optimal_speed_is_a_minimum(s0_rel in 0.01f64..2.0, s1_rel in 0.0f64..2.0) {
        let setting = EnergySetting::custom("p", 1.0, 0.0, s1_rel, s0_rel).expect("valid");
        let m = setting.model(Frequency::from_mhz(100));
        let (s3, s2, s1, s0) = m.coefficients();
        let e = |f: f64| s3 * f * f + s2 * f + s1 + s0 / f;
        let opt = m.energy_optimal_speed();
        prop_assert!(opt > 0.0);
        prop_assert!(e(opt) <= e(opt * 1.001) + 1e-9);
        prop_assert!(e(opt) <= e(opt * 0.999) + 1e-9);
    }

    #[test]
    fn energy_for_is_linear_in_cycles(mhz in 1u64..2_000, c in 0u64..1_000_000) {
        let f = Frequency::from_mhz(mhz);
        let m = EnergySetting::e2().model(Frequency::from_mhz(2_000));
        let one = m.energy_for(Cycles::new(c), f);
        let twice = m.energy_for(Cycles::new(2 * c), f);
        prop_assert!((twice - 2.0 * one).abs() <= 1e-9 * twice.abs().max(1.0));
    }

    #[test]
    fn frequency_table_lowest_at_least_agrees_with_scan(table in arb_table(), demand in 0.0f64..3_000.0) {
        let scan = table.iter().find(|f| f.as_f64() >= demand);
        prop_assert_eq!(table.lowest_at_least(demand), scan);
    }
}
