//! Post-hoc analysis of execution traces and job records: response-time
//! statistics, EDF-order auditing, and utilization timelines.
//!
//! These helpers close the loop between the simulator's raw outputs and
//! the properties the paper argues about — e.g. Theorem 2's "critical
//! time ordered schedule" is directly checkable with
//! [`edf_violations`].

use eua_platform::{SimTime, TimeDelta};

use crate::ids::{JobId, TaskId};
use crate::job::{JobOutcome, JobRecord};
use crate::task::TaskSet;
use crate::trace::ExecutionTrace;

/// Summary statistics of completed jobs' response (sojourn) times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResponseStats {
    /// Number of completed jobs measured.
    pub count: u64,
    /// Mean response time.
    pub mean: TimeDelta,
    /// Maximum response time.
    pub max: TimeDelta,
    /// 95th-percentile response time (nearest-rank).
    pub p95: TimeDelta,
}

/// Response-time statistics over all completed jobs in `records`
/// (optionally restricted to one task). Returns `None` when nothing
/// completed.
#[must_use]
pub fn response_stats(records: &[JobRecord], task: Option<TaskId>) -> Option<ResponseStats> {
    let mut sojourns: Vec<u64> = records
        .iter()
        .filter(|r| task.is_none_or(|t| r.task == t))
        .filter_map(|r| match r.outcome {
            JobOutcome::Completed { at, .. } => Some((at - r.arrival).as_micros()),
            _ => None,
        })
        .collect();
    if sojourns.is_empty() {
        return None;
    }
    sojourns.sort_unstable();
    let count = sojourns.len() as u64;
    let sum: u64 = sojourns.iter().sum();
    let p95_idx = ((count as f64 * 0.95).ceil() as usize).clamp(1, sojourns.len()) - 1;
    let &max_us = sojourns.last()?;
    Some(ResponseStats {
        count,
        mean: TimeDelta::from_micros(sum / count),
        max: TimeDelta::from_micros(max_us),
        p95: TimeDelta::from_micros(sojourns[p95_idx]),
    })
}

/// One departure from earliest-critical-time-first dispatching: at
/// `at`, `ran` executed although `preferred` (earlier critical time) was
/// live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdfViolation {
    /// Segment start where the inversion was observed.
    pub at: SimTime,
    /// The job that ran.
    pub ran: JobId,
    /// A live job with a strictly earlier critical time.
    pub preferred: JobId,
}

/// Audits a trace for earliest-critical-time-first order.
///
/// For every execution segment, every job that was live at the segment's
/// start (arrived, not yet completed/aborted) is compared against the
/// running job's critical time. EDF-family policies produce no
/// violations under-load (Theorem 2); utility-accrual policies *should*
/// produce violations during overload — that is the point of UA
/// scheduling — so this doubles as a behavioural fingerprint.
#[must_use]
pub fn edf_violations(
    trace: &ExecutionTrace,
    records: &[JobRecord],
    tasks: &TaskSet,
) -> Vec<EdfViolation> {
    struct Span {
        id: JobId,
        arrival: SimTime,
        end: SimTime,
        critical: SimTime,
    }
    let spans: Vec<Span> = records
        .iter()
        .map(|r| {
            let end = match r.outcome {
                JobOutcome::Completed { at, .. } | JobOutcome::Aborted { at, .. } => at,
                JobOutcome::Unfinished => SimTime::MAX,
            };
            Span {
                id: r.id,
                arrival: r.arrival,
                end,
                critical: r
                    .arrival
                    .saturating_add(tasks.task(r.task).critical_offset()),
            }
        })
        .collect();
    let mut violations = Vec::new();
    for seg in trace.segments() {
        let Some(running) = spans.iter().find(|s| s.id == seg.job) else {
            continue;
        };
        for other in &spans {
            if other.id != running.id
                && other.arrival <= seg.start
                && other.end > seg.start
                && other.critical < running.critical
            {
                violations.push(EdfViolation {
                    at: seg.start,
                    ran: running.id,
                    preferred: other.id,
                });
            }
        }
    }
    violations
}

/// The processor's busy fraction over consecutive buckets of `bucket`
/// length covering `[0, horizon)`.
///
/// # Panics
///
/// Panics if `bucket` is zero.
#[must_use]
pub fn utilization_timeline(
    trace: &ExecutionTrace,
    horizon: TimeDelta,
    bucket: TimeDelta,
) -> Vec<f64> {
    assert!(!bucket.is_zero(), "bucket must be positive");
    let buckets = horizon.as_micros().div_ceil(bucket.as_micros()) as usize;
    let mut busy = vec![0u64; buckets];
    for seg in trace.segments() {
        let mut t = seg.start.as_micros();
        let end = seg.end.as_micros().min(horizon.as_micros());
        while t < end {
            let idx = (t / bucket.as_micros()) as usize;
            let bucket_end = ((idx as u64 + 1) * bucket.as_micros()).min(end);
            busy[idx] += bucket_end - t;
            t = bucket_end;
        }
    }
    busy.iter()
        .map(|&b| b as f64 / bucket.as_micros() as f64)
        .collect()
}

/// How a run fared against one task's requested `{ν, ρ}` assurance —
/// the degradation oracle's verdict (see DESIGN.md §10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DegradationClass {
    /// The delivered assurance met the requested `ρ`.
    Met,
    /// Below `ρ` but above the collapse fraction of it: the policy is
    /// shedding load, not failing outright.
    Degraded,
    /// Below `collapse_fraction · ρ`: the assurance effectively failed.
    Collapsed,
}

impl DegradationClass {
    /// A stable lowercase label (used by report writers).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            DegradationClass::Met => "met",
            DegradationClass::Degraded => "degraded",
            DegradationClass::Collapsed => "collapsed",
        }
    }
}

/// One task's row in a [`DegradationReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct TaskDegradation {
    /// The task's index.
    pub task: TaskId,
    /// The requested probability `ρ`.
    pub requested_rho: f64,
    /// The requested utility fraction `ν`.
    pub requested_nu: f64,
    /// The delivered assurance rate, `None` when no job of the task was
    /// observable within the horizon (vacuously met).
    pub delivered: Option<f64>,
    /// The verdict.
    pub class: DegradationClass,
}

/// The degradation oracle's full verdict for one run.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationReport {
    /// Per-task rows, in task order.
    pub per_task: Vec<TaskDegradation>,
    /// The worst per-task class (a run is only as good as its worst
    /// task); [`DegradationClass::Met`] for an empty task set.
    pub overall: DegradationClass,
}

/// The default collapse threshold: delivering less than half the
/// requested `ρ` counts as a collapse, not graceful degradation.
pub const DEFAULT_COLLAPSE_FRACTION: f64 = 0.5;

/// Classifies a run's delivered assurance against each task's requested
/// `{ν_i, ρ_i}`: **met** when the fraction of observable jobs that
/// reached `ν_i · U_max` is at least `ρ_i`, **collapsed** when it fell
/// below `collapse_fraction · ρ_i`, and **gracefully degraded** in
/// between. Tasks with no observable jobs are vacuously met.
///
/// # Panics
///
/// Panics if `collapse_fraction` is not within `[0, 1]`, or if `metrics`
/// was produced from a different task set (length mismatch).
#[must_use]
pub fn classify_degradation(
    metrics: &crate::metrics::Metrics,
    tasks: &TaskSet,
    collapse_fraction: f64,
) -> DegradationReport {
    assert!(
        (0.0..=1.0).contains(&collapse_fraction),
        "collapse fraction must be within [0, 1]"
    );
    assert_eq!(
        metrics.per_task.len(),
        tasks.len(),
        "metrics and task set disagree in length"
    );
    let per_task: Vec<TaskDegradation> = metrics
        .per_task
        .iter()
        .enumerate()
        .map(|(i, tm)| {
            let task = tasks.task(TaskId(i));
            let rho = task.assurance().rho();
            let delivered = tm.assurance_rate();
            let class = match delivered {
                None => DegradationClass::Met,
                Some(rate) if rate + 1e-12 >= rho => DegradationClass::Met,
                Some(rate) if rate < collapse_fraction * rho - 1e-12 => DegradationClass::Collapsed,
                Some(_) => DegradationClass::Degraded,
            };
            TaskDegradation {
                task: TaskId(i),
                requested_rho: rho,
                requested_nu: task.assurance().nu(),
                delivered,
                class,
            }
        })
        .collect();
    let overall = per_task
        .iter()
        .map(|t| t.class)
        .max()
        .unwrap_or(DegradationClass::Met);
    DegradationReport { per_task, overall }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eua_platform::{Cycles, EnergySetting, Frequency};
    use eua_tuf::Tuf;
    use eua_uam::demand::DemandModel;
    use eua_uam::generator::ArrivalPattern;
    use eua_uam::{Assurance, UamSpec};

    use crate::engine::{Engine, SimConfig};
    use crate::platform_view::Platform;
    use crate::policy::MaxSpeedEdf;
    use crate::task::Task;
    use crate::trace::Segment;

    fn ms(v: u64) -> TimeDelta {
        TimeDelta::from_millis(v)
    }

    fn record(id: u64, task: usize, arrival: u64, outcome: JobOutcome) -> JobRecord {
        JobRecord {
            id: JobId(id),
            task: TaskId(task),
            arrival: SimTime::from_micros(arrival),
            actual_demand: Cycles::new(10),
            executed: Cycles::new(10),
            outcome,
        }
    }

    #[test]
    fn response_stats_computes_percentiles() {
        let records: Vec<JobRecord> = (0..100u64)
            .map(|i| {
                record(
                    i,
                    0,
                    0,
                    JobOutcome::Completed {
                        at: SimTime::from_micros((i + 1) * 10),
                        utility: 1.0,
                    },
                )
            })
            .collect();
        let stats = response_stats(&records, None).expect("completed jobs");
        assert_eq!(stats.count, 100);
        assert_eq!(stats.max, TimeDelta::from_micros(1_000));
        assert_eq!(stats.p95, TimeDelta::from_micros(950));
        assert_eq!(stats.mean, TimeDelta::from_micros(505));
    }

    #[test]
    fn response_stats_filters_by_task_and_outcome() {
        let records = vec![
            record(
                0,
                0,
                0,
                JobOutcome::Completed {
                    at: SimTime::from_micros(5),
                    utility: 1.0,
                },
            ),
            record(
                1,
                1,
                0,
                JobOutcome::Completed {
                    at: SimTime::from_micros(50),
                    utility: 1.0,
                },
            ),
            record(
                2,
                0,
                0,
                JobOutcome::Aborted {
                    at: SimTime::from_micros(9),
                    by_policy: false,
                },
            ),
        ];
        let t0 = response_stats(&records, Some(TaskId(0))).expect("t0 completed");
        assert_eq!(t0.count, 1);
        assert_eq!(t0.max, TimeDelta::from_micros(5));
        assert!(response_stats(&records, Some(TaskId(9))).is_none());
        assert!(response_stats(&[], None).is_none());
    }

    #[test]
    fn edf_policy_produces_no_violations_underload() {
        let p = ms(10);
        let task = Task::new(
            "t",
            Tuf::step(1.0, p).unwrap(),
            UamSpec::periodic(p).unwrap(),
            DemandModel::deterministic(200_000.0).unwrap(),
            Assurance::new(1.0, 0.5).unwrap(),
        )
        .unwrap();
        let tasks = crate::task::TaskSet::new(vec![task.clone(), task]).unwrap();
        let patterns = vec![
            ArrivalPattern::periodic(p).unwrap(),
            ArrivalPattern::periodic(p).unwrap(),
        ];
        let platform = Platform::powernow(EnergySetting::e1());
        let config = SimConfig::new(ms(200)).with_trace().with_job_records();
        let out = Engine::run(
            &tasks,
            &patterns,
            &platform,
            &mut MaxSpeedEdf::new(),
            &config,
            1,
        )
        .unwrap();
        let violations = edf_violations(
            out.trace.as_ref().unwrap(),
            out.jobs.as_ref().unwrap(),
            &tasks,
        );
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn synthetic_inversion_is_detected() {
        let p = ms(10);
        let task = Task::new(
            "t",
            Tuf::step(1.0, p).unwrap(),
            UamSpec::new(2, p).unwrap(),
            DemandModel::deterministic(100.0).unwrap(),
            Assurance::new(1.0, 0.5).unwrap(),
        )
        .unwrap();
        let tasks = crate::task::TaskSet::new(vec![task]).unwrap();
        // Job 1 has the earlier critical time (arrival 0) but job 0
        // (arrival 100 µs) runs first.
        let records = vec![
            record(
                0,
                0,
                100,
                JobOutcome::Completed {
                    at: SimTime::from_micros(300),
                    utility: 1.0,
                },
            ),
            record(
                1,
                0,
                0,
                JobOutcome::Completed {
                    at: SimTime::from_micros(500),
                    utility: 1.0,
                },
            ),
        ];
        let mut trace = ExecutionTrace::new();
        trace.push_segment(Segment {
            job: JobId(0),
            task: TaskId(0),
            start: SimTime::from_micros(100),
            end: SimTime::from_micros(300),
            frequency: Frequency::from_mhz(100),
        });
        let violations = edf_violations(&trace, &records, &tasks);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].ran, JobId(0));
        assert_eq!(violations[0].preferred, JobId(1));
    }

    #[test]
    fn utilization_timeline_buckets_busy_time() {
        let mut trace = ExecutionTrace::new();
        trace.push_segment(Segment {
            job: JobId(0),
            task: TaskId(0),
            start: SimTime::from_micros(0),
            end: SimTime::from_micros(500),
            frequency: Frequency::from_mhz(100),
        });
        trace.push_segment(Segment {
            job: JobId(1),
            task: TaskId(0),
            start: SimTime::from_micros(1_500),
            end: SimTime::from_micros(2_000),
            frequency: Frequency::from_mhz(100),
        });
        let tl = utilization_timeline(
            &trace,
            TimeDelta::from_micros(2_000),
            TimeDelta::from_micros(1_000),
        );
        assert_eq!(tl.len(), 2);
        assert!((tl[0] - 0.5).abs() < 1e-12);
        assert!((tl[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn utilization_timeline_spans_bucket_boundaries() {
        let mut trace = ExecutionTrace::new();
        trace.push_segment(Segment {
            job: JobId(0),
            task: TaskId(0),
            start: SimTime::from_micros(900),
            end: SimTime::from_micros(1_100),
            frequency: Frequency::from_mhz(100),
        });
        let tl = utilization_timeline(
            &trace,
            TimeDelta::from_micros(2_000),
            TimeDelta::from_micros(1_000),
        );
        assert!((tl[0] - 0.1).abs() < 1e-12);
        assert!((tl[1] - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "bucket must be positive")]
    fn zero_bucket_rejected() {
        let trace = ExecutionTrace::new();
        let _ = utilization_timeline(&trace, ms(1), TimeDelta::ZERO);
    }

    fn oracle_tasks(n: usize) -> TaskSet {
        let tasks: Vec<Task> = (0..n)
            .map(|i| {
                Task::new(
                    format!("t{i}"),
                    Tuf::step(10.0, ms(10)).unwrap(),
                    UamSpec::periodic(ms(10)).unwrap(),
                    DemandModel::deterministic(100_000.0).unwrap(),
                    Assurance::new(1.0, 0.9).unwrap(),
                )
                .unwrap()
            })
            .collect();
        TaskSet::new(tasks).unwrap()
    }

    fn metrics_with_assured(per_task: &[(u64, u64)]) -> crate::metrics::Metrics {
        let mut m = crate::metrics::Metrics::new(ms(100), per_task.len());
        for (tm, &(observable, assured)) in m.per_task.iter_mut().zip(per_task) {
            tm.arrived = observable;
            tm.observable = observable;
            tm.assured = assured;
        }
        m
    }

    #[test]
    fn degradation_oracle_classifies_met_degraded_collapsed() {
        // ρ = 0.9, collapse fraction 0.5 ⇒ collapse threshold 0.45.
        let tasks = oracle_tasks(4);
        let metrics = metrics_with_assured(&[(10, 9), (10, 5), (10, 3), (0, 0)]);
        let report = classify_degradation(&metrics, &tasks, DEFAULT_COLLAPSE_FRACTION);
        let classes: Vec<DegradationClass> = report.per_task.iter().map(|t| t.class).collect();
        assert_eq!(
            classes,
            vec![
                DegradationClass::Met,       // 0.9 ≥ 0.9
                DegradationClass::Degraded,  // 0.45 ≤ 0.5 < 0.9
                DegradationClass::Collapsed, // 0.3 < 0.45
                DegradationClass::Met,       // vacuous: nothing observable
            ]
        );
        assert_eq!(report.overall, DegradationClass::Collapsed);
        assert_eq!(report.per_task[1].delivered, Some(0.5));
        assert!(report.per_task[3].delivered.is_none());
        assert!((report.per_task[0].requested_rho - 0.9).abs() < 1e-12);
    }

    #[test]
    fn degradation_overall_is_the_worst_task() {
        let tasks = oracle_tasks(2);
        let all_met = metrics_with_assured(&[(10, 10), (10, 9)]);
        assert_eq!(
            classify_degradation(&all_met, &tasks, DEFAULT_COLLAPSE_FRACTION).overall,
            DegradationClass::Met
        );
        let one_degraded = metrics_with_assured(&[(10, 10), (10, 6)]);
        assert_eq!(
            classify_degradation(&one_degraded, &tasks, DEFAULT_COLLAPSE_FRACTION).overall,
            DegradationClass::Degraded
        );
    }

    #[test]
    fn degradation_class_labels_are_stable() {
        assert_eq!(DegradationClass::Met.as_str(), "met");
        assert_eq!(DegradationClass::Degraded.as_str(), "degraded");
        assert_eq!(DegradationClass::Collapsed.as_str(), "collapsed");
        // Report writers depend on the severity ordering.
        assert!(DegradationClass::Met < DegradationClass::Degraded);
        assert!(DegradationClass::Degraded < DegradationClass::Collapsed);
    }

    #[test]
    #[should_panic(expected = "collapse fraction")]
    fn degradation_rejects_out_of_range_fraction() {
        let tasks = oracle_tasks(1);
        let metrics = metrics_with_assured(&[(10, 10)]);
        let _ = classify_degradation(&metrics, &tasks, 1.5);
    }
}
