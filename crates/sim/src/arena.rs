//! Arena job storage: generational slots with a struct-of-arrays layout.
//!
//! The engine's event loop touches a small set of per-job fields on every
//! event (termination for the overdue sweep, remaining cycles for the
//! execute step); the rest (id, owning task, arrival, critical time) is
//! read only at admission, decision recording, and job end. The arena
//! splits the two: hot fields live in parallel columns indexed by slot so
//! a sweep over the live set streams contiguously, cold metadata sits in
//! its own column, and freed slots are recycled through a free list.
//!
//! Handles are generational: a [`JobRef`] pairs the slot index with the
//! generation the slot had when the job was admitted, and every accessor
//! checks the pair in debug builds. A stale handle — one kept across the
//! job's release — can therefore never silently alias the slot's next
//! occupant. See DESIGN.md §14.

use eua_platform::{Cycles, SimTime};

use crate::ids::{JobId, TaskId};

/// A generational handle to one job in a [`JobArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct JobRef {
    slot: u32,
    gen: u32,
}

impl JobRef {
    /// The raw slot index (stable for the job's lifetime; reused after
    /// release under a bumped generation).
    #[inline]
    pub(crate) fn slot(self) -> u32 {
        self.slot
    }
}

/// Cold per-job metadata, written once at admission.
#[derive(Debug, Clone, Copy)]
pub(crate) struct JobMeta {
    pub id: JobId,
    pub task: TaskId,
    pub arrival: SimTime,
    pub critical: SimTime,
}

/// Slot-indexed job storage. Columns never shrink; a released slot is
/// recycled by the next admission.
#[derive(Debug, Default)]
pub(crate) struct JobArena {
    // Hot columns: what the overdue sweep and the execute step read.
    termination: Vec<SimTime>,
    actual: Vec<Cycles>,
    allocation: Vec<Cycles>,
    executed: Vec<Cycles>,
    // Cold columns.
    meta: Vec<JobMeta>,
    gen: Vec<u32>,
    free: Vec<u32>,
    live: usize,
}

impl JobArena {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Admits a job, recycling a freed slot when one exists.
    pub(crate) fn insert(
        &mut self,
        meta: JobMeta,
        termination: SimTime,
        actual: Cycles,
        allocation: Cycles,
    ) -> JobRef {
        self.live += 1;
        if let Some(slot) = self.free.pop() {
            let i = slot as usize;
            self.termination[i] = termination;
            self.actual[i] = actual;
            self.allocation[i] = allocation;
            self.executed[i] = Cycles::ZERO;
            self.meta[i] = meta;
            JobRef {
                slot,
                gen: self.gen[i],
            }
        } else {
            #[allow(clippy::expect_used)] // 2^32 slots would exhaust memory first
            let slot = u32::try_from(self.meta.len()).expect("arena slot count fits u32");
            self.termination.push(termination);
            self.actual.push(actual);
            self.allocation.push(allocation);
            self.executed.push(Cycles::ZERO);
            self.meta.push(meta);
            self.gen.push(0);
            JobRef { slot, gen: 0 }
        }
    }

    /// Releases a job: bumps the slot's generation (invalidating every
    /// outstanding [`JobRef`] to it) and recycles the slot.
    pub(crate) fn release(&mut self, r: JobRef) {
        debug_assert!(self.is_live(r), "release of a dead job handle");
        let i = r.slot as usize;
        self.gen[i] = self.gen[i].wrapping_add(1);
        self.free.push(r.slot);
        self.live -= 1;
    }

    /// Whether `r` still names a live job (its slot has not been
    /// released since the handle was issued).
    #[inline]
    pub(crate) fn is_live(&self, r: JobRef) -> bool {
        self.gen.get(r.slot as usize) == Some(&r.gen)
    }

    #[inline]
    fn check(&self, r: JobRef) -> usize {
        debug_assert!(self.is_live(r), "access through a dead job handle");
        r.slot as usize
    }

    #[inline]
    pub(crate) fn termination(&self, r: JobRef) -> SimTime {
        self.termination[self.check(r)]
    }

    #[inline]
    pub(crate) fn executed(&self, r: JobRef) -> Cycles {
        self.executed[self.check(r)]
    }

    #[inline]
    pub(crate) fn actual(&self, r: JobRef) -> Cycles {
        self.actual[self.check(r)]
    }

    /// Actual cycles still needed; zero means complete.
    #[inline]
    pub(crate) fn actual_remaining(&self, r: JobRef) -> Cycles {
        let i = self.check(r);
        self.actual[i].saturating_sub(self.executed[i])
    }

    /// What the scheduler believes remains: allocation minus executed,
    /// floored at one cycle (mirrors `LiveJob::believed_remaining`).
    #[inline]
    pub(crate) fn believed_remaining(&self, r: JobRef) -> Cycles {
        let i = self.check(r);
        let believed = self.allocation[i].saturating_sub(self.executed[i]);
        if believed.is_zero() {
            Cycles::new(1)
        } else {
            believed
        }
    }

    #[inline]
    pub(crate) fn add_executed(&mut self, r: JobRef, cycles: Cycles) {
        let i = self.check(r);
        self.executed[i] += cycles;
    }

    #[inline]
    pub(crate) fn meta(&self, r: JobRef) -> JobMeta {
        self.meta[self.check(r)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(id: u64) -> JobMeta {
        JobMeta {
            id: JobId(id),
            task: TaskId(0),
            arrival: SimTime::ZERO,
            critical: SimTime::from_micros(10),
        }
    }

    #[test]
    fn slots_recycle_with_fresh_generations() {
        let mut arena = JobArena::new();
        let a = arena.insert(
            meta(0),
            SimTime::from_micros(20),
            Cycles::new(100),
            Cycles::new(120),
        );
        assert!(arena.is_live(a));
        arena.release(a);
        assert!(!arena.is_live(a));
        let b = arena.insert(
            meta(1),
            SimTime::from_micros(30),
            Cycles::new(50),
            Cycles::new(50),
        );
        // Same slot, new generation: the old handle stays dead.
        assert_eq!(a.slot(), b.slot());
        assert!(!arena.is_live(a));
        assert!(arena.is_live(b));
        assert_eq!(arena.meta(b).id, JobId(1));
    }

    #[test]
    fn remaining_mirrors_live_job_semantics() {
        let mut arena = JobArena::new();
        let r = arena.insert(
            meta(0),
            SimTime::from_micros(20),
            Cycles::new(200),
            Cycles::new(120),
        );
        arena.add_executed(r, Cycles::new(150));
        assert_eq!(arena.actual_remaining(r).get(), 50);
        // Allocation exhausted but the job is incomplete: floors at 1.
        assert_eq!(arena.believed_remaining(r).get(), 1);
        arena.add_executed(r, Cycles::new(50));
        assert!(arena.actual_remaining(r).is_zero());
    }
}
