//! A bucketed calendar queue over absolute termination times.
//!
//! The engine needs exactly one query — "what is the earliest live
//! termination?" — at every passive-event computation, and the old loop
//! answered it with an O(live) scan. The calendar hashes each termination
//! into one of [`BUCKETS`] ring buckets of [`WIDTH_US`] microseconds and
//! keeps the minimum cached, so the steady-state cost is O(1) per query
//! and O(1) per insert, with removals eager (the engine knows the exact
//! `(time, slot)` pair when a job dies, so no lazy-deletion generation
//! checks are needed here).
//!
//! When the cached minimum is removed, the next query rescans bucket
//! windows in time order starting from the removed minimum — remaining
//! entries can only be later than it. If a full ring span
//! ([`BUCKETS`] × [`WIDTH_US`] ≈ 65 ms) holds nothing, the queue falls
//! back to a direct scan of all buckets, which is never worse than the
//! linear sweep it replaced. Ties between equal timestamps are not
//! resolved here: the calendar yields only the instant, and the abort
//! wave visits jobs in arrival (= id) order, which keeps same-timestamp
//! processing deterministic. See DESIGN.md §14.

use eua_platform::SimTime;

const BUCKETS: usize = 64;
const WIDTH_US: u64 = 1024;

#[derive(Debug)]
pub(crate) struct TerminationCalendar {
    buckets: Vec<Vec<(SimTime, u32)>>,
    len: usize,
    /// The minimum over all entries, valid when `!dirty`.
    cached: Option<SimTime>,
    dirty: bool,
    /// Lower bound for the next rescan: every remaining entry is at or
    /// past this instant (it was the minimum when it was removed).
    rescan_from: SimTime,
}

#[inline]
fn bucket_of(window: u64) -> usize {
    (window % BUCKETS as u64) as usize
}

impl TerminationCalendar {
    pub(crate) fn new() -> Self {
        TerminationCalendar {
            buckets: (0..BUCKETS).map(|_| Vec::new()).collect(),
            len: 0,
            cached: None,
            dirty: false,
            rescan_from: SimTime::ZERO,
        }
    }

    // eua-lint: hot
    pub(crate) fn insert(&mut self, t: SimTime, slot: u32) {
        self.buckets[bucket_of(t.as_micros() / WIDTH_US)].push((t, slot));
        self.len += 1;
        if self.dirty {
            // Remaining entries are all >= rescan_from, so an insert at
            // or below it is the new minimum outright.
            if t <= self.rescan_from {
                self.cached = Some(t);
                self.dirty = false;
            }
        } else {
            self.cached = Some(self.cached.map_or(t, |c| c.min(t)));
        }
    }

    /// Removes the entry `(t, slot)`. The pair must be present — the
    /// engine removes each job exactly once, at its death, with its
    /// termination time in hand.
    // eua-lint: hot
    pub(crate) fn remove(&mut self, t: SimTime, slot: u32) {
        let bucket = &mut self.buckets[bucket_of(t.as_micros() / WIDTH_US)];
        #[allow(clippy::expect_used)] // the engine inserts each job exactly once
        let idx = bucket
            .iter()
            .position(|&e| e == (t, slot))
            .expect("calendar remove of an absent entry");
        bucket.swap_remove(idx);
        self.len -= 1;
        if self.len == 0 {
            self.cached = None;
            self.dirty = false;
        } else if !self.dirty && self.cached == Some(t) {
            self.dirty = true;
            self.rescan_from = t;
        }
    }

    /// The earliest live termination, or `None` when empty. Amortized
    /// O(1): a rescan runs only after the minimum itself was removed.
    // eua-lint: hot
    pub(crate) fn earliest(&mut self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        if self.dirty {
            self.rescan();
        }
        self.cached
    }

    // eua-lint: hot
    fn rescan(&mut self) {
        debug_assert!(self.len > 0);
        // Walk bucket windows in time order from the old minimum; the
        // first non-empty window holds the new minimum.
        let base = self.rescan_from.as_micros() / WIDTH_US;
        for k in 0..BUCKETS as u64 {
            let window = base.saturating_add(k);
            let lo = window.saturating_mul(WIDTH_US);
            let hi = lo.saturating_add(WIDTH_US);
            let mut best: Option<SimTime> = None;
            for &(t, _) in &self.buckets[bucket_of(window)] {
                let us = t.as_micros();
                if us >= lo && us < hi {
                    best = Some(best.map_or(t, |b| b.min(t)));
                }
            }
            if best.is_some() {
                self.cached = best;
                self.dirty = false;
                return;
            }
        }
        // Nothing within one ring span: direct scan (bounded by the
        // linear sweep this queue replaced).
        let mut best = SimTime::MAX;
        for bucket in &self.buckets {
            for &(t, _) in bucket {
                best = best.min(t);
            }
        }
        self.cached = Some(best);
        self.dirty = false;
    }

    #[cfg(test)]
    fn assert_consistent(&mut self) {
        let direct = self.buckets.iter().flatten().map(|&(t, _)| t).min();
        assert_eq!(self.earliest(), direct);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(t: u64) -> SimTime {
        SimTime::from_micros(t)
    }

    #[test]
    fn tracks_minimum_through_inserts_and_removals() {
        let mut cal = TerminationCalendar::new();
        assert_eq!(cal.earliest(), None);
        cal.insert(us(5000), 0);
        cal.insert(us(120), 1);
        cal.insert(us(70_000), 2); // different ring window than 120
        cal.assert_consistent();
        cal.remove(us(120), 1);
        cal.assert_consistent();
        assert_eq!(cal.earliest(), Some(us(5000)));
        cal.remove(us(5000), 0);
        assert_eq!(cal.earliest(), Some(us(70_000)));
        cal.remove(us(70_000), 2);
        assert_eq!(cal.earliest(), None);
    }

    #[test]
    fn far_future_entries_use_the_fallback_scan() {
        let mut cal = TerminationCalendar::new();
        cal.insert(us(10), 0);
        // Far beyond one ring span (64 × 1024 µs) — and aliasing the
        // same bucket as an earlier window.
        cal.insert(us(10 + 64 * 1024 * 3), 1);
        cal.insert(us(1_000_000_000), 2);
        cal.remove(us(10), 0);
        cal.assert_consistent();
        cal.remove(us(10 + 64 * 1024 * 3), 1);
        cal.assert_consistent();
    }

    #[test]
    fn duplicate_timestamps_are_distinct_entries() {
        let mut cal = TerminationCalendar::new();
        cal.insert(us(500), 0);
        cal.insert(us(500), 1);
        cal.remove(us(500), 0);
        // The twin at the same instant keeps the minimum alive.
        assert_eq!(cal.earliest(), Some(us(500)));
        cal.remove(us(500), 1);
        assert_eq!(cal.earliest(), None);
    }

    #[test]
    fn insert_below_rescan_floor_repairs_the_cache() {
        let mut cal = TerminationCalendar::new();
        cal.insert(us(100), 0);
        cal.insert(us(9000), 1);
        cal.remove(us(100), 0); // cache dirty, floor = 100
        cal.insert(us(50), 2); // below the floor: new minimum outright
        assert_eq!(cal.earliest(), Some(us(50)));
        cal.assert_consistent();
    }

    #[test]
    fn bucket_aliasing_within_one_window_is_exact() {
        let mut cal = TerminationCalendar::new();
        // Same bucket (window differs by exactly BUCKETS): the window
        // filter must not confuse them.
        let a = 2 * 1024 + 7;
        let b = a + (BUCKETS as u64) * 1024;
        cal.insert(us(b), 0);
        cal.insert(us(a), 1);
        assert_eq!(cal.earliest(), Some(us(a)));
        cal.remove(us(a), 1);
        assert_eq!(cal.earliest(), Some(us(b)));
    }
}
