//! Decision certificates: a self-contained, serializable record of every
//! scheduling decision (and every energy charge) an engine run made,
//! sufficient for an *offline* checker to re-derive the paper's
//! Algorithm-1/Algorithm-2 invariants without re-running the engine.
//!
//! Enable recording with [`crate::SimConfig::with_certificate`]; the run's
//! [`RunCertificate`] then appears on [`crate::Outcome::certificate`]. The
//! certificate embeds the full declarative context — frequency tables
//! (both the true table and the possibly fault-degraded view the policy
//! planned against), the Martin energy setting, every task's TUF and UAM
//! declaration, and the certified arrival stream — so `eua-audit` (the
//! independent checker in `crates/audit`) needs nothing but the file.
//!
//! Serialization goes through the first-party [`crate::json`] tree, so
//! certificates byte-round-trip (`render(parse(s)) == s`) and two runs
//! producing equal certificates render to identical bytes.

use eua_platform::{Cycles, Frequency, SimTime, TimeDelta};
use eua_tuf::Tuf;

use crate::context::{JobView, SchedEvent};
use crate::ids::{JobId, TaskId};
use crate::json::{parse as json_parse, Json};
use crate::task::Task;

/// The format tag pinned into every certificate this module writes.
pub const CERT_FORMAT: &str = "eua-certificate/1";

/// A declarative snapshot of one task, sufficient to re-evaluate its TUF,
/// UAM bound, and Chebyshev allocation offline.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskDecl {
    /// The task's name.
    pub name: String,
    /// Its time/utility function.
    pub tuf: TufDecl,
    /// UAM arrival bound `a` (max arrivals per window).
    pub max_arrivals: u32,
    /// UAM sliding window `P`.
    pub window: TimeDelta,
    /// The Chebyshev cycle allocation `c_i` policies plan with.
    pub allocation: Cycles,
    /// Critical-time offset `D_i` from arrival.
    pub critical_offset: TimeDelta,
    /// Termination-time offset from arrival.
    pub termination_offset: TimeDelta,
}

impl TaskDecl {
    /// Captures a task's declarative surface.
    #[must_use]
    pub fn from_task(task: &Task) -> Self {
        TaskDecl {
            name: task.name().to_string(),
            tuf: TufDecl::from_tuf(task.tuf()),
            max_arrivals: task.uam().max_arrivals(),
            window: task.uam().window(),
            allocation: task.allocation(),
            critical_offset: task.critical_offset(),
            termination_offset: task.termination_offset(),
        }
    }
}

/// A serializable TUF shape (mirrors the constructors of [`Tuf`]).
#[derive(Debug, Clone, PartialEq)]
pub enum TufDecl {
    /// Constant `umax` until `step_at`, zero afterwards, schedulable until
    /// `termination`.
    Step {
        /// Utility before the step.
        umax: f64,
        /// The step (deadline) offset.
        step_at: TimeDelta,
        /// Termination offset.
        termination: TimeDelta,
    },
    /// Linear decay from `umax` to zero at `termination`.
    Linear {
        /// Utility at release.
        umax: f64,
        /// The x-intercept offset.
        termination: TimeDelta,
    },
    /// Exponential decay `umax·e^(−t/τ)` truncated at `termination`.
    Exponential {
        /// Utility at release.
        umax: f64,
        /// Decay constant τ.
        tau: TimeDelta,
        /// Termination offset.
        termination: TimeDelta,
    },
    /// Piecewise-linear over `(offset, utility)` breakpoints.
    Piecewise {
        /// Breakpoints in declaration order.
        points: Vec<(TimeDelta, f64)>,
    },
}

impl TufDecl {
    /// Lowers a validated [`Tuf`] into its declarative form.
    #[must_use]
    pub fn from_tuf(tuf: &Tuf) -> Self {
        match tuf {
            Tuf::Step(s) => TufDecl::Step {
                umax: s.height(),
                step_at: s.step_at(),
                termination: tuf.termination(),
            },
            Tuf::Linear(l) => TufDecl::Linear {
                umax: l.umax(),
                termination: tuf.termination(),
            },
            Tuf::Exponential(e) => TufDecl::Exponential {
                umax: tuf.max_utility(),
                tau: e.tau(),
                termination: tuf.termination(),
            },
            Tuf::Piecewise(p) => TufDecl::Piecewise {
                points: p.breakpoints().to_vec(),
            },
            // `Tuf` is non-exhaustive upstream; unknown future shapes
            // degrade to their linear envelope.
            _ => TufDecl::Linear {
                umax: tuf.max_utility(),
                termination: tuf.termination(),
            },
        }
    }

    /// Raises the declaration back into an evaluable [`Tuf`].
    ///
    /// # Errors
    ///
    /// A human-readable message when the declared parameters violate the
    /// shape's constructor contract.
    pub fn to_tuf(&self) -> Result<Tuf, String> {
        match self {
            TufDecl::Step {
                umax,
                step_at,
                termination,
            } => eua_tuf::StepTuf::with_termination(*umax, *step_at, *termination)
                .map(Tuf::from)
                .map_err(|e| format!("step tuf: {e}")),
            TufDecl::Linear { umax, termination } => {
                Tuf::linear(*umax, *termination).map_err(|e| format!("linear tuf: {e}"))
            }
            TufDecl::Exponential {
                umax,
                tau,
                termination,
            } => Tuf::exponential(*umax, *tau, *termination)
                .map_err(|e| format!("exponential tuf: {e}")),
            TufDecl::Piecewise { points } => {
                Tuf::piecewise(points.iter().copied()).map_err(|e| format!("piecewise tuf: {e}"))
            }
        }
    }
}

/// A live job as the policy saw it at a decision instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobSnapshot {
    /// The job's id.
    pub job: JobId,
    /// The owning task (index into the certificate's task table).
    pub task: TaskId,
    /// Arrival instant.
    pub arrival: SimTime,
    /// Absolute critical time.
    pub critical: SimTime,
    /// Absolute termination time.
    pub termination: SimTime,
    /// Believed remaining cycles.
    pub remaining: Cycles,
}

impl JobSnapshot {
    /// Snapshots a [`JobView`].
    #[must_use]
    pub fn from_view(view: &JobView) -> Self {
        JobSnapshot {
            job: view.id,
            task: view.task,
            arrival: view.arrival,
            critical: view.critical_time,
            termination: view.termination,
            remaining: view.remaining,
        }
    }
}

/// One job's computed utility-and-energy ratio (UER) at a decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UerEntry {
    /// The job.
    pub job: JobId,
    /// Its UER: predicted utility per unit of energy at `f_m`.
    pub uer: f64,
}

/// One entry of the tentative schedule, with the back-to-back predicted
/// finish time at `f_m` that justified its feasibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleEntry {
    /// The scheduled job.
    pub job: JobId,
    /// Predicted completion instant when the schedule runs back-to-back
    /// at the maximum (policy-view) frequency.
    pub predicted_finish: SimTime,
}

/// The infeasibility witness justifying one policy abort: even at `f_m`,
/// the job cannot finish before its termination time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbortWitness {
    /// The aborted job.
    pub job: JobId,
    /// Its believed remaining cycles at the decision instant.
    pub remaining: Cycles,
    /// Its absolute termination time.
    pub termination: SimTime,
    /// `now + exec_time(remaining, f_m)` — past `termination`.
    pub predicted_finish: SimTime,
}

/// The stochastic look-ahead quantities (Algorithm 2) that justified the
/// chosen frequency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DvsExplanation {
    /// The required processor speed (cycles/µs) from the look-ahead.
    pub required_speed: f64,
    /// Total cycles that must run before the earliest critical time.
    pub must_run_cycles: f64,
    /// The earliest critical time driving the look-ahead horizon.
    pub earliest_critical: Option<SimTime>,
    /// The UER-optimal frequency clamp applied to the head job's task,
    /// when the clamp option was active.
    pub clamp: Option<Frequency>,
}

/// Everything the policy asserts about one decision, for offline
/// re-derivation. Policies that cannot explain themselves return `None`
/// from [`crate::SchedulerPolicy::explain`] and the auditor degrades to
/// engine-level checks for their events.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DecisionExplanation {
    /// Computed UERs for every feasible ready job.
    pub uer: Vec<UerEntry>,
    /// The tentative schedule, critical-time ordered, with predicted
    /// finish times.
    pub schedule: Vec<ScheduleEntry>,
    /// Witnesses for every abort the decision requested.
    pub aborts: Vec<AbortWitness>,
    /// The DVS look-ahead, when frequency scaling was active.
    pub dvs: Option<DvsExplanation>,
    /// `true` when the insertion mode skips infeasible candidates rather
    /// than stopping at the first one.
    pub skip_infeasible: bool,
}

/// One scheduling event: what the policy saw and what it decided.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// The decision instant.
    pub at: SimTime,
    /// What woke the scheduler.
    pub trigger: SchedEvent,
    /// The ready-job set, in arrival (= id) order.
    pub ready: Vec<JobSnapshot>,
    /// The job chosen to run (`None` = idle).
    pub run: Option<JobId>,
    /// The chosen frequency, as the policy requested it (before any
    /// fault-injected remap).
    pub frequency: Frequency,
    /// Jobs the decision aborted.
    pub aborts: Vec<JobId>,
    /// The policy's self-explanation, when it provides one.
    pub explanation: Option<DecisionExplanation>,
}

/// What kind of work a [`ChargeRecord`] billed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChargeKind {
    /// Job execution cycles.
    Execute,
    /// Context/frequency switch overhead (billed as cycles at the target
    /// frequency).
    Switch,
    /// A fault-injected costly abort handler.
    AbortCost,
    /// Idle draw (`idle_power` per microsecond).
    Idle,
}

impl ChargeKind {
    /// The kind's serialized tag.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ChargeKind::Execute => "execute",
            ChargeKind::Switch => "switch",
            ChargeKind::AbortCost => "abort-cost",
            ChargeKind::Idle => "idle",
        }
    }
}

/// One energy charge the engine billed, mirroring every
/// `metrics.energy +=` site so cumulative energy is auditable per charge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChargeRecord {
    /// When the charged interval started.
    pub at: SimTime,
    /// What was billed.
    pub kind: ChargeKind,
    /// The executing frequency in MHz (0 for idle charges).
    pub frequency_mhz: u64,
    /// Cycles billed (zero for idle charges).
    pub cycles: Cycles,
    /// Wall time covered, in µs.
    pub micros: u64,
    /// The energy charged.
    pub energy: f64,
}

/// The complete certificate of one engine run.
///
/// Produced by the engine when [`crate::SimConfig::with_certificate`] is
/// set; consumed by `eua-audit`, which re-derives every invariant from
/// this record alone.
#[derive(Debug, Clone, PartialEq)]
pub struct RunCertificate {
    /// The policy's name.
    pub policy: String,
    /// The run's seed.
    pub seed: u64,
    /// The simulated horizon.
    pub horizon: TimeDelta,
    /// The true platform frequency table, in MHz, ascending.
    pub frequencies_mhz: Vec<u64>,
    /// The table the *policy* planned against — identical to
    /// `frequencies_mhz` unless a degraded-frequency fault restricted it.
    pub policy_frequencies_mhz: Vec<u64>,
    /// The Martin energy setting's name.
    pub energy_name: String,
    /// The setting's relative coefficients `(S3, S2, S1/f_m², S0/f_m³)`,
    /// bound to a table's `f_m` at audit time.
    pub energy_rel: (f64, f64, f64, f64),
    /// Idle power draw per microsecond.
    pub idle_power: f64,
    /// Declarative task table, indexed by [`TaskId`].
    pub tasks: Vec<TaskDecl>,
    /// The certified arrival stream `(instant, task index)`, time-ordered.
    pub arrivals: Vec<(SimTime, usize)>,
    /// Every scheduling decision, in order.
    pub events: Vec<EventRecord>,
    /// Every energy charge, in order.
    pub charges: Vec<ChargeRecord>,
    /// The run's final cumulative energy.
    pub final_energy: f64,
}

// ---------------------------------------------------------------------
// Serialization.
// ---------------------------------------------------------------------

fn time_json(t: SimTime) -> Json {
    Json::uint(t.as_micros())
}

fn delta_json(d: TimeDelta) -> Json {
    Json::uint(d.as_micros())
}

impl TufDecl {
    fn to_json(&self) -> Json {
        match self {
            TufDecl::Step {
                umax,
                step_at,
                termination,
            } => Json::Obj(vec![
                ("shape".into(), Json::Str("step".into())),
                ("umax".into(), Json::num(*umax)),
                ("step_at_us".into(), delta_json(*step_at)),
                ("termination_us".into(), delta_json(*termination)),
            ]),
            TufDecl::Linear { umax, termination } => Json::Obj(vec![
                ("shape".into(), Json::Str("linear".into())),
                ("umax".into(), Json::num(*umax)),
                ("termination_us".into(), delta_json(*termination)),
            ]),
            TufDecl::Exponential {
                umax,
                tau,
                termination,
            } => Json::Obj(vec![
                ("shape".into(), Json::Str("exponential".into())),
                ("umax".into(), Json::num(*umax)),
                ("tau_us".into(), delta_json(*tau)),
                ("termination_us".into(), delta_json(*termination)),
            ]),
            TufDecl::Piecewise { points } => Json::Obj(vec![
                ("shape".into(), Json::Str("piecewise".into())),
                (
                    "points".into(),
                    Json::Arr(
                        points
                            .iter()
                            .map(|&(t, u)| Json::Arr(vec![delta_json(t), Json::num(u)]))
                            .collect(),
                    ),
                ),
            ]),
        }
    }
}

fn trigger_json(event: SchedEvent) -> Json {
    let (kind, job) = match event {
        SchedEvent::Start => ("start", None),
        SchedEvent::Arrival => ("arrival", None),
        SchedEvent::Completion(j) => ("completion", Some(j)),
        SchedEvent::Abort(j) => ("abort", Some(j)),
    };
    let mut fields = vec![("kind".into(), Json::Str(kind.into()))];
    if let Some(j) = job {
        fields.push(("job".into(), Json::uint(j.0)));
    }
    Json::Obj(fields)
}

impl RunCertificate {
    /// Lowers the certificate into the first-party JSON tree.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let (s3, s2, s1_rel, s0_rel) = self.energy_rel;
        Json::Obj(vec![
            ("format".into(), Json::Str(CERT_FORMAT.into())),
            ("policy".into(), Json::Str(self.policy.clone())),
            ("seed".into(), Json::uint(self.seed)),
            ("horizon_us".into(), delta_json(self.horizon)),
            (
                "frequencies_mhz".into(),
                Json::Arr(
                    self.frequencies_mhz
                        .iter()
                        .map(|&m| Json::uint(m))
                        .collect(),
                ),
            ),
            (
                "policy_frequencies_mhz".into(),
                Json::Arr(
                    self.policy_frequencies_mhz
                        .iter()
                        .map(|&m| Json::uint(m))
                        .collect(),
                ),
            ),
            (
                "energy".into(),
                Json::Obj(vec![
                    ("name".into(), Json::Str(self.energy_name.clone())),
                    ("s3".into(), Json::num(s3)),
                    ("s2".into(), Json::num(s2)),
                    ("s1_rel".into(), Json::num(s1_rel)),
                    ("s0_rel".into(), Json::num(s0_rel)),
                ]),
            ),
            ("idle_power".into(), Json::num(self.idle_power)),
            (
                "tasks".into(),
                Json::Arr(
                    self.tasks
                        .iter()
                        .map(|t| {
                            Json::Obj(vec![
                                ("name".into(), Json::Str(t.name.clone())),
                                ("tuf".into(), t.tuf.to_json()),
                                ("max_arrivals".into(), Json::uint(u64::from(t.max_arrivals))),
                                ("window_us".into(), delta_json(t.window)),
                                ("allocation_cycles".into(), Json::uint(t.allocation.get())),
                                ("critical_offset_us".into(), delta_json(t.critical_offset)),
                                (
                                    "termination_offset_us".into(),
                                    delta_json(t.termination_offset),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "arrivals".into(),
                Json::Arr(
                    self.arrivals
                        .iter()
                        .map(|&(t, task)| {
                            Json::Obj(vec![
                                ("at_us".into(), time_json(t)),
                                ("task".into(), Json::uint(task as u64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "events".into(),
                Json::Arr(self.events.iter().map(event_json).collect()),
            ),
            (
                "charges".into(),
                Json::Arr(self.charges.iter().map(charge_json).collect()),
            ),
            ("final_energy".into(), Json::num(self.final_energy)),
        ])
    }

    /// Renders the certificate as deterministic pretty-printed JSON.
    #[must_use]
    pub fn render(&self) -> String {
        self.to_json().render()
    }

    /// Parses a rendered certificate.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the first malformed field; the
    /// auditor maps any such failure to `aud-malformed-certificate`.
    pub fn parse(text: &str) -> Result<RunCertificate, String> {
        let doc = json_parse(text)?;
        let format = str_field(&doc, "format")?;
        if format != CERT_FORMAT {
            return Err(format!("unknown certificate format {format:?}"));
        }
        let energy = doc.get("energy").ok_or("missing energy object")?;
        Ok(RunCertificate {
            policy: str_field(&doc, "policy")?,
            seed: u64_field(&doc, "seed")?,
            horizon: TimeDelta::from_micros(u64_field(&doc, "horizon_us")?),
            frequencies_mhz: u64_arr(&doc, "frequencies_mhz")?,
            policy_frequencies_mhz: u64_arr(&doc, "policy_frequencies_mhz")?,
            energy_name: str_field(energy, "name")?,
            energy_rel: (
                f64_field(energy, "s3")?,
                f64_field(energy, "s2")?,
                f64_field(energy, "s1_rel")?,
                f64_field(energy, "s0_rel")?,
            ),
            idle_power: f64_field(&doc, "idle_power")?,
            tasks: arr_field(&doc, "tasks")?
                .iter()
                .map(parse_task)
                .collect::<Result<_, _>>()?,
            arrivals: arr_field(&doc, "arrivals")?
                .iter()
                .map(|a| {
                    Ok::<_, String>((
                        SimTime::from_micros(u64_field(a, "at_us")?),
                        u64_field(a, "task")? as usize,
                    ))
                })
                .collect::<Result<_, _>>()?,
            events: arr_field(&doc, "events")?
                .iter()
                .map(parse_event)
                .collect::<Result<_, _>>()?,
            charges: arr_field(&doc, "charges")?
                .iter()
                .map(parse_charge)
                .collect::<Result<_, _>>()?,
            final_energy: f64_field(&doc, "final_energy")?,
        })
    }
}

fn event_json(e: &EventRecord) -> Json {
    Json::Obj(vec![
        ("at_us".into(), time_json(e.at)),
        ("trigger".into(), trigger_json(e.trigger)),
        (
            "ready".into(),
            Json::Arr(
                e.ready
                    .iter()
                    .map(|j| {
                        Json::Obj(vec![
                            ("job".into(), Json::uint(j.job.0)),
                            ("task".into(), Json::uint(j.task.0 as u64)),
                            ("arrival_us".into(), time_json(j.arrival)),
                            ("critical_us".into(), time_json(j.critical)),
                            ("termination_us".into(), time_json(j.termination)),
                            ("remaining_cycles".into(), Json::uint(j.remaining.get())),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("run".into(), e.run.map_or(Json::Null, |j| Json::uint(j.0))),
        ("frequency_mhz".into(), Json::uint(e.frequency.as_mhz())),
        (
            "aborts".into(),
            Json::Arr(e.aborts.iter().map(|j| Json::uint(j.0)).collect()),
        ),
        (
            "explanation".into(),
            e.explanation.as_ref().map_or(Json::Null, explanation_json),
        ),
    ])
}

fn explanation_json(x: &DecisionExplanation) -> Json {
    Json::Obj(vec![
        (
            "uer".into(),
            Json::Arr(
                x.uer
                    .iter()
                    .map(|u| {
                        Json::Obj(vec![
                            ("job".into(), Json::uint(u.job.0)),
                            ("uer".into(), Json::num(u.uer)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "schedule".into(),
            Json::Arr(
                x.schedule
                    .iter()
                    .map(|s| {
                        Json::Obj(vec![
                            ("job".into(), Json::uint(s.job.0)),
                            ("finish_us".into(), time_json(s.predicted_finish)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "aborts".into(),
            Json::Arr(
                x.aborts
                    .iter()
                    .map(|a| {
                        Json::Obj(vec![
                            ("job".into(), Json::uint(a.job.0)),
                            ("remaining_cycles".into(), Json::uint(a.remaining.get())),
                            ("termination_us".into(), time_json(a.termination)),
                            ("predicted_finish_us".into(), time_json(a.predicted_finish)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "dvs".into(),
            x.dvs.as_ref().map_or(Json::Null, |d| {
                Json::Obj(vec![
                    ("required_speed".into(), Json::num(d.required_speed)),
                    ("must_run_cycles".into(), Json::num(d.must_run_cycles)),
                    (
                        "earliest_critical_us".into(),
                        d.earliest_critical.map_or(Json::Null, time_json),
                    ),
                    (
                        "clamp_mhz".into(),
                        d.clamp.map_or(Json::Null, |f| Json::uint(f.as_mhz())),
                    ),
                ])
            }),
        ),
        ("skip_infeasible".into(), Json::Bool(x.skip_infeasible)),
    ])
}

fn charge_json(c: &ChargeRecord) -> Json {
    Json::Obj(vec![
        ("at_us".into(), time_json(c.at)),
        ("kind".into(), Json::Str(c.kind.as_str().into())),
        ("frequency_mhz".into(), Json::uint(c.frequency_mhz)),
        ("cycles".into(), Json::uint(c.cycles.get())),
        ("micros".into(), Json::uint(c.micros)),
        ("energy".into(), Json::num(c.energy)),
    ])
}

// ---------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------

fn str_field(v: &Json, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(String::from)
        .ok_or_else(|| format!("missing or non-string `{key}`"))
}

fn u64_field(v: &Json, key: &str) -> Result<u64, String> {
    match v.get(key) {
        Some(Json::Num(n)) => n
            .parse::<u64>()
            .map_err(|_| format!("`{key}` is not an unsigned integer: {n:?}")),
        _ => Err(format!("missing or non-numeric `{key}`")),
    }
}

fn f64_field(v: &Json, key: &str) -> Result<f64, String> {
    match v.get(key) {
        Some(Json::Num(n)) => n
            .parse::<f64>()
            .map_err(|_| format!("`{key}` is not a number: {n:?}")),
        _ => Err(format!("missing or non-numeric `{key}`")),
    }
}

fn opt_u64_field(v: &Json, key: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        Some(Json::Null) | None => Ok(None),
        Some(Json::Num(n)) => n
            .parse::<u64>()
            .map(Some)
            .map_err(|_| format!("`{key}` is not an unsigned integer: {n:?}")),
        _ => Err(format!("non-numeric `{key}`")),
    }
}

fn arr_field<'a>(v: &'a Json, key: &str) -> Result<&'a [Json], String> {
    v.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing or non-array `{key}`"))
}

fn u64_arr(v: &Json, key: &str) -> Result<Vec<u64>, String> {
    arr_field(v, key)?
        .iter()
        .map(|e| match e {
            Json::Num(n) => n
                .parse::<u64>()
                .map_err(|_| format!("`{key}` entry is not an unsigned integer: {n:?}")),
            _ => Err(format!("non-numeric `{key}` entry")),
        })
        .collect()
}

fn parse_task(v: &Json) -> Result<TaskDecl, String> {
    Ok(TaskDecl {
        name: str_field(v, "name")?,
        tuf: parse_tuf(v.get("tuf").ok_or("missing task tuf")?)?,
        max_arrivals: u32::try_from(u64_field(v, "max_arrivals")?)
            .map_err(|_| "max_arrivals out of range".to_string())?,
        window: TimeDelta::from_micros(u64_field(v, "window_us")?),
        allocation: Cycles::new(u64_field(v, "allocation_cycles")?),
        critical_offset: TimeDelta::from_micros(u64_field(v, "critical_offset_us")?),
        termination_offset: TimeDelta::from_micros(u64_field(v, "termination_offset_us")?),
    })
}

fn parse_tuf(v: &Json) -> Result<TufDecl, String> {
    let shape = str_field(v, "shape")?;
    match shape.as_str() {
        "step" => Ok(TufDecl::Step {
            umax: f64_field(v, "umax")?,
            step_at: TimeDelta::from_micros(u64_field(v, "step_at_us")?),
            termination: TimeDelta::from_micros(u64_field(v, "termination_us")?),
        }),
        "linear" => Ok(TufDecl::Linear {
            umax: f64_field(v, "umax")?,
            termination: TimeDelta::from_micros(u64_field(v, "termination_us")?),
        }),
        "exponential" => Ok(TufDecl::Exponential {
            umax: f64_field(v, "umax")?,
            tau: TimeDelta::from_micros(u64_field(v, "tau_us")?),
            termination: TimeDelta::from_micros(u64_field(v, "termination_us")?),
        }),
        "piecewise" => {
            let points = arr_field(v, "points")?
                .iter()
                .map(|p| {
                    let pair = p.as_arr().ok_or("piecewise point is not a pair")?;
                    let [t, u] = pair else {
                        return Err("piecewise point is not a pair".to_string());
                    };
                    let Json::Num(tn) = t else {
                        return Err("piecewise offset is not a number".to_string());
                    };
                    let Json::Num(un) = u else {
                        return Err("piecewise utility is not a number".to_string());
                    };
                    Ok((
                        TimeDelta::from_micros(
                            tn.parse::<u64>().map_err(|_| "bad piecewise offset")?,
                        ),
                        un.parse::<f64>().map_err(|_| "bad piecewise utility")?,
                    ))
                })
                .collect::<Result<_, String>>()?;
            Ok(TufDecl::Piecewise { points })
        }
        other => Err(format!("unknown tuf shape {other:?}")),
    }
}

fn parse_trigger(v: &Json) -> Result<SchedEvent, String> {
    let kind = str_field(v, "kind")?;
    match kind.as_str() {
        "start" => Ok(SchedEvent::Start),
        "arrival" => Ok(SchedEvent::Arrival),
        "completion" => Ok(SchedEvent::Completion(JobId(u64_field(v, "job")?))),
        "abort" => Ok(SchedEvent::Abort(JobId(u64_field(v, "job")?))),
        other => Err(format!("unknown trigger kind {other:?}")),
    }
}

fn parse_event(v: &Json) -> Result<EventRecord, String> {
    let frequency_mhz = u64_field(v, "frequency_mhz")?;
    if frequency_mhz == 0 {
        return Err("event frequency_mhz must be positive".into());
    }
    Ok(EventRecord {
        at: SimTime::from_micros(u64_field(v, "at_us")?),
        trigger: parse_trigger(v.get("trigger").ok_or("missing event trigger")?)?,
        ready: arr_field(v, "ready")?
            .iter()
            .map(|j| {
                Ok::<_, String>(JobSnapshot {
                    job: JobId(u64_field(j, "job")?),
                    task: TaskId(u64_field(j, "task")? as usize),
                    arrival: SimTime::from_micros(u64_field(j, "arrival_us")?),
                    critical: SimTime::from_micros(u64_field(j, "critical_us")?),
                    termination: SimTime::from_micros(u64_field(j, "termination_us")?),
                    remaining: Cycles::new(u64_field(j, "remaining_cycles")?),
                })
            })
            .collect::<Result<_, _>>()?,
        run: opt_u64_field(v, "run")?.map(JobId),
        frequency: Frequency::from_mhz(frequency_mhz),
        aborts: arr_field(v, "aborts")?
            .iter()
            .map(|j| match j {
                Json::Num(n) => n
                    .parse::<u64>()
                    .map(JobId)
                    .map_err(|_| format!("bad abort id {n:?}")),
                _ => Err("non-numeric abort id".into()),
            })
            .collect::<Result<_, _>>()?,
        explanation: match v.get("explanation") {
            Some(Json::Null) | None => None,
            Some(x) => Some(parse_explanation(x)?),
        },
    })
}

fn parse_explanation(v: &Json) -> Result<DecisionExplanation, String> {
    Ok(DecisionExplanation {
        uer: arr_field(v, "uer")?
            .iter()
            .map(|u| {
                Ok::<_, String>(UerEntry {
                    job: JobId(u64_field(u, "job")?),
                    uer: f64_field(u, "uer")?,
                })
            })
            .collect::<Result<_, _>>()?,
        schedule: arr_field(v, "schedule")?
            .iter()
            .map(|s| {
                Ok::<_, String>(ScheduleEntry {
                    job: JobId(u64_field(s, "job")?),
                    predicted_finish: SimTime::from_micros(u64_field(s, "finish_us")?),
                })
            })
            .collect::<Result<_, _>>()?,
        aborts: arr_field(v, "aborts")?
            .iter()
            .map(|a| {
                Ok::<_, String>(AbortWitness {
                    job: JobId(u64_field(a, "job")?),
                    remaining: Cycles::new(u64_field(a, "remaining_cycles")?),
                    termination: SimTime::from_micros(u64_field(a, "termination_us")?),
                    predicted_finish: SimTime::from_micros(u64_field(a, "predicted_finish_us")?),
                })
            })
            .collect::<Result<_, _>>()?,
        dvs: match v.get("dvs") {
            Some(Json::Null) | None => None,
            Some(d) => Some(DvsExplanation {
                required_speed: f64_field(d, "required_speed")?,
                must_run_cycles: f64_field(d, "must_run_cycles")?,
                earliest_critical: opt_u64_field(d, "earliest_critical_us")?
                    .map(SimTime::from_micros),
                clamp: match opt_u64_field(d, "clamp_mhz")? {
                    Some(0) => return Err("clamp_mhz must be positive".into()),
                    Some(m) => Some(Frequency::from_mhz(m)),
                    None => None,
                },
            }),
        },
        skip_infeasible: match v.get("skip_infeasible") {
            Some(Json::Bool(b)) => *b,
            _ => return Err("missing or non-boolean `skip_infeasible`".into()),
        },
    })
}

fn parse_charge(v: &Json) -> Result<ChargeRecord, String> {
    let kind = match str_field(v, "kind")?.as_str() {
        "execute" => ChargeKind::Execute,
        "switch" => ChargeKind::Switch,
        "abort-cost" => ChargeKind::AbortCost,
        "idle" => ChargeKind::Idle,
        other => return Err(format!("unknown charge kind {other:?}")),
    };
    Ok(ChargeRecord {
        at: SimTime::from_micros(u64_field(v, "at_us")?),
        kind,
        frequency_mhz: u64_field(v, "frequency_mhz")?,
        cycles: Cycles::new(u64_field(v, "cycles")?),
        micros: u64_field(v, "micros")?,
        energy: f64_field(v, "energy")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunCertificate {
        RunCertificate {
            policy: "eua".into(),
            seed: 42,
            horizon: TimeDelta::from_millis(100),
            frequencies_mhz: vec![36, 55, 100],
            policy_frequencies_mhz: vec![36, 100],
            energy_name: "E2".into(),
            energy_rel: (1.0, 0.0, 0.1, 0.1),
            idle_power: 0.5,
            tasks: vec![TaskDecl {
                name: "control".into(),
                tuf: TufDecl::Step {
                    umax: 10.0,
                    step_at: TimeDelta::from_millis(10),
                    termination: TimeDelta::from_millis(10),
                },
                max_arrivals: 2,
                window: TimeDelta::from_millis(10),
                allocation: Cycles::new(150_000),
                critical_offset: TimeDelta::from_millis(10),
                termination_offset: TimeDelta::from_millis(10),
            }],
            arrivals: vec![(SimTime::ZERO, 0), (SimTime::from_micros(5_000), 0)],
            events: vec![EventRecord {
                at: SimTime::ZERO,
                trigger: SchedEvent::Arrival,
                ready: vec![JobSnapshot {
                    job: JobId(0),
                    task: TaskId(0),
                    arrival: SimTime::ZERO,
                    critical: SimTime::from_micros(10_000),
                    termination: SimTime::from_micros(10_000),
                    remaining: Cycles::new(150_000),
                }],
                run: Some(JobId(0)),
                frequency: Frequency::from_mhz(36),
                aborts: vec![],
                explanation: Some(DecisionExplanation {
                    uer: vec![UerEntry {
                        job: JobId(0),
                        uer: 6.6e-9,
                    }],
                    schedule: vec![ScheduleEntry {
                        job: JobId(0),
                        predicted_finish: SimTime::from_micros(1_500),
                    }],
                    aborts: vec![AbortWitness {
                        job: JobId(7),
                        remaining: Cycles::new(99),
                        termination: SimTime::from_micros(800),
                        predicted_finish: SimTime::from_micros(900),
                    }],
                    dvs: Some(DvsExplanation {
                        required_speed: 15.0,
                        must_run_cycles: 150_000.0,
                        earliest_critical: Some(SimTime::from_micros(10_000)),
                        clamp: Some(Frequency::from_mhz(36)),
                    }),
                    skip_infeasible: false,
                }),
            }],
            charges: vec![ChargeRecord {
                at: SimTime::ZERO,
                kind: ChargeKind::Execute,
                frequency_mhz: 36,
                cycles: Cycles::new(150_000),
                micros: 4_167,
                energy: 150_000.0 * (36.0 * 36.0 + 0.1 * 100.0 * 100.0 + 0.1 * 1e6 / 36.0),
            }],
            final_energy: 1.25e8,
        }
    }

    #[test]
    fn certificate_round_trips_value_and_bytes() {
        let cert = sample();
        let text = cert.render();
        let back = RunCertificate::parse(&text).expect("must parse");
        assert_eq!(back, cert, "value round-trip");
        assert_eq!(back.render(), text, "byte round-trip");
    }

    #[test]
    fn malformed_certificates_are_rejected() {
        let cert = sample();
        let good = cert.render();
        for bad in [
            "not json".to_string(),
            "{}".to_string(),
            good.replace("eua-certificate/1", "eua-certificate/999"),
            good.replace("\"kind\": \"execute\"", "\"kind\": \"teleport\""),
            good.replace("\"shape\": \"step\"", "\"shape\": \"cubist\""),
        ] {
            assert!(RunCertificate::parse(&bad).is_err(), "{bad:.60} accepted");
        }
    }

    #[test]
    fn tuf_decl_round_trips_through_real_tufs() {
        let ms = TimeDelta::from_millis;
        let tufs = [
            Tuf::step(10.0, ms(10)).unwrap(),
            Tuf::linear(5.0, ms(20)).unwrap(),
            Tuf::exponential(8.0, ms(3), ms(30)).unwrap(),
            Tuf::piecewise([(ms(0), 9.0), (ms(5), 4.0), (ms(10), 0.0)]).unwrap(),
        ];
        for tuf in tufs {
            let decl = TufDecl::from_tuf(&tuf);
            let back = decl.to_tuf().expect("declared tuf must re-validate");
            assert_eq!(back, tuf);
        }
    }

    #[test]
    fn idle_and_start_triggers_round_trip() {
        let mut cert = sample();
        cert.events[0].trigger = SchedEvent::Completion(JobId(3));
        cert.events[0].run = None;
        cert.events[0].explanation = None;
        cert.charges[0].kind = ChargeKind::Idle;
        cert.charges[0].frequency_mhz = 0;
        let text = cert.render();
        let back = RunCertificate::parse(&text).unwrap();
        assert_eq!(back, cert);
    }
}
