//! The read-only view a scheduling policy receives at each event.

use eua_platform::{Cycles, SimTime};

use crate::ids::{JobId, TaskId};
use crate::platform_view::Platform;
use crate::task::TaskSet;

/// What a policy may know about one live job.
///
/// The crucial asymmetry of the paper's model is preserved here: the view
/// exposes the **believed** remaining work (allocation `c_i` minus executed
/// cycles, floored at one cycle on overrun) — never the actual sampled
/// demand, which only the simulator knows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobView {
    /// The job's id.
    pub id: JobId,
    /// The owning task.
    pub task: TaskId,
    /// Arrival instant (= TUF initial time).
    pub arrival: SimTime,
    /// Absolute critical time `arrival + D_i`.
    pub critical_time: SimTime,
    /// Absolute termination time; reaching it incomplete raises the abort
    /// exception.
    pub termination: SimTime,
    /// Believed remaining cycles (allocation-based).
    pub remaining: Cycles,
    /// Cycles executed so far.
    pub executed: Cycles,
}

/// What woke the scheduler (paper §3.2: "the scheduling events of EUA\*
/// include the arrival and completion of a job, and the expiration of a
/// time constraint").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SchedEvent {
    /// First invocation at time zero.
    Start,
    /// One or more jobs arrived at the current instant.
    Arrival,
    /// The given job just completed.
    Completion(JobId),
    /// The given job was just aborted at its termination time.
    Abort(JobId),
}

/// The full decision context handed to [`crate::SchedulerPolicy::decide`].
#[derive(Debug)]
pub struct SchedContext<'a> {
    /// The current instant.
    pub now: SimTime,
    /// What triggered this invocation.
    pub event: SchedEvent,
    /// All live jobs, in arrival (= id) order.
    pub jobs: &'a [JobView],
    /// The static task definitions.
    pub tasks: &'a TaskSet,
    /// The processor and energy model. Under a degraded-frequency fault
    /// (see [`crate::FaultPlan`]) this is the *degraded* view — the
    /// policy plans with, and may only pick from, the surviving
    /// frequencies, while the engine still bills energy by the true
    /// platform model.
    pub platform: &'a Platform,
    /// The job that was executing before this event, if still live.
    pub running: Option<JobId>,
    /// Total energy consumed so far in this run — lets energy-budgeted
    /// policies ration the remainder.
    pub energy_used: f64,
}

impl<'a> SchedContext<'a> {
    /// Looks up a live job by id.
    #[must_use]
    pub fn job(&self, id: JobId) -> Option<&JobView> {
        self.jobs.iter().find(|j| j.id == id)
    }

    /// Iterates over the live jobs of one task, in arrival order.
    pub fn jobs_of(&self, task: TaskId) -> impl Iterator<Item = &JobView> + '_ {
        self.jobs.iter().filter(move |j| j.task == task)
    }

    /// The earliest-arrived live job of each task that has one, in task
    /// order — the "earliest invocation" EUA\*'s DVS step reasons about.
    pub fn earliest_per_task(&self) -> impl Iterator<Item = &JobView> + '_ {
        (0..self.tasks.len()).filter_map(move |i| self.jobs_of(TaskId(i)).next())
    }

    /// Number of live jobs of `task`.
    #[must_use]
    pub fn pending_count(&self, task: TaskId) -> u32 {
        self.jobs_of(task).count() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eua_platform::{EnergySetting, TimeDelta};
    use eua_tuf::Tuf;
    use eua_uam::demand::DemandModel;
    use eua_uam::{Assurance, UamSpec};

    use crate::task::{Task, TaskSet};

    fn view(id: u64, task: usize) -> JobView {
        JobView {
            id: JobId(id),
            task: TaskId(task),
            arrival: SimTime::from_micros(id),
            critical_time: SimTime::from_micros(id + 100),
            termination: SimTime::from_micros(id + 200),
            remaining: Cycles::new(10),
            executed: Cycles::ZERO,
        }
    }

    fn two_task_set() -> TaskSet {
        let p = TimeDelta::from_millis(10);
        let mk = |name: &str| {
            Task::new(
                name,
                Tuf::step(1.0, p).unwrap(),
                UamSpec::new(3, p).unwrap(),
                DemandModel::deterministic(100.0).unwrap(),
                Assurance::new(1.0, 0.5).unwrap(),
            )
            .unwrap()
        };
        TaskSet::new(vec![mk("a"), mk("b")]).unwrap()
    }

    #[test]
    fn context_lookups() {
        let tasks = two_task_set();
        let platform = Platform::powernow(EnergySetting::e1());
        let jobs = vec![view(0, 0), view(1, 1), view(2, 0)];
        let ctx = SchedContext {
            now: SimTime::from_micros(5),
            event: SchedEvent::Arrival,
            jobs: &jobs,
            tasks: &tasks,
            platform: &platform,
            running: Some(JobId(0)),
            energy_used: 0.0,
        };
        assert_eq!(ctx.job(JobId(1)).unwrap().task, TaskId(1));
        assert!(ctx.job(JobId(9)).is_none());
        assert_eq!(ctx.jobs_of(TaskId(0)).count(), 2);
        assert_eq!(ctx.pending_count(TaskId(0)), 2);
        assert_eq!(ctx.pending_count(TaskId(1)), 1);
        let earliest: Vec<u64> = ctx.earliest_per_task().map(|j| j.id.get()).collect();
        assert_eq!(earliest, vec![0, 1]);
    }

    #[test]
    fn earliest_per_task_skips_idle_tasks() {
        let tasks = two_task_set();
        let platform = Platform::powernow(EnergySetting::e1());
        let jobs = vec![view(7, 1)];
        let ctx = SchedContext {
            now: SimTime::ZERO,
            event: SchedEvent::Start,
            jobs: &jobs,
            tasks: &tasks,
            platform: &platform,
            running: None,
            energy_used: 0.0,
        };
        let earliest: Vec<u64> = ctx.earliest_per_task().map(|j| j.id.get()).collect();
        assert_eq!(earliest, vec![7]);
    }
}
