//! The discrete-event simulation engine.

use eua_platform::{Cycles, Frequency, SimTime, TimeDelta};
use eua_uam::generator::ArrivalPattern;
use eua_uam::ArrivalTrace;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::arena::{JobArena, JobMeta, JobRef};
use crate::calendar::TerminationCalendar;
use crate::certificate::{
    ChargeKind, ChargeRecord, EventRecord, JobSnapshot, RunCertificate, TaskDecl,
};
use crate::context::{JobView, SchedContext, SchedEvent};
use crate::error::SimError;
use crate::faults::{map_to_degraded, FaultPlan, FaultStats};
use crate::ids::{JobId, TaskId};
use crate::invariants::InvariantChecker;
use crate::job::{JobOutcome, JobRecord};
use crate::metrics::Metrics;
use crate::platform_view::Platform;
use crate::policy::SchedulerPolicy;
use crate::task::TaskSet;
use crate::trace::{ExecutionTrace, Segment, TraceEvent};

/// Configuration of one simulation run.
///
/// # Example
///
/// ```
/// use eua_platform::TimeDelta;
/// use eua_sim::SimConfig;
///
/// let config = SimConfig::new(TimeDelta::from_secs(10))
///     .with_trace()
///     .with_job_records();
/// assert!(config.record_trace());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    horizon: TimeDelta,
    record_trace: bool,
    record_jobs: bool,
    record_certificate: bool,
    context_switch: TimeDelta,
    frequency_switch: TimeDelta,
    progress_accrual: bool,
    idle_power: f64,
}

impl SimConfig {
    /// A configuration simulating `[0, horizon)` with no recording and no
    /// switch overhead.
    #[must_use]
    pub fn new(horizon: TimeDelta) -> Self {
        SimConfig {
            horizon,
            record_trace: false,
            record_jobs: false,
            record_certificate: false,
            context_switch: TimeDelta::ZERO,
            frequency_switch: TimeDelta::ZERO,
            progress_accrual: false,
            idle_power: 0.0,
        }
    }

    /// Enables recording of the execution trace (segments and events).
    #[must_use]
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Enables recording of per-job outcome records.
    #[must_use]
    pub fn with_job_records(mut self) -> Self {
        self.record_jobs = true;
        self
    }

    /// Enables recording of the run's decision certificate: every
    /// scheduling decision (with the policy's self-explanation, when it
    /// provides one) and every energy charge, auditable offline by
    /// `eua-audit`. See [`crate::certificate`].
    #[must_use]
    pub fn with_certificate(mut self) -> Self {
        self.record_certificate = true;
        self
    }

    /// Charges `overhead` of wall time (at the chosen frequency's energy
    /// rate) whenever the running job changes. An interrupted switch is
    /// approximated by re-paying the penalty at the next dispatch.
    #[must_use]
    pub fn with_context_switch_overhead(mut self, overhead: TimeDelta) -> Self {
        self.context_switch = overhead;
        self
    }

    /// Charges `overhead` of wall time whenever the executing clock
    /// frequency changes (the PLL relock / voltage ramp of a real DVS
    /// processor). Same interruption approximation as
    /// [`SimConfig::with_context_switch_overhead`].
    #[must_use]
    pub fn with_frequency_switch_overhead(mut self, overhead: TimeDelta) -> Self {
        self.frequency_switch = overhead;
        self
    }

    /// Enables **progress-based utility accrual** (the paper's second
    /// named future-work item): a job aborted at time `t` with fraction
    /// `p` of its actual demand executed accrues `p · U(t − arrival)`
    /// instead of nothing.
    #[must_use]
    pub fn with_progress_accrual(mut self) -> Self {
        self.progress_accrual = true;
        self
    }

    /// The simulated horizon.
    #[must_use]
    pub fn horizon(&self) -> TimeDelta {
        self.horizon
    }

    /// Whether the execution trace is recorded.
    #[must_use]
    pub fn record_trace(&self) -> bool {
        self.record_trace
    }

    /// Whether per-job records are kept.
    #[must_use]
    pub fn record_jobs(&self) -> bool {
        self.record_jobs
    }

    /// Whether the decision certificate is recorded.
    #[must_use]
    pub fn record_certificate(&self) -> bool {
        self.record_certificate
    }

    /// The context-switch overhead.
    #[must_use]
    pub fn context_switch_overhead(&self) -> TimeDelta {
        self.context_switch
    }

    /// The frequency-switch overhead.
    #[must_use]
    pub fn frequency_switch_overhead(&self) -> TimeDelta {
        self.frequency_switch
    }

    /// Whether aborted jobs accrue progress-proportional utility.
    #[must_use]
    pub fn progress_accrual(&self) -> bool {
        self.progress_accrual
    }

    /// Charges `power` energy units per idle microsecond — the constant
    /// `S0`-class draw of non-CPU components that Martin's per-cycle model
    /// only accounts for while executing. The paper's evaluation uses the
    /// default of zero; the ablation harness explores non-zero values.
    ///
    /// # Panics
    ///
    /// Panics if `power` is negative or non-finite.
    #[must_use]
    pub fn with_idle_power(mut self, power: f64) -> Self {
        assert!(
            power.is_finite() && power >= 0.0,
            "idle power must be non-negative"
        );
        self.idle_power = power;
        self
    }

    /// The idle power draw, in energy units per microsecond.
    #[must_use]
    pub fn idle_power(&self) -> f64 {
        self.idle_power
    }
}

/// Everything a run produced: metrics always, plus the optional trace and
/// job records enabled in [`SimConfig`].
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    /// Aggregate metrics.
    pub metrics: Metrics,
    /// The execution trace, when [`SimConfig::with_trace`] was set.
    pub trace: Option<ExecutionTrace>,
    /// Per-job records, when [`SimConfig::with_job_records`] was set.
    pub jobs: Option<Vec<JobRecord>>,
    /// The decision certificate, when [`SimConfig::with_certificate`]
    /// was set.
    pub certificate: Option<RunCertificate>,
    /// What the run's [`FaultPlan`] actually injected (all zero without
    /// one; kept out of [`Metrics`] so zero-fault metrics stay
    /// bit-identical to the unfaulted engine).
    pub faults: FaultStats,
}

/// The simulation engine. See the crate-level documentation for the model
/// and an end-to-end example.
#[derive(Debug)]
pub struct Engine;

impl Engine {
    /// Runs `policy` against arrivals generated from `patterns` (one per
    /// task) over `config.horizon()`, with all randomness derived from
    /// `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::PatternCountMismatch`] if `patterns` and the
    /// task set disagree in length, [`SimError::ZeroHorizon`] for an empty
    /// horizon, and policy-contract violations as described in
    /// [`SimError`].
    pub fn run<P: SchedulerPolicy + ?Sized>(
        tasks: &TaskSet,
        patterns: &[ArrivalPattern],
        platform: &Platform,
        policy: &mut P,
        config: &SimConfig,
        seed: u64,
    ) -> Result<Outcome, SimError> {
        Self::run_with_faults(
            tasks,
            patterns,
            platform,
            policy,
            config,
            seed,
            &FaultPlan::none(),
        )
    }

    /// [`Engine::run`] with a [`FaultPlan`] injected: burst arrivals and
    /// jitter perturb the generated traces, demand mis-estimation scales
    /// the sampled cycle demands, and DVS/abort faults act inside the
    /// run loop. All fault randomness comes from a dedicated RNG derived
    /// from `seed` (see [`FaultPlan::rng`]), so an inactive plan is
    /// bit-identical to [`Engine::run`] and parallel replication stays
    /// byte-identical to sequential.
    ///
    /// # Errors
    ///
    /// As [`Engine::run`], plus [`SimError::InvalidFaultPlan`] for a
    /// plan that fails [`FaultPlan::validate`] or whose degraded
    /// frequency set shares nothing with the platform table.
    pub fn run_with_faults<P: SchedulerPolicy + ?Sized>(
        tasks: &TaskSet,
        patterns: &[ArrivalPattern],
        platform: &Platform,
        policy: &mut P,
        config: &SimConfig,
        seed: u64,
        plan: &FaultPlan,
    ) -> Result<Outcome, SimError> {
        if patterns.len() != tasks.len() {
            return Err(SimError::PatternCountMismatch {
                tasks: tasks.len(),
                patterns: patterns.len(),
            });
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        let traces: Vec<ArrivalTrace> = patterns
            .iter()
            .map(|p| p.generate(config.horizon, &mut rng))
            .collect();
        Self::run_core(
            tasks, &traces, platform, policy, config, &mut rng, seed, plan,
        )
    }

    /// Runs `policy` against explicit arrival traces (one per task).
    /// Arrivals at or past the horizon are ignored. Demand sampling is
    /// seeded by `seed`.
    ///
    /// # Errors
    ///
    /// As [`Engine::run`].
    pub fn run_with_traces<P: SchedulerPolicy + ?Sized>(
        tasks: &TaskSet,
        traces: &[ArrivalTrace],
        platform: &Platform,
        policy: &mut P,
        config: &SimConfig,
        seed: u64,
    ) -> Result<Outcome, SimError> {
        Self::run_traces_with_faults(
            tasks,
            traces,
            platform,
            policy,
            config,
            seed,
            &FaultPlan::none(),
        )
    }

    /// [`Engine::run_with_traces`] with a [`FaultPlan`] injected; the
    /// supplied traces are perturbed exactly like generated ones.
    ///
    /// # Errors
    ///
    /// As [`Engine::run_with_faults`].
    pub fn run_traces_with_faults<P: SchedulerPolicy + ?Sized>(
        tasks: &TaskSet,
        traces: &[ArrivalTrace],
        platform: &Platform,
        policy: &mut P,
        config: &SimConfig,
        seed: u64,
        plan: &FaultPlan,
    ) -> Result<Outcome, SimError> {
        if traces.len() != tasks.len() {
            return Err(SimError::PatternCountMismatch {
                tasks: tasks.len(),
                patterns: traces.len(),
            });
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        Self::run_core(
            tasks, traces, platform, policy, config, &mut rng, seed, plan,
        )
    }

    /// The production event loop: calendar event queue, arena job state,
    /// and an incrementally maintained policy view (DESIGN.md §14). The
    /// pre-overhaul loop is preserved in [`crate::reference`] and runs
    /// over the same [`PreparedRun`]; the `engine_differential` suite
    /// pins the two to byte-identical certificates.
    // eua-lint: hot
    #[allow(clippy::too_many_arguments)]
    fn run_core<P: SchedulerPolicy + ?Sized>(
        tasks: &TaskSet,
        traces: &[ArrivalTrace],
        platform: &Platform,
        policy: &mut P,
        config: &SimConfig,
        rng: &mut SmallRng,
        seed: u64,
        plan: &FaultPlan,
    ) -> Result<Outcome, SimError> {
        let prep = prepare_run(tasks, traces, platform, policy, config, rng, seed, plan)?;
        let mut state = EngineState::new(tasks, platform, config, plan, prep);
        state.run_loop(policy)?;
        state.invariants.finish(state.metrics.energy);
        if let Some(cert) = state.cert.as_mut() {
            cert.final_energy = state.metrics.energy;
        }
        Ok(Outcome {
            metrics: state.metrics,
            trace: state.trace,
            jobs: state.records,
            certificate: state.cert,
            faults: state.stats,
        })
    }
}

/// Everything both event loops consume, computed once: the validated
/// plan's perturbed arrival stream, pre-sampled demands, the degraded
/// platform view, and the certificate skeleton. Sharing this preamble is
/// what makes `run_core` and `run_core_reference` byte-comparable — they
/// cannot drift in setup, only in the loop itself.
pub(crate) struct PreparedRun {
    pub(crate) horizon_end: SimTime,
    pub(crate) arrivals: Vec<(SimTime, TaskId)>,
    pub(crate) demands: Vec<Cycles>,
    /// The surviving frequency set under a DVS degradation fault.
    pub(crate) degraded: Option<Vec<Frequency>>,
    /// The platform view handed to policies when `degraded` is set.
    pub(crate) policy_platform: Option<Platform>,
    pub(crate) stats: FaultStats,
    /// The decision certificate skeleton, when recording.
    pub(crate) cert: Option<RunCertificate>,
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn prepare_run<P: SchedulerPolicy + ?Sized>(
    tasks: &TaskSet,
    traces: &[ArrivalTrace],
    platform: &Platform,
    policy: &mut P,
    config: &SimConfig,
    rng: &mut SmallRng,
    seed: u64,
    plan: &FaultPlan,
) -> Result<PreparedRun, SimError> {
    if config.horizon.is_zero() {
        return Err(SimError::ZeroHorizon);
    }
    plan.validate()?;
    let horizon_end = SimTime::ZERO + config.horizon;

    // Fault randomness lives in its own seed-derived stream so an
    // active plan never re-deals the legal workload (and an inactive
    // one draws nothing at all).
    let mut fault_rng = FaultPlan::rng(seed);
    let mut stats = FaultStats::default();
    let perturbed;
    let traces: &[ArrivalTrace] = if plan.arrivals_faulted() {
        let before: u64 = traces.iter().map(|t| t.iter().count() as u64).sum();
        perturbed = plan.apply_to_traces(traces, tasks, horizon_end, &mut fault_rng);
        let after: u64 = perturbed.iter().map(|t| t.iter().count() as u64).sum();
        stats.injected_arrivals = after.saturating_sub(before);
        &perturbed
    } else {
        traces
    };

    // The degraded frequency view, when the plan restricts the table:
    // policies see (and the engine dispatches onto) only the surviving
    // frequencies, while energy is still billed by the true platform
    // model.
    let degraded = plan.degraded_table(platform.table())?;
    let policy_platform = match &degraded {
        Some(kept) => Some(Platform::new(
            eua_platform::FrequencyTable::new(kept.iter().map(|f| f.as_mhz())).map_err(|e| {
                SimError::InvalidFaultPlan {
                    reason: format!("degraded frequency set is unusable: {e}"),
                }
            })?,
            *platform.setting(),
        )),
        None => None,
    };

    // Merge all arrivals into one time-ordered stream (stable in task
    // order at equal instants) and pre-sample actual demands in that
    // order so results are reproducible per seed.
    let mut arrivals: Vec<(SimTime, TaskId)> = Vec::new();
    for (i, trace) in traces.iter().enumerate() {
        for t in trace.iter().filter(|&t| t < horizon_end) {
            arrivals.push((t, TaskId(i)));
        }
    }
    arrivals.sort_by_key(|&(t, tid)| (t, tid));
    let demand_faulted = plan.demand_faulted();
    let demands: Vec<Cycles> = arrivals
        .iter()
        .map(|&(_, tid)| {
            let sampled = tasks.task(tid).demand().sample(rng);
            plan.perturb_demand(sampled, &mut fault_rng)
        })
        .collect();
    if demand_faulted {
        stats.perturbed_demands = demands.len() as u64;
    }

    policy.reset();
    // Told unconditionally so a policy reused across runs drops any
    // stale certification state when recording is off.
    policy.certify(config.record_certificate);
    let cert = config.record_certificate.then(|| RunCertificate {
        policy: policy.name().to_string(),
        seed,
        horizon: config.horizon,
        frequencies_mhz: platform.table().iter().map(|f| f.as_mhz()).collect(),
        policy_frequencies_mhz: policy_platform
            .as_ref()
            .unwrap_or(platform)
            .table()
            .iter()
            .map(|f| f.as_mhz())
            .collect(),
        energy_name: platform.setting().name().to_string(),
        energy_rel: platform.setting().relative_coefficients(),
        idle_power: config.idle_power,
        tasks: tasks.iter().map(|(_, t)| TaskDecl::from_task(t)).collect(),
        arrivals: arrivals.iter().map(|&(t, tid)| (t, tid.index())).collect(),
        events: Vec::new(),
        charges: Vec::new(),
        final_energy: 0.0,
    });
    Ok(PreparedRun {
        horizon_end,
        arrivals,
        demands,
        degraded,
        policy_platform,
        stats,
        cert,
    })
}

struct EngineState<'a> {
    tasks: &'a TaskSet,
    platform: &'a Platform,
    config: &'a SimConfig,
    plan: &'a FaultPlan,
    horizon_end: SimTime,
    arrivals: Vec<(SimTime, TaskId)>,
    demands: Vec<Cycles>,
    cursor: usize,
    next_job_id: u64,
    now: SimTime,
    /// Slot storage for every live job's fields.
    arena: JobArena,
    /// Live jobs in arrival (= id) order; lockstep with `views`.
    order: Vec<JobRef>,
    /// The policy-facing projection of `order`, maintained incrementally:
    /// only a dispatched job's `remaining`/`executed` ever change, so the
    /// old per-event collect is replaced by one in-place update.
    views: Vec<JobView>,
    /// Tombstones in `order`/`views` awaiting `compact` (an abort wave
    /// marks in place and compacts once).
    dead: usize,
    /// Live termination times, for O(1) earliest-event queries.
    calendar: TerminationCalendar,
    running: Option<JobId>,
    last_freq: Option<Frequency>,
    /// The surviving frequency set under a DVS degradation fault.
    degraded: Option<Vec<Frequency>>,
    /// The platform view handed to policies when `degraded` is set.
    policy_platform: Option<Platform>,
    /// Absolute instant after which the clock generator is stuck.
    stuck_at: Option<SimTime>,
    /// The frequency the generator froze at (first dispatch past `stuck_at`).
    stuck_freq: Option<Frequency>,
    stats: FaultStats,
    metrics: Metrics,
    trace: Option<ExecutionTrace>,
    records: Option<Vec<JobRecord>>,
    /// The decision certificate under construction, when recording.
    cert: Option<RunCertificate>,
    invariants: InvariantChecker,
}

impl<'a> EngineState<'a> {
    fn new(
        tasks: &'a TaskSet,
        platform: &'a Platform,
        config: &'a SimConfig,
        plan: &'a FaultPlan,
        prep: PreparedRun,
    ) -> Self {
        EngineState {
            tasks,
            platform,
            config,
            plan,
            horizon_end: prep.horizon_end,
            arrivals: prep.arrivals,
            demands: prep.demands,
            cursor: 0,
            next_job_id: 0,
            now: SimTime::ZERO,
            arena: JobArena::new(),
            order: Vec::new(),
            views: Vec::new(),
            dead: 0,
            calendar: TerminationCalendar::new(),
            running: None,
            last_freq: None,
            degraded: prep.degraded,
            policy_platform: prep.policy_platform,
            stuck_at: plan
                .dvs
                .stuck_after
                .map(|after| SimTime::ZERO.saturating_add(after)),
            stuck_freq: None,
            stats: prep.stats,
            metrics: Metrics::new(config.horizon, tasks.len()),
            trace: config.record_trace.then(ExecutionTrace::new),
            records: config.record_jobs.then(Vec::new),
            cert: prep.cert,
            invariants: InvariantChecker::new(tasks.len()),
        }
    }

    // eua-lint: hot
    fn run_loop<P: SchedulerPolicy + ?Sized>(&mut self, policy: &mut P) -> Result<(), SimError> {
        let mut event = SchedEvent::Start;
        loop {
            // 1 + 2. Admit arrivals due now and raise the termination
            // exception for overdue jobs — repeated to a fixpoint because
            // a costly abort (fault plan) advances the clock, possibly
            // past further arrivals or termination times.
            loop {
                if self.admit_arrivals() && !matches!(event, SchedEvent::Completion(_)) {
                    event = SchedEvent::Arrival;
                }
                let before = self.now;
                if let Some(aborted) = self.abort_overdue() {
                    if !matches!(event, SchedEvent::Completion(_)) {
                        event = SchedEvent::Abort(aborted);
                    }
                }
                if self.now == before {
                    break;
                }
            }
            // 3. Horizon.
            if self.now >= self.horizon_end {
                break;
            }
            // 4. Fast-forward through idle gaps.
            if self.order.is_empty() {
                match self.arrivals.get(self.cursor) {
                    Some(&(t, _)) => {
                        let stop = t.min(self.horizon_end);
                        self.advance_idle(stop);
                        continue;
                    }
                    None => {
                        self.advance_idle(self.horizon_end);
                        break;
                    }
                }
            }
            // 5. Ask the policy. `views` is maintained incrementally, so
            // no per-event collect happens here. Under a degraded-
            // frequency fault the policy sees (and budgets against) only
            // the surviving frequencies.
            let decision = {
                let ctx = SchedContext {
                    now: self.now,
                    event,
                    jobs: &self.views,
                    tasks: self.tasks,
                    platform: self.policy_platform.as_ref().unwrap_or(self.platform),
                    running: self.running,
                    energy_used: self.metrics.energy,
                };
                policy.decide(&ctx)
            };
            self.record_decision(event, &decision, policy);
            event = SchedEvent::Start; // consumed; will be overwritten below
            if let Some(aborted) = self.apply_policy_aborts(&decision)? {
                if !self.plan.timing.abort_cost.is_zero() {
                    // The costly abort handler advanced the clock, so the
                    // decision's timing assumptions are stale — re-decide.
                    event = SchedEvent::Abort(aborted);
                    continue;
                }
            }

            let Some(run_id) = decision.run else {
                // Idle until something happens.
                self.running = None;
                let stop = self.next_passive_event();
                self.advance_idle(stop);
                continue;
            };
            if !self
                .platform
                .table()
                .as_slice()
                .contains(&decision.frequency)
            {
                return Err(SimError::UnknownFrequency {
                    mhz: decision.frequency.as_mhz(),
                });
            }
            let Some(job_idx) = self.find_live(run_id) else {
                return Err(SimError::UnknownJob { job: run_id });
            };
            let mut freq = decision.frequency;
            // DVS faults: remap onto the degraded set, then pin to the
            // stuck frequency once the generator fault has fired.
            if let Some(kept) = &self.degraded {
                let mapped = map_to_degraded(kept, freq);
                if mapped != freq {
                    self.stats.degraded_remaps += 1;
                    freq = mapped;
                }
            }
            if let Some(stuck_at) = self.stuck_at {
                if self.now >= stuck_at {
                    let pinned = *self.stuck_freq.get_or_insert(freq);
                    if pinned != freq {
                        self.stats.stuck_dispatches += 1;
                        freq = pinned;
                    }
                }
            }

            // 6. Context/frequency switch bookkeeping (and optional
            // overheads).
            let switching_job = self.running != Some(run_id);
            let switching_freq = self.last_freq.is_some() && self.last_freq != Some(freq);
            if let Some(old) = self.running {
                if switching_job {
                    self.metrics.context_switches += 1;
                    if self.find_live(old).is_some() {
                        self.metrics.preemptions += 1;
                    }
                }
            }
            let mut pause = TimeDelta::ZERO;
            if switching_job {
                pause += self.config.context_switch;
            }
            if switching_freq {
                pause += self.config.frequency_switch;
                let latency = self.plan.dvs.switch_latency_cycles;
                if latency > 0 {
                    // PLL relock modelled in cycles: billed as wall time
                    // at the target frequency.
                    pause += freq.execution_time(Cycles::new(latency));
                    self.stats.latency_switches += 1;
                }
            }
            if !pause.is_zero() {
                let target = self.now.saturating_add(pause);
                let stop = self.next_passive_event().min(target).max(self.now);
                let delta = stop - self.now;
                if !delta.is_zero() {
                    let cycles = freq.cycles_in(delta);
                    let charge = self.platform.energy().energy_for(cycles, freq);
                    self.invariants.energy_charge(charge);
                    self.metrics.energy += charge;
                    self.metrics.busy_time += delta;
                    self.metrics.add_residency(freq.as_mhz(), delta);
                    self.record_charge(ChargeKind::Switch, freq.as_mhz(), cycles, delta, charge);
                }
                self.invariants.clock_advance(self.now, stop);
                self.now = stop;
                if stop < target {
                    // Switch interrupted by an event; re-decide there.
                    continue;
                }
            }
            if self.last_freq != Some(freq) {
                if self.last_freq.is_some() {
                    self.metrics.frequency_changes += 1;
                }
                self.last_freq = Some(freq);
            }
            self.running = Some(run_id);

            // 7. Execute until the next event.
            let r = self.order[job_idx];
            let completion_at = self
                .now
                .saturating_add(freq.execution_time(self.arena.actual_remaining(r)));
            self.invariants.executing(run_id);
            let next = self.next_passive_event().min(completion_at).max(self.now);
            let delta = next - self.now;
            let cycles = freq.cycles_in(delta).min(self.arena.actual_remaining(r));
            self.arena.add_executed(r, cycles);
            // The dispatched job is the only live job whose view fields
            // can change between events.
            self.views[job_idx].remaining = self.arena.believed_remaining(r);
            self.views[job_idx].executed = self.arena.executed(r);
            let charge = self.platform.energy().energy_for(cycles, freq);
            self.invariants.energy_charge(charge);
            self.metrics.energy += charge;
            self.metrics.busy_time += delta;
            self.metrics.add_residency(freq.as_mhz(), delta);
            let completed = self.arena.actual_remaining(r).is_zero();
            let m = self.arena.meta(r);
            self.record_charge(ChargeKind::Execute, freq.as_mhz(), cycles, delta, charge);
            if let Some(trace) = self.trace.as_mut() {
                trace.push_segment(Segment {
                    job: m.id,
                    task: m.task,
                    start: self.now,
                    end: next,
                    frequency: freq,
                });
            }
            self.invariants.clock_advance(self.now, next);
            self.now = next;
            if completed {
                self.complete_at(job_idx);
                event = SchedEvent::Completion(m.id);
            }
        }
        // Anything still live at the horizon is unfinished.
        if let Some(records) = self.records.as_mut() {
            for &r in &self.order {
                let m = self.arena.meta(r);
                records.push(JobRecord {
                    id: m.id,
                    task: m.task,
                    arrival: m.arrival,
                    actual_demand: self.arena.actual(r),
                    executed: self.arena.executed(r),
                    outcome: JobOutcome::Unfinished,
                });
            }
        }
        Ok(())
    }

    /// Advances the clock through an idle gap, charging the configured
    /// idle power.
    fn advance_idle(&mut self, to: SimTime) {
        let delta = to.saturating_since(self.now);
        if !delta.is_zero() && self.config.idle_power > 0.0 {
            let charge = self.config.idle_power * delta.as_micros() as f64;
            self.invariants.energy_charge(charge);
            self.metrics.energy += charge;
            self.record_charge(ChargeKind::Idle, 0, Cycles::ZERO, delta, charge);
        }
        self.invariants.clock_advance(self.now, to);
        self.now = to;
    }

    /// Mirrors one `metrics.energy` charge into the certificate, when
    /// recording. Empty charges (no cycles, no time, no energy) are
    /// dropped to keep certificates minimal.
    fn record_charge(
        &mut self,
        kind: ChargeKind,
        frequency_mhz: u64,
        cycles: Cycles,
        delta: TimeDelta,
        energy: f64,
    ) {
        let Some(cert) = self.cert.as_mut() else {
            return;
        };
        if cycles.is_zero() && delta.is_zero() && energy == 0.0 {
            return;
        }
        cert.charges.push(ChargeRecord {
            at: self.now,
            kind,
            frequency_mhz,
            cycles,
            micros: delta.as_micros(),
            energy,
        });
    }

    /// Certificate: every decision is recorded at its instant — including
    /// ones later discarded by a costly-abort clock jump, which were
    /// still valid when taken. Cold by construction: recording allocates,
    /// so it lives outside the `// eua-lint: hot` loop body.
    fn record_decision<P: SchedulerPolicy + ?Sized>(
        &mut self,
        event: SchedEvent,
        decision: &crate::policy::Decision,
        policy: &mut P,
    ) {
        let Some(cert) = self.cert.as_mut() else {
            return;
        };
        cert.events.push(EventRecord {
            at: self.now,
            trigger: event,
            ready: self.views.iter().map(JobSnapshot::from_view).collect(),
            run: decision.run,
            frequency: decision.frequency,
            aborts: decision.abort.clone(),
            explanation: policy.explain(),
        });
    }

    /// The earliest upcoming event the engine controls: an arrival, a
    /// termination expiry, or the horizon itself. O(1): the arrival
    /// stream is cursor-ordered and the calendar caches its minimum.
    // eua-lint: hot
    fn next_passive_event(&mut self) -> SimTime {
        let next_arrival = self
            .arrivals
            .get(self.cursor)
            .map_or(SimTime::MAX, |&(t, _)| t);
        let next_termination = self.calendar.earliest().unwrap_or(SimTime::MAX);
        next_arrival.min(next_termination).min(self.horizon_end)
    }

    /// The position of `id` in `views`/`order`, dead or alive: ids are
    /// assigned in arrival order and `views` preserves it, so this is a
    /// binary search.
    #[inline]
    fn find_index(&self, id: JobId) -> Option<usize> {
        self.views.binary_search_by(|v| v.id.cmp(&id)).ok()
    }

    /// As [`EngineState::find_index`], but only for live jobs.
    #[inline]
    fn find_live(&self, id: JobId) -> Option<usize> {
        let idx = self.find_index(id)?;
        self.arena.is_live(self.order[idx]).then_some(idx)
    }

    /// Drops every tombstoned entry from `order`/`views` in one pass,
    /// preserving arrival order.
    fn compact(&mut self) {
        if self.dead == 0 {
            return;
        }
        let mut w = 0;
        for i in 0..self.order.len() {
            let r = self.order[i];
            if self.arena.is_live(r) {
                self.order[w] = r;
                self.views[w] = self.views[i];
                w += 1;
            }
        }
        self.order.truncate(w);
        self.views.truncate(w);
        self.dead = 0;
    }

    // eua-lint: hot
    fn admit_arrivals(&mut self) -> bool {
        let mut any = false;
        while let Some(&(t, tid)) = self.arrivals.get(self.cursor) {
            // `t < now` happens only after a costly-abort clock jump —
            // those arrivals are admitted late rather than stranded.
            if t > self.now {
                break;
            }
            let actual = self.demands[self.cursor];
            self.cursor += 1;
            let task = self.tasks.task(tid);
            // Under injected UAM violations the declared bound no longer
            // holds by construction; check against the relaxed bound the
            // plan guarantees instead.
            self.invariants.arrival(
                tid.index(),
                t,
                self.plan
                    .relaxed_uam_bound(task.uam().max_arrivals(), task.uam().window()),
                task.uam().window(),
            );
            let id = JobId(self.next_job_id);
            self.next_job_id += 1;
            let critical = t.saturating_add(task.critical_offset());
            let termination = t.saturating_add(task.termination_offset());
            let r = self.arena.insert(
                JobMeta {
                    id,
                    task: tid,
                    arrival: t,
                    critical,
                },
                termination,
                actual,
                task.allocation(),
            );
            self.calendar.insert(termination, r.slot());
            self.order.push(r);
            self.views.push(JobView {
                id,
                task: tid,
                arrival: t,
                critical_time: critical,
                termination,
                remaining: self.arena.believed_remaining(r),
                executed: Cycles::ZERO,
            });
            let tm = &mut self.metrics.per_task[tid.index()];
            tm.arrived += 1;
            // Utility accounting is restricted to *observable* jobs —
            // those whose termination time falls within the horizon — so
            // slow-but-legal policies are not penalized for jobs still in
            // flight at the cutoff.
            if termination <= self.horizon_end {
                tm.observable += 1;
                tm.max_utility += task.tuf().max_utility();
                self.metrics.max_possible_utility += task.tuf().max_utility();
            }
            if let Some(trace) = self.trace.as_mut() {
                trace.push_event(TraceEvent::Arrival { at: t, job: id });
            }
            any = true;
        }
        any
    }

    /// Aborts every incomplete job whose termination time has been
    /// reached, as one batched wave: jobs are tombstoned in place and the
    /// live set compacts once at the end, so a termination wave costs one
    /// pass (and triggers one re-decide) instead of one removal each.
    /// Returns one of the aborted ids for event labelling.
    // eua-lint: hot
    fn abort_overdue(&mut self) -> Option<JobId> {
        // O(1) fast path: nothing is overdue unless the earliest live
        // termination has been reached.
        match self.calendar.earliest() {
            Some(t) if t <= self.now => {}
            _ => return None,
        }
        let mut witness = None;
        for idx in 0..self.order.len() {
            let r = self.order[idx];
            // A costly abort advances the clock mid-wave, so each job is
            // checked against the `now` in force when the wave reaches it
            // — exactly the reference loop's traversal. Jobs the jump
            // strands behind the wavefront are caught by the caller's
            // fixpoint.
            if self.arena.termination(r) <= self.now {
                let id = self.arena.meta(r).id;
                self.finish_abort_at(idx, false);
                witness = Some(id);
            }
        }
        self.compact();
        witness
    }

    /// Applies `decision.abort` as one batched wave, returning the last
    /// aborted id (so the caller can re-decide after a costly-abort
    /// clock jump).
    fn apply_policy_aborts(
        &mut self,
        decision: &crate::policy::Decision,
    ) -> Result<Option<JobId>, SimError> {
        let mut last = None;
        for &id in &decision.abort {
            if decision.run == Some(id) {
                return Err(SimError::RunAbortConflict { job: id });
            }
            // Tombstones keep `views` id-sorted mid-wave, so the lookup
            // stays a binary search; a duplicate abort id finds a dead
            // slot and fails like the unknown id it now is.
            let idx = match self.find_index(id) {
                Some(idx) if self.arena.is_live(self.order[idx]) => idx,
                _ => return Err(SimError::UnknownJob { job: id }),
            };
            self.finish_abort_at(idx, true);
            last = Some(id);
        }
        self.compact();
        Ok(last)
    }

    /// Tombstones the job at `idx` — releases its arena slot and
    /// calendar entry — and does the full end-of-life accounting. The
    /// caller owns the wave's final `compact`.
    fn finish_abort_at(&mut self, idx: usize, by_policy: bool) {
        let r = self.order[idx];
        let m = self.arena.meta(r);
        let actual = self.arena.actual(r);
        let executed = self.arena.executed(r);
        let termination = self.arena.termination(r);
        self.calendar.remove(termination, r.slot());
        self.arena.release(r);
        self.dead += 1;
        self.invariants.job_aborted(m.id);
        let task = self.tasks.task(m.task);
        let tm = &mut self.metrics.per_task[m.task.index()];
        if by_policy {
            tm.aborted_by_policy += 1;
        } else {
            tm.aborted_by_termination += 1;
        }
        // An aborted job accrues nothing — unless progress-based accrual
        // is on, in which case it earns its executed fraction of the
        // current utility. Either way it can still satisfy its `ν`.
        let mut accrued = 0.0;
        if self.config.progress_accrual && !actual.is_zero() {
            let progress = (executed.as_f64() / actual.as_f64()).clamp(0.0, 1.0);
            accrued = progress * task.tuf().utility(self.now.saturating_since(m.arrival));
        }
        if termination <= self.horizon_end {
            tm.utility += accrued;
            self.metrics.total_utility += accrued;
            if accrued + 1e-9 >= task.assurance().nu() * task.tuf().max_utility() {
                tm.assured += 1;
            }
        }
        if self.running == Some(m.id) {
            self.running = None;
        }
        if let Some(trace) = self.trace.as_mut() {
            trace.push_event(TraceEvent::Abort {
                at: self.now,
                job: m.id,
                by_policy,
            });
        }
        if let Some(records) = self.records.as_mut() {
            records.push(JobRecord {
                id: m.id,
                task: m.task,
                arrival: m.arrival,
                actual_demand: actual,
                executed,
                outcome: JobOutcome::Aborted {
                    at: self.now,
                    by_policy,
                },
            });
        }
        // Fault plan: the abort handler itself takes wall time and energy
        // (billed at the last dispatched frequency, f_max before any
        // dispatch), advancing the clock past the abort instant.
        let cost = self.plan.timing.abort_cost;
        if !cost.is_zero() {
            let freq = self.last_freq.unwrap_or_else(|| self.platform.f_max());
            let stop = self.now.saturating_add(cost);
            let charge = self
                .platform
                .energy()
                .energy_for(freq.cycles_in(cost), freq);
            self.invariants.energy_charge(charge);
            self.metrics.energy += charge;
            self.metrics.busy_time += cost;
            self.metrics.add_residency(freq.as_mhz(), cost);
            self.record_charge(
                ChargeKind::AbortCost,
                freq.as_mhz(),
                freq.cycles_in(cost),
                cost,
                charge,
            );
            self.invariants.clock_advance(self.now, stop);
            self.now = stop;
            self.stats.costly_aborts += 1;
        }
    }

    fn complete_at(&mut self, idx: usize) {
        let r = self.order[idx];
        let m = self.arena.meta(r);
        let actual = self.arena.actual(r);
        let executed = self.arena.executed(r);
        let termination = self.arena.termination(r);
        self.calendar.remove(termination, r.slot());
        self.arena.release(r);
        self.dead += 1;
        self.compact();
        let task = self.tasks.task(m.task);
        let sojourn = self.now - m.arrival;
        let utility = task.tuf().utility(sojourn);
        let tm = &mut self.metrics.per_task[m.task.index()];
        tm.completed += 1;
        if termination <= self.horizon_end {
            tm.utility += utility;
            self.metrics.total_utility += utility;
            let needed = task.assurance().nu() * task.tuf().max_utility();
            if utility + 1e-9 >= needed {
                tm.assured += 1;
            }
        }
        if self.now <= m.critical {
            tm.critical_met += 1;
        }
        let lateness = self.now.as_micros() as i64 - m.critical.as_micros() as i64;
        tm.max_lateness_us = tm.max_lateness_us.max(lateness);
        if tm.completed == 1 {
            // First completion defines the initial lateness rather than the
            // i64 default of 0 (which would hide early completions).
            tm.max_lateness_us = lateness;
        }
        if self.running == Some(m.id) {
            self.running = None;
        }
        if let Some(trace) = self.trace.as_mut() {
            trace.push_event(TraceEvent::Completion {
                at: self.now,
                job: m.id,
            });
        }
        if let Some(records) = self.records.as_mut() {
            records.push(JobRecord {
                id: m.id,
                task: m.task,
                arrival: m.arrival,
                actual_demand: actual,
                executed,
                outcome: JobOutcome::Completed {
                    at: self.now,
                    utility,
                },
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eua_platform::EnergySetting;
    use eua_tuf::Tuf;
    use eua_uam::demand::DemandModel;
    use eua_uam::{Assurance, UamSpec};

    use crate::policy::MaxSpeedEdf;
    use crate::task::Task;

    fn ms(v: u64) -> TimeDelta {
        TimeDelta::from_millis(v)
    }

    fn step_task(name: &str, p_ms: u64, cycles: f64) -> Task {
        Task::new(
            name,
            Tuf::step(10.0, ms(p_ms)).unwrap(),
            UamSpec::periodic(ms(p_ms)).unwrap(),
            DemandModel::deterministic(cycles).unwrap(),
            Assurance::new(1.0, 0.5).unwrap(),
        )
        .unwrap()
    }

    fn platform() -> Platform {
        Platform::powernow(EnergySetting::e1())
    }

    #[test]
    fn single_periodic_task_completes_every_job() {
        let tasks = TaskSet::new(vec![step_task("t", 10, 100_000.0)]).unwrap();
        let patterns = vec![ArrivalPattern::periodic(ms(10)).unwrap()];
        let config = SimConfig::new(ms(100));
        let out = Engine::run(
            &tasks,
            &patterns,
            &platform(),
            &mut MaxSpeedEdf::new(),
            &config,
            1,
        )
        .unwrap();
        let m = &out.metrics;
        assert_eq!(m.jobs_arrived(), 10);
        assert_eq!(m.jobs_completed(), 10);
        assert_eq!(m.jobs_aborted(), 0);
        // Each job: 100k cycles at 100 MHz = 1 ms, utility 10.
        assert!((m.total_utility - 100.0).abs() < 1e-9);
        assert_eq!(m.busy_time, ms(10));
        // Energy: 1M cycles at E1(100) = 10^4 per cycle.
        assert!((m.energy - 1e6 * 1e4).abs() < 1.0);
        assert!(m.meets_assurances(&tasks));
    }

    #[test]
    fn overloaded_task_aborts_at_termination() {
        // 2M cycles at 100 MHz = 20 ms > 10 ms period: every job expires.
        let tasks = TaskSet::new(vec![step_task("t", 10, 2_000_000.0)]).unwrap();
        let patterns = vec![ArrivalPattern::periodic(ms(10)).unwrap()];
        let config = SimConfig::new(ms(100)).with_job_records();
        let out = Engine::run(
            &tasks,
            &patterns,
            &platform(),
            &mut MaxSpeedEdf::new(),
            &config,
            1,
        )
        .unwrap();
        let m = &out.metrics;
        assert_eq!(m.jobs_completed(), 0);
        assert_eq!(m.jobs_aborted(), 10);
        assert_eq!(m.total_utility, 0.0);
        let records = out.jobs.unwrap();
        assert!(records.iter().all(|r| matches!(
            r.outcome,
            JobOutcome::Aborted {
                by_policy: false,
                ..
            }
        )));
    }

    #[test]
    fn trace_records_serial_segments() {
        let tasks = TaskSet::new(vec![
            step_task("a", 10, 200_000.0),
            step_task("b", 20, 400_000.0),
        ])
        .unwrap();
        let patterns = vec![
            ArrivalPattern::periodic(ms(10)).unwrap(),
            ArrivalPattern::periodic(ms(20)).unwrap(),
        ];
        let config = SimConfig::new(ms(60)).with_trace();
        let out = Engine::run(
            &tasks,
            &patterns,
            &platform(),
            &mut MaxSpeedEdf::new(),
            &config,
            1,
        )
        .unwrap();
        let trace = out.trace.unwrap();
        assert!(trace.is_serial());
        assert_eq!(trace.busy_time(), out.metrics.busy_time);
        // 6 jobs of a (2 ms each) + 3 jobs of b (4 ms each) = 24 ms busy.
        assert_eq!(out.metrics.busy_time, ms(24));
    }

    #[test]
    fn preemption_happens_under_edf() {
        // Long low-urgency job released at 0 (critical 50 ms), short urgent
        // job released at 5 ms (critical 10 ms at arrival +5).
        let long = Task::new(
            "long",
            Tuf::step(1.0, ms(50)).unwrap(),
            UamSpec::periodic(ms(50)).unwrap(),
            DemandModel::deterministic(3_000_000.0).unwrap(),
            Assurance::new(1.0, 0.5).unwrap(),
        )
        .unwrap();
        let short = Task::new(
            "short",
            Tuf::step(1.0, ms(10)).unwrap(),
            UamSpec::periodic(ms(50)).unwrap(),
            DemandModel::deterministic(100_000.0).unwrap(),
            Assurance::new(1.0, 0.5).unwrap(),
        )
        .unwrap();
        let tasks = TaskSet::new(vec![long, short]).unwrap();
        let traces = vec![
            ArrivalTrace::from_times([SimTime::ZERO]),
            ArrivalTrace::from_times([SimTime::from_millis(5)]),
        ];
        let config = SimConfig::new(ms(50)).with_trace();
        let out = Engine::run_with_traces(
            &tasks,
            &traces,
            &platform(),
            &mut MaxSpeedEdf::new(),
            &config,
            1,
        )
        .unwrap();
        assert_eq!(out.metrics.preemptions, 1);
        assert_eq!(out.metrics.jobs_completed(), 2);
        let seq: Vec<u64> = out
            .trace
            .unwrap()
            .job_sequence()
            .iter()
            .map(|j| j.get())
            .collect();
        assert_eq!(seq, vec![0, 1, 0]);
    }

    #[test]
    fn utility_respects_tuf_shape() {
        // Linear TUF over 10 ms; job takes 4 ms → utility = 0.6·Umax.
        let task = Task::new(
            "lin",
            Tuf::linear(100.0, ms(10)).unwrap(),
            UamSpec::periodic(ms(10)).unwrap(),
            DemandModel::deterministic(400_000.0).unwrap(),
            Assurance::new(0.3, 0.5).unwrap(),
        )
        .unwrap();
        let tasks = TaskSet::new(vec![task]).unwrap();
        let traces = vec![ArrivalTrace::from_times([SimTime::ZERO])];
        let config = SimConfig::new(ms(10));
        let out = Engine::run_with_traces(
            &tasks,
            &traces,
            &platform(),
            &mut MaxSpeedEdf::new(),
            &config,
            1,
        )
        .unwrap();
        assert!((out.metrics.total_utility - 60.0).abs() < 1e-6);
    }

    #[test]
    fn policy_abort_is_counted_separately() {
        struct AbortAll;
        impl SchedulerPolicy for AbortAll {
            fn name(&self) -> &str {
                "abort-all"
            }
            fn decide(&mut self, ctx: &SchedContext<'_>) -> crate::policy::Decision {
                crate::policy::Decision::idle(ctx.platform.f_max())
                    .with_aborts(ctx.jobs.iter().map(|j| j.id))
            }
        }
        let tasks = TaskSet::new(vec![step_task("t", 10, 1_000.0)]).unwrap();
        let patterns = vec![ArrivalPattern::periodic(ms(10)).unwrap()];
        let config = SimConfig::new(ms(50));
        let out = Engine::run(&tasks, &patterns, &platform(), &mut AbortAll, &config, 1).unwrap();
        assert_eq!(out.metrics.per_task[0].aborted_by_policy, 5);
        assert_eq!(out.metrics.jobs_completed(), 0);
    }

    #[test]
    fn invalid_decisions_are_rejected() {
        struct BadFreq;
        impl SchedulerPolicy for BadFreq {
            fn name(&self) -> &str {
                "bad"
            }
            fn decide(&mut self, ctx: &SchedContext<'_>) -> crate::policy::Decision {
                crate::policy::Decision::run(ctx.jobs[0].id, Frequency::from_mhz(123))
            }
        }
        let tasks = TaskSet::new(vec![step_task("t", 10, 1_000.0)]).unwrap();
        let patterns = vec![ArrivalPattern::periodic(ms(10)).unwrap()];
        let config = SimConfig::new(ms(50));
        let err =
            Engine::run(&tasks, &patterns, &platform(), &mut BadFreq, &config, 1).unwrap_err();
        assert_eq!(err, SimError::UnknownFrequency { mhz: 123 });

        struct Conflict;
        impl SchedulerPolicy for Conflict {
            fn name(&self) -> &str {
                "conflict"
            }
            fn decide(&mut self, ctx: &SchedContext<'_>) -> crate::policy::Decision {
                let id = ctx.jobs[0].id;
                crate::policy::Decision::run(id, ctx.platform.f_max()).with_aborts([id])
            }
        }
        let err =
            Engine::run(&tasks, &patterns, &platform(), &mut Conflict, &config, 1).unwrap_err();
        assert!(matches!(err, SimError::RunAbortConflict { .. }));
    }

    #[test]
    fn determinism_same_seed_same_metrics() {
        let task = Task::new(
            "n",
            Tuf::step(5.0, ms(10)).unwrap(),
            UamSpec::new(2, ms(10)).unwrap(),
            DemandModel::normal(200_000.0, 200_000.0).unwrap(),
            Assurance::new(1.0, 0.9).unwrap(),
        )
        .unwrap();
        let tasks = TaskSet::new(vec![task]).unwrap();
        let patterns =
            vec![ArrivalPattern::random_burst(UamSpec::new(2, ms(10)).unwrap()).unwrap()];
        let config = SimConfig::new(ms(500));
        let a = Engine::run(
            &tasks,
            &patterns,
            &platform(),
            &mut MaxSpeedEdf::new(),
            &config,
            9,
        )
        .unwrap();
        let b = Engine::run(
            &tasks,
            &patterns,
            &platform(),
            &mut MaxSpeedEdf::new(),
            &config,
            9,
        )
        .unwrap();
        assert_eq!(a.metrics, b.metrics);
        let c = Engine::run(
            &tasks,
            &patterns,
            &platform(),
            &mut MaxSpeedEdf::new(),
            &config,
            10,
        )
        .unwrap();
        assert_ne!(a.metrics, c.metrics);
    }

    #[test]
    fn zero_horizon_rejected() {
        let tasks = TaskSet::new(vec![step_task("t", 10, 1_000.0)]).unwrap();
        let patterns = vec![ArrivalPattern::periodic(ms(10)).unwrap()];
        let config = SimConfig::new(TimeDelta::ZERO);
        let err = Engine::run(
            &tasks,
            &patterns,
            &platform(),
            &mut MaxSpeedEdf::new(),
            &config,
            1,
        )
        .unwrap_err();
        assert_eq!(err, SimError::ZeroHorizon);
    }

    #[test]
    fn pattern_count_mismatch_rejected() {
        let tasks = TaskSet::new(vec![step_task("t", 10, 1_000.0)]).unwrap();
        let config = SimConfig::new(ms(10));
        let err = Engine::run(
            &tasks,
            &[],
            &platform(),
            &mut MaxSpeedEdf::new(),
            &config,
            1,
        )
        .unwrap_err();
        assert_eq!(
            err,
            SimError::PatternCountMismatch {
                tasks: 1,
                patterns: 0
            }
        );
    }

    #[test]
    fn context_switch_overhead_consumes_time_and_energy() {
        let tasks = TaskSet::new(vec![
            step_task("a", 10, 100_000.0),
            step_task("b", 10, 100_000.0),
        ])
        .unwrap();
        let patterns = vec![
            ArrivalPattern::periodic(ms(10)).unwrap(),
            ArrivalPattern::periodic(ms(10)).unwrap(),
        ];
        let plain = SimConfig::new(ms(100));
        let costly =
            SimConfig::new(ms(100)).with_context_switch_overhead(TimeDelta::from_micros(100));
        let a = Engine::run(
            &tasks,
            &patterns,
            &platform(),
            &mut MaxSpeedEdf::new(),
            &plain,
            1,
        )
        .unwrap();
        let b = Engine::run(
            &tasks,
            &patterns,
            &platform(),
            &mut MaxSpeedEdf::new(),
            &costly,
            1,
        )
        .unwrap();
        assert!(b.metrics.energy > a.metrics.energy);
        assert!(b.metrics.busy_time > a.metrics.busy_time);
    }

    #[test]
    fn progress_accrual_pays_partial_utility_on_abort() {
        // A job with 2 P of work executes half its demand before the
        // termination exception: with progress accrual it earns half the
        // step utility (the step is still "up" at the abort instant only
        // for TUFs that pay at termination — use a step whose step_at
        // equals termination so U(X) = height).
        let tasks = TaskSet::new(vec![step_task("t", 10, 2_000_000.0)]).unwrap();
        let traces = vec![ArrivalTrace::from_times([SimTime::ZERO])];
        let plain = SimConfig::new(ms(20));
        let partial = SimConfig::new(ms(20)).with_progress_accrual();
        let a = Engine::run_with_traces(
            &tasks,
            &traces,
            &platform(),
            &mut MaxSpeedEdf::new(),
            &plain,
            1,
        )
        .unwrap();
        assert_eq!(a.metrics.total_utility, 0.0);
        let b = Engine::run_with_traces(
            &tasks,
            &traces,
            &platform(),
            &mut MaxSpeedEdf::new(),
            &partial,
            1,
        )
        .unwrap();
        // Executed 10 ms · 100 MHz = 1M of 2M cycles ⇒ progress 0.5; the
        // step TUF still pays its height (10) at exactly t = X.
        assert!(
            (b.metrics.total_utility - 5.0).abs() < 1e-9,
            "{}",
            b.metrics.total_utility
        );
    }

    #[test]
    fn progress_accrual_changes_nothing_for_completed_jobs() {
        let tasks = TaskSet::new(vec![step_task("t", 10, 100_000.0)]).unwrap();
        let patterns = vec![ArrivalPattern::periodic(ms(10)).unwrap()];
        let plain = SimConfig::new(ms(100));
        let partial = SimConfig::new(ms(100)).with_progress_accrual();
        let a = Engine::run(
            &tasks,
            &patterns,
            &platform(),
            &mut MaxSpeedEdf::new(),
            &plain,
            1,
        )
        .unwrap();
        let b = Engine::run(
            &tasks,
            &patterns,
            &platform(),
            &mut MaxSpeedEdf::new(),
            &partial,
            1,
        )
        .unwrap();
        assert_eq!(a.metrics.total_utility, b.metrics.total_utility);
    }

    #[test]
    fn frequency_switch_overhead_consumes_time_and_energy() {
        // A policy that alternates between two frequencies every decision.
        struct Flapper(bool);
        impl SchedulerPolicy for Flapper {
            fn name(&self) -> &str {
                "flapper"
            }
            fn decide(&mut self, ctx: &SchedContext<'_>) -> crate::policy::Decision {
                self.0 = !self.0;
                let f = if self.0 {
                    ctx.platform.f_max()
                } else {
                    ctx.platform.table().min()
                };
                match ctx.jobs.first() {
                    Some(j) => crate::policy::Decision::run(j.id, f),
                    None => crate::policy::Decision::idle(f),
                }
            }
        }
        let tasks = TaskSet::new(vec![step_task("t", 10, 100_000.0)]).unwrap();
        let patterns = vec![ArrivalPattern::periodic(ms(10)).unwrap()];
        let plain = SimConfig::new(ms(100));
        let costly =
            SimConfig::new(ms(100)).with_frequency_switch_overhead(TimeDelta::from_micros(50));
        let a = Engine::run(
            &tasks,
            &patterns,
            &platform(),
            &mut Flapper(false),
            &plain,
            1,
        )
        .unwrap();
        let b = Engine::run(
            &tasks,
            &patterns,
            &platform(),
            &mut Flapper(false),
            &costly,
            1,
        )
        .unwrap();
        assert!(a.metrics.frequency_changes > 0);
        assert!(b.metrics.busy_time > a.metrics.busy_time);
        assert!(b.metrics.energy > a.metrics.energy);
    }

    #[test]
    fn frequency_residency_sums_to_busy_time() {
        let tasks = TaskSet::new(vec![step_task("t", 10, 100_000.0)]).unwrap();
        let patterns = vec![ArrivalPattern::periodic(ms(10)).unwrap()];
        let config = SimConfig::new(ms(100));
        let out = Engine::run(
            &tasks,
            &patterns,
            &platform(),
            &mut MaxSpeedEdf::new(),
            &config,
            1,
        )
        .unwrap();
        let m = &out.metrics;
        let total: TimeDelta = m.freq_residency.iter().map(|r| r.busy).sum();
        assert_eq!(total, m.busy_time);
        // MaxSpeedEdf only ever runs at 100 MHz.
        assert_eq!(m.freq_residency.len(), 1);
        assert_eq!(m.freq_residency[0].mhz, 100);
        assert_eq!(m.mean_frequency_mhz(), Some(100.0));
    }

    #[test]
    fn idle_power_charges_idle_gaps() {
        // 1 ms of work per 10 ms window over 100 ms: 90 ms idle.
        let tasks = TaskSet::new(vec![step_task("t", 10, 100_000.0)]).unwrap();
        let patterns = vec![ArrivalPattern::periodic(ms(10)).unwrap()];
        let plain = SimConfig::new(ms(100));
        let drawing = SimConfig::new(ms(100)).with_idle_power(2.0);
        let a = Engine::run(
            &tasks,
            &patterns,
            &platform(),
            &mut MaxSpeedEdf::new(),
            &plain,
            1,
        )
        .unwrap();
        let b = Engine::run(
            &tasks,
            &patterns,
            &platform(),
            &mut MaxSpeedEdf::new(),
            &drawing,
            1,
        )
        .unwrap();
        let idle_us = (ms(100) - a.metrics.busy_time).as_micros() as f64;
        assert!(
            (b.metrics.energy - a.metrics.energy - 2.0 * idle_us).abs() < 1e-6,
            "idle energy mismatch: {} vs {}",
            b.metrics.energy - a.metrics.energy,
            2.0 * idle_us
        );
    }

    #[test]
    fn context_exposes_cumulative_energy() {
        struct EnergyWatcher {
            last_seen: f64,
            monotone: bool,
        }
        impl SchedulerPolicy for EnergyWatcher {
            fn name(&self) -> &str {
                "watcher"
            }
            fn decide(&mut self, ctx: &SchedContext<'_>) -> crate::policy::Decision {
                if ctx.energy_used < self.last_seen {
                    self.monotone = false;
                }
                self.last_seen = ctx.energy_used;
                match ctx.jobs.first() {
                    Some(j) => crate::policy::Decision::run(j.id, ctx.platform.f_max()),
                    None => crate::policy::Decision::idle(ctx.platform.f_max()),
                }
            }
        }
        let tasks = TaskSet::new(vec![step_task("t", 10, 100_000.0)]).unwrap();
        let patterns = vec![ArrivalPattern::periodic(ms(10)).unwrap()];
        let config = SimConfig::new(ms(100));
        let mut watcher = EnergyWatcher {
            last_seen: 0.0,
            monotone: true,
        };
        let out = Engine::run(&tasks, &patterns, &platform(), &mut watcher, &config, 1).unwrap();
        assert!(watcher.monotone, "energy_used must be non-decreasing");
        assert!(
            watcher.last_seen <= out.metrics.energy,
            "policy view cannot exceed the final bill"
        );
        assert!(
            watcher.last_seen > 0.0,
            "policy must observe energy accruing"
        );
    }

    #[test]
    fn zero_intensity_plan_is_bit_identical_to_unfaulted_run() {
        use crate::faults::{DemandFault, DvsFault, TimingFault, UamViolationFault};
        // An explicit all-zero plan, not `FaultPlan::none()`: zero
        // intensities must short-circuit every fault path.
        let plan = FaultPlan {
            uam: UamViolationFault {
                extra_per_window: 0,
                every_n_windows: 4,
            },
            demand: DemandFault {
                mean_factor: 1.0,
                spread: 0.0,
            },
            dvs: DvsFault {
                switch_latency_cycles: 0,
                stuck_after: None,
                degraded_mhz: None,
            },
            timing: TimingFault {
                abort_cost: TimeDelta::ZERO,
                arrival_jitter: TimeDelta::ZERO,
            },
        };
        let task = Task::new(
            "n",
            Tuf::step(5.0, ms(10)).unwrap(),
            UamSpec::new(2, ms(10)).unwrap(),
            DemandModel::normal(200_000.0, 200_000.0).unwrap(),
            Assurance::new(1.0, 0.9).unwrap(),
        )
        .unwrap();
        let tasks = TaskSet::new(vec![task]).unwrap();
        let patterns =
            vec![ArrivalPattern::random_burst(UamSpec::new(2, ms(10)).unwrap()).unwrap()];
        let config = SimConfig::new(ms(500)).with_trace().with_job_records();
        let plain = Engine::run(
            &tasks,
            &patterns,
            &platform(),
            &mut MaxSpeedEdf::new(),
            &config,
            9,
        )
        .unwrap();
        let faulted = Engine::run_with_faults(
            &tasks,
            &patterns,
            &platform(),
            &mut MaxSpeedEdf::new(),
            &config,
            9,
            &plan,
        )
        .unwrap();
        assert_eq!(plain, faulted);
        assert_eq!(faulted.faults, crate::faults::FaultStats::default());
    }

    #[test]
    fn burst_fault_injects_extra_arrivals() {
        let plan = FaultPlan {
            uam: crate::faults::UamViolationFault {
                extra_per_window: 2,
                every_n_windows: 1,
            },
            ..FaultPlan::none()
        };
        let tasks = TaskSet::new(vec![step_task("t", 10, 100_000.0)]).unwrap();
        let patterns = vec![ArrivalPattern::periodic(ms(10)).unwrap()];
        let config = SimConfig::new(ms(100));
        let plain = Engine::run(
            &tasks,
            &patterns,
            &platform(),
            &mut MaxSpeedEdf::new(),
            &config,
            1,
        )
        .unwrap();
        let faulted = Engine::run_with_faults(
            &tasks,
            &patterns,
            &platform(),
            &mut MaxSpeedEdf::new(),
            &config,
            1,
            &plan,
        )
        .unwrap();
        assert_eq!(faulted.faults.injected_arrivals, 20, "2 per 10ms window");
        assert_eq!(
            faulted.metrics.jobs_arrived(),
            plain.metrics.jobs_arrived() + 20
        );
    }

    #[test]
    fn demand_fault_turns_underload_into_overload() {
        // 100k cycles declared; ×15 exceeds the 10 ms window at 100 MHz.
        let plan = FaultPlan {
            demand: crate::faults::DemandFault {
                mean_factor: 15.0,
                spread: 0.0,
            },
            ..FaultPlan::none()
        };
        let tasks = TaskSet::new(vec![step_task("t", 10, 100_000.0)]).unwrap();
        let patterns = vec![ArrivalPattern::periodic(ms(10)).unwrap()];
        let config = SimConfig::new(ms(100));
        let faulted = Engine::run_with_faults(
            &tasks,
            &patterns,
            &platform(),
            &mut MaxSpeedEdf::new(),
            &config,
            1,
            &plan,
        )
        .unwrap();
        assert_eq!(faulted.faults.perturbed_demands, 10);
        assert_eq!(faulted.metrics.jobs_completed(), 0);
        assert_eq!(faulted.metrics.jobs_aborted(), 10);
    }

    #[test]
    fn degraded_frequency_set_slows_execution() {
        let plan = FaultPlan {
            dvs: crate::faults::DvsFault {
                degraded_mhz: Some(vec![55]),
                ..Default::default()
            },
            ..FaultPlan::none()
        };
        let tasks = TaskSet::new(vec![step_task("t", 10, 100_000.0)]).unwrap();
        let patterns = vec![ArrivalPattern::periodic(ms(10)).unwrap()];
        let config = SimConfig::new(ms(100));
        let faulted = Engine::run_with_faults(
            &tasks,
            &patterns,
            &platform(),
            &mut MaxSpeedEdf::new(),
            &config,
            1,
            &plan,
        )
        .unwrap();
        // MaxSpeedEdf asks for the degraded table's max (55 MHz), which is
        // already in the degraded set — no remap, but all residency at 55.
        assert_eq!(faulted.metrics.freq_residency.len(), 1);
        assert_eq!(faulted.metrics.freq_residency[0].mhz, 55);
        assert_eq!(faulted.metrics.jobs_completed(), 10);
    }

    #[test]
    fn stuck_frequency_pins_later_dispatches() {
        // Flapper alternates 100 ↔ 36 MHz; stuck-at-zero pins everything
        // to the first dispatch's frequency.
        struct Flapper(bool);
        impl SchedulerPolicy for Flapper {
            fn name(&self) -> &str {
                "flapper"
            }
            fn decide(&mut self, ctx: &SchedContext<'_>) -> crate::policy::Decision {
                self.0 = !self.0;
                let f = if self.0 {
                    ctx.platform.f_max()
                } else {
                    ctx.platform.table().min()
                };
                match ctx.jobs.first() {
                    Some(j) => crate::policy::Decision::run(j.id, f),
                    None => crate::policy::Decision::idle(f),
                }
            }
        }
        let plan = FaultPlan {
            dvs: crate::faults::DvsFault {
                stuck_after: Some(TimeDelta::ZERO),
                ..Default::default()
            },
            ..FaultPlan::none()
        };
        let tasks = TaskSet::new(vec![step_task("t", 10, 100_000.0)]).unwrap();
        let patterns = vec![ArrivalPattern::periodic(ms(10)).unwrap()];
        let config = SimConfig::new(ms(100));
        let faulted = Engine::run_with_faults(
            &tasks,
            &patterns,
            &platform(),
            &mut Flapper(false),
            &config,
            1,
            &plan,
        )
        .unwrap();
        assert!(faulted.faults.stuck_dispatches > 0);
        assert_eq!(faulted.metrics.frequency_changes, 0);
        assert_eq!(faulted.metrics.freq_residency.len(), 1);
    }

    #[test]
    fn abort_cost_bills_time_and_energy() {
        let plan = FaultPlan {
            timing: crate::faults::TimingFault {
                abort_cost: TimeDelta::from_millis(1),
                arrival_jitter: TimeDelta::ZERO,
            },
            ..FaultPlan::none()
        };
        // Every job expires (20 ms of work per 10 ms window).
        let tasks = TaskSet::new(vec![step_task("t", 10, 2_000_000.0)]).unwrap();
        let patterns = vec![ArrivalPattern::periodic(ms(10)).unwrap()];
        let config = SimConfig::new(ms(100));
        let plain = Engine::run(
            &tasks,
            &patterns,
            &platform(),
            &mut MaxSpeedEdf::new(),
            &config,
            1,
        )
        .unwrap();
        let faulted = Engine::run_with_faults(
            &tasks,
            &patterns,
            &platform(),
            &mut MaxSpeedEdf::new(),
            &config,
            1,
            &plan,
        )
        .unwrap();
        assert!(faulted.faults.costly_aborts > 0);
        assert_eq!(faulted.faults.costly_aborts, faulted.metrics.jobs_aborted());
        assert!(faulted.metrics.busy_time > plain.metrics.busy_time);
        assert!(faulted.metrics.energy > plain.metrics.energy);
    }

    #[test]
    fn invalid_fault_plan_is_a_typed_error() {
        let plan = FaultPlan {
            demand: crate::faults::DemandFault {
                mean_factor: -1.0,
                spread: 0.0,
            },
            ..FaultPlan::none()
        };
        let tasks = TaskSet::new(vec![step_task("t", 10, 1_000.0)]).unwrap();
        let patterns = vec![ArrivalPattern::periodic(ms(10)).unwrap()];
        let config = SimConfig::new(ms(50));
        let err = Engine::run_with_faults(
            &tasks,
            &patterns,
            &platform(),
            &mut MaxSpeedEdf::new(),
            &config,
            1,
            &plan,
        )
        .unwrap_err();
        assert!(matches!(err, SimError::InvalidFaultPlan { .. }));

        // A degraded set disjoint from the platform table is also typed.
        let disjoint = FaultPlan {
            dvs: crate::faults::DvsFault {
                degraded_mhz: Some(vec![999]),
                ..Default::default()
            },
            ..FaultPlan::none()
        };
        let err = Engine::run_with_faults(
            &tasks,
            &patterns,
            &platform(),
            &mut MaxSpeedEdf::new(),
            &config,
            1,
            &disjoint,
        )
        .unwrap_err();
        assert!(matches!(err, SimError::InvalidFaultPlan { .. }));
    }

    #[test]
    fn jitter_fault_runs_clean_and_changes_the_timeline() {
        let plan = FaultPlan {
            timing: crate::faults::TimingFault {
                abort_cost: TimeDelta::ZERO,
                arrival_jitter: TimeDelta::from_millis(3),
            },
            ..FaultPlan::none()
        };
        let tasks = TaskSet::new(vec![step_task("t", 10, 100_000.0)]).unwrap();
        let patterns = vec![ArrivalPattern::periodic(ms(10)).unwrap()];
        let config = SimConfig::new(ms(100)).with_trace();
        let plain = Engine::run(
            &tasks,
            &patterns,
            &platform(),
            &mut MaxSpeedEdf::new(),
            &config,
            1,
        )
        .unwrap();
        let faulted = Engine::run_with_faults(
            &tasks,
            &patterns,
            &platform(),
            &mut MaxSpeedEdf::new(),
            &config,
            1,
            &plan,
        )
        .unwrap();
        // Per-window completion still holds, so aggregate metrics survive;
        // the execution timeline itself must have moved.
        assert_ne!(plain.trace, faulted.trace, "jitter must move arrivals");
        // Deterministic: same seed, same jittered timeline.
        let again = Engine::run_with_faults(
            &tasks,
            &patterns,
            &platform(),
            &mut MaxSpeedEdf::new(),
            &config,
            1,
            &plan,
        )
        .unwrap();
        assert_eq!(faulted.trace, again.trace);
        assert_eq!(faulted.metrics, again.metrics);
    }

    #[test]
    fn completion_exactly_at_termination_accrues_step_utility() {
        // 1M cycles at 100 MHz = exactly 10 ms = the step + termination.
        let tasks = TaskSet::new(vec![step_task("t", 10, 1_000_000.0)]).unwrap();
        let traces = vec![ArrivalTrace::from_times([SimTime::ZERO])];
        let config = SimConfig::new(ms(20));
        let out = Engine::run_with_traces(
            &tasks,
            &traces,
            &platform(),
            &mut MaxSpeedEdf::new(),
            &config,
            1,
        )
        .unwrap();
        assert_eq!(out.metrics.jobs_completed(), 1);
        assert!((out.metrics.total_utility - 10.0).abs() < 1e-9);
        assert_eq!(out.metrics.per_task[0].critical_met, 1);
        assert_eq!(out.metrics.per_task[0].max_lateness_us, 0);
    }
}
