//! Error type for simulator configuration and policy-contract violations.

use std::error::Error;
use std::fmt;

use eua_uam::UamError;

use crate::ids::JobId;

/// Errors produced while building or running a simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A task's TUF admits no critical time for its assurance fraction.
    NoCriticalTime {
        /// The offending task's name.
        task: String,
    },
    /// A task set was empty.
    EmptyTaskSet,
    /// The number of arrival patterns/traces did not match the task count.
    PatternCountMismatch {
        /// Number of tasks.
        tasks: usize,
        /// Number of patterns supplied.
        patterns: usize,
    },
    /// A policy decision referenced a job that is not live.
    UnknownJob {
        /// The unknown id.
        job: JobId,
    },
    /// A policy chose to both run and abort the same job.
    RunAbortConflict {
        /// The conflicted id.
        job: JobId,
    },
    /// A policy chose a frequency outside the platform's table.
    UnknownFrequency {
        /// The chosen frequency in MHz.
        mhz: u64,
    },
    /// The simulation horizon was zero.
    ZeroHorizon,
    /// A replication run was requested with zero replicas.
    ZeroReplications,
    /// A task's demand or assurance was rejected during construction.
    Task {
        /// The underlying demand/assurance error.
        source: UamError,
    },
    /// A parallel replication worker failed (see [`crate::pool`]).
    Pool {
        /// The underlying pool error.
        source: crate::pool::PoolError,
    },
    /// A fault plan was self-contradictory or unusable on the platform
    /// (see [`crate::FaultPlan::validate`]).
    InvalidFaultPlan {
        /// Human-readable description of the rejected field.
        reason: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NoCriticalTime { task } => {
                write!(
                    f,
                    "task {task} has no critical time for its assurance fraction"
                )
            }
            SimError::EmptyTaskSet => write!(f, "task set must contain at least one task"),
            SimError::PatternCountMismatch { tasks, patterns } => {
                write!(f, "{tasks} tasks but {patterns} arrival patterns supplied")
            }
            SimError::UnknownJob { job } => write!(f, "policy referenced unknown job {job}"),
            SimError::RunAbortConflict { job } => {
                write!(f, "policy both runs and aborts job {job}")
            }
            SimError::UnknownFrequency { mhz } => {
                write!(
                    f,
                    "policy chose frequency {mhz}MHz outside the platform table"
                )
            }
            SimError::ZeroHorizon => write!(f, "simulation horizon must be positive"),
            SimError::ZeroReplications => write!(f, "replication count must be positive"),
            SimError::Task { source } => write!(f, "invalid task: {source}"),
            SimError::Pool { source } => write!(f, "parallel replication failed: {source}"),
            SimError::InvalidFaultPlan { reason } => {
                write!(f, "invalid fault plan: {reason}")
            }
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Task { source } => Some(source),
            SimError::Pool { source } => Some(source),
            _ => None,
        }
    }
}

impl From<UamError> for SimError {
    fn from(source: UamError) -> Self {
        SimError::Task { source }
    }
}

impl From<crate::pool::PoolError> for SimError {
    fn from(source: crate::pool::PoolError) -> Self {
        SimError::Pool { source }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_render() {
        for e in [
            SimError::NoCriticalTime { task: "a".into() },
            SimError::EmptyTaskSet,
            SimError::PatternCountMismatch {
                tasks: 2,
                patterns: 1,
            },
            SimError::UnknownJob { job: JobId(1) },
            SimError::RunAbortConflict { job: JobId(2) },
            SimError::UnknownFrequency { mhz: 1 },
            SimError::ZeroHorizon,
            SimError::ZeroReplications,
            SimError::Task {
                source: UamError::ZeroWindow,
            },
            SimError::InvalidFaultPlan {
                reason: "demand mean factor must be finite".into(),
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn task_errors_expose_their_source() {
        let e = SimError::from(UamError::ZeroWindow);
        let source = e.source().expect("task errors carry a source");
        assert_eq!(source.to_string(), UamError::ZeroWindow.to_string());
        assert!(SimError::EmptyTaskSet.source().is_none());
    }

    #[test]
    fn is_send_sync_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<SimError>();
    }
}
