//! Deterministic fault injection for robustness evaluation.
//!
//! EUA\*'s assurances are derived from *declared* demand statistics and
//! the UAM contract `⟨a, P⟩`. A [`FaultPlan`] lets a run violate those
//! declarations in controlled, seed-deterministic ways so the
//! degradation of delivered assurance can be measured (see
//! [`crate::analysis::classify_degradation`] and DESIGN.md §10). Four
//! fault families are injectable:
//!
//! 1. **UAM violations** ([`UamViolationFault`]) — extra burst arrivals
//!    beyond the declared `a` per window `P`, plus arrival (timer)
//!    jitter from [`TimingFault`];
//! 2. **demand mis-estimation** ([`DemandFault`]) — the *actual* sampled
//!    cycle demands are scaled away from the declared statistics the
//!    Chebyshev budget was computed from;
//! 3. **DVS imperfections** ([`DvsFault`]) — frequency-switch latency in
//!    cycles, stuck-at-frequency faults, and a restricted (degraded)
//!    frequency set;
//! 4. **abort-cost overruns** ([`TimingFault`]) — every abort burns wall
//!    time and energy before the processor is available again.
//!
//! Every perturbation is drawn from a dedicated RNG seeded with
//! `seed ^ FAULT_SEED_SALT`, never from the engine's demand-sampling
//! RNG. Two consequences, both load-bearing:
//!
//! * a run with `FaultPlan::none()` (or any all-zero plan) draws nothing
//!   from the fault RNG and is **bit-identical** to the unfaulted
//!   engine; and
//! * fault schedules are pure functions of `(plan, seed)`, so parallel
//!   replication through [`crate::pool`] stays byte-identical to
//!   sequential execution.

use eua_platform::{Cycles, Frequency, SimTime, TimeDelta};
use eua_uam::ArrivalTrace;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::error::SimError;
use crate::task::TaskSet;

/// XOR-salt distinguishing the fault RNG stream from the demand RNG
/// stream derived from the same run seed (the golden-ratio constant,
/// chosen only for bit diversity).
pub const FAULT_SEED_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// UAM-contract violations: extra arrivals injected at window starts.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct UamViolationFault {
    /// Extra arrivals injected at the start of each affected window,
    /// *beyond* whatever the legal pattern generated. Zero disables the
    /// family.
    pub extra_per_window: u32,
    /// Inject into every `n`-th window (1 = every window). Zero is
    /// invalid when `extra_per_window > 0`.
    pub every_n_windows: u32,
}

/// Demand mis-estimation: actual sampled demands deviate from the
/// declared distribution by a configurable factor.
#[derive(Debug, Clone, PartialEq)]
pub struct DemandFault {
    /// Multiplier applied to every sampled demand (1.0 = faithful).
    /// Values above 1 model optimistic declarations (true demand higher
    /// than declared); below 1, pessimistic ones.
    pub mean_factor: f64,
    /// Half-width of a uniform per-job spread around `mean_factor`:
    /// each job's factor is drawn from
    /// `mean_factor · (1 + U[−spread, +spread])`. Zero disables the
    /// per-job draw entirely (no RNG consumption).
    pub spread: f64,
}

impl Default for DemandFault {
    fn default() -> Self {
        DemandFault {
            mean_factor: 1.0,
            spread: 0.0,
        }
    }
}

/// DVS imperfections: switch latency, stuck-at faults, degraded tables.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DvsFault {
    /// Extra cycles burned (at the target frequency) on every frequency
    /// switch — the PLL relock / voltage ramp a fault-free `SimConfig`
    /// models as zero.
    pub switch_latency_cycles: u64,
    /// After this offset from time zero, the frequency in effect at the
    /// next dispatch is pinned for the rest of the run (a regulator
    /// stuck-at fault). `None` disables.
    pub stuck_after: Option<TimeDelta>,
    /// Restrict the platform to this subset of its table (MHz values).
    /// Entries not in the platform table are ignored; an empty
    /// intersection is a [`SimError::InvalidFaultPlan`] at run start.
    /// `None` leaves the table untouched.
    pub degraded_mhz: Option<Vec<u64>>,
}

/// Abort-cost overruns and arrival (timer) jitter.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TimingFault {
    /// Wall time burned (busy, at the last execution frequency) by every
    /// abort — the cleanup work the paper's instant-abort model omits.
    pub abort_cost: TimeDelta,
    /// Maximum timer jitter: each arrival is displaced by a uniform
    /// offset in `[−jitter, +jitter]` (clamped at time zero). Zero
    /// disables the per-arrival draw.
    pub arrival_jitter: TimeDelta,
}

/// A complete, validated-on-use fault schedule for one run.
///
/// The default plan injects nothing; see the module docs for the
/// determinism contract.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// UAM-contract violations (family 1).
    pub uam: UamViolationFault,
    /// Demand mis-estimation (family 2).
    pub demand: DemandFault,
    /// DVS imperfections (family 3).
    pub dvs: DvsFault,
    /// Abort-cost overruns and arrival jitter (family 4).
    pub timing: TimingFault,
}

impl FaultPlan {
    /// The empty plan: no fault family active.
    #[must_use]
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether no fault family is active (demand factor exactly 1 with
    /// zero spread counts as inactive).
    #[must_use]
    pub fn is_none(&self) -> bool {
        !self.arrivals_faulted()
            && !self.demand_faulted()
            && self.dvs == DvsFault::default()
            && self.timing.abort_cost.is_zero()
    }

    /// Whether arrival streams are perturbed (burst injection or
    /// jitter).
    #[must_use]
    pub fn arrivals_faulted(&self) -> bool {
        self.uam.extra_per_window > 0 || !self.timing.arrival_jitter.is_zero()
    }

    /// Whether sampled demands are perturbed.
    #[must_use]
    pub fn demand_faulted(&self) -> bool {
        self.demand.mean_factor != 1.0 || self.demand.spread != 0.0
    }

    /// Validates the plan's parameters.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidFaultPlan`] when the demand factor or spread is
    /// negative or non-finite, when burst injection is requested with a
    /// zero window stride, or when a degraded frequency set is declared
    /// empty. (An empty intersection with the platform table is checked
    /// at run start, where the table is known.)
    pub fn validate(&self) -> Result<(), SimError> {
        if !self.demand.mean_factor.is_finite() || self.demand.mean_factor < 0.0 {
            return Err(SimError::InvalidFaultPlan {
                reason: format!(
                    "demand deviation factor {} must be finite and non-negative",
                    self.demand.mean_factor
                ),
            });
        }
        if !self.demand.spread.is_finite() || self.demand.spread < 0.0 {
            return Err(SimError::InvalidFaultPlan {
                reason: format!(
                    "demand spread {} must be finite and non-negative",
                    self.demand.spread
                ),
            });
        }
        if self.uam.extra_per_window > 0 && self.uam.every_n_windows == 0 {
            return Err(SimError::InvalidFaultPlan {
                reason: "burst injection requires a window stride of at least 1".into(),
            });
        }
        if let Some(set) = &self.dvs.degraded_mhz {
            if set.is_empty() {
                return Err(SimError::InvalidFaultPlan {
                    reason: "degraded frequency set is empty".into(),
                });
            }
        }
        Ok(())
    }

    /// The fault RNG for a run seeded with `seed` — deliberately a
    /// *different* stream from the engine's `SmallRng::seed_from_u64(seed)`
    /// so activating a fault family never re-deals the legal workload.
    #[must_use]
    pub fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed ^ FAULT_SEED_SALT)
    }

    /// Applies burst injection and arrival jitter to per-task arrival
    /// traces, in task order. Returns the traces untouched (and draws
    /// nothing from `rng`) when no arrival fault is active.
    ///
    /// Injected arrivals land at window starts `k·P` (every
    /// `every_n_windows`-th window within the horizon); jitter displaces
    /// every arrival — legal and injected — by a uniform offset in
    /// `[−J, +J]`, clamped at time zero. Arrivals displaced past the
    /// horizon are dropped by the engine exactly like legal late
    /// arrivals.
    #[must_use]
    pub fn apply_to_traces(
        &self,
        traces: &[ArrivalTrace],
        tasks: &TaskSet,
        horizon_end: SimTime,
        rng: &mut SmallRng,
    ) -> Vec<ArrivalTrace> {
        if !self.arrivals_faulted() {
            return traces.to_vec();
        }
        let jitter = self.timing.arrival_jitter.as_micros();
        traces
            .iter()
            .enumerate()
            .map(|(i, trace)| {
                let mut times: Vec<SimTime> = trace.iter().collect();
                if self.uam.extra_per_window > 0 {
                    let window = tasks.task(crate::ids::TaskId(i)).uam().window();
                    let stride = u64::from(self.uam.every_n_windows.max(1));
                    let mut k = Some(0u64);
                    while let Some(offset) = k.and_then(|k| window.checked_mul(k)) {
                        let Some(at) = SimTime::ZERO.checked_add(offset) else {
                            break;
                        };
                        if at >= horizon_end {
                            break;
                        }
                        for _ in 0..self.uam.extra_per_window {
                            times.push(at);
                        }
                        k = k.and_then(|k| k.checked_add(stride));
                    }
                }
                if jitter > 0 {
                    for t in &mut times {
                        let offset = rng.gen_range(0..=jitter.saturating_mul(2));
                        let micros = t.as_micros().saturating_add(offset).saturating_sub(jitter);
                        *t = SimTime::from_micros(micros);
                    }
                }
                times.sort_unstable();
                ArrivalTrace::from_times(times)
            })
            .collect()
    }

    /// Perturbs one sampled demand. Draws from `rng` only when a per-job
    /// spread is configured; an inactive demand fault returns the sample
    /// unchanged without touching the RNG.
    #[must_use]
    pub fn perturb_demand(&self, sampled: Cycles, rng: &mut SmallRng) -> Cycles {
        if !self.demand_faulted() {
            return sampled;
        }
        let mut factor = self.demand.mean_factor;
        if self.demand.spread > 0.0 {
            let u: f64 = rng.gen_range(-1.0..=1.0);
            factor *= 1.0 + self.demand.spread * u;
        }
        let cycles = (sampled.as_f64() * factor.max(0.0)).round();
        // `as` saturates at the u64 bounds and maps NaN to 0, so even a
        // u64-boundary product degrades instead of panicking.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        Cycles::new(if cycles.is_finite() { cycles as u64 } else { 0 })
    }

    /// A conservative envelope on admitted arrivals per UAM window once
    /// this plan's arrival faults are in effect, used to *relax* the
    /// feature-gated invariant checker rather than disable it: injected
    /// bursts and jitter legitimately exceed the declared bound `a`, but
    /// anything beyond this envelope is still an engine bug.
    ///
    /// A window of length `P` can straddle two injection points
    /// (`a + 2·extra`), and jitter `J` folds originals from a span of
    /// `P + 2J` into one window (`⌊2J/P⌋ + 2` windows' worth by the
    /// sliding-window property).
    #[must_use]
    pub fn relaxed_uam_bound(&self, declared: u32, window: TimeDelta) -> u32 {
        if !self.arrivals_faulted() {
            return declared;
        }
        let base = u64::from(declared).saturating_add(2 * u64::from(self.uam.extra_per_window));
        let j = self.timing.arrival_jitter.as_micros();
        let p = window.as_micros().max(1);
        let windows = (2 * j) / p + 2;
        u32::try_from(base.saturating_mul(windows)).unwrap_or(u32::MAX)
    }

    /// The degraded frequency subset of `table`, in ascending order, or
    /// `None` when no degradation is configured.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidFaultPlan`] when the configured set shares no
    /// entry with the platform table.
    pub fn degraded_table(
        &self,
        table: &eua_platform::FrequencyTable,
    ) -> Result<Option<Vec<Frequency>>, SimError> {
        let Some(set) = &self.dvs.degraded_mhz else {
            return Ok(None);
        };
        let kept: Vec<Frequency> = table.iter().filter(|f| set.contains(&f.as_mhz())).collect();
        if kept.is_empty() {
            return Err(SimError::InvalidFaultPlan {
                reason: format!(
                    "degraded frequency set {set:?} shares no entry with the platform table"
                ),
            });
        }
        Ok(Some(kept))
    }
}

/// Maps a requested frequency onto a degraded table: the slowest
/// available frequency at least as fast as the request, else the fastest
/// available one. `degraded` must be non-empty and ascending.
#[must_use]
pub fn map_to_degraded(degraded: &[Frequency], requested: Frequency) -> Frequency {
    degraded
        .iter()
        .copied()
        .find(|f| f.as_mhz() >= requested.as_mhz())
        .or_else(|| degraded.last().copied())
        .unwrap_or(requested)
}

/// Counters describing what a fault plan actually did during one run.
/// All zero for an inactive plan; excluded from [`crate::Metrics`] so
/// zero-fault runs stay bit-identical to the unfaulted engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Burst arrivals injected beyond the legal traces.
    pub injected_arrivals: u64,
    /// Sampled demands scaled by the demand fault.
    pub perturbed_demands: u64,
    /// Policy frequency requests remapped onto the degraded table.
    pub degraded_remaps: u64,
    /// Dispatches forced onto the stuck frequency.
    pub stuck_dispatches: u64,
    /// Frequency switches that paid the injected latency.
    pub latency_switches: u64,
    /// Aborts that paid the abort-cost overrun.
    pub costly_aborts: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use eua_platform::FrequencyTable;
    use eua_tuf::Tuf;
    use eua_uam::demand::DemandModel;
    use eua_uam::{Assurance, UamSpec};

    use crate::task::Task;

    fn ms(v: u64) -> TimeDelta {
        TimeDelta::from_millis(v)
    }

    fn one_task_set(window_ms: u64) -> TaskSet {
        let task = Task::new(
            "t",
            Tuf::step(5.0, ms(window_ms)).unwrap(),
            UamSpec::new(2, ms(window_ms)).unwrap(),
            DemandModel::deterministic(100_000.0).unwrap(),
            Assurance::new(1.0, 0.9).unwrap(),
        )
        .unwrap();
        TaskSet::new(vec![task]).unwrap()
    }

    #[test]
    fn empty_plan_is_none_and_valid() {
        let plan = FaultPlan::none();
        assert!(plan.is_none());
        plan.validate().unwrap();
        assert_eq!(plan.relaxed_uam_bound(3, ms(10)), 3);
    }

    #[test]
    fn validate_rejects_negative_and_non_finite_factors() {
        for factor in [-0.5, f64::NAN, f64::NEG_INFINITY] {
            let plan = FaultPlan {
                demand: DemandFault {
                    mean_factor: factor,
                    spread: 0.0,
                },
                ..FaultPlan::none()
            };
            assert!(matches!(
                plan.validate(),
                Err(SimError::InvalidFaultPlan { .. })
            ));
        }
        let plan = FaultPlan {
            demand: DemandFault {
                mean_factor: 1.0,
                spread: -1.0,
            },
            ..FaultPlan::none()
        };
        assert!(plan.validate().is_err());
    }

    #[test]
    fn validate_rejects_zero_stride_and_empty_degraded_set() {
        let plan = FaultPlan {
            uam: UamViolationFault {
                extra_per_window: 1,
                every_n_windows: 0,
            },
            ..FaultPlan::none()
        };
        assert!(plan.validate().is_err());
        let plan = FaultPlan {
            dvs: DvsFault {
                degraded_mhz: Some(vec![]),
                ..DvsFault::default()
            },
            ..FaultPlan::none()
        };
        assert!(plan.validate().is_err());
    }

    #[test]
    fn inactive_plan_leaves_traces_untouched_without_rng_draws() {
        let tasks = one_task_set(10);
        let trace = ArrivalTrace::from_times([SimTime::ZERO, SimTime::from_millis(10)]);
        let plan = FaultPlan::none();
        let mut a = FaultPlan::rng(7);
        let out = plan.apply_to_traces(
            std::slice::from_ref(&trace),
            &tasks,
            SimTime::from_millis(100),
            &mut a,
        );
        assert_eq!(
            out[0].iter().collect::<Vec<_>>(),
            trace.iter().collect::<Vec<_>>()
        );
        // No draws happened: the rng still matches a fresh one.
        let mut b = FaultPlan::rng(7);
        assert_eq!(a.gen_range(0..u64::MAX), b.gen_range(0..u64::MAX));
    }

    #[test]
    fn burst_injection_adds_arrivals_at_window_starts() {
        let tasks = one_task_set(10);
        let trace = ArrivalTrace::from_times([SimTime::from_millis(3)]);
        let plan = FaultPlan {
            uam: UamViolationFault {
                extra_per_window: 2,
                every_n_windows: 2,
            },
            ..FaultPlan::none()
        };
        let mut rng = FaultPlan::rng(1);
        let out = plan.apply_to_traces(
            std::slice::from_ref(&trace),
            &tasks,
            SimTime::from_millis(40),
            &mut rng,
        );
        let times: Vec<u64> = out[0].iter().map(|t| t.as_micros() / 1000).collect();
        // Windows 0 and 2 (stride 2) within 40 ms get 2 extras each.
        assert_eq!(times, vec![0, 0, 3, 20, 20]);
    }

    #[test]
    fn jitter_is_deterministic_per_seed_and_bounded() {
        let tasks = one_task_set(10);
        let trace = ArrivalTrace::from_times(
            (0..20)
                .map(|i| SimTime::from_millis(i * 10))
                .collect::<Vec<_>>(),
        );
        let plan = FaultPlan {
            timing: TimingFault {
                abort_cost: TimeDelta::ZERO,
                arrival_jitter: TimeDelta::from_millis(2),
            },
            ..FaultPlan::none()
        };
        let horizon = SimTime::from_millis(300);
        let mut r1 = FaultPlan::rng(5);
        let mut r2 = FaultPlan::rng(5);
        let a = plan.apply_to_traces(std::slice::from_ref(&trace), &tasks, horizon, &mut r1);
        let b = plan.apply_to_traces(std::slice::from_ref(&trace), &tasks, horizon, &mut r2);
        assert_eq!(
            a[0].iter().collect::<Vec<_>>(),
            b[0].iter().collect::<Vec<_>>()
        );
        for (orig, moved) in trace.iter().zip(a[0].iter()) {
            let d = orig.as_micros().abs_diff(moved.as_micros());
            assert!(d <= 2_000, "jitter {d} exceeds the 2 ms bound");
        }
        let mut r3 = FaultPlan::rng(6);
        let c = plan.apply_to_traces(std::slice::from_ref(&trace), &tasks, horizon, &mut r3);
        assert_ne!(
            a[0].iter().collect::<Vec<_>>(),
            c[0].iter().collect::<Vec<_>>(),
            "different seeds must jitter differently"
        );
    }

    #[test]
    fn demand_perturbation_scales_and_saturates() {
        let mut rng = FaultPlan::rng(1);
        let plan = FaultPlan {
            demand: DemandFault {
                mean_factor: 2.0,
                spread: 0.0,
            },
            ..FaultPlan::none()
        };
        assert_eq!(
            plan.perturb_demand(Cycles::new(1_000), &mut rng),
            Cycles::new(2_000)
        );
        let huge = FaultPlan {
            demand: DemandFault {
                mean_factor: 1e30,
                spread: 0.0,
            },
            ..FaultPlan::none()
        };
        assert_eq!(
            huge.perturb_demand(Cycles::new(u64::MAX), &mut rng),
            Cycles::new(u64::MAX),
            "u64-boundary products saturate instead of panicking"
        );
        let inactive = FaultPlan::none();
        assert_eq!(
            inactive.perturb_demand(Cycles::new(42), &mut rng),
            Cycles::new(42)
        );
    }

    #[test]
    fn spread_draws_stay_within_the_band() {
        let plan = FaultPlan {
            demand: DemandFault {
                mean_factor: 1.5,
                spread: 0.2,
            },
            ..FaultPlan::none()
        };
        let mut rng = FaultPlan::rng(9);
        for _ in 0..200 {
            let c = plan.perturb_demand(Cycles::new(1_000_000), &mut rng).get();
            assert!(
                (1_200_000..=1_800_000).contains(&c),
                "factor band violated: {c}"
            );
        }
    }

    #[test]
    fn relaxed_bound_covers_bursts_and_jitter() {
        let plan = FaultPlan {
            uam: UamViolationFault {
                extra_per_window: 3,
                every_n_windows: 1,
            },
            timing: TimingFault {
                abort_cost: TimeDelta::ZERO,
                arrival_jitter: ms(15),
            },
            ..FaultPlan::none()
        };
        // base = 2 + 6 = 8; windows = ⌊30/10⌋ + 2 = 5 → 40.
        assert_eq!(plan.relaxed_uam_bound(2, ms(10)), 40);
    }

    #[test]
    fn degraded_table_intersects_and_rejects_disjoint_sets() {
        let table = FrequencyTable::powernow_k6();
        let plan = FaultPlan {
            dvs: DvsFault {
                degraded_mhz: Some(vec![36, 100, 999]),
                ..DvsFault::default()
            },
            ..FaultPlan::none()
        };
        let kept = plan.degraded_table(&table).unwrap().unwrap();
        let mhz: Vec<u64> = kept.iter().map(|f| f.as_mhz()).collect();
        assert_eq!(mhz, vec![36, 100]);
        let disjoint = FaultPlan {
            dvs: DvsFault {
                degraded_mhz: Some(vec![999]),
                ..DvsFault::default()
            },
            ..FaultPlan::none()
        };
        assert!(matches!(
            disjoint.degraded_table(&table),
            Err(SimError::InvalidFaultPlan { .. })
        ));
    }

    #[test]
    fn degraded_mapping_rounds_up_then_clamps() {
        let degraded = [Frequency::from_mhz(45), Frequency::from_mhz(64)];
        assert_eq!(
            map_to_degraded(&degraded, Frequency::from_mhz(36)).as_mhz(),
            45
        );
        assert_eq!(
            map_to_degraded(&degraded, Frequency::from_mhz(64)).as_mhz(),
            64
        );
        assert_eq!(
            map_to_degraded(&degraded, Frequency::from_mhz(100)).as_mhz(),
            64
        );
    }
}
