//! Identifier newtypes for tasks and jobs.

use std::fmt;

/// Index of a task within its [`crate::TaskSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub usize);

impl TaskId {
    /// The underlying index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// A unique identifier for one job (task instance) within a simulation run.
///
/// Ids are assigned in arrival order, so they also serve as a stable
/// tie-breaker for schedulers that need a deterministic order among equal
/// keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl JobId {
    /// The underlying sequence number.
    #[must_use]
    pub const fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "J{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_ordered_and_display() {
        assert!(TaskId(0) < TaskId(1));
        assert!(JobId(3) < JobId(10));
        assert_eq!(TaskId(2).to_string(), "T2");
        assert_eq!(JobId(7).to_string(), "J7");
        assert_eq!(TaskId(4).index(), 4);
        assert_eq!(JobId(9).get(), 9);
    }
}
