//! Feature-gated runtime invariant checking for the simulation engine.
//!
//! With the `invariant-checks` feature enabled, the engine threads every
//! state transition through an [`InvariantChecker`] that asserts the
//! properties the rest of the stack silently relies on:
//!
//! * the simulation clock never moves backwards;
//! * admitted arrival streams respect each task's UAM window bound
//!   (at most `a` arrivals in any half-open window of length `P`);
//! * a job that has been aborted is never executed again;
//! * every energy charge is finite and non-negative, and the final
//!   energy total equals the sum of the individual charges.
//!
//! Violations panic with a descriptive message, which surfaces as a test
//! failure in the suites that run with the feature on (`end_to_end`,
//! `uam_compliance`). Without the feature the checker is a zero-sized
//! no-op whose inlined empty methods compile away entirely, so the
//! release simulator pays nothing.

#[cfg(not(feature = "invariant-checks"))]
pub use disabled::InvariantChecker;
#[cfg(feature = "invariant-checks")]
pub use enabled::InvariantChecker;

/// Whether the `invariant-checks` feature is compiled into this build of
/// the simulator.
#[must_use]
pub const fn invariant_checks_enabled() -> bool {
    cfg!(feature = "invariant-checks")
}

#[cfg(feature = "invariant-checks")]
mod enabled {
    use std::collections::{BTreeSet, VecDeque};

    use crate::ids::JobId;
    use eua_platform::{SimTime, TimeDelta};

    /// Relative tolerance for the energy-additivity check.
    const ENERGY_REL_TOL: f64 = 1e-6;

    /// Accumulated invariant state for one simulation run.
    #[derive(Debug)]
    pub struct InvariantChecker {
        /// Per-task recent arrival times, pruned to the UAM window.
        arrivals: Vec<VecDeque<SimTime>>,
        /// Ids of every job aborted so far.
        aborted: BTreeSet<JobId>,
        /// Running sum of individual energy charges.
        charged: f64,
    }

    impl InvariantChecker {
        /// A fresh checker for a run over `num_tasks` tasks.
        #[must_use]
        pub fn new(num_tasks: usize) -> Self {
            InvariantChecker {
                arrivals: vec![VecDeque::new(); num_tasks],
                aborted: BTreeSet::new(),
                charged: 0.0,
            }
        }

        /// Asserts the clock only moves forward.
        pub fn clock_advance(&mut self, from: SimTime, to: SimTime) {
            assert!(
                to >= from,
                "invariant violated: clock moved backwards from {from} to {to}"
            );
        }

        /// Asserts the admitted arrival stream for `task` stays within
        /// the UAM bound: at most `max_arrivals` arrivals in any
        /// half-open window of length `window`.
        pub fn arrival(&mut self, task: usize, at: SimTime, max_arrivals: u32, window: TimeDelta) {
            let history = &mut self.arrivals[task];
            if let Some(&last) = history.back() {
                assert!(
                    at >= last,
                    "invariant violated: task {task} arrivals out of order ({last} then {at})"
                );
            }
            history.push_back(at);
            // Keep only arrivals with `at − P < t ≤ at`; older ones can
            // never share a window of length P with `at` again.
            while let Some(&front) = history.front() {
                if front.saturating_add(window) <= at {
                    history.pop_front();
                } else {
                    break;
                }
            }
            assert!(
                history.len() <= max_arrivals as usize,
                "invariant violated: task {task} admitted {} arrivals in a {window} window \
                 (UAM bound is {max_arrivals}); window ends at {at}",
                history.len()
            );
        }

        /// Records an abort.
        pub fn job_aborted(&mut self, id: JobId) {
            self.aborted.insert(id);
        }

        /// Asserts an aborted job is never executed.
        pub fn executing(&mut self, id: JobId) {
            assert!(
                !self.aborted.contains(&id),
                "invariant violated: aborted job {id:?} was scheduled for execution"
            );
        }

        /// Asserts a single energy charge is sane and accumulates it.
        pub fn energy_charge(&mut self, charge: f64) {
            assert!(
                charge.is_finite() && charge >= 0.0,
                "invariant violated: energy charge {charge} is negative or non-finite"
            );
            self.charged += charge;
        }

        /// Asserts the final metered energy equals the sum of charges.
        pub fn finish(&self, total_energy: f64) {
            assert!(
                total_energy.is_finite() && total_energy >= 0.0,
                "invariant violated: total energy {total_energy} is negative or non-finite"
            );
            let tol = ENERGY_REL_TOL * self.charged.max(1.0);
            assert!(
                (total_energy - self.charged).abs() <= tol,
                "invariant violated: metered energy {total_energy} differs from the sum of \
                 charges {} by more than {tol}",
                self.charged
            );
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn clock_must_not_go_backwards() {
            let mut c = InvariantChecker::new(1);
            c.clock_advance(SimTime::from_micros(5), SimTime::from_micros(5));
            c.clock_advance(SimTime::from_micros(5), SimTime::from_micros(9));
            let r = std::panic::catch_unwind(move || {
                c.clock_advance(SimTime::from_micros(9), SimTime::from_micros(8));
            });
            assert!(r.is_err());
        }

        #[test]
        fn uam_window_bound_enforced() {
            let window = TimeDelta::from_micros(100);
            let mut c = InvariantChecker::new(1);
            // Two arrivals per window are fine…
            c.arrival(0, SimTime::from_micros(0), 2, window);
            c.arrival(0, SimTime::from_micros(10), 2, window);
            // …a third arrival 100 µs later has left the first window.
            c.arrival(0, SimTime::from_micros(100), 2, window);
            // But a third sharing a window with the previous two
            // ((1, 101] holds 10, 100, and 101) trips the check.
            let r = std::panic::catch_unwind(move || {
                c.arrival(0, SimTime::from_micros(101), 2, window);
            });
            assert!(r.is_err());
        }

        #[test]
        fn aborted_jobs_must_not_execute() {
            let mut c = InvariantChecker::new(1);
            c.executing(JobId(1));
            c.job_aborted(JobId(1));
            let r = std::panic::catch_unwind(move || c.executing(JobId(1)));
            assert!(r.is_err());
        }

        #[test]
        fn energy_is_additive_and_non_negative() {
            let mut c = InvariantChecker::new(1);
            c.energy_charge(1.5);
            c.energy_charge(0.0);
            c.energy_charge(2.5);
            c.finish(4.0);
            let r = std::panic::catch_unwind(move || c.finish(5.0));
            assert!(r.is_err());
            let mut c = InvariantChecker::new(1);
            let r = std::panic::catch_unwind(move || c.energy_charge(-1.0));
            assert!(r.is_err());
        }
    }
}

#[cfg(not(feature = "invariant-checks"))]
mod disabled {
    use crate::ids::JobId;
    use eua_platform::{SimTime, TimeDelta};

    /// Zero-sized no-op stand-in compiled when `invariant-checks` is
    /// off; every method is an empty inline that optimizes away.
    #[derive(Debug)]
    pub struct InvariantChecker;

    #[allow(clippy::unused_self)]
    impl InvariantChecker {
        /// No-op constructor.
        #[inline(always)]
        #[must_use]
        pub fn new(_num_tasks: usize) -> Self {
            InvariantChecker
        }

        /// No-op.
        #[inline(always)]
        pub fn clock_advance(&mut self, _from: SimTime, _to: SimTime) {}

        /// No-op.
        #[inline(always)]
        pub fn arrival(
            &mut self,
            _task: usize,
            _at: SimTime,
            _max_arrivals: u32,
            _window: TimeDelta,
        ) {
        }

        /// No-op.
        #[inline(always)]
        pub fn job_aborted(&mut self, _id: JobId) {}

        /// No-op.
        #[inline(always)]
        pub fn executing(&mut self, _id: JobId) {}

        /// No-op.
        #[inline(always)]
        pub fn energy_charge(&mut self, _charge: f64) {}

        /// No-op.
        #[inline(always)]
        pub fn finish(&self, _total_energy: f64) {}
    }
}
