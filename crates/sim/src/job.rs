//! Job state: the engine-internal live job and the public per-job record.

use std::fmt;

use eua_platform::{Cycles, SimTime};

use crate::ids::{JobId, TaskId};

/// How a job's lifetime ended (or didn't, within the horizon).
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum JobOutcome {
    /// The job finished its actual demand and accrued `utility` at `at`.
    Completed {
        /// Completion instant.
        at: SimTime,
        /// Utility accrued, `U(at − arrival)`.
        utility: f64,
    },
    /// The job was aborted — by the engine at its termination time, or
    /// earlier by the policy (`by_policy`).
    Aborted {
        /// Abort instant.
        at: SimTime,
        /// `true` when the policy requested the abort (e.g. EUA\* dropping
        /// an infeasible job); `false` for the termination-time exception.
        by_policy: bool,
    },
    /// The simulation horizon ended before the job finished.
    Unfinished,
}

/// The full story of one job, available when
/// [`crate::SimConfig::record_jobs`] is enabled.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// The job's id (arrival order).
    pub id: JobId,
    /// The owning task.
    pub task: TaskId,
    /// Arrival (= TUF initial time).
    pub arrival: SimTime,
    /// The actual sampled cycle demand.
    pub actual_demand: Cycles,
    /// Cycles executed before the job ended.
    pub executed: Cycles,
    /// How the job ended.
    pub outcome: JobOutcome,
}

impl JobRecord {
    /// The utility this job accrued (zero unless completed).
    #[must_use]
    pub fn utility(&self) -> f64 {
        match self.outcome {
            JobOutcome::Completed { utility, .. } => utility,
            _ => 0.0,
        }
    }

    /// `true` if the job ran to completion.
    #[must_use]
    pub fn is_completed(&self) -> bool {
        matches!(self.outcome, JobOutcome::Completed { .. })
    }
}

impl fmt::Display for JobRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.outcome {
            JobOutcome::Completed { at, utility } => {
                write!(
                    f,
                    "{} ({}): completed at {} with utility {:.3}",
                    self.id, self.task, at, utility
                )
            }
            JobOutcome::Aborted { at, by_policy } => {
                let who = if by_policy { "policy" } else { "termination" };
                write!(
                    f,
                    "{} ({}): aborted by {} at {}",
                    self.id, self.task, who, at
                )
            }
            JobOutcome::Unfinished => {
                write!(f, "{} ({}): unfinished at horizon", self.id, self.task)
            }
        }
    }
}

/// Engine-internal mutable job state.
#[derive(Debug, Clone)]
pub(crate) struct LiveJob {
    pub id: JobId,
    pub task: TaskId,
    pub arrival: SimTime,
    /// Absolute critical time `arrival + D_i`.
    pub critical: SimTime,
    /// Absolute termination time `arrival + (X − I)`.
    pub termination: SimTime,
    /// The sampled actual demand.
    pub actual: Cycles,
    /// The planning allocation `c_i` at release.
    pub allocation: Cycles,
    /// Cycles executed so far.
    pub executed: Cycles,
}

impl LiveJob {
    /// Actual cycles still needed; zero means complete.
    pub fn actual_remaining(&self) -> Cycles {
        self.actual.saturating_sub(self.executed)
    }

    /// What the scheduler believes remains: allocation minus executed,
    /// floored at one cycle while the job is actually incomplete (the
    /// scheduler cannot observe the overrun's true size).
    pub fn believed_remaining(&self) -> Cycles {
        let believed = self.allocation.saturating_sub(self.executed);
        if believed.is_zero() {
            Cycles::new(1)
        } else {
            believed
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn live(actual: u64, allocation: u64, executed: u64) -> LiveJob {
        LiveJob {
            id: JobId(0),
            task: TaskId(0),
            arrival: SimTime::ZERO,
            critical: SimTime::from_micros(10),
            termination: SimTime::from_micros(20),
            actual: Cycles::new(actual),
            allocation: Cycles::new(allocation),
            executed: Cycles::new(executed),
        }
    }

    #[test]
    fn remaining_tracks_execution() {
        let j = live(100, 120, 30);
        assert_eq!(j.actual_remaining().get(), 70);
        assert_eq!(j.believed_remaining().get(), 90);
    }

    #[test]
    fn believed_floors_at_one_cycle_on_overrun() {
        // Allocation exhausted but the job actually needs more.
        let j = live(200, 120, 150);
        assert_eq!(j.actual_remaining().get(), 50);
        assert_eq!(j.believed_remaining().get(), 1);
    }

    #[test]
    fn record_utility_only_for_completion() {
        let base = JobRecord {
            id: JobId(1),
            task: TaskId(0),
            arrival: SimTime::ZERO,
            actual_demand: Cycles::new(10),
            executed: Cycles::new(10),
            outcome: JobOutcome::Completed {
                at: SimTime::from_micros(5),
                utility: 3.5,
            },
        };
        assert_eq!(base.utility(), 3.5);
        assert!(base.is_completed());
        let aborted = JobRecord {
            outcome: JobOutcome::Aborted {
                at: SimTime::from_micros(7),
                by_policy: true,
            },
            ..base.clone()
        };
        assert_eq!(aborted.utility(), 0.0);
        assert!(!aborted.is_completed());
        let unfinished = JobRecord {
            outcome: JobOutcome::Unfinished,
            ..base
        };
        assert_eq!(unfinished.utility(), 0.0);
    }

    #[test]
    fn record_display_names_outcome() {
        let r = JobRecord {
            id: JobId(2),
            task: TaskId(1),
            arrival: SimTime::ZERO,
            actual_demand: Cycles::new(10),
            executed: Cycles::new(4),
            outcome: JobOutcome::Aborted {
                at: SimTime::from_micros(9),
                by_policy: false,
            },
        };
        assert!(r.to_string().contains("termination"));
    }
}
