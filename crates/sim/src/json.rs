//! A minimal first-party JSON tree shared by every serializer in the
//! workspace (decision certificates here, SARIF in `eua-analyze`,
//! result files in `eua-bench`): deterministic rendering plus a strict
//! parser, so emitted documents can be asserted to **round-trip**
//! byte-for-byte (`render(parse(s)) == s`) without external crates —
//! the build environment is offline, so no `serde`.
//!
//! Numbers are kept as their literal token text ([`Json::Num`] wraps a
//! `String`), which is what makes the round-trip exact: a parsed
//! document re-renders to the same bytes because nothing is ever
//! re-formatted through `f64`.

use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order (no sorting), so a
/// writer fully controls the byte layout.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, stored as its literal token text.
    Num(String),
    /// A string (unescaped content).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A number from an `f64`, via Rust's shortest-roundtrip `{:?}`
    /// formatting (deterministic across platforms). Non-finite values
    /// have no JSON representation and are rendered as `null`.
    #[must_use]
    pub fn num(v: f64) -> Json {
        if v.is_finite() {
            Json::Num(format!("{v:?}"))
        } else {
            Json::Null
        }
    }

    /// A number from an unsigned integer.
    #[must_use]
    pub fn uint(v: u64) -> Json {
        Json::Num(v.to_string())
    }

    /// Renders the tree as pretty-printed JSON (2-space indent, `\n`
    /// newlines, trailing newline). The layout is fully deterministic:
    /// rendering a parsed render reproduces the bytes exactly.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Renders the tree as compact single-line JSON (no whitespace, no
    /// trailing newline) — the layout journal records use, where one
    /// record must occupy exactly one line. As deterministic as
    /// [`Json::render`], and parseable by the same [`parse`].
    #[must_use]
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    /// Looks up a key in an object (first match); `None` elsewhere.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string content, if this is a [`Json::Str`].
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The items, if this is a [`Json::Arr`].
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document (the subset this module renders: no exotic
/// escapes beyond `\" \\ \/ \n \r \t \uXXXX`).
///
/// # Errors
///
/// A human-readable message naming the byte offset of the first
/// malformed token, or trailing garbage after the document.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("malformed literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits_start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    if *pos == digits_start {
        return Err(format!("expected a number at byte {start}"));
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| format!("invalid utf-8 in number at byte {start}"))?;
    // Validate through Rust's float parser without re-formatting.
    text.parse::<f64>()
        .map_err(|_| format!("malformed number {text:?} at byte {start}"))?;
    Ok(Json::Num(text.to_string()))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| "invalid utf-8 in \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("malformed \\u escape {hex:?}"))?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("invalid codepoint \\u{hex}"))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(format!("unknown escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x80 => {
                out.push(b as char);
                *pos += 1;
            }
            Some(_) => {
                // Consume one multi-byte UTF-8 scalar. Validate only a
                // bounded 4-byte window — validating the whole remaining
                // input per character would make parsing quadratic.
                let end = (*pos + 4).min(bytes.len());
                let c = match std::str::from_utf8(&bytes[*pos..end]) {
                    Ok(s) => s.chars().next(),
                    Err(e) => std::str::from_utf8(&bytes[*pos..*pos + e.valid_up_to()])
                        .ok()
                        .and_then(|s| s.chars().next()),
                }
                .ok_or_else(|| format!("invalid utf-8 at byte {pos}", pos = *pos))?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '{'
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected a key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_then_parse_round_trips_bytes() {
        let doc = Json::Obj(vec![
            ("version".into(), Json::Str("2.1.0".into())),
            ("load".into(), Json::num(0.8)),
            ("count".into(), Json::uint(42)),
            ("flag".into(), Json::Bool(true)),
            ("missing".into(), Json::Null),
            (
                "points".into(),
                Json::Arr(vec![Json::num(0.1), Json::num(1.0 / 3.0), Json::uint(7)]),
            ),
            ("empty_arr".into(), Json::Arr(vec![])),
            ("empty_obj".into(), Json::Obj(vec![])),
        ]);
        let text = doc.render();
        let parsed = parse(&text).expect("render output must parse");
        assert_eq!(parsed.render(), text, "byte-exact round-trip");
    }

    #[test]
    fn compact_render_is_one_line_and_round_trips() {
        let doc = Json::Obj(vec![
            ("cell".into(), Json::uint(7)),
            ("grade".into(), Json::Str("collapsed".into())),
            ("load".into(), Json::num(0.95)),
            (
                "families".into(),
                Json::Arr(vec![Json::Str("uam".into()), Json::Null]),
            ),
            ("empty".into(), Json::Obj(vec![])),
        ]);
        let line = doc.render_compact();
        assert!(!line.contains('\n'), "compact output must be one line");
        assert_eq!(
            line,
            r#"{"cell":7,"grade":"collapsed","load":0.95,"families":["uam",null],"empty":{}}"#
        );
        let parsed = parse(&line).expect("compact output must parse");
        assert_eq!(parsed.render_compact(), line, "byte-exact round-trip");
        assert_eq!(parsed, doc);
    }

    #[test]
    fn numbers_keep_their_literal_text() {
        let parsed = parse("[1e3, 0.5, -2, 10]").unwrap();
        let Json::Arr(items) = parsed else {
            panic!("expected an array")
        };
        let texts: Vec<&str> = items
            .iter()
            .map(|v| match v {
                Json::Num(n) => n.as_str(),
                other => panic!("expected numbers, got {other:?}"),
            })
            .collect();
        assert_eq!(texts, vec!["1e3", "0.5", "-2", "10"]);
    }

    #[test]
    fn accessors_navigate_objects_and_arrays() {
        let parsed = parse("{\"runs\": [{\"tool\": \"x\"}]}").unwrap();
        let runs = parsed.get("runs").and_then(Json::as_arr).unwrap();
        assert_eq!(
            runs[0].get("tool").and_then(Json::as_str),
            Some("x"),
            "nested lookup"
        );
        assert!(parsed.get("absent").is_none());
    }

    #[test]
    fn escapes_survive_round_trip() {
        let doc = Json::Str("tab\there\nnewline \\ quote\" ctrl\u{1}".into());
        let text = doc.render();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "\"unterminated",
            "nul",
            "12 34",
            "{\"a\": 1} trailing",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn non_finite_floats_render_as_null() {
        assert_eq!(Json::num(f64::NAN), Json::Null);
        assert_eq!(Json::num(f64::INFINITY), Json::Null);
        assert_eq!(Json::num(1.5), Json::Num("1.5".into()));
    }
}
