//! Discrete-event simulator for preemptive, DVS-capable uniprocessor
//! real-time scheduling — the test bench on which EUA\* and its baselines
//! are evaluated.
//!
//! The simulator owns everything a scheduling policy cannot know:
//!
//! * per-job **actual** cycle demands (sampled from each task's
//!   [`eua_uam::demand::DemandModel`]), while policies plan with the
//!   Chebyshev **allocation** `c_i`;
//! * the passage of time: execution at the policy-chosen frequency,
//!   preemption, completion, and the abort exception when a job's TUF
//!   termination time is reached (paper §2.2);
//! * accounting: accrued utility, per-cycle energy under Martin's model,
//!   context switches, preemptions, frequency changes, and the per-task
//!   statistics needed to check `{ν, ρ}` assurances.
//!
//! Policies implement [`SchedulerPolicy`]: at every scheduling event
//! (release, completion, termination expiry) they see the live [`JobView`]s
//! and return a [`Decision`] — which job to run, at which frequency, and
//! which jobs to abort.
//!
//! Simulations are **deterministic**: integer-microsecond time, integer
//! cycles, and seeded RNGs, so a `(workload, seed, policy)` triple always
//! reproduces the same metrics.
//!
//! # Example
//!
//! ```
//! use eua_platform::{EnergySetting, FrequencyTable, TimeDelta};
//! use eua_sim::{Engine, Platform, SimConfig, Task, TaskSet};
//! use eua_sim::policy::MaxSpeedEdf;
//! use eua_tuf::Tuf;
//! use eua_uam::demand::DemandModel;
//! use eua_uam::generator::ArrivalPattern;
//! use eua_uam::{Assurance, UamSpec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let platform = Platform::new(FrequencyTable::powernow_k6(), EnergySetting::e1());
//! let period = TimeDelta::from_millis(10);
//! let task = Task::new(
//!     "sensor",
//!     Tuf::step(10.0, period)?,
//!     UamSpec::periodic(period)?,
//!     DemandModel::deterministic(200_000.0)?,
//!     Assurance::step_default(),
//! )?;
//! let tasks = TaskSet::new(vec![task])?;
//! let patterns = vec![ArrivalPattern::periodic(period)?];
//!
//! let config = SimConfig::new(TimeDelta::from_millis(100));
//! let mut policy = MaxSpeedEdf::new();
//! let outcome = Engine::run(&tasks, &patterns, &platform, &mut policy, &config, 42)?;
//! assert_eq!(outcome.metrics.jobs_completed(), 10);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod arena;
mod calendar;
pub mod certificate;
mod context;
mod engine;
mod error;
pub mod faults;
mod ids;
mod invariants;
mod job;
pub mod json;
mod metrics;
mod platform_view;
pub mod policy;
pub mod pool;
mod reference;
mod runner;
mod task;
mod trace;

pub use analysis::{
    classify_degradation, edf_violations, response_stats, utilization_timeline, DegradationClass,
    DegradationReport, EdfViolation, ResponseStats, TaskDegradation, DEFAULT_COLLAPSE_FRACTION,
};
pub use certificate::{
    AbortWitness, ChargeKind, ChargeRecord, DecisionExplanation, DvsExplanation, EventRecord,
    JobSnapshot, RunCertificate, ScheduleEntry, TaskDecl, TufDecl, UerEntry, CERT_FORMAT,
};
pub use context::{JobView, SchedContext, SchedEvent};
pub use engine::{Engine, Outcome, SimConfig};
pub use error::SimError;
pub use faults::{
    map_to_degraded, DemandFault, DvsFault, FaultPlan, FaultStats, TimingFault, UamViolationFault,
};
pub use ids::{JobId, TaskId};
pub use invariants::{invariant_checks_enabled, InvariantChecker};
pub use job::{JobOutcome, JobRecord};
pub use metrics::{FrequencyResidency, Metrics, TaskMetrics};
pub use platform_view::Platform;
pub use policy::{Decision, SchedulerPolicy};
pub use pool::{
    map_parallel, map_parallel_labeled, map_parallel_settle, map_parallel_with, resolve_jobs,
    PoolError,
};
pub use runner::{
    replicate, replicate_parallel, replicate_parallel_with_faults, replicate_with_faults,
    Replication, Summary,
};
pub use task::{Task, TaskSet};
pub use trace::{ExecutionTrace, Segment, TraceEvent};
